//! Keeps the README's generated throughput table in lockstep with the
//! committed `BENCH_maple.json`: the table between the
//! `BEGIN/END GENERATED: throughput-table` markers must be exactly what
//! `readme_throughput_table` renders from the checked-in measurements.
//! `bench_summary` rewrites the block on every run, so a mismatch means
//! one of the two files was edited by hand.

use maple_bench::summary::{readme_throughput_table, README_TABLE_BEGIN, README_TABLE_END};
use maple_trace::Json;
use std::path::PathBuf;

fn repo_file(name: &str) -> String {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("../..");
    path.push(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn readme_table_matches_committed_bench_json() {
    let doc = Json::parse(&repo_file("BENCH_maple.json")).expect("BENCH_maple.json parses");
    let readme = repo_file("README.md");
    let begin = readme
        .find(README_TABLE_BEGIN)
        .expect("README has the BEGIN throughput-table marker");
    let end = readme
        .find(README_TABLE_END)
        .expect("README has the END throughput-table marker");
    let block = &readme[begin + README_TABLE_BEGIN.len()..end];
    let expected = format!("\n{}", readme_throughput_table(&doc));
    assert_eq!(
        block, expected,
        "README throughput table is out of sync with BENCH_maple.json \
         (run `cargo run --release -p maple-bench --bin bench_summary` to regenerate)"
    );
}

#[test]
fn rendered_table_has_a_row_per_recorded_section() {
    // The renderer itself: every section present in the document yields
    // its pair of rows, and the speedup column derives from the
    // throughput columns.
    let doc = Json::parse(&repo_file("BENCH_maple.json")).expect("BENCH_maple.json parses");
    let table = readme_throughput_table(&doc);
    for (section, label) in [
        ("stepper", "event-horizon skipping"),
        ("stepper_fast_path", "skipping + compiled fast path"),
        ("serving", "multi-tenant serving"),
    ] {
        assert_eq!(
            doc.get(section).is_some(),
            table.contains(label),
            "table row presence must track the `{section}` section"
        );
    }
}
