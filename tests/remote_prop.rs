//! Property tests for the distributed fleet coordinator: for randomly
//! generated job batches and randomly generated network-fault schedules,
//! `run_remote` must terminate and return exactly the payloads the local
//! reference computes — drops, delays, truncation, worker crashes and
//! full-fleet death (degradation to local execution) included. This is
//! the protocol-level analogue of the simulator's differential oracle:
//! chaos may change *how* the batch executes, never *what* it computes.

use maple_fleet::net::{FaultyTransport, LoopbackWorker, NetFaultConfig, Transport};
use maple_fleet::remote::{run_remote, RemoteConfig, RemoteJob, Rung};
use maple_testkit::{check, gen, tk_assert, Config};

/// The deterministic "simulation" both sides run: a pure function of the
/// spec string, so any payload mismatch can only come from the protocol
/// delivering the wrong job or a stale/corrupt result.
fn reference(spec: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in spec.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    format!("{spec}|{h:016x}")
}

/// A batch of `n` distinct jobs derived from `seed`.
fn jobs_of(n: usize, seed: u64) -> Vec<RemoteJob> {
    (0..n)
        .map(|i| RemoteJob {
            key: seed ^ ((i as u64) << 32) ^ 0x9e37_79b9,
            spec: format!("job-{seed:x}-{i}"),
        })
        .collect()
}

/// One random fault schedule per worker, plus `crash_mask` bit `wi`
/// crashing that worker after its first completed job.
fn faulty_fleet(workers: usize, fault_seed: u64, crash_mask: u64) -> Vec<Box<dyn Transport>> {
    (0..workers)
        .map(|wi| {
            // Rates derived from the seed so shrinking the seed shrinks
            // the chaos; kept below 0.5 so progress stays plausible and
            // the run terminates quickly.
            let mix = fault_seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .rotate_left(wi as u32 * 7);
            let rate = |shift: u32| f64::from((mix >> shift) as u8 % 40) / 100.0;
            let mut cfg = NetFaultConfig::new(fault_seed ^ ((wi as u64 + 1) << 16))
                .with_send_drop(rate(0))
                .with_recv_drop(rate(8))
                .with_recv_delay(rate(16), 8 + (mix >> 24) % 48)
                .with_truncate(rate(32) / 4.0);
            if crash_mask & (1 << wi) != 0 {
                cfg = cfg.with_crash_after_jobs(1);
            }
            let worker = LoopbackWorker::new(|spec| Ok(reference(spec)))
                .with_work_polls(1 + (mix >> 40) % 4)
                .with_heartbeat_every(2);
            Box::new(FaultyTransport::new(worker, cfg)) as Box<dyn Transport>
        })
        .collect()
}

#[test]
fn chaotic_batches_match_the_local_reference() {
    let inputs = (
        gen::usize_in(1..5),    // workers
        gen::usize_in(0..13),   // jobs
        gen::u64_any(),         // job seed
        gen::u64_any(),         // fault seed
        gen::u64_in(0..16),     // crash mask (subset of 4 workers)
        gen::u64_in(8..40),     // lease, in coordinator polls
    );
    let cfg = Config::new("chaotic_batches_match_the_local_reference").with_cases(48);
    check(
        &cfg,
        &inputs,
        |&(workers, njobs, job_seed, fault_seed, crash_mask, lease)| {
            let jobs = jobs_of(njobs, job_seed);
            let transports = faulty_fleet(workers, fault_seed, crash_mask);
            let rcfg = RemoteConfig::default()
                .with_lease_polls(lease)
                .with_job_attempts(3)
                .with_worker_strikes(2)
                .with_backoff_base(2);
            let batch = run_remote(transports, &rcfg, &jobs, None, |job| {
                Ok(reference(&job.spec))
            })
            .expect("no poll budget: the coordinator cannot abort");

            tk_assert!(
                batch.outcomes.len() == jobs.len(),
                "outcome count {} != job count {}",
                batch.outcomes.len(),
                jobs.len()
            );
            for (job, outcome) in jobs.iter().zip(&batch.outcomes) {
                let got = match outcome {
                    Ok(payload) => payload,
                    Err(e) => {
                        return Err(format!(
                            "{}: failed under chaos even with local fallback: {e}",
                            job.spec
                        ))
                    }
                };
                tk_assert!(
                    *got == reference(&job.spec),
                    "{}: payload diverged from reference: {got}",
                    job.spec
                );
            }

            let s = &batch.stats;
            tk_assert!(
                s.remote_done as usize + s.local_done as usize + s.cache_hits as usize
                    == jobs.len(),
                "dispatch accounting doesn't cover the batch: {s:?}"
            );
            let expected_rung = match (s.remote_done, s.local_done) {
                (_, 0) => Rung::Remote,
                (0, _) => Rung::Local,
                _ => Rung::Degraded,
            };
            tk_assert!(
                (jobs.is_empty() && s.local_done == 0) || s.rung == expected_rung,
                "reported rung {:?} contradicts counters {s:?}",
                s.rung
            );
            Ok(())
        },
    );
}

#[test]
fn a_fully_crashing_fleet_degrades_to_local_execution() {
    let inputs = (gen::usize_in(1..4), gen::usize_in(2..8), gen::u64_any());
    let cfg = Config::new("a_fully_crashing_fleet_degrades_to_local_execution").with_cases(16);
    check(&cfg, &inputs, |&(workers, njobs, seed)| {
        let jobs = jobs_of(njobs, seed);
        // Every worker dies during its first job: nothing can complete
        // remotely, so the whole batch must drain through the fallback.
        let transports: Vec<Box<dyn Transport>> = (0..workers)
            .map(|wi| {
                let worker = LoopbackWorker::new(|spec| Ok(reference(spec)));
                let cfg = NetFaultConfig::new(seed ^ wi as u64).with_crash_after_jobs(0);
                Box::new(FaultyTransport::new(worker, cfg)) as Box<dyn Transport>
            })
            .collect();
        let rcfg = RemoteConfig::default()
            .with_lease_polls(8)
            .with_worker_strikes(1);
        let batch = run_remote(transports, &rcfg, &jobs, None, |job| {
            Ok(reference(&job.spec))
        })
        .expect("no poll budget: the coordinator cannot abort");
        for (job, outcome) in jobs.iter().zip(&batch.outcomes) {
            tk_assert!(
                outcome.as_deref() == Ok(reference(&job.spec).as_str()),
                "{}: wrong or missing payload after degradation: {outcome:?}",
                job.spec
            );
        }
        tk_assert!(
            batch.stats.rung == Rung::Local && batch.stats.remote_done == 0,
            "a dead fleet must report the local rung: {:?}",
            batch.stats
        );
        Ok(())
    });
}
