//! Smoke tests for the figure harness: tiny instances through the same
//! experiment plumbing the `fig*` binaries use, so a broken experiment
//! path fails in `cargo test` rather than at figure-generation time.

use maple_bench::report::SpeedupTable;
use maple_core::area::engine_area;
use maple_core::MapleConfig;
use maple_soc::config::SocConfig;

#[test]
fn speedup_table_renders_geomeans() {
    let mut t = SpeedupTable::new(&["a", "b"]);
    t.add_row("w1", vec![1.0, 2.0]);
    t.add_row("w2", vec![1.0, 8.0]);
    let g = t.geomeans();
    assert!((g[1] - 4.0).abs() < 1e-9);
}

#[test]
fn instances_are_well_formed() {
    for (label, inst) in maple_bench::instances::spmv() {
        assert!(inst.a.is_well_formed(), "spmv/{label}");
        assert_eq!(inst.x.len(), inst.a.ncols);
    }
    for (label, inst) in maple_bench::instances::sdhp() {
        assert!(!inst.lin.is_empty(), "sdhp/{label}");
        assert!(inst.lin.iter().all(|&b| (b as usize) < inst.dense.len()));
    }
    for (label, inst) in maple_bench::instances::spmm() {
        assert!(inst.a.is_well_formed(), "spmm/{label}");
        assert!(inst.b.is_well_formed(), "spmm/{label}");
    }
    for (label, inst) in maple_bench::instances::bfs() {
        assert!(inst.graph.is_well_formed(), "bfs/{label}");
        assert!(!inst.graph.row_range(inst.root as usize).is_empty());
    }
}

#[test]
fn table_configs_match_paper_parameters() {
    let t2 = SocConfig::fpga_prototype();
    assert_eq!(t2.cores, 2);
    assert_eq!(t2.maples, 1);
    assert_eq!(t2.maple.scratchpad_bytes, 1024);
    assert_eq!(t2.dram.latency, 300);
    assert_eq!(t2.l2.latency, 30);
    let t3 = SocConfig::simulated_system();
    assert_eq!(t3.dram.latency, t2.dram.latency);
}

#[test]
fn area_model_matches_paper_fraction() {
    let frac = engine_area(&MapleConfig::default()).fraction_of_ariane();
    assert!(
        (0.008..0.016).contains(&frac),
        "expected ≈1.1% of Ariane, got {:.2}%",
        frac * 100.0
    );
}

#[test]
fn experiment_datasets_cover_all_apps() {
    let pairs = maple_bench::experiments::app_datasets();
    for app in ["sdhp", "spmm", "spmv", "bfs"] {
        assert!(
            pairs.iter().any(|(a, _)| a == app),
            "no datasets for {app}"
        );
    }
    assert!(pairs.len() >= 7, "paper evaluates multiple datasets per app");
}
