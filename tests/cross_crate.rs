//! Workspace-level integration tests spanning every crate: workloads on
//! the assembled SoC, exercised through the public APIs only.

use maple_workloads::bfs::Bfs;
use maple_workloads::data::{rmat, uniform_sparse, Csr};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmm::Spmm;
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

fn small_graph() -> Csr {
    rmat(7, 8, (0.57, 0.19, 0.19, 0.05), 77)
}

#[test]
fn every_kernel_every_variant_is_bit_exact() {
    // The workspace's strongest end-to-end property: all four kernels in
    // all applicable variants compute exactly the host reference.
    let spmv = Spmv {
        a: uniform_sparse(40, 16 * 1024, 5, 1),
        x: maple_workloads::data::dense_vector(16 * 1024, 2),
    };
    let sdhp = Sdhp::from_sparse(&uniform_sparse(24, 512, 8, 3), 4);
    let spmm = Spmm::synthetic(96, 4, 5, 5);
    let graph = small_graph();
    let root = (0..graph.nrows)
        .find(|&r| !graph.row_range(r).is_empty())
        .unwrap() as u32;
    let bfs = Bfs { graph, root };

    let dec_variants = [
        (Variant::Doall, 2),
        (Variant::SwDecoupled, 2),
        (Variant::MapleDecoupled, 2),
        (Variant::Desc, 2),
        (Variant::Droplet, 2),
    ];
    let pref_variants = [(Variant::SwPrefetch { dist: 8 }, 1), (Variant::MapleLima, 1)];

    for (v, t) in dec_variants.iter().chain(&pref_variants) {
        assert!(
            spmv.run(*v, *t).verified,
            "spmv {} failed",
            v.label()
        );
        assert!(
            sdhp.run(*v, *t).verified,
            "sdhp {} failed",
            v.label()
        );
        assert!(
            spmm.run(*v, *t).verified,
            "spmm {} failed",
            v.label()
        );
        assert!(bfs.run(*v, *t).verified, "bfs {} failed", v.label());
    }
}

#[test]
fn decoupling_pecking_order_holds_on_cache_averse_input() {
    // The paper's headline ordering on a cache-averse instance:
    // MAPLE-decoupled < doall < software-decoupled (in cycles).
    let inst = Spmv {
        a: uniform_sparse(96, 64 * 1024, 8, 11),
        x: maple_workloads::data::dense_vector(64 * 1024, 12),
    };
    let doall = inst.run(Variant::Doall, 2);
    let sw = inst.run(Variant::SwDecoupled, 2);
    let maple = inst.run(Variant::MapleDecoupled, 2);
    assert!(maple.verified && sw.verified && doall.verified);
    assert!(
        maple.cycles < doall.cycles,
        "MAPLE ({}) must beat doall ({})",
        maple.cycles,
        doall.cycles
    );
    assert!(
        doall.cycles < sw.cycles,
        "software decoupling ({}) must trail doall ({}) on in-order cores",
        sw.cycles,
        doall.cycles
    );
}

#[test]
fn lima_beats_software_prefetch_on_loads_and_latency() {
    let inst = Sdhp::from_sparse(&uniform_sparse(64, 2048, 12, 21), 22);
    let base = inst.run(Variant::Doall, 1);
    let sw = inst.run(Variant::SwPrefetch { dist: 16 }, 1);
    let lima = inst.run(Variant::MapleLima, 1);
    assert!(lima.verified && sw.verified);
    assert!(lima.loads < base.loads, "wide consumes reduce load count");
    assert!(sw.loads > base.loads, "sw prefetch adds load instructions");
    assert!(
        lima.mean_load_latency < base.mean_load_latency,
        "LIMA cuts mean load latency"
    );
}

#[test]
fn four_and_eight_thread_scaling_remains_correct() {
    let inst = Spmv {
        a: uniform_sparse(64, 16 * 1024, 6, 31),
        x: maple_workloads::data::dense_vector(16 * 1024, 32),
    };
    for t in [4usize, 8] {
        assert!(inst.run(Variant::Doall, t).verified, "doall t={t}");
        assert!(
            inst.run(Variant::MapleDecoupled, t).verified,
            "maple t={t}"
        );
    }
}

#[test]
fn spmm_partial_decoupling_does_not_beat_doall_substantially() {
    // The RMW cannot be decoupled: MAPLE's fallback behaviour should be
    // within noise of doall, never a large win (Section 5.2).
    let inst = Spmm::synthetic(2048, 4, 10, 41);
    let doall = inst.run(Variant::Doall, 2);
    let maple = inst.run(Variant::MapleDecoupled, 2);
    assert!(maple.verified);
    let speedup = doall.cycles as f64 / maple.cycles as f64;
    assert!(
        speedup < 1.5,
        "decoupling should not hide RMW latency, got {speedup:.2}x"
    );
}
