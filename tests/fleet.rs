//! Acceptance tests for the `maple-fleet` execution runtime as wired
//! into the bench harness: results are bit-identical at every worker
//! count, a panicking job is isolated into a typed error, and the
//! content-addressed cache serves repeat runs and invalidates exactly
//! the cases whose configuration changed.

use std::fs;
use std::path::PathBuf;

use maple_bench::experiments::{suite_with, CaseSpec, Measurement};
use maple_bench::summary::{build_json, HarnessLine};
use maple_fleet::{run_batch, FleetConfig, ResultCache};
use maple_soc::config::SocConfig;
use maple_trace::StallBreakdown;
use maple_workloads::harness::FaultReport;
use maple_workloads::{RunStats, Variant};

/// Fresh scratch cache directory, unique per test.
fn scratch_cache(tag: &str) -> ResultCache {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "maple-fleet-it-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    ResultCache::open(dir).expect("open scratch cache")
}

/// A deterministic synthetic "simulation": stats are a pure function of
/// the case descriptor, so any cross-worker-count divergence can only
/// come from the fleet plumbing under test.
fn synthetic_run(spec: &CaseSpec) -> RunStats {
    let mut h: u64 = 0xfeed;
    for b in spec
        .app
        .bytes()
        .chain(spec.dataset.bytes())
        .chain(spec.variant.label().bytes())
    {
        h = h.wrapping_mul(31).wrapping_add(u64::from(b));
    }
    h = h.wrapping_add(spec.threads as u64);
    RunStats {
        cycles: 1000 + h % 9000,
        loads: 10 + h % 90,
        mean_load_latency: 4.0 + (h % 16) as f64,
        verified: true,
        cores: Vec::new(),
        engine: (0, 0, 0, 0),
        queue0_occupancy_mean: 0.0,
        queues_produced: h % 64,
        queues_consumed: h % 64,
        queues_drained: true,
        noc_injected: 100,
        noc_delivered: 100,
        hung: false,
        faults: FaultReport::default(),
        core_cycles: 2 * (1000 + h % 9000),
        stall: StallBreakdown {
            l1_miss: h % 100,
            l2_miss: h % 50,
            dram: h % 200,
            consume_wait: h % 10,
            mmio: h % 5,
            fault_recovery: 0,
        },
    }
}

fn cases_of(variants: &[(Variant, usize)]) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for (app, ds) in [("spmv", "small"), ("spmv", "large"), ("bfs", "road")] {
        for &(variant, threads) in variants {
            cases.push(CaseSpec {
                app: app.into(),
                dataset: ds.into(),
                variant,
                threads,
            });
        }
    }
    cases
}

fn tsv_of(rows: &[Measurement]) -> Vec<String> {
    rows.iter().map(Measurement::to_tsv).collect()
}

#[test]
fn suite_rows_and_summary_json_identical_across_worker_counts() {
    let fig08_cases = cases_of(&[
        (Variant::Doall, 2),
        (Variant::SwDecoupled, 2),
        (Variant::MapleDecoupled, 2),
    ]);
    let fig09_cases = cases_of(&[
        (Variant::Doall, 1),
        (Variant::SwPrefetch { dist: 16 }, 1),
        (Variant::MapleLima, 1),
    ]);
    let fig12_cases = cases_of(&[
        (Variant::Doall, 2),
        (Variant::MapleDecoupled, 2),
        (Variant::Desc, 2),
        (Variant::Droplet, 2),
    ]);

    // Fixed harness line: the run-to-run numbers (wall, jobs) enter the
    // JSON only through this argument, so the rendered document must be
    // byte-identical at every worker count.
    let harness = HarnessLine::default();
    let reference: Option<(Vec<String>, String)> = None;
    let mut reference = reference;
    for workers in [1usize, 2, 8] {
        let cache = scratch_cache(&format!("workers{workers}"));
        let pool = FleetConfig::from_env().with_workers(workers);
        let fig08 = suite_with(&cache, &pool, "t08", &fig08_cases, base_config, synthetic_run);
        let fig09 = suite_with(&cache, &pool, "t09", &fig09_cases, base_config, synthetic_run);
        let fig12 = suite_with(&cache, &pool, "t12", &fig12_cases, base_config, synthetic_run);
        assert_eq!(fig08.fleet.jobs, workers);
        assert_eq!(fig08.fleet.cache_misses, fig08_cases.len());

        let mut tsv = tsv_of(&fig08.rows);
        tsv.extend(tsv_of(&fig09.rows));
        tsv.extend(tsv_of(&fig12.rows));
        let json = build_json(
            &fig08.rows,
            &fig09.rows,
            &fig12.rows,
            42.0,
            &harness,
            None,
            None,
            None,
            None,
            None,
        )
        .render_pretty();
        match &reference {
            None => reference = Some((tsv, json)),
            Some((ref_tsv, ref_json)) => {
                assert_eq!(&tsv, ref_tsv, "rows diverged at workers={workers}");
                assert_eq!(&json, ref_json, "summary JSON diverged at workers={workers}");
            }
        }
        let _ = fs::remove_dir_all(cache.root());
    }
}

fn base_config(spec: &CaseSpec) -> SocConfig {
    let _ = spec;
    SocConfig::fpga_prototype()
}

#[test]
fn panicking_job_is_isolated_while_others_complete() {
    let cfg = FleetConfig::from_env().with_workers(4);
    let jobs: Vec<Box<dyn Fn() -> u64 + Send>> = (0u64..6)
        .map(|i| {
            Box::new(move || {
                assert!(i != 2, "synthetic failure in job two");
                i * 7
            }) as Box<dyn Fn() -> u64 + Send>
        })
        .collect();
    let batch = run_batch(&cfg, jobs);
    assert_eq!(batch.outcomes.len(), 6);
    for (i, o) in batch.outcomes.iter().enumerate() {
        if i == 2 {
            let err = o.result.as_ref().expect_err("job two must fail");
            assert!(err.message.contains("synthetic failure"), "{err}");
        } else {
            assert_eq!(*o.result.as_ref().expect("healthy job"), i as u64 * 7);
        }
    }
    // The pool survives: a follow-up batch runs clean.
    let again = run_batch(&cfg, (0u64..4).map(|i| move || i).collect::<Vec<_>>());
    assert!(again.outcomes.iter().all(|o| o.result.is_ok()));
}

#[test]
fn cache_serves_repeats_and_invalidates_exactly_the_changed_configs() {
    let cases = cases_of(&[(Variant::Doall, 2), (Variant::MapleDecoupled, 2)]);
    let cache = scratch_cache("invalidation");
    let pool = FleetConfig::from_env().with_workers(2);

    // Cold: everything simulated.
    let first = suite_with(&cache, &pool, "cold", &cases, base_config, synthetic_run);
    assert_eq!(first.fleet.cache_misses, cases.len());
    assert_eq!(first.fleet.cache_hits, 0);

    // Warm: 100% hits, identical rows.
    let second = suite_with(&cache, &pool, "warm", &cases, base_config, synthetic_run);
    assert_eq!(second.fleet.cache_hits, cases.len());
    assert_eq!(second.fleet.cache_misses, 0);
    assert_eq!(tsv_of(&first.rows), tsv_of(&second.rows));

    // Perturb one timing parameter for the spmv cases only: exactly
    // those keys change, so exactly those cases miss.
    let perturbed = |spec: &CaseSpec| {
        let mut cfg = SocConfig::fpga_prototype();
        if spec.app == "spmv" {
            cfg.dram.latency += 1;
        }
        cfg
    };
    let spmv_cases = cases.iter().filter(|c| c.app == "spmv").count();
    assert!(spmv_cases > 0 && spmv_cases < cases.len());
    let third = suite_with(&cache, &pool, "perturbed", &cases, perturbed, synthetic_run);
    assert_eq!(third.fleet.cache_misses, spmv_cases);
    assert_eq!(third.fleet.cache_hits, cases.len() - spmv_cases);

    // Back to the base config: the original entries are still there.
    let fourth = suite_with(&cache, &pool, "back", &cases, base_config, synthetic_run);
    assert_eq!(fourth.fleet.cache_hits, cases.len());
    let _ = fs::remove_dir_all(cache.root());
}

#[test]
fn corrupted_cache_entries_are_recomputed_not_propagated() {
    let cases = cases_of(&[(Variant::Doall, 2), (Variant::SwDecoupled, 2)]);
    let cache = scratch_cache("corruption");
    let pool = FleetConfig::from_env().with_workers(2);

    let first = suite_with(&cache, &pool, "cold", &cases, base_config, synthetic_run);
    assert_eq!(first.fleet.cache_misses, cases.len());

    // Vandalize the store three different ways: truncate one entry
    // mid-payload, overwrite one with garbage, and empty a third. A
    // wedged or stale on-disk store must cost only recomputation —
    // never a panic, and never a wrong row.
    let mut entries: Vec<PathBuf> = fs::read_dir(cache.root())
        .expect("cache root exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "need three entries to vandalize");
    let full = fs::read(&entries[0]).expect("read entry");
    fs::write(&entries[0], &full[..full.len() / 2]).expect("truncate entry");
    fs::write(&entries[1], b"not a fleet entry at all\x00\xff").expect("garbage entry");
    fs::write(&entries[2], b"").expect("empty entry");

    let second = suite_with(&cache, &pool, "vandalized", &cases, base_config, synthetic_run);
    assert_eq!(second.fleet.cache_misses, 3, "each bad entry is a miss");
    assert_eq!(second.fleet.cache_hits, cases.len() - 3);
    assert_eq!(tsv_of(&first.rows), tsv_of(&second.rows));

    // The bad entries were evicted and rewritten: fully warm again.
    let third = suite_with(&cache, &pool, "healed", &cases, base_config, synthetic_run);
    assert_eq!(third.fleet.cache_hits, cases.len());
    assert_eq!(tsv_of(&first.rows), tsv_of(&third.rows));
    let _ = fs::remove_dir_all(cache.root());
}
