//! Integration tests for the observability plane: the trace schema, the
//! Chrome exporter, the cycle-identity guarantee (tracing is pure
//! observation), and the metrics/stall accounting invariants.

use maple_trace::{chrome, Json, TraceConfig, TraceEvent};
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

fn small_spmv() -> Spmv {
    Spmv {
        a: uniform_sparse(48, 16 * 1024, 5, 9),
        x: dense_vector(16 * 1024, 10),
    }
}

/// Tracing must be invisible to the simulated machine: the exact same
/// run with and without a tracer attached produces identical cycle
/// counts and identical architectural statistics.
#[test]
fn tracing_is_cycle_identical() {
    let spmv = small_spmv();
    for (variant, threads) in [
        (Variant::MapleDecoupled, 2usize),
        (Variant::MapleLima, 1),
        (Variant::Doall, 2),
    ] {
        let plain = spmv.run(variant, threads);
        let (traced, sys) =
            spmv.run_observed(variant, threads, |c| c.with_tracing(TraceConfig::default()));
        assert_eq!(
            plain.cycles, traced.cycles,
            "{variant:?}: tracing changed the cycle count"
        );
        assert_eq!(plain.core_cycles, traced.core_cycles);
        assert_eq!(plain.stall.total(), traced.stall.total());
        assert!(plain.verified && traced.verified);
        assert!(
            !sys.trace_records().is_empty(),
            "{variant:?}: traced run captured no events"
        );
    }
}

/// Captured records are well-formed: timestamps are monotonic (the SoC
/// emits in tick order), stall begin/end events alternate per core, and
/// every end names a cause.
#[test]
fn trace_schema_is_well_formed() {
    let spmv = small_spmv();
    let (_, sys) =
        spmv.run_observed(Variant::MapleDecoupled, 2, |c| c.with_tracing(TraceConfig::default()));
    let records = sys.trace_records();
    assert!(records.len() > 100, "expected a substantial trace");

    let mut last_ts = 0u64;
    let mut stalled = std::collections::HashMap::new();
    for rec in &records {
        assert!(
            rec.ts.0 >= last_ts,
            "timestamps must be monotonically non-decreasing"
        );
        last_ts = rec.ts.0;
        assert!(!rec.event.name().is_empty());
        match rec.event {
            TraceEvent::CoreStallBegin { core, .. } => {
                let was = stalled.insert(core, true);
                assert_ne!(was, Some(true), "core {core}: nested stall begin");
            }
            TraceEvent::CoreStallEnd { core, .. } => {
                let was = stalled.insert(core, false);
                assert_eq!(was, Some(true), "core {core}: stall end without begin");
            }
            _ => {}
        }
    }
}

/// The Chrome exporter yields a parseable `trace_event` document whose
/// events carry the mandatory fields and land in the expected process
/// lanes.
#[test]
fn chrome_export_parses_and_is_nonempty() {
    let spmv = small_spmv();
    let (_, sys) =
        spmv.run_observed(Variant::MapleDecoupled, 2, |c| c.with_tracing(TraceConfig::default()));
    let doc = chrome::chrome_trace(&sys.trace_records());
    let text = doc.render();
    let parsed = Json::parse(&text).expect("exported trace must be valid JSON");

    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(events.len() > 100, "expected a substantial trace");
    let mut phases = std::collections::HashSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        phases.insert(ph.to_owned());
        assert!(ev.get("pid").and_then(Json::as_u64).is_some(), "pid field");
        if ph != "M" {
            assert!(ev.get("ts").is_some(), "ts field on non-metadata events");
        }
        if ph == "B" || ph == "E" || ph == "X" || ph == "C" || ph == "i" {
            assert!(
                ev.get("name").and_then(Json::as_str).is_some(),
                "name field"
            );
        }
    }
    // Spans (stalls), completes (fills/MMIO), counters (queues) and
    // process metadata must all be present in a decoupled run.
    for required in ["B", "E", "X", "C", "M"] {
        assert!(phases.contains(required), "missing phase {required}");
    }
}

/// Stall accounting never exceeds wall-clock: each core's attributed
/// stall cycles fit inside its executed cycles, and the snapshot exposes
/// the same totals.
#[test]
fn stall_attribution_is_bounded_and_consistent() {
    let spmv = small_spmv();
    let (_, sys) =
        spmv.run_observed(Variant::MapleDecoupled, 2, |c| c.with_tracing(TraceConfig::default()));
    let rows = sys.stall_rows();
    assert!(!rows.is_empty());
    for row in &rows {
        assert!(
            row.breakdown.total() <= row.core_cycles,
            "{}: attributed {} stall cycles in {} core cycles",
            row.label,
            row.breakdown.total(),
            row.core_cycles
        );
    }
    let snap = sys.metrics_snapshot().to_json();
    let text = snap.render();
    Json::parse(&text).expect("metrics snapshot must render valid JSON");
}

/// A disabled tracer records nothing and costs nothing observable.
#[test]
fn disabled_tracer_captures_nothing() {
    let spmv = small_spmv();
    let (_, sys) = spmv.run_observed(Variant::MapleDecoupled, 2, |c| c);
    assert!(!sys.tracer().is_enabled());
    assert!(sys.trace_records().is_empty());
    assert_eq!(sys.tracer().dropped(), 0);
}
