//! Property tests at the full-system level: for randomly generated
//! problem instances, every execution strategy computes exactly the host
//! reference — the model-level analogue of the paper's formal
//! verification giving confidence across the input space.

use maple_testkit::{check, gen, tk_assert, Config, SimRng};
use maple_workloads::data::{dense_vector, Csr};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

/// Random small CSR: `rows` rows, up to 8 nonzeros each, expanded
/// deterministically from `seed`.
fn random_csr(rows: usize, ncols: usize, seed: u64) -> Csr {
    let mut rng = SimRng::seed(seed);
    let rows_vec: Vec<Vec<(u32, u32)>> = (0..rows)
        .map(|_| {
            let nnz = rng.below(9) as usize;
            let mut cols: Vec<u32> = (0..nnz)
                .map(|_| rng.below(ncols as u64) as u32)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, 1 + rng.below(100) as u32))
                .collect()
        })
        .collect();
    Csr::from_rows(rows, ncols, &rows_vec)
}

// Full-system runs are expensive; a handful of random cases per property
// still covers empty rows, single rows, duplicate gather targets and
// skewed shapes. Shrinking the (rows, seed, vec seed) triple reduces the
// instance toward a single row built from seed zero.

#[test]
fn spmv_variants_match_reference() {
    let inputs = (gen::usize_in(1..24), gen::u64_any(), gen::u64_in(0..1000));
    let cfg = Config::new("spmv_variants_match_reference").with_cases(8);
    check(&cfg, &inputs, |&(rows, csr_seed, x_seed)| {
        let a = random_csr(rows, 1024, csr_seed);
        let x = dense_vector(1024, x_seed);
        let inst = Spmv { a, x };
        for (v, t) in [
            (Variant::Doall, 1),
            (Variant::MapleDecoupled, 2),
            (Variant::MapleLima, 1),
        ] {
            let s = inst.run(v, t);
            tk_assert!(s.verified, "{} diverged from reference", v.label());
        }
        Ok(())
    });
}

#[test]
fn sdhp_variants_match_reference() {
    let inputs = (gen::usize_in(1..16), gen::u64_any(), gen::u64_in(0..1000));
    let cfg = Config::new("sdhp_variants_match_reference").with_cases(8);
    check(&cfg, &inputs, |&(rows, csr_seed, sdhp_seed)| {
        let a = random_csr(rows, 512, csr_seed);
        let inst = Sdhp::from_sparse(&a, sdhp_seed);
        for (v, t) in [
            (Variant::Doall, 2),
            (Variant::SwDecoupled, 2),
            (Variant::Desc, 2),
        ] {
            let s = inst.run(v, t);
            tk_assert!(s.verified, "{} diverged from reference", v.label());
        }
        Ok(())
    });
}
