//! Property tests at the full-system level: for randomly generated
//! problem instances, every execution strategy computes exactly the host
//! reference — the model-level analogue of the paper's formal
//! verification giving confidence across the input space.

use maple_workloads::data::{dense_vector, Csr};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;
use proptest::prelude::*;

/// Random small CSR with the given bounds.
fn csr_strategy(max_rows: usize, ncols: usize) -> impl Strategy<Value = Csr> {
    (1..max_rows, 0u64..u64::MAX).prop_map(move |(rows, seed)| {
        let mut rng = maple_sim::rng::SimRng::seed(seed);
        let rows_vec: Vec<Vec<(u32, u32)>> = (0..rows)
            .map(|_| {
                let nnz = rng.below(9) as usize;
                let mut cols: Vec<u32> = (0..nnz)
                    .map(|_| rng.below(ncols as u64) as u32)
                    .collect();
                cols.sort_unstable();
                cols.dedup();
                cols.into_iter()
                    .map(|c| (c, 1 + rng.below(100) as u32))
                    .collect()
            })
            .collect();
        Csr::from_rows(rows, ncols, &rows_vec)
    })
}

proptest! {
    // Full-system runs are expensive; a handful of random cases per
    // property still covers empty rows, single rows, duplicate gather
    // targets and skewed shapes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn spmv_variants_match_reference(a in csr_strategy(24, 1024), seed in 0u64..1000) {
        let x = dense_vector(1024, seed);
        let inst = Spmv { a, x };
        for (v, t) in [
            (Variant::Doall, 1),
            (Variant::MapleDecoupled, 2),
            (Variant::MapleLima, 1),
        ] {
            let s = inst.run(v, t);
            prop_assert!(s.verified, "{} diverged from reference", v.label());
        }
    }

    #[test]
    fn sdhp_variants_match_reference(a in csr_strategy(16, 512), seed in 0u64..1000) {
        let inst = Sdhp::from_sparse(&a, seed);
        for (v, t) in [
            (Variant::Doall, 2),
            (Variant::SwDecoupled, 2),
            (Variant::Desc, 2),
        ] {
            let s = inst.run(v, t);
            prop_assert!(s.verified, "{} diverged from reference", v.label());
        }
    }
}
