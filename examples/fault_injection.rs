//! Chaos testing the MAPLE plane: SPMV under a deterministic fault
//! schedule — a lossy NoC (2% drop, 2% extra delay on MAPLE traffic)
//! plus one mid-run engine `RESET` — with the recovery machinery doing
//! its job: engine fetch watchdogs re-issue lost memory requests, the
//! core-side MMIO watchdog re-injects lost transactions (the engine's
//! dedup cache makes retries idempotent), and if an instance is beyond
//! saving, the driver retires it and the harness gracefully degrades to
//! a software variant — bit-exact either way.
//!
//! Every fault is seeded: re-running this binary replays the exact same
//! drops, delays and reset, cycle for cycle.
//!
//! Run with: `cargo run --release -p maple-bench --example fault_injection`

use maple_sim::fault::FaultPlaneConfig;
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::run_with_fallback;
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

fn main() {
    let a = uniform_sparse(96, 32 * 1024, 6, 2024);
    let x = dense_vector(32 * 1024, 7);
    let inst = Spmv { a, x };

    let seed = 0xC0FF_EE42u64;
    let plane = FaultPlaneConfig::new(seed)
        .with_noc_drop(0.02)
        .with_noc_delay(0.02, 200)
        .with_engine_reset_at(20_000, 0);
    println!("SPMV, MAPLE-decoupled, fault plane seed {seed:#x}:");
    println!("  NoC drop 2%, NoC delay 2% (+200 cycles), engine RESET at cycle 20000\n");

    // Clean baseline for comparison.
    let clean = inst.run(Variant::MapleDecoupled, 2);
    println!("fault-free run:  {:>9} cycles, verified = {}", clean.cycles, clean.verified);

    // Chaos run through the graceful-degradation ladder.
    let outcome = run_with_fallback(Variant::MapleDecoupled, 2, |v, t| {
        if v == Variant::MapleDecoupled {
            let p = plane.clone();
            inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
        } else {
            inst.run(v, t)
        }
    });

    let (_, maple) = &outcome.attempts[0];
    let f = &maple.faults;
    println!("chaos run:       {:>9} cycles, verified = {}, hung = {}\n", maple.cycles, maple.verified, maple.hung);
    println!("injected:  {:>5} NoC drops, {:>2} NoC delays, {} engine reset(s)",
        f.noc_dropped, f.noc_delayed, f.resets_injected);
    println!("recovered: {:>5} engine fetch retries ({} timeouts)",
        f.fetch_retries, f.fetch_timeouts);
    println!("           {:>5} MMIO re-injections  ({} timeouts)",
        f.mmio_retries, f.mmio_timeouts);
    println!("           {:>5} responses replayed from the dedup cache",
        f.replayed_responses);
    println!("poisoned:  {:>5} fetches abandoned, {} engine(s) retired\n",
        f.poisoned_fetches, f.engines_poisoned);

    if outcome.degraded() {
        println!(
            "degradation: MAPLE attempt did not verify; fell back {} -> {}",
            Variant::MapleDecoupled.label(),
            outcome.final_variant().label()
        );
    } else {
        println!("degradation: none needed — recovery kept the MAPLE run bit-exact");
    }
    let fin = outcome.final_stats();
    println!(
        "standing result: {} via {} in {} cycles ({:+.1}% vs fault-free)",
        if fin.verified { "bit-exact" } else { "UNVERIFIED" },
        outcome.final_variant().label(),
        fin.cycles,
        100.0 * (fin.cycles as f64 - clean.cycles as f64) / clean.cycles as f64
    );
    assert!(outcome.verified(), "chaos must never let wrong data stand");
}
