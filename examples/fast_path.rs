//! The compiled core fast path: batched micro-op runs between memory
//! events.
//!
//! A core spends most of its simulated life in straight-line compute —
//! address arithmetic, loop counters, reductions — where each simulated
//! instruction costs one host dispatch through the interpreter. With
//! `SocConfig::with_fast_path(true)` the core pre-decodes each maximal
//! straight-line block of compute instructions into a cached micro-op
//! run and executes the whole run in a single `tick`, charging the
//! summed latency in bulk. The architectural timeline is **bit-exact**
//! either way (DESIGN.md §12 has the argument); only host throughput
//! and the per-core `dispatch` counters change.
//!
//! This example runs the same compute-heavy loop twice — interpreter
//! dispatch, then fast-path dispatch — and reads those counters out of
//! the metrics snapshot to show where the host time went.
//!
//! Run with: `cargo run --release -p maple-bench --example fast_path`

use maple_isa::builder::ProgramBuilder;
use maple_isa::{AluOp, Cond};
use maple_soc::config::SocConfig;
use maple_soc::system::System;
use maple_trace::metrics::MetricValue;

const ITERS: u64 = 5_000;
const UNROLL: usize = 32;

/// Expected accumulator value, mirrored on the host.
fn reference(mut acc: u64) -> u64 {
    for i in 0..ITERS {
        for k in 0..UNROLL {
            match k % 3 {
                0 => acc = acc.wrapping_mul(3),
                1 => acc = acc.wrapping_add(i),
                _ => acc ^= k as u64,
            }
        }
    }
    acc
}

fn run(fast_path: bool) -> (u64, f64) {
    let cfg = SocConfig::fpga_prototype()
        .with_cores(1)
        .with_maples(0)
        .with_fast_path(fast_path);
    let mut sys = System::new(cfg);

    let mut b = ProgramBuilder::new();
    let acc = b.reg("acc");
    let i = b.reg("i");
    let n = b.reg("n");
    b.li(i, 0);
    b.li(n, ITERS);
    let top = b.here("loop");
    for k in 0..UNROLL {
        // The unrolled body is pure register compute: one straight-line
        // block, so the fast path turns each loop iteration into a
        // single batched dispatch plus one interpreted branch.
        match k % 3 {
            0 => b.mul(acc, acc, 3i64),
            1 => b.add(acc, acc, i),
            _ => b.alu(AluOp::Xor, acc, acc, k as i64),
        }
    }
    b.addi(i, i, 1);
    b.br(Cond::Ne, i, n, top);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(acc, 0xACC0)]);

    let t0 = std::time::Instant::now();
    let outcome = sys.run(10_000_000);
    let wall = t0.elapsed().as_secs_f64();
    assert!(outcome.is_finished(), "kernel must finish");
    assert_eq!(sys.core(0).reg(acc), reference(0xACC0), "wrong result");

    // The dispatch counters tell the story: how many micro-op runs the
    // fast path batched, and how many instructions still went through
    // the one-at-a-time interpreter (branches and the halt).
    let snapshot = sys.metrics_snapshot();
    let counter = |name: &str| match snapshot.get(name) {
        Some(MetricValue::Counter(v)) => *v,
        _ => 0,
    };
    println!(
        "  {} dispatch: {} cycles in {wall:.3}s host ({:.1} Mcy/s)",
        if fast_path { "fast-path" } else { "interpreter" },
        outcome.cycle().0,
        outcome.cycle().0 as f64 / wall / 1.0e6,
    );
    println!(
        "    core0 dispatch counters: fast_path_runs={} fast_path_insts={} interpreted_ticks={}",
        counter("core0/dispatch/fast_path_runs"),
        counter("core0/dispatch/fast_path_insts"),
        counter("core0/dispatch/interpreted_ticks"),
    );
    (outcome.cycle().0, wall)
}

fn main() {
    println!("compute-heavy loop, {ITERS} iterations x {UNROLL} ALU slots:");
    let (interp_cycles, interp_wall) = run(false);
    let (fast_cycles, fast_wall) = run(true);
    assert_eq!(
        interp_cycles, fast_cycles,
        "the fast path must not move the architectural timeline"
    );
    println!(
        "  bit-exact at {fast_cycles} cycles; host speedup {:.1}x",
        interp_wall / fast_wall
    );
}
