//! SPMV with decoupled access/execute: the paper's Figure 8 scenario on
//! one workload.
//!
//! Runs sparse matrix–vector multiplication three ways on the Table 2
//! SoC — two-thread do-all, software-only decoupling, and MAPLE
//! decoupling — and prints the speedups. Software decoupling loses on an
//! in-order core because the Access thread still blocks on every
//! indirect load; MAPLE restores the runahead.
//!
//! Run with: `cargo run --release -p maple-bench --example spmv_decoupling`

use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

fn main() {
    // A matrix whose gathered vector is far larger than the caches.
    let a = uniform_sparse(192, 64 * 1024, 8, 2024);
    let x = dense_vector(64 * 1024, 7);
    let inst = Spmv { a, x };
    println!(
        "SPMV: {} rows, {} nonzeros, x = {} KiB (cache-averse)",
        inst.a.nrows,
        inst.a.nnz(),
        inst.x.len() * 4 / 1024
    );

    let doall = inst.run(Variant::Doall, 2);
    assert!(doall.verified);
    println!("do-all (2 threads):    {:>10} cycles   1.00x", doall.cycles);

    let sw = inst.run(Variant::SwDecoupled, 2);
    assert!(sw.verified);
    println!(
        "software decoupling:   {:>10} cycles   {:.2}x",
        sw.cycles,
        sw.speedup_over(&doall)
    );

    let maple = inst.run(Variant::MapleDecoupled, 2);
    assert!(maple.verified);
    println!(
        "MAPLE decoupling:      {:>10} cycles   {:.2}x",
        maple.cycles,
        maple.speedup_over(&doall)
    );

    println!(
        "\nMAPLE over software decoupling: {:.2}x",
        maple.speedup_over(&sw)
    );
}
