//! Observability quickstart: run a MAPLE-decoupled SpMV with cycle-level
//! tracing enabled, export a Chrome trace, and print the stall
//! attribution and metrics tables.
//!
//! ```text
//! cargo run --release --example trace_spmv
//! ```
//!
//! Then open `target/trace_spmv.json` in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`. Rows under pid 0 are cores (stall spans), pid 1
//! engines (fetch issue/fill, queue occupancy counters), pid 2 the NoC,
//! pid 3 fault injections and recoveries.

use maple_bench::instances;
use maple_trace::{stall_table, TraceConfig};
use maple_workloads::Variant;

fn main() {
    let spmv = instances::spmv().remove(0).1;
    eprintln!("[trace_spmv] running spmv/riscv-s (maple-dec, 2 threads) with tracing...");
    let (stats, sys) = spmv.run_observed(Variant::MapleDecoupled, 2, |c| {
        c.with_tracing(TraceConfig::default())
    });
    println!(
        "finished in {} cycles ({} trace events captured, {} dropped)",
        stats.cycles,
        sys.trace_records().len(),
        sys.tracer().dropped()
    );

    let path = std::path::Path::new("target/trace_spmv.json");
    sys.write_trace(path).expect("write chrome trace");
    println!("wrote {} — open it in https://ui.perfetto.dev", path.display());

    println!("\nStall attribution:");
    print!("{}", stall_table(&sys.stall_rows()));

    println!("\nMetrics snapshot:");
    print!("{}", sys.metrics_snapshot().render_table());
}
