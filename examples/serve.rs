//! Multi-tenant serving quickstart: three tenants share two MAPLE
//! engines through driver-level virtualization.
//!
//! Each tenant owns a private SpMV dataset and a seeded open-loop
//! request schedule (row-slice and gather queries). The serving driver
//! multiplexes the engines across tenants round-robin: a context switch
//! saves the outgoing tenant's queue and fetch-unit state, remaps the
//! engine's MMIO page to a fresh virtual address (with a TLB shootdown
//! broadcast), and restores the incoming tenant — all without forking
//! the cycle-accurate model. Every response is byte-checked against the
//! host reference, so the printed summary is also a correctness proof.
//!
//! ```text
//! cargo run --release -p maple-bench --example serve
//! ```
//!
//! The exported Chrome trace (`target/serve_trace.json`) shows tenant
//! interleaving under the `serving` process in Perfetto: `ctx-switch`
//! spans carry the switch cost, instant `t<N>` markers show which
//! tenant each dispatch belongs to.

use maple_serve::{serve, ServeConfig, CONTEXT_SWITCH_CYCLES};
use maple_trace::TraceConfig;

fn main() {
    let mut cfg = ServeConfig::quick(0x5E12E);
    cfg.trace = Some(TraceConfig::default());
    eprintln!(
        "[serve] {} tenants x {} engines ({} lanes), ctx-switch cost {} cycles...",
        cfg.tenants.len(),
        cfg.maples,
        cfg.lanes(),
        CONTEXT_SWITCH_CYCLES
    );
    let (sim, summary) = serve(cfg);
    assert!(summary.verified, "every response must match the host");

    println!("tenant        completed  failed    p50    p99    max  req/Mcy");
    for t in &summary.tenants {
        println!(
            "{:<12} {:>10} {:>7} {:>6} {:>6} {:>6} {:>8.2}",
            t.name, t.completed, t.failed, t.p50, t.p99, t.max, t.throughput
        );
    }
    println!(
        "overall: {}/{} requests, p50={} p99={} max={} fairness={:.3}",
        summary.completed,
        summary.total_requests,
        summary.p50,
        summary.p99,
        summary.max,
        summary.fairness()
    );
    println!(
        "virtualization: {} context switches ({} cycles), {} MMIO remaps, \
         {} batches, {} ladder descents",
        summary.context_switches,
        summary.switch_cycles,
        summary.remaps,
        summary.batches,
        summary.ladder_descents()
    );

    let path = std::path::Path::new("target/serve_trace.json");
    sim.system().write_trace(path).expect("write chrome trace");
    println!("wrote {} — open it in https://ui.perfetto.dev", path.display());
}
