//! Quickstart: drive a MAPLE instance directly through its MMIO API.
//!
//! Builds the paper's Table 2 SoC (2 in-order cores, 1 MAPLE, shared L2),
//! maps the engine into user space, and runs one core that produces data
//! and pointers into a hardware queue and consumes the results — the
//! smallest possible end-to-end MAPLE program.
//!
//! Run with: `cargo run --release -p maple-bench --example quickstart`

use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

fn main() {
    let mut sys = System::new(SocConfig::fpga_prototype());

    // The OS maps MAPLE instance 0 into the process (one MMIO page) and
    // programs the engine's MMU with the process page table.
    let maple_page = sys.map_maple(0);
    println!("MAPLE instance 0 mapped at {maple_page}");

    // An array the engine will gather from.
    let data: Vec<u32> = (0..16).map(|i| 100 + i).collect();
    let array = sys.alloc((data.len() * 4) as u64);
    sys.write_slice_u32(array, &data);

    // One core: PRODUCE an immediate, PRODUCE_PTR a pointer (MAPLE
    // fetches &array[5] from DRAM asynchronously), then CONSUME both.
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let arr = b.reg("array");
    let v1 = b.reg("v1");
    let v2 = b.reg("v2");
    let ptr = b.reg("ptr");
    let api = MapleApi::new(base);

    b.li(v1, 7777);
    api.produce(&mut b, 0, v1); // plain data produce
    b.addi(ptr, arr, 5 * 4);
    api.produce_ptr(&mut b, 0, ptr); // pointer produce: engine fetches
    api.consume(&mut b, 0, v1, 4);
    api.consume(&mut b, 0, v2, 4);
    b.halt();

    let core = sys.load_program(
        b.build().expect("program builds"),
        &[(base, maple_page.0), (arr, array.0)],
    );

    let outcome = sys.run(1_000_000);
    assert!(outcome.is_finished(), "program did not complete");

    println!("finished at {}", outcome.cycle());
    println!("consumed #1 (data produce):    {}", sys.core(core).reg(v1));
    println!("consumed #2 (pointer produce): {}", sys.core(core).reg(v2));
    assert_eq!(sys.core(core).reg(v1), 7777);
    assert_eq!(sys.core(core).reg(v2), 105);

    let e = sys.engine(0).stats();
    println!(
        "engine: {} memory fetches, {} LLC prefetches, {} faults",
        e.mem_fetches.get(),
        e.llc_prefetches.get(),
        e.faults.get()
    );
    println!(
        "mean load-to-use latency seen by the core: {:.1} cycles",
        sys.mean_load_latency()
    );
}
