//! BFS over a scale-free graph with MAPLE-decoupled data supply.
//!
//! Generates a Wikipedia-like R-MAT graph, runs level-synchronous BFS
//! with plain do-all threads and with a MAPLE Access/Execute pair, and
//! reports the distance histogram and speedup — the workload where the
//! paper reports up to 3× over do-all.
//!
//! Run with: `cargo run --release -p maple-bench --example bfs_graph`

use maple_workloads::bfs::Bfs;
use maple_workloads::data::Dataset;
use maple_workloads::Variant;

fn main() {
    let inst = Bfs::new(Dataset::WikiLike, 99);
    println!(
        "graph: {} vertices, {} edges (R-MAT, wiki-like skew), root {}",
        inst.graph.nrows,
        inst.graph.nnz(),
        inst.root
    );

    // Distance histogram from the host reference.
    let dist = inst.reference();
    let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
    let max_level = dist.iter().filter(|&&d| d != u32::MAX).max().copied().unwrap_or(0);
    println!("reachable: {reached} vertices, eccentricity {max_level}");
    for level in 0..=max_level {
        let at = dist.iter().filter(|&&d| d == level).count();
        println!("  level {level:>2}: {at:>6} vertices");
    }

    let doall = inst.run(Variant::Doall, 2);
    assert!(doall.verified, "do-all BFS mismatch");
    println!("\ndo-all (2 threads):  {:>10} cycles   1.00x", doall.cycles);

    let maple = inst.run(Variant::MapleDecoupled, 2);
    assert!(maple.verified, "MAPLE BFS mismatch");
    println!(
        "MAPLE decoupling:    {:>10} cycles   {:.2}x",
        maple.cycles,
        maple.speedup_over(&doall)
    );
    println!(
        "  (mean load-to-use latency: doall {:.0} cy, MAPLE {:.0} cy)",
        doall.mean_load_latency, maple.mean_load_latency
    );
}
