//! Prefetching loops of indirect memory accesses: LIMA vs software
//! prefetching (the paper's Figures 9–11 scenario on one workload).
//!
//! Runs the Sparse–Dense Hadamard Product single-threaded three ways and
//! prints runtime, load-instruction counts, and mean load latency. A
//! single LIMA store replaces a whole inner loop of prefetch address
//! arithmetic, and consuming from MAPLE queues keeps the irregular data
//! out of the L1.
//!
//! Run with: `cargo run --release -p maple-bench --example lima_prefetch`

use maple_workloads::data::uniform_sparse;
use maple_workloads::sdhp::Sdhp;
use maple_workloads::Variant;

fn main() {
    let sparse = uniform_sparse(96, 2048, 16, 5);
    let inst = Sdhp::from_sparse(&sparse, 17);
    println!(
        "SDHP: {} stored elements gathered from a {} KiB dense matrix\n",
        inst.n(),
        inst.dense.len() * 4 / 1024
    );

    let base = inst.run(Variant::Doall, 1);
    assert!(base.verified);
    let swp = inst.run(Variant::SwPrefetch { dist: 16 }, 1);
    assert!(swp.verified);
    let lima = inst.run(Variant::MapleLima, 1);
    assert!(lima.verified);

    println!("variant          cycles      speedup   loads(norm)  mean-load-lat");
    for (name, s) in [("no prefetch", &base), ("sw prefetch", &swp), ("MAPLE LIMA", &lima)] {
        println!(
            "{name:<14} {:>10}     {:>5.2}x     {:>7.2}      {:>7.1} cy",
            s.cycles,
            base.cycles as f64 / s.cycles as f64,
            s.loads as f64 / base.loads as f64,
            s.mean_load_latency
        );
    }

    println!(
        "\nLIMA speedup over software prefetching: {:.2}x",
        swp.cycles as f64 / lima.cycles as f64
    );
}
