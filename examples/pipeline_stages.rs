//! Software pipelining across cores through MAPLE queues.
//!
//! The paper's conclusion envisions reusing MAPLE "to do pipelining,
//! where each program stage is executed in a different off-the-shelf core
//! or accelerator". This example builds a three-stage pipeline over one
//! engine:
//!
//!   stage 0 (gather):    pointer-produces A[B[i]] into queue 0
//!   stage 1 (transform): consumes queue 0, squares and biases the value,
//!                        produces into queue 1
//!   stage 2 (writeback): consumes queue 1 and stores the result
//!
//! All three cores run concurrently; the queues provide both the
//! communication and the latency tolerance.
//!
//! Run with: `cargo run --release -p maple-bench --example pipeline_stages`

use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

const N: u64 = 600;

fn main() {
    let mut cfg = SocConfig::fpga_prototype().with_cores(3);
    cfg.cores = 3;
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);

    // Data: A is a large gather target, B random indices into it.
    let mut rng = maple_sim::rng::SimRng::seed(7);
    let a: Vec<u32> = (0..32 * 1024).map(|_| rng.below(1 << 12) as u32).collect();
    let bidx: Vec<u32> = (0..N).map(|_| rng.below(a.len() as u64) as u32).collect();
    let a_va = sys.alloc((a.len() * 4) as u64);
    sys.write_slice_u32(a_va, &a);
    let b_va = sys.alloc((bidx.len() * 4) as u64);
    sys.write_slice_u32(b_va, &bidx);
    let out_va = sys.alloc(N * 4);

    let expected: Vec<u32> = bidx
        .iter()
        .map(|&i| {
            let v = a[i as usize];
            v.wrapping_mul(v).wrapping_add(13)
        })
        .collect();

    // Stage 0: gather.
    let mut b = ProgramBuilder::new();
    let mbase = b.reg("maple");
    let api = MapleApi::new(mbase);
    let bb = b.reg("b");
    let aa = b.reg("a");
    let i = b.reg("i");
    let idx = b.reg("idx");
    let ptr = b.reg("ptr");
    let tmp = b.reg("tmp");
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, N as i64, done);
    b.load_indexed(idx, bb, i, 2, 4, tmp);
    b.index_addr(ptr, aa, idx, 2);
    api.produce_ptr(&mut b, 0, ptr);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(
        b.build().unwrap(),
        &[(mbase, maple_va.0), (bb, b_va.0), (aa, a_va.0)],
    );

    // Stage 1: transform (no memory access at all — pure queue-to-queue).
    let mut b = ProgramBuilder::new();
    let mbase = b.reg("maple");
    let api = MapleApi::new(mbase);
    let i = b.reg("i");
    let v = b.reg("v");
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, N as i64, done);
    api.consume(&mut b, 0, v, 4);
    b.mul(v, v, v);
    b.addi(v, v, 13);
    api.produce(&mut b, 1, v);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(mbase, maple_va.0)]);

    // Stage 2: writeback.
    let mut b = ProgramBuilder::new();
    let mbase = b.reg("maple");
    let api = MapleApi::new(mbase);
    let out = b.reg("out");
    let i = b.reg("i");
    let v = b.reg("v");
    let tmp = b.reg("tmp");
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, N as i64, done);
    api.consume(&mut b, 1, v, 4);
    b.store_indexed(v, out, i, 2, 4, tmp);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(mbase, maple_va.0), (out, out_va.0)]);

    let outcome = sys.run(50_000_000);
    assert!(outcome.is_finished(), "pipeline wedged");
    let got = sys.read_slice_u32(out_va, N as usize);
    assert_eq!(got, expected, "pipeline result diverged");

    println!("three-stage pipeline over one MAPLE: {N} elements in {}", outcome.cycle());
    println!(
        "per-element steady-state cost: {:.1} cycles",
        outcome.cycle().0 as f64 / N as f64
    );
    println!("results verified against the host reference ✓");
}
