//! The RMW-produce extension: building a histogram with atomics offloaded
//! to MAPLE.
//!
//! The paper notes MAPLE's programming model is "easily extensible to
//! incorporate … Read-Modify-Write atomic operations" (Section 3). This
//! example exercises that extension: a core increments random histogram
//! buckets either with blocking core atomics (each a ~45-cycle round trip
//! to the L2) or by pointer-producing `PRODUCE_AMO_ADD` operations into a
//! MAPLE queue — fire-and-forget stores whose old values stream back for
//! any code that wants them.
//!
//! Run with: `cargo run --release -p maple-bench --example atomic_histogram`

use maple_isa::builder::ProgramBuilder;
use maple_isa::AtomicOp;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

const BUCKETS: usize = 4096;
const UPDATES: u64 = 2000;

fn keys() -> Vec<u32> {
    let mut rng = maple_sim::rng::SimRng::seed(1234);
    (0..UPDATES).map(|_| rng.below(BUCKETS as u64) as u32).collect()
}

fn reference() -> Vec<u32> {
    let mut h = vec![0u32; BUCKETS];
    for k in keys() {
        h[k as usize] += 1;
    }
    h
}

/// Baseline: the core performs every fetch-add itself (blocking).
fn run_core_atomics() -> (u64, Vec<u32>) {
    let mut sys = System::new(SocConfig::fpga_prototype());
    let ks = keys();
    let keys_va = sys.alloc((ks.len() * 4) as u64);
    sys.write_slice_u32(keys_va, &ks);
    let hist_va = sys.alloc((BUCKETS * 4) as u64);

    let mut b = ProgramBuilder::new();
    let keys_r = b.reg("keys");
    let hist_r = b.reg("hist");
    let i = b.reg("i");
    let k = b.reg("k");
    let one = b.reg("one");
    let old = b.reg("old");
    let tmp = b.reg("tmp");
    b.li(i, 0);
    b.li(one, 1);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, UPDATES as i64, done);
    b.load_indexed(k, keys_r, i, 2, 4, tmp);
    b.index_addr(tmp, hist_r, k, 2);
    b.amo(AtomicOp::Add, old, tmp, 0, 4, one, b.zero());
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(
        b.build().unwrap(),
        &[(keys_r, keys_va.0), (hist_r, hist_va.0)],
    );
    let out = sys.run(100_000_000);
    assert!(out.is_finished());
    let hist = sys.read_slice_u32(hist_va, BUCKETS);
    (out.cycle().0, hist)
}

/// Extension: fetch-adds are pointer-produced to MAPLE; the core drains
/// the old values with wide consumes (two per load).
fn run_maple_amo() -> (u64, Vec<u32>) {
    let mut sys = System::new(SocConfig::fpga_prototype());
    let maple_va = sys.map_maple(0);
    let ks = keys();
    let keys_va = sys.alloc((ks.len() * 4) as u64);
    sys.write_slice_u32(keys_va, &ks);
    let hist_va = sys.alloc((BUCKETS * 4) as u64);

    let mut b = ProgramBuilder::new();
    let api_base = b.reg("maple");
    let api = MapleApi::new(api_base);
    let keys_r = b.reg("keys");
    let hist_r = b.reg("hist");
    let i = b.reg("i");
    let drained = b.reg("drained");
    let k = b.reg("k");
    let one = b.reg("one");
    let sink = b.reg("sink");
    let tmp = b.reg("tmp");
    b.li(one, 1);
    api.set_amo_operand(&mut b, 0, one);
    b.li(i, 0);
    b.li(drained, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, UPDATES as i64, done);
    b.load_indexed(k, keys_r, i, 2, 4, tmp);
    b.index_addr(tmp, hist_r, k, 2);
    api.produce_amo_add(&mut b, 0, tmp);
    // Drain two old values for every two produced (wide consume), with a
    // 16-update pipeline of runahead.
    let no_drain = b.label("no_drain");
    b.addi(tmp, drained, 16);
    b.bge(tmp, i, no_drain);
    api.consume(&mut b, 0, sink, 8);
    b.addi(drained, drained, 2);
    b.bind(no_drain);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    // Flush the remaining old values.
    let flush = b.here("flush");
    let flushed = b.label("flushed");
    b.bge(drained, UPDATES as i64, flushed);
    api.consume(&mut b, 0, sink, 8);
    b.addi(drained, drained, 2);
    b.jump(flush);
    b.bind(flushed);
    b.halt();
    sys.load_program(
        b.build().unwrap(),
        &[
            (api_base, maple_va.0),
            (keys_r, keys_va.0),
            (hist_r, hist_va.0),
        ],
    );
    let out = sys.run(100_000_000);
    assert!(out.is_finished());
    let hist = sys.read_slice_u32(hist_va, BUCKETS);
    (out.cycle().0, hist)
}

fn main() {
    let expect = reference();
    println!("histogram: {UPDATES} atomic increments over {BUCKETS} buckets\n");

    let (core_cycles, core_hist) = run_core_atomics();
    assert_eq!(core_hist, expect, "core atomics diverged");
    println!("core atomics (blocking):   {core_cycles:>9} cycles   1.00x");

    let (maple_cycles, maple_hist) = run_maple_amo();
    assert_eq!(maple_hist, expect, "MAPLE AMO produce diverged");
    println!(
        "MAPLE PRODUCE_AMO_ADD:     {maple_cycles:>9} cycles   {:.2}x",
        core_cycles as f64 / maple_cycles as f64
    );
}
