#!/usr/bin/env bash
# Hermetic CI gate for the MAPLE workspace.
#
# Everything here runs with --offline: the workspace has zero crates.io
# dependencies by design (all deps are in-tree path crates), so a fresh
# checkout builds and tests with no network and no pre-populated cargo
# registry. If a dependency on an external crate ever sneaks in, the
# resolution step below is the first thing that fails.
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> dependency audit: workspace must resolve offline with zero crates.io deps"
# cargo tree prints only workspace-local path crates when the workspace is
# hermetic; any registry dependency shows up with a version source.
if cargo tree --offline --workspace --edges normal,build,dev 2>/dev/null \
    | grep -E '\(registry|crates\.io' ; then
    echo "ERROR: external (crates.io) dependency found in the tree above" >&2
    exit 1
fi

echo "==> tier-1 gate: release build"
cargo build --offline --workspace --release

echo "==> tier-1 gate: tests"
cargo test --offline --workspace -q

echo "==> chaos: fixed-seed fault-injection grid + generated schedules"
# The grid (named schedules x kernels) is fully fixed-seed; the property
# test generates MAPLE_CHAOS_CASES random schedules on top (default 6 —
# raise it for long soak runs, e.g. MAPLE_CHAOS_CASES=200 scripts/ci.sh).
cargo test --offline --release -p maple-workloads --test chaos_oracle -q
MAPLE_CHAOS_CASES="${MAPLE_CHAOS_CASES:-6}" \
    cargo test --offline --release -p maple-workloads --test chaos_prop -q

echo "==> fleet: oracle grid must be bit-identical across worker counts"
# The determinism contract of the maple-fleet executor: the full oracle
# grid (differential variants x kernels + fixed-seed chaos schedules)
# prints the same bytes no matter how many workers run it.
MAPLE_JOBS=1 cargo run --offline --release -q -p maple-bench --bin oracle_grid \
    > target/oracle_grid_jobs1.txt
MAPLE_JOBS=4 cargo run --offline --release -q -p maple-bench --bin oracle_grid \
    > target/oracle_grid_jobs4.txt
if ! diff target/oracle_grid_jobs1.txt target/oracle_grid_jobs4.txt; then
    echo "ERROR: oracle grid output differs between MAPLE_JOBS=1 and =4" >&2
    exit 1
fi
echo "    fleet ok: $(wc -l < target/oracle_grid_jobs1.txt) grid rows identical at 1 and 4 workers"

echo "==> fleet: distributed dispatch must be bit-identical to the local pool"
# The coordinator/worker protocol must not change a single output byte:
# the same grid through (a) one loopback worker, (b) four loopback
# workers, and (c) four loopback workers under a seeded fault schedule
# that crashes one worker mid-job and drops/delays traffic everywhere —
# all diffed against the local-pool reference from the previous stage.
# The chaos leg additionally proves the kill/reassign path executed
# (--expect-reassignments fails if the reassignment counter stayed 0).
cargo run --offline --release -q -p maple-bench --bin oracle_grid \
    -- --coordinator loopback:1 > target/oracle_grid_loopback1.txt
cargo run --offline --release -q -p maple-bench --bin oracle_grid \
    -- --coordinator loopback:4 > target/oracle_grid_loopback4.txt
cargo run --offline --release -q -p maple-bench --bin oracle_grid \
    -- --coordinator loopback:4 --chaos 7 --expect-reassignments \
    > target/oracle_grid_chaos.txt
for mode in loopback1 loopback4 chaos; do
    if ! diff "target/oracle_grid_jobs1.txt" "target/oracle_grid_${mode}.txt"; then
        echo "ERROR: distributed oracle grid ($mode) diverged from the local pool" >&2
        exit 1
    fi
done
echo "    distributed ok: loopback x1, x4 and chaos all byte-identical to local"

echo "==> fleet: real-TCP smoke with a worker killed mid-batch"
# Two fleet_worker processes on 127.0.0.1 (kernel-assigned ports parsed
# from their announcement lines); one is rigged to die while computing
# its third job. The coordinator must reassign the orphaned lease and
# still produce the exact local-pool bytes.
cargo build --offline --release -q -p maple-bench --bin fleet_worker
target/release/fleet_worker --listen 127.0.0.1:0 > target/fleet_worker_1.log 2>&1 &
WORKER1=$!
target/release/fleet_worker --listen 127.0.0.1:0 --crash-after 2 \
    > target/fleet_worker_2.log 2>&1 &
WORKER2=$!
trap 'kill "$WORKER1" "$WORKER2" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
    PORT1=$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' target/fleet_worker_1.log)
    PORT2=$(sed -n 's/^listening on .*:\([0-9]*\)$/\1/p' target/fleet_worker_2.log)
    [ -n "$PORT1" ] && [ -n "$PORT2" ] && break
    sleep 0.1
done
if [ -z "$PORT1" ] || [ -z "$PORT2" ]; then
    echo "ERROR: fleet workers never announced their ports" >&2
    exit 1
fi
MAPLE_WORKERS="127.0.0.1:$PORT1,127.0.0.1:$PORT2" \
    cargo run --offline --release -q -p maple-bench --bin oracle_grid \
    -- --coordinator tcp --expect-reassignments > target/oracle_grid_tcp.txt
kill "$WORKER1" "$WORKER2" 2>/dev/null || true
trap - EXIT
if ! diff target/oracle_grid_jobs1.txt target/oracle_grid_tcp.txt; then
    echo "ERROR: TCP oracle grid diverged from the local pool" >&2
    exit 1
fi
echo "    tcp ok: byte-identical with one of two workers killed mid-batch"

echo "==> stepper: dense vs event-horizon skipping must be bit-exact"
# One stall-heavy SPMV config runs under both steppers; the binary exits
# nonzero on any divergence in the final cycle count, the run stats, or
# the MetricsSnapshot JSON. Its closing line is the perf smoke: host
# throughput (Mcycles/s) for both loops and the skipping speedup.
cargo run --offline --release -q -p maple-bench --bin stepper_check \
    | tee target/stepper_check.txt | tail -n 1
grep -q "stepper ok: bit-exact" target/stepper_check.txt

echo "==> stepper: partitioned run must be bit-exact at any worker count"
# The partitioned parallel stepper shards one System into 4 spatial
# partitions; the gate compares it against the single-threaded stepper
# and prints only host-independent lines (simulated facts + a metrics
# digest), so the output must be byte-identical at 1 and 4 workers.
MAPLE_JOBS=1 cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --partitions 4 > target/partitioned_gate_jobs1.txt
MAPLE_JOBS=4 cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --partitions 4 > target/partitioned_gate_jobs4.txt
if ! diff target/partitioned_gate_jobs1.txt target/partitioned_gate_jobs4.txt; then
    echo "ERROR: partitioned gate output differs between MAPLE_JOBS=1 and =4" >&2
    exit 1
fi
grep -q "partitioned ok: bit-exact" target/partitioned_gate_jobs1.txt
echo "    $(tail -n 1 target/partitioned_gate_jobs1.txt), identical at 1 and 4 workers"

echo "==> stepper: compiled fast path must be bit-exact with the interpreter"
# The fast-path gate crosses dispatch modes (batched micro-op runs vs
# per-instruction interpretation) against steppers, a 4-way partitioned
# run and the recoverable chaos schedules, then proves the path engages
# on a compute-heavy kernel. Host-independent lines only, so the output
# must be byte-identical at 1 and 4 workers.
MAPLE_JOBS=1 cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --fast-path > target/fast_path_gate_jobs1.txt
MAPLE_JOBS=4 cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --fast-path > target/fast_path_gate_jobs4.txt
if ! diff target/fast_path_gate_jobs1.txt target/fast_path_gate_jobs4.txt; then
    echo "ERROR: fast-path gate output differs between MAPLE_JOBS=1 and =4" >&2
    exit 1
fi
grep -q "fast-path ok: bit-exact" target/fast_path_gate_jobs1.txt
echo "    $(tail -n 1 target/fast_path_gate_jobs1.txt), identical at 1 and 4 workers"

echo "==> serving: multi-tenant oracle grid must be bit-exact at any worker count"
# The serving gate runs the multi-tenant differential oracle over every
# stepper × fast-path × chaos cell plus the engine-kill ladder cell,
# printing only host-independent lines (percentiles, fairness, switch
# counters, a metrics digest). Byte-diffing across MAPLE_JOBS values
# proves tenant isolation holds regardless of fleet parallelism.
MAPLE_JOBS=1 cargo run --offline --release -q -p maple-bench --bin serve_check \
    > target/serve_gate_jobs1.txt
MAPLE_JOBS=4 cargo run --offline --release -q -p maple-bench --bin serve_check \
    > target/serve_gate_jobs4.txt
if ! diff target/serve_gate_jobs1.txt target/serve_gate_jobs4.txt; then
    echo "ERROR: serving gate output differs between MAPLE_JOBS=1 and =4" >&2
    exit 1
fi
grep -q "serve ok: bit-exact" target/serve_gate_jobs1.txt
echo "    $(tail -n 1 target/serve_gate_jobs1.txt), identical at 1 and 4 workers"

echo "==> scale smoke: 256-tile hierarchical fabric, bit-exact at any worker count"
# A MemPool-scale configuration (16 crossbar clusters of 16 tiles, 32
# cores, 16 engines, 16 interleaved L2 banks) through the skipping and
# 4-partition steppers. Host-independent lines only, byte-diffed across
# MAPLE_JOBS; the wall-clock budget guards against the hierarchy making
# large fabrics accidentally quadratic to simulate.
SCALE_T0=$SECONDS
MAPLE_JOBS=1 cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --scale 256 > target/scale_gate_jobs1.txt
MAPLE_JOBS=4 cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --scale 256 > target/scale_gate_jobs4.txt
SCALE_WALL=$((SECONDS - SCALE_T0))
if ! diff target/scale_gate_jobs1.txt target/scale_gate_jobs4.txt; then
    echo "ERROR: scale gate output differs between MAPLE_JOBS=1 and =4" >&2
    exit 1
fi
grep -q "scale ok: bit-exact at 256 tiles" target/scale_gate_jobs1.txt
SCALE_BUDGET=120
if [ "$SCALE_WALL" -gt "$SCALE_BUDGET" ]; then
    echo "ERROR: 256-tile scale smoke took ${SCALE_WALL}s (budget ${SCALE_BUDGET}s)" >&2
    exit 1
fi
echo "    $(tail -n 1 target/scale_gate_jobs1.txt), identical at 1 and 4 workers (${SCALE_WALL}s)"

echo "==> stepper: partitioned throughput floor (skipped honestly on 1-core hosts)"
# The speedup expectation is host-dependent: a 1-core container pins the
# parallel stepper at ~1.0x no matter the partition count, so the gate
# skips itself there (with an explicit message) instead of faking a
# pass or failing spuriously. Bit-exactness above is never skipped.
cargo run --offline --release -q -p maple-bench --bin stepper_check \
    -- --speedup-floor 1.2 | tee target/stepper_speedup.txt
grep -Eq "stepper speedup gate" target/stepper_speedup.txt

echo "==> lint: clippy, warnings are errors"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> docs gate: rustdoc builds warning-clean, intra-doc links resolve"
RUSTDOCFLAGS="-D warnings -D rustdoc::broken-intra-doc-links" \
    cargo doc --offline --no-deps --workspace -q

echo "==> trace smoke: traced SPMV run exports a valid, non-empty trace"
cargo run --offline --release -q --example trace_spmv > /dev/null
python3 - <<'PY'
import json
with open("target/trace_spmv.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert len(events) > 100, f"trace too small: {len(events)} events"
phases = {e["ph"] for e in events}
for ph in ("B", "E", "X", "C", "M"):
    assert ph in phases, f"missing phase {ph}"
print(f"    trace ok: {len(events)} events, phases {sorted(phases)}")
PY

echo "==> CI gate passed"
