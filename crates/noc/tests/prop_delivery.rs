//! Property tests: every injected packet is delivered exactly once, to the
//! right node, under arbitrary traffic patterns — the model-level analogue
//! of the deadlock-freedom/liveness properties the paper proves with
//! JasperGold.

#![allow(clippy::explicit_counter_loop)]

use maple_noc::{Coord, Mesh, MeshConfig};
use maple_sim::Cycle;
use maple_testkit::{check, gen, tk_assert, tk_assert_eq, Config, Gen, SimRng};

#[derive(Debug, Clone)]
struct Traffic {
    width: u16,
    height: u16,
    /// (sx, sy, dx, dy, flits), coordinates already in range.
    packets: Vec<(u16, u16, u16, u16, u8)>,
}

/// Generates a mesh up to 4×4 with up to 80 random packets. Shrinks by
/// removing packet chunks (reusing the vector shrinker's structural
/// candidates) and by reducing flit counts toward single-flit packets;
/// mesh dimensions stay fixed so every packet remains in range.
struct TrafficGen;

impl Gen for TrafficGen {
    type Value = Traffic;

    fn generate(&self, rng: &mut SimRng) -> Traffic {
        let width = 1 + rng.below(4) as u16;
        let height = 1 + rng.below(4) as u16;
        let n = rng.below(80) as usize;
        let packets = (0..n)
            .map(|_| {
                (
                    rng.below(u64::from(width)) as u16,
                    rng.below(u64::from(height)) as u16,
                    rng.below(u64::from(width)) as u16,
                    rng.below(u64::from(height)) as u16,
                    1 + rng.below(8) as u8,
                )
            })
            .collect();
        Traffic {
            width,
            height,
            packets,
        }
    }

    fn shrink(&self, t: &Traffic) -> Vec<Traffic> {
        let mut out = Vec::new();
        // Structural candidates (chunk removal) come from a VecGen whose
        // element never shrinks; its generate is never called here.
        let structural = gen::vec_of(gen::just((0u16, 0u16, 0u16, 0u16, 1u8)), 0, 80);
        for packets in structural.shrink(&t.packets) {
            out.push(Traffic {
                packets,
                ..t.clone()
            });
        }
        for (i, p) in t.packets.iter().enumerate() {
            if p.4 > 1 {
                let mut packets = t.packets.clone();
                packets[i].4 = 1;
                out.push(Traffic {
                    packets,
                    ..t.clone()
                });
            }
        }
        out
    }
}

#[test]
fn every_packet_delivered_exactly_once() {
    let cfg = Config::new("every_packet_delivered_exactly_once").with_cases(64);
    check(&cfg, &TrafficGen, |t| {
        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::new(t.width, t.height));
        let mut now = Cycle(0);
        let mut expected_at: Vec<Coord> = Vec::new();
        for (id, &(sx, sy, dx, dy, flits)) in t.packets.iter().enumerate() {
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            // Retry under backpressure; liveness means this always succeeds.
            let mut tries = 0;
            loop {
                match mesh.inject(now, s, d, flits, id) {
                    Ok(()) => break,
                    Err(_) => {
                        mesh.tick(now);
                        now += 1;
                        tries += 1;
                        tk_assert!(tries < 10_000, "injection starved: deadlock?");
                    }
                }
            }
            expected_at.push(d);
        }

        let mut seen = vec![0u32; t.packets.len()];
        let budget = 20_000u64;
        for _ in 0..budget {
            mesh.tick(now);
            for y in 0..t.height {
                for x in 0..t.width {
                    let here = Coord::new(x, y);
                    for id in mesh.take_delivered(here) {
                        tk_assert_eq!(expected_at[id], here, "wrong destination");
                        seen[id] += 1;
                    }
                }
            }
            now += 1;
            if seen.iter().all(|&c| c == 1) {
                break;
            }
        }
        tk_assert!(
            seen.iter().all(|&c| c == 1),
            "not all packets delivered exactly once: {seen:?}"
        );
        tk_assert!(mesh.is_quiescent());
        Ok(())
    });
}

#[test]
fn latency_lower_bound_is_hop_count() {
    let inputs = (
        gen::u8_in(2..6),
        gen::u8_in(2..6),
        gen::u8_in(0..6),
        gen::u8_in(0..6),
        gen::u8_in(0..6),
        gen::u8_in(0..6),
    );
    check(
        &Config::new("latency_lower_bound_is_hop_count"),
        &inputs,
        |&(w, h, sx, sy, dx, dy)| {
            let s = Coord::new(u16::from(sx % w), u16::from(sy % h));
            let d = Coord::new(u16::from(dx % w), u16::from(dy % h));
            let mut mesh: Mesh<u8> = Mesh::new(MeshConfig::new(w.into(), h.into()));
            mesh.inject(Cycle(0), s, d, 1, 0).unwrap();
            let mut now = Cycle(0);
            let mut arrived = None;
            for _ in 0..1000 {
                mesh.tick(now);
                if !mesh.take_delivered(d).is_empty() {
                    arrived = Some(now);
                    break;
                }
                now += 1;
            }
            let Some(arrived) = arrived else {
                return Err("must deliver".to_string());
            };
            // An uncontended packet takes exactly hops cycles (one per hop),
            // ejecting on the cycle it becomes ready at the destination.
            tk_assert_eq!(arrived.0, s.hops_to(d));
            Ok(())
        },
    );
}
