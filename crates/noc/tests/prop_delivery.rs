//! Property tests: every injected packet is delivered exactly once, to the
//! right node, under arbitrary traffic patterns — the model-level analogue
//! of the deadlock-freedom/liveness properties the paper proves with
//! JasperGold.

#![allow(clippy::explicit_counter_loop)]

use maple_noc::{Coord, Mesh, MeshConfig};
use maple_sim::Cycle;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Traffic {
    width: u8,
    height: u8,
    // (src, dst, flits) with coordinates reduced modulo mesh dims.
    packets: Vec<(u8, u8, u8, u8, u8)>,
}

fn traffic_strategy() -> impl Strategy<Value = Traffic> {
    (1u8..5, 1u8..5).prop_flat_map(|(w, h)| {
        let pkt = (0..w, 0..h, 0..w, 0..h, 1u8..9);
        proptest::collection::vec(pkt, 0..80).prop_map(move |packets| Traffic {
            width: w,
            height: h,
            packets,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_packet_delivered_exactly_once(t in traffic_strategy()) {
        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig::new(t.width, t.height));
        let mut now = Cycle(0);
        let mut expected_at: Vec<Coord> = Vec::new();
        for (id, &(sx, sy, dx, dy, flits)) in t.packets.iter().enumerate() {
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            // Retry under backpressure; liveness means this always succeeds.
            let mut tries = 0;
            loop {
                match mesh.inject(now, s, d, flits, id) {
                    Ok(()) => break,
                    Err(_) => {
                        mesh.tick(now);
                        now += 1;
                        tries += 1;
                        prop_assert!(tries < 10_000, "injection starved: deadlock?");
                    }
                }
            }
            expected_at.push(d);
        }

        let mut seen = vec![0u32; t.packets.len()];
        let budget = 20_000u64;
        for _ in 0..budget {
            mesh.tick(now);
            for y in 0..t.height {
                for x in 0..t.width {
                    let here = Coord::new(x, y);
                    for id in mesh.take_delivered(here) {
                        prop_assert_eq!(expected_at[id], here, "wrong destination");
                        seen[id] += 1;
                    }
                }
            }
            now += 1;
            if seen.iter().all(|&c| c == 1) {
                break;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1),
            "not all packets delivered exactly once: {:?}", seen);
        prop_assert!(mesh.is_quiescent());
    }

    #[test]
    fn latency_lower_bound_is_hop_count(
        (w, h) in (2u8..6, 2u8..6),
        sx in 0u8..6, sy in 0u8..6, dx in 0u8..6, dy in 0u8..6,
    ) {
        let s = Coord::new(sx % w, sy % h);
        let d = Coord::new(dx % w, dy % h);
        let mut mesh: Mesh<u8> = Mesh::new(MeshConfig::new(w, h));
        mesh.inject(Cycle(0), s, d, 1, 0).unwrap();
        let mut now = Cycle(0);
        let mut arrived = None;
        for _ in 0..1000 {
            mesh.tick(now);
            if !mesh.take_delivered(d).is_empty() {
                arrived = Some(now);
                break;
            }
            now += 1;
        }
        let arrived = arrived.expect("must deliver");
        // An uncontended packet takes exactly hops cycles (one per hop),
        // ejecting on the cycle it becomes ready at the destination.
        prop_assert_eq!(arrived.0, s.hops_to(d));
    }
}
