//! The two-level hierarchical fabric: clusters of tiles on single-cycle
//! local crossbars, clusters connected by the global mesh.
//!
//! This is the MemPool-style topology that lets the model reach 256–1024
//! tiles: a flat mesh at that scale would charge tens of cycles for what
//! physically is a neighbourhood access. Here every tile sits in a
//! cluster served by a [`Crossbar`]; traffic that stays in the cluster
//! takes one switch traversal, and traffic that leaves goes
//! crossbar → global [`Mesh`] (one router per *cluster*) → crossbar.
//!
//! [`Fabric`] is the dispatch point the SoC holds: a flat configuration
//! (one cluster, or no cluster config at all) uses the untouched
//! [`Mesh`] code path, which is what makes the degenerate hierarchical
//! config byte-identical to the historical flat mesh — identity by
//! shared code, not by re-derived timing.
//!
//! # Fault sites
//!
//! The fabric keeps the flat mesh's injection-time drop/delay semantics
//! ([`NocFault`]) and adds a crossbar-local site pair ([`XbarFault`]):
//! a clustered fabric draws the NoC schedules first (the packet's
//! end-to-end traversal), then the crossbar schedules (the local switch
//! leg). Flat fabrics never construct the crossbar schedules, so chaos
//! replay of every existing configuration is unchanged.

use std::collections::VecDeque;

use maple_sim::Cycle;
use maple_trace::{FaultSite, TraceEvent, Tracer};

use crate::crossbar::{Crossbar, CrossbarConfig};
use crate::{Backpressure, Coord, Mesh, MeshConfig, MeshStats, NocFault};

/// Geometry of the two-level hierarchy: a `clusters_x` × `clusters_y`
/// grid of clusters, each a `cluster_width` × `cluster_height` sub-grid
/// of tiles. Global tile coordinates span the full
/// `clusters_x·cluster_width` × `clusters_y·cluster_height` grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Tiles per cluster, horizontally.
    pub cluster_width: u16,
    /// Tiles per cluster, vertically.
    pub cluster_height: u16,
    /// Clusters across the SoC.
    pub clusters_x: u16,
    /// Clusters down the SoC.
    pub clusters_y: u16,
}

impl ClusterTopology {
    /// Builds and validates a topology.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the global grid exceeds
    /// [`crate::MAX_NODES`] tiles.
    #[must_use]
    pub fn new(cluster_width: u16, cluster_height: u16, clusters_x: u16, clusters_y: u16) -> Self {
        assert!(
            cluster_width > 0 && cluster_height > 0 && clusters_x > 0 && clusters_y > 0,
            "cluster topology dimensions must be non-zero"
        );
        let t = ClusterTopology {
            cluster_width,
            cluster_height,
            clusters_x,
            clusters_y,
        };
        assert!(
            t.total_tiles() <= crate::MAX_NODES,
            "clustered fabric of {} tiles exceeds MAX_NODES ({})",
            t.total_tiles(),
            crate::MAX_NODES
        );
        t
    }

    /// Global grid width in tiles.
    #[must_use]
    pub fn total_width(&self) -> u16 {
        self.clusters_x * self.cluster_width
    }

    /// Global grid height in tiles.
    #[must_use]
    pub fn total_height(&self) -> u16 {
        self.clusters_y * self.cluster_height
    }

    /// Tiles in the whole fabric.
    #[must_use]
    pub fn total_tiles(&self) -> usize {
        usize::from(self.total_width()) * usize::from(self.total_height())
    }

    /// Tiles in one cluster.
    #[must_use]
    pub fn tiles_per_cluster(&self) -> usize {
        usize::from(self.cluster_width) * usize::from(self.cluster_height)
    }

    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        usize::from(self.clusters_x) * usize::from(self.clusters_y)
    }

    /// The cluster-grid coordinate of the cluster containing `tile`.
    #[must_use]
    pub fn cluster_of(&self, tile: Coord) -> Coord {
        Coord::new(tile.x / self.cluster_width, tile.y / self.cluster_height)
    }

    /// Row-major index of the cluster containing `tile`.
    #[must_use]
    pub fn cluster_index_of(&self, tile: Coord) -> usize {
        let c = self.cluster_of(tile);
        usize::from(c.y) * usize::from(self.clusters_x) + usize::from(c.x)
    }

    /// The cluster-grid coordinate of cluster `index` (row-major).
    #[must_use]
    pub fn cluster_coord(&self, index: usize) -> Coord {
        Coord::new(
            (index % usize::from(self.clusters_x)) as u16,
            (index / usize::from(self.clusters_x)) as u16,
        )
    }

    /// The crossbar port of `tile` within its cluster (row-major over
    /// the sub-grid; the extra port [`Self::tiles_per_cluster`] is the
    /// global-mesh port).
    #[must_use]
    pub fn local_port(&self, tile: Coord) -> usize {
        let lx = usize::from(tile.x % self.cluster_width);
        let ly = usize::from(tile.y % self.cluster_height);
        ly * usize::from(self.cluster_width) + lx
    }

    /// The global coordinate of local crossbar port `port` in cluster
    /// `cluster` (row-major index).
    #[must_use]
    pub fn tile_at(&self, cluster: usize, port: usize) -> Coord {
        let cc = self.cluster_coord(cluster);
        let lx = (port % usize::from(self.cluster_width)) as u16;
        let ly = (port / usize::from(self.cluster_width)) as u16;
        Coord::new(cc.x * self.cluster_width + lx, cc.y * self.cluster_height + ly)
    }

    /// Whether `tile` lies on the global grid.
    #[must_use]
    pub fn in_bounds(&self, tile: Coord) -> bool {
        tile.x < self.total_width() && tile.y < self.total_height()
    }
}

/// The crossbar slice of the fault plane: drop and extra-delay schedules
/// drawn at injection for the local-switch leg of clustered traversals.
/// Flat fabrics never construct one, so existing chaos replay streams
/// are untouched.
#[derive(Debug, Clone)]
pub struct XbarFault {
    /// Packet-drop schedule.
    pub drop: maple_sim::fault::FaultSchedule,
    /// Extra-delay schedule (magnitude = extra cycles).
    pub delay: maple_sim::fault::FaultSchedule,
}

impl XbarFault {
    /// Builds the crossbar fault state from a plane configuration.
    #[must_use]
    pub fn from_plane(cfg: &maple_sim::fault::FaultPlaneConfig) -> Self {
        XbarFault {
            drop: cfg.xbar_drop_schedule(),
            delay: cfg.xbar_delay_schedule(),
        }
    }
}

/// Envelope carried through crossbars and the global mesh: the final
/// destination plus the accounting the fabric-level stats need.
#[derive(Debug)]
struct Env<T> {
    dst: Coord,
    flits: u8,
    injected_at: Cycle,
    hops: u64,
    payload: T,
}

/// The clustered two-level interconnect. Most callers hold a [`Fabric`]
/// instead, which dispatches between this and the flat [`Mesh`].
#[derive(Debug)]
pub struct ClusteredNoc<T> {
    topo: ClusterTopology,
    xbars: Vec<Crossbar<Env<T>>>,
    /// Global mesh: one router per cluster.
    mesh: Mesh<Env<T>>,
    /// Final deliveries per global tile (row-major).
    delivered: Vec<VecDeque<T>>,
    stats: MeshStats,
    fault: Option<NocFault>,
    xbar_fault: Option<XbarFault>,
    tracer: Tracer,
}

impl<T> ClusteredNoc<T> {
    /// Builds an idle clustered fabric. `xbar_latency` is the crossbar
    /// grant-to-delivery latency (1 = single-cycle local switch).
    #[must_use]
    pub fn new(topo: ClusterTopology, xbar_latency: u64) -> Self {
        let ports = topo.tiles_per_cluster() + 1;
        let xcfg = CrossbarConfig::new(ports).with_latency(xbar_latency);
        ClusteredNoc {
            topo,
            xbars: (0..topo.clusters()).map(|_| Crossbar::new(xcfg)).collect(),
            mesh: Mesh::new(MeshConfig::new(topo.clusters_x, topo.clusters_y)),
            delivered: (0..topo.total_tiles()).map(|_| VecDeque::new()).collect(),
            stats: MeshStats::default(),
            fault: None,
            xbar_fault: None,
            tracer: Tracer::disabled(),
        }
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// Installs the end-to-end NoC fault schedules (same site semantics
    /// as [`Mesh::set_fault`]).
    pub fn set_fault(&mut self, fault: NocFault) {
        self.fault = Some(fault);
    }

    /// Installs the crossbar-local fault schedules.
    pub fn set_xbar_fault(&mut self, fault: XbarFault) {
        self.xbar_fault = Some(fault);
    }

    /// Installs an observability tracer. Global-mesh hops are traced
    /// with cluster coordinates; fault injections with their site.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mesh.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    fn tile_index(&self, tile: Coord) -> usize {
        usize::from(tile.y) * usize::from(self.topo.total_width()) + usize::from(tile.x)
    }

    /// The mesh port of every cluster crossbar (one past the tiles).
    fn mesh_port(&self) -> usize {
        self.topo.tiles_per_cluster()
    }

    /// Fabric hop count of a `src → dst` traversal: one switch
    /// traversal intra-cluster; switch + mesh hops + switch when the
    /// route crosses clusters.
    fn hops_for(&self, src: Coord, dst: Coord) -> u64 {
        let sc = self.topo.cluster_of(src);
        let dc = self.topo.cluster_of(dst);
        if sc == dc {
            1
        } else {
            2 + sc.hops_to(dc)
        }
    }

    /// Whether a new packet can currently be injected at `src`.
    #[must_use]
    pub fn can_inject(&self, src: Coord) -> bool {
        self.xbars[self.topo.cluster_index_of(src)].can_inject(self.topo.local_port(src))
    }

    fn admit(
        &mut self,
        ready_at: Cycle,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        let ci = self.topo.cluster_index_of(src);
        let in_port = self.topo.local_port(src);
        let out_port = if self.topo.cluster_of(src) == self.topo.cluster_of(dst) {
            self.topo.local_port(dst)
        } else {
            self.mesh_port()
        };
        let env = Env {
            dst,
            flits,
            injected_at: now,
            hops: self.hops_for(src, dst),
            payload,
        };
        self.xbars[ci]
            .inject(ready_at, in_port, out_port, flits, env)
            .map_err(|Backpressure(e)| Backpressure(e.payload))?;
        self.stats.injected.inc();
        Ok(())
    }

    /// Injects a packet of `flits` flits at tile `src` for tile `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] carrying the payload when the source
    /// tile's crossbar input is full.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is off the global grid or
    /// `flits == 0`.
    pub fn inject(
        &mut self,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        assert!(self.topo.in_bounds(src), "inject: src {src} out of bounds");
        assert!(self.topo.in_bounds(dst), "inject: dst {dst} out of bounds");
        assert!(flits > 0, "inject: packets need at least one flit");
        self.admit(now, now, src, dst, flits, payload)
    }

    /// Like [`ClusteredNoc::inject`], but subject to the installed
    /// fault schedules: the end-to-end [`NocFault`] draws first (drop,
    /// then delay), then the crossbar-local [`XbarFault`] pair. Draws
    /// happen only after admission, so a backpressured retry never
    /// consumes randomness.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] as [`ClusteredNoc::inject`] does.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ClusteredNoc::inject`].
    pub fn inject_unreliable(
        &mut self,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        assert!(self.topo.in_bounds(src), "inject: src {src} out of bounds");
        assert!(self.topo.in_bounds(dst), "inject: dst {dst} out of bounds");
        assert!(flits > 0, "inject: packets need at least one flit");
        if !self.can_inject(src) {
            return Err(Backpressure(payload));
        }
        let mut ready_at = now;
        if let Some(f) = &mut self.fault {
            if f.drop.strike() {
                self.stats.injected.inc();
                self.stats.dropped.inc();
                self.tracer
                    .emit(now, || TraceEvent::FaultInjected { site: FaultSite::NocDrop });
                return Ok(());
            }
            if f.delay.strike() {
                self.stats.delayed.inc();
                ready_at = ready_at.plus(f.delay.magnitude());
                self.tracer
                    .emit(now, || TraceEvent::FaultInjected { site: FaultSite::NocDelay });
            }
        }
        if let Some(f) = &mut self.xbar_fault {
            if f.drop.strike() {
                self.stats.injected.inc();
                self.stats.dropped.inc();
                self.tracer
                    .emit(now, || TraceEvent::FaultInjected { site: FaultSite::XbarDrop });
                return Ok(());
            }
            if f.delay.strike() {
                self.stats.delayed.inc();
                ready_at = ready_at.plus(f.delay.magnitude());
                self.tracer
                    .emit(now, || TraceEvent::FaultInjected { site: FaultSite::XbarDelay });
            }
        }
        self.admit(ready_at, now, src, dst, flits, payload)
    }

    /// Advances the whole fabric one cycle, in a fixed deterministic
    /// order: global-mesh arrivals feed crossbar mesh ports, crossbars
    /// switch, crossbar mesh-side outputs feed the global mesh, and the
    /// mesh routes. Tile-side crossbar outputs become final deliveries.
    pub fn tick(&mut self, now: Cycle) {
        let mesh_port = self.mesh_port();
        // 1. Mesh ejections enter the destination cluster's crossbar
        //    through its mesh port (order-preserving; anything the
        //    crossbar cannot take stays queued on the mesh side).
        for ci in 0..self.xbars.len() {
            let cc = self.topo.cluster_coord(ci);
            while self.xbars[ci].can_inject(mesh_port) {
                let Some(env) = self.mesh.take_one_delivered(cc) else {
                    break;
                };
                let out = self.topo.local_port(env.dst);
                let flits = env.flits;
                self.xbars[ci]
                    .inject(now, mesh_port, out, flits, env)
                    .ok()
                    .expect("can_inject checked");
            }
        }
        // 2. Switch every cluster.
        for x in &mut self.xbars {
            x.tick(now);
        }
        // 3. Crossbar outputs: mesh-side staging re-injects into the
        //    global mesh (with backpressure), tile-side outputs are
        //    final deliveries.
        for ci in 0..self.xbars.len() {
            let cc = self.topo.cluster_coord(ci);
            while let Some(env) = self.xbars[ci].peek_delivered(mesh_port) {
                let dst_cluster = self.topo.cluster_of(env.dst);
                if !self.mesh.can_inject(cc) {
                    break;
                }
                let env = self.xbars[ci]
                    .take_one_delivered(mesh_port)
                    .expect("peeked");
                let flits = env.flits;
                self.mesh
                    .inject(now, cc, dst_cluster, flits, env)
                    .ok()
                    .expect("can_inject checked");
            }
            for port in 0..mesh_port {
                let tile = self.topo.tile_at(ci, port);
                let ti = self.tile_index(tile);
                for env in self.xbars[ci].take_delivered(port) {
                    debug_assert_eq!(env.dst, tile, "crossbar delivered to wrong tile");
                    self.stats.delivered.inc();
                    self.stats.hops.add(env.hops);
                    self.stats.latency.record(now.since(env.injected_at));
                    self.delivered[ti].push_back(env.payload);
                }
            }
        }
        // 4. Route the global mesh.
        self.mesh.tick(now);
    }

    /// Earliest cycle at or after `now` at which ticking could matter.
    /// Conservative like [`Mesh::next_event`]: any in-flight packet
    /// pins the horizon to `now`.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_quiescent() {
            None
        } else {
            Some(now)
        }
    }

    /// Catches arbitration pointers up over skipped quiescent cycles.
    pub fn skip(&mut self, cycles: u64) {
        self.mesh.skip(cycles);
        for x in &mut self.xbars {
            x.skip(cycles);
        }
    }

    /// Removes and returns every payload delivered at tile `node`.
    pub fn take_delivered(&mut self, node: Coord) -> Vec<T> {
        let i = self.tile_index(node);
        self.delivered[i].drain(..).collect()
    }

    /// Removes and returns at most one delivered payload at `node`.
    pub fn take_one_delivered(&mut self, node: Coord) -> Option<T> {
        let i = self.tile_index(node);
        self.delivered[i].pop_front()
    }

    /// Packets currently buffered anywhere in the fabric.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.mesh.in_flight()
            + self.xbars.iter().map(Crossbar::in_flight).sum::<usize>()
    }

    /// Whether the fabric holds no packets anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.mesh.is_quiescent()
            && self.xbars.iter().all(Crossbar::is_quiescent)
            && self.delivered.iter().all(VecDeque::is_empty)
    }

    /// Fabric-level aggregate statistics (inject-to-final-delivery).
    #[must_use]
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }

    /// Statistics of the inter-cluster mesh alone (cluster-granular).
    #[must_use]
    pub fn global_mesh_stats(&self) -> &MeshStats {
        self.mesh.stats()
    }
}

/// The interconnect a SoC holds: either the historical flat mesh or the
/// clustered two-level fabric. Flat configurations (no cluster config,
/// or a 1×1 cluster grid) take the [`Fabric::Flat`] arm and run the
/// untouched [`Mesh`] code — byte-identical to every pre-hierarchy
/// simulation by construction.
#[derive(Debug)]
pub enum Fabric<T> {
    /// One flat W×H mesh over all tiles (the historical topology).
    Flat(Box<Mesh<T>>),
    /// Clusters on local crossbars, bridged by the global mesh.
    Clustered(Box<ClusteredNoc<T>>),
}
// Both variants are boxed: each holds hundreds of bytes of queue and
// stats state, and the SoC embeds one `Fabric` per system, so the enum
// should cost a pointer, not the larger of the two footprints.

impl<T> Fabric<T> {
    /// A flat fabric over the given mesh configuration.
    #[must_use]
    pub fn flat(cfg: MeshConfig) -> Self {
        Fabric::Flat(Box::new(Mesh::new(cfg)))
    }

    /// A clustered fabric over the given topology.
    #[must_use]
    pub fn clustered(topo: ClusterTopology, xbar_latency: u64) -> Self {
        Fabric::Clustered(Box::new(ClusteredNoc::new(topo, xbar_latency)))
    }

    /// Whether this fabric is the clustered variant.
    #[must_use]
    pub fn is_clustered(&self) -> bool {
        matches!(self, Fabric::Clustered(_))
    }

    /// Installs the end-to-end NoC fault schedules.
    pub fn set_fault(&mut self, fault: NocFault) {
        match self {
            Fabric::Flat(m) => m.set_fault(fault),
            Fabric::Clustered(c) => c.set_fault(fault),
        }
    }

    /// Installs the crossbar-local fault schedules (no-op on a flat
    /// fabric, which has no crossbars).
    pub fn set_xbar_fault(&mut self, fault: XbarFault) {
        if let Fabric::Clustered(c) = self {
            c.set_xbar_fault(fault);
        }
    }

    /// Installs an observability tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            Fabric::Flat(m) => m.set_tracer(tracer),
            Fabric::Clustered(c) => c.set_tracer(tracer),
        }
    }

    /// Injects a packet at tile `src` for tile `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] when the source's injection queue is
    /// full; callers retry on a later cycle.
    pub fn inject(
        &mut self,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        match self {
            Fabric::Flat(m) => m.inject(now, src, dst, flits, payload),
            Fabric::Clustered(c) => c.inject(now, src, dst, flits, payload),
        }
    }

    /// Injects subject to the installed fault schedules.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] as [`Fabric::inject`] does.
    pub fn inject_unreliable(
        &mut self,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        match self {
            Fabric::Flat(m) => m.inject_unreliable(now, src, dst, flits, payload),
            Fabric::Clustered(c) => c.inject_unreliable(now, src, dst, flits, payload),
        }
    }

    /// Whether a new packet can currently be injected at `src`.
    #[must_use]
    pub fn can_inject(&self, src: Coord) -> bool {
        match self {
            Fabric::Flat(m) => m.can_inject(src),
            Fabric::Clustered(c) => c.can_inject(src),
        }
    }

    /// Advances the fabric one cycle.
    pub fn tick(&mut self, now: Cycle) {
        match self {
            Fabric::Flat(m) => m.tick(now),
            Fabric::Clustered(c) => c.tick(now),
        }
    }

    /// Event horizon: `None` when quiescent, else `now`.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self {
            Fabric::Flat(m) => m.next_event(now),
            Fabric::Clustered(c) => c.next_event(now),
        }
    }

    /// Catches per-cycle arbitration state up over skipped cycles.
    pub fn skip(&mut self, cycles: u64) {
        match self {
            Fabric::Flat(m) => m.skip(cycles),
            Fabric::Clustered(c) => c.skip(cycles),
        }
    }

    /// Removes and returns every payload delivered at tile `node`.
    pub fn take_delivered(&mut self, node: Coord) -> Vec<T> {
        match self {
            Fabric::Flat(m) => m.take_delivered(node),
            Fabric::Clustered(c) => c.take_delivered(node),
        }
    }

    /// Removes and returns at most one delivered payload at `node`.
    pub fn take_one_delivered(&mut self, node: Coord) -> Option<T> {
        match self {
            Fabric::Flat(m) => m.take_one_delivered(node),
            Fabric::Clustered(c) => c.take_one_delivered(node),
        }
    }

    /// Packets currently buffered anywhere in the fabric.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        match self {
            Fabric::Flat(m) => m.in_flight(),
            Fabric::Clustered(c) => c.in_flight(),
        }
    }

    /// Whether the fabric holds no packets anywhere.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        match self {
            Fabric::Flat(m) => m.is_quiescent(),
            Fabric::Clustered(c) => c.is_quiescent(),
        }
    }

    /// End-to-end aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &MeshStats {
        match self {
            Fabric::Flat(m) => m.stats(),
            Fabric::Clustered(c) => c.stats(),
        }
    }

    /// Inter-cluster mesh statistics, when clustered.
    #[must_use]
    pub fn global_mesh_stats(&self) -> Option<&MeshStats> {
        match self {
            Fabric::Flat(_) => None,
            Fabric::Clustered(c) => Some(c.global_mesh_stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo2x2() -> ClusterTopology {
        // 4 clusters of 2×2 tiles → a 4×4 global grid.
        ClusterTopology::new(2, 2, 2, 2)
    }

    fn drain_all(f: &mut ClusteredNoc<u32>, now: Cycle) -> Vec<(Coord, u32)> {
        let mut out = Vec::new();
        let _ = now;
        for y in 0..f.topology().total_height() {
            for x in 0..f.topology().total_width() {
                let c = Coord::new(x, y);
                for v in f.take_delivered(c) {
                    out.push((c, v));
                }
            }
        }
        out
    }

    #[test]
    fn topology_mapping_roundtrips() {
        let t = topo2x2();
        assert_eq!(t.total_tiles(), 16);
        assert_eq!(t.tiles_per_cluster(), 4);
        for y in 0..4u16 {
            for x in 0..4u16 {
                let tile = Coord::new(x, y);
                let ci = t.cluster_index_of(tile);
                let port = t.local_port(tile);
                assert_eq!(t.tile_at(ci, port), tile, "roundtrip of {tile}");
            }
        }
        assert_eq!(t.cluster_of(Coord::new(3, 3)), Coord::new(1, 1));
    }

    #[test]
    fn intra_cluster_delivery_is_one_switch_traversal() {
        let mut f: ClusteredNoc<u32> = ClusteredNoc::new(topo2x2(), 1);
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 1); // same cluster
        f.inject(Cycle(0), src, dst, 1, 7).unwrap();
        f.tick(Cycle(0));
        assert!(f.take_delivered(dst).is_empty(), "in the switch at t=0");
        f.tick(Cycle(1));
        assert_eq!(f.take_delivered(dst), vec![7]);
        assert_eq!(f.stats().hops.get(), 1);
        assert!(f.is_quiescent());
    }

    #[test]
    fn inter_cluster_delivery_crosses_the_global_mesh() {
        let mut f: ClusteredNoc<u32> = ClusteredNoc::new(topo2x2(), 1);
        let src = Coord::new(0, 0); // cluster (0,0)
        let dst = Coord::new(3, 3); // cluster (1,1)
        f.inject(Cycle(0), src, dst, 1, 42).unwrap();
        let mut arrival = None;
        for t in 0..40u64 {
            f.tick(Cycle(t));
            if let Some(v) = f.take_one_delivered(dst) {
                arrival = Some((t, v));
                break;
            }
        }
        let (t, v) = arrival.expect("delivered");
        assert_eq!(v, 42);
        // switch + 2 mesh hops + switch: strictly more than local.
        assert!(t >= 4, "inter-cluster cannot be as fast as local, got {t}");
        assert_eq!(f.stats().hops.get(), 2 + 2, "xbar + 2 mesh hops + xbar");
        assert_eq!(f.stats().delivered.get(), 1);
        assert!(f.is_quiescent());
    }

    #[test]
    fn all_pairs_delivered_exactly_once() {
        let t = topo2x2();
        let mut f: ClusteredNoc<u32> = ClusteredNoc::new(t, 1);
        let mut now = Cycle(0);
        let mut expected = std::collections::HashMap::new();
        let mut id = 0u32;
        for sy in 0..4u16 {
            for sx in 0..4u16 {
                for dy in 0..4u16 {
                    for dx in 0..4u16 {
                        let s = Coord::new(sx, sy);
                        let d = Coord::new(dx, dy);
                        loop {
                            match f.inject(now, s, d, 1, id) {
                                Ok(()) => break,
                                Err(_) => {
                                    f.tick(now);
                                    now += 1;
                                }
                            }
                        }
                        expected.insert(id, d);
                        id += 1;
                    }
                }
            }
        }
        let mut got = 0usize;
        for _ in 0..4000 {
            f.tick(now);
            for (c, v) in drain_all(&mut f, now) {
                assert_eq!(expected[&v], c, "packet {v} delivered to wrong tile");
                got += 1;
            }
            now += 1;
            if got == expected.len() {
                break;
            }
        }
        assert_eq!(got, expected.len(), "every packet delivered exactly once");
        assert!(f.is_quiescent());
        assert_eq!(f.stats().delivered.get(), expected.len() as u64);
        assert_eq!(f.stats().injected.get(), expected.len() as u64);
    }

    #[test]
    fn same_pair_traffic_is_never_reordered() {
        let mut f: ClusteredNoc<u32> = ClusteredNoc::new(topo2x2(), 1);
        let src = Coord::new(0, 0);
        let dst = Coord::new(2, 0); // other cluster
        let mut now = Cycle(0);
        for i in 0..6 {
            loop {
                match f.inject(now, src, dst, 1, i) {
                    Ok(()) => break,
                    Err(_) => {
                        f.tick(now);
                        now += 1;
                    }
                }
            }
            f.tick(now);
            now += 1;
        }
        let mut seen = Vec::new();
        for _ in 0..60 {
            f.tick(now);
            seen.extend(f.take_delivered(dst));
            now += 1;
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn skip_matches_dense_idle_rotation() {
        let mut dense: ClusteredNoc<u32> = ClusteredNoc::new(topo2x2(), 1);
        let mut skipped: ClusteredNoc<u32> = ClusteredNoc::new(topo2x2(), 1);
        for t in 0..11u64 {
            dense.tick(Cycle(t));
        }
        skipped.skip(11);
        // Drive identical traffic afterwards; arbitration must match.
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        dense.inject(Cycle(11), src, dst, 1, 1).unwrap();
        skipped.inject(Cycle(11), src, dst, 1, 1).unwrap();
        for t in 11..20u64 {
            dense.tick(Cycle(t));
            skipped.tick(Cycle(t));
            assert_eq!(
                dense.take_delivered(dst),
                skipped.take_delivered(dst),
                "t={t}"
            );
        }
    }

    #[test]
    fn fabric_flat_arm_is_the_plain_mesh() {
        let mut f: Fabric<u32> = Fabric::flat(MeshConfig::new(2, 1));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        f.inject(Cycle(0), src, dst, 1, 5).unwrap();
        f.tick(Cycle(0));
        f.tick(Cycle(1));
        assert_eq!(f.take_delivered(dst), vec![5]);
        assert!(!f.is_clustered());
        assert!(f.global_mesh_stats().is_none());
    }

    #[test]
    fn xbar_fault_drops_only_clustered_traffic() {
        use maple_sim::fault::FaultPlaneConfig;
        let plane = FaultPlaneConfig::new(9).with_xbar_drop(1.0);
        let mut f: Fabric<u32> = Fabric::clustered(topo2x2(), 1);
        f.set_xbar_fault(XbarFault::from_plane(&plane));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        for k in 0..5u64 {
            f.inject_unreliable(Cycle(k), src, dst, 1, k as u32).unwrap();
        }
        for t in 5..40u64 {
            f.tick(Cycle(t));
        }
        assert!(f.take_delivered(dst).is_empty(), "all dropped at the switch");
        assert_eq!(f.stats().dropped.get(), 5);
        assert_eq!(f.stats().injected.get(), 5);
        assert!(f.is_quiescent());
    }

    #[test]
    fn backpressure_returns_payload() {
        let mut f: ClusteredNoc<u32> = ClusteredNoc::new(topo2x2(), 1);
        let src = Coord::new(0, 0);
        let dst = Coord::new(3, 3);
        let mut refused = 0;
        for i in 0..20u32 {
            match f.inject(Cycle(0), src, dst, 1, i) {
                Ok(()) => {}
                Err(Backpressure(v)) => {
                    assert_eq!(v, i, "payload handed back intact");
                    refused += 1;
                }
            }
        }
        assert!(refused > 0, "8-deep input must refuse 20 back-to-back packets");
    }
}
