//! A single-stage, round-robin-arbitrated crossbar switch.
//!
//! This is the intra-cluster interconnect of the hierarchical fabric
//! (MemPool-style): every tile in a cluster talks to every other tile —
//! and to the cluster's global-mesh port — through one low-latency
//! crossbar instead of a multi-hop mesh. The model keeps the same
//! contention disciplines as [`crate::Mesh`] so the two compose into one
//! fabric without impedance mismatch:
//!
//! - per-input bounded queues with [`Backpressure`] at injection,
//! - round-robin arbitration over input ports, rotated once per tick
//!   (and caught up in bulk by [`Crossbar::skip`], mirroring
//!   [`crate::Mesh::skip`]),
//! - at most one grant per *output* port per cycle, with the output held
//!   busy for `flits` cycles (serialization),
//! - a fixed `latency`-cycle wire traversal between grant and delivery.
//!
//! With the default 1-cycle latency a packet injected before tick `t`
//! is granted at `t` and delivered during tick `t+1` — exactly the
//! timing of one mesh hop, which is what "single-cycle local crossbar"
//! means here.

use std::collections::VecDeque;

use maple_sim::Cycle;

use crate::Backpressure;

/// Crossbar geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarConfig {
    /// Number of ports (each port is both an input and an output).
    pub ports: usize,
    /// Cycles between arbitration grant and delivery (paper-style
    /// single-cycle switch: 1).
    pub latency: u64,
    /// Packets one input queue holds before backpressure.
    pub buffer_depth: usize,
}

impl CrossbarConfig {
    /// A `ports`-port crossbar with single-cycle traversal and the same
    /// 8-deep input buffering as the mesh routers.
    #[must_use]
    pub fn new(ports: usize) -> Self {
        debug_assert!(ports > 0, "crossbar needs at least one port");
        CrossbarConfig {
            ports,
            latency: 1,
            buffer_depth: 8,
        }
    }

    /// Overrides the grant-to-delivery latency.
    #[must_use]
    pub fn with_latency(mut self, cycles: u64) -> Self {
        self.latency = cycles;
        self
    }
}

#[derive(Debug)]
struct XbarPacket<T> {
    out: usize,
    flits: u8,
    ready_at: Cycle,
    payload: T,
}

#[derive(Debug)]
struct Wire<T> {
    arrives_at: Cycle,
    out: usize,
    payload: T,
}

/// The crossbar switch. See the module docs for the timing model.
#[derive(Debug)]
pub struct Crossbar<T> {
    cfg: CrossbarConfig,
    /// Per-input bounded queues.
    inputs: Vec<VecDeque<XbarPacket<T>>>,
    /// Serialization: each output port is busy until this cycle.
    out_busy: Vec<Cycle>,
    /// Round-robin arbitration pointer over input ports.
    rr_start: usize,
    /// Granted packets traversing the switch (monotonic arrival order).
    wires: VecDeque<Wire<T>>,
    /// Delivered payloads per output port.
    delivered: Vec<VecDeque<T>>,
}

impl<T> Crossbar<T> {
    /// Builds an idle crossbar.
    #[must_use]
    pub fn new(cfg: CrossbarConfig) -> Self {
        assert!(cfg.ports > 0, "crossbar must have ports");
        Crossbar {
            cfg,
            inputs: (0..cfg.ports).map(|_| VecDeque::new()).collect(),
            out_busy: vec![Cycle::ZERO; cfg.ports],
            rr_start: 0,
            wires: VecDeque::new(),
            delivered: (0..cfg.ports).map(|_| VecDeque::new()).collect(),
        }
    }

    /// The crossbar configuration.
    #[must_use]
    pub fn config(&self) -> &CrossbarConfig {
        &self.cfg
    }

    /// Whether `in_port` can accept another packet right now.
    #[must_use]
    pub fn can_inject(&self, in_port: usize) -> bool {
        self.inputs[in_port].len() < self.cfg.buffer_depth
    }

    /// Injects a packet at `in_port` destined for `out_port`.
    ///
    /// `ready_at` is the first cycle the packet may arbitrate (injection
    /// cycle for fresh traffic; later for fault-delayed packets).
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] carrying the payload when the input
    /// queue is full; callers retry on a later cycle.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range or `flits == 0`.
    pub fn inject(
        &mut self,
        ready_at: Cycle,
        in_port: usize,
        out_port: usize,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        assert!(in_port < self.cfg.ports, "xbar inject: bad input port");
        assert!(out_port < self.cfg.ports, "xbar inject: bad output port");
        assert!(flits > 0, "xbar inject: packets need at least one flit");
        if self.inputs[in_port].len() >= self.cfg.buffer_depth {
            return Err(Backpressure(payload));
        }
        self.inputs[in_port].push_back(XbarPacket {
            out: out_port,
            flits,
            ready_at,
            payload,
        });
        Ok(())
    }

    /// Advances the switch one cycle: deliver due wire traversals, then
    /// arbitrate input heads round-robin with one grant per output port.
    pub fn tick(&mut self, now: Cycle) {
        while self.wires.front().is_some_and(|w| w.arrives_at <= now) {
            let w = self.wires.pop_front().expect("front exists");
            self.delivered[w.out].push_back(w.payload);
        }
        let ports = self.cfg.ports;
        let start = self.rr_start;
        self.rr_start = (start + 1) % ports;
        let mut granted = vec![false; ports];
        for k in 0..ports {
            let port = (start + k) % ports;
            let Some(head) = self.inputs[port].front() else {
                continue;
            };
            if head.ready_at > now {
                continue;
            }
            let out = head.out;
            if granted[out] || self.out_busy[out] > now {
                continue;
            }
            let pkt = self.inputs[port].pop_front().expect("head exists");
            granted[out] = true;
            self.out_busy[out] = now.plus(u64::from(pkt.flits));
            self.wires.push_back(Wire {
                arrives_at: now.plus(self.cfg.latency),
                out,
                payload: pkt.payload,
            });
        }
    }

    /// Catches the arbitration pointer up over skipped quiescent cycles,
    /// mirroring [`crate::Mesh::skip`] so a clustered fabric replays the
    /// dense reference bit-for-bit after an event-horizon jump.
    pub fn skip(&mut self, cycles: u64) {
        self.rr_start = (self.rr_start + (cycles % self.cfg.ports as u64) as usize)
            % self.cfg.ports;
    }

    /// Removes and returns every payload delivered at `out_port` so far.
    pub fn take_delivered(&mut self, out_port: usize) -> Vec<T> {
        self.delivered[out_port].drain(..).collect()
    }

    /// Removes and returns at most one delivered payload at `out_port`.
    pub fn take_one_delivered(&mut self, out_port: usize) -> Option<T> {
        self.delivered[out_port].pop_front()
    }

    /// Peeks the oldest undelivered payload at `out_port`.
    #[must_use]
    pub fn peek_delivered(&self, out_port: usize) -> Option<&T> {
        self.delivered[out_port].front()
    }

    /// Packets buffered in inputs or traversing the switch.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum::<usize>() + self.wires.len()
    }

    /// Whether the switch holds no packets anywhere (including
    /// undrained deliveries).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0 && self.delivered.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_traversal_matches_one_mesh_hop() {
        // Inject before tick 0: grant at 0, delivery during tick 1 —
        // the same visible timing as one adjacent-tile mesh hop.
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(4));
        x.inject(Cycle(0), 0, 3, 1, 99).unwrap();
        x.tick(Cycle(0));
        assert!(x.take_delivered(3).is_empty());
        x.tick(Cycle(1));
        assert_eq!(x.take_delivered(3), vec![99]);
        assert!(x.is_quiescent());
    }

    #[test]
    fn one_grant_per_output_per_cycle() {
        // Two inputs contending for one output: the second is granted a
        // cycle later, so deliveries are spaced by at least one cycle.
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(3));
        x.inject(Cycle(0), 0, 2, 1, 1).unwrap();
        x.inject(Cycle(0), 1, 2, 1, 2).unwrap();
        let mut arrivals = Vec::new();
        for t in 0..8u64 {
            x.tick(Cycle(t));
            for v in x.take_delivered(2) {
                arrivals.push((t, v));
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert!(arrivals[1].0 > arrivals[0].0, "serialized: {arrivals:?}");
    }

    #[test]
    fn serialization_holds_output_for_flit_count() {
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(2));
        x.inject(Cycle(0), 0, 1, 8, 10).unwrap();
        x.inject(Cycle(0), 0, 1, 1, 11).unwrap();
        let mut arrivals = Vec::new();
        for t in 0..20u64 {
            x.tick(Cycle(t));
            for v in x.take_delivered(1) {
                arrivals.push((t, v));
            }
        }
        assert_eq!(arrivals.iter().map(|&(_, v)| v).collect::<Vec<_>>(), [10, 11]);
        assert!(
            arrivals[1].0 - arrivals[0].0 >= 8,
            "8-flit packet must hold the output: {arrivals:?}"
        );
    }

    #[test]
    fn round_robin_is_fair_across_inputs() {
        // Saturate two inputs toward distinct outputs: both make
        // progress every cycle (no starvation).
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(4));
        for i in 0..4 {
            x.inject(Cycle(0), 0, 2, 1, 100 + i).unwrap();
            x.inject(Cycle(0), 1, 3, 1, 200 + i).unwrap();
        }
        for t in 0..12u64 {
            x.tick(Cycle(t));
        }
        assert_eq!(x.take_delivered(2), vec![100, 101, 102, 103]);
        assert_eq!(x.take_delivered(3), vec![200, 201, 202, 203]);
    }

    #[test]
    fn backpressure_on_full_input() {
        let cfg = CrossbarConfig {
            buffer_depth: 2,
            ..CrossbarConfig::new(2)
        };
        let mut x: Crossbar<u32> = Crossbar::new(cfg);
        assert!(x.inject(Cycle(0), 0, 1, 1, 0).is_ok());
        assert!(x.inject(Cycle(0), 0, 1, 1, 1).is_ok());
        assert!(!x.can_inject(0));
        assert_eq!(x.inject(Cycle(0), 0, 1, 1, 2).unwrap_err(), Backpressure(2));
    }

    #[test]
    fn skip_rotates_like_ticking_idle() {
        // Dense: N idle ticks rotate the pointer N times. Skipping must
        // reproduce the same pointer so the first arbitration after a
        // gap is identical.
        let mut dense: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(3));
        let mut skipped: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(3));
        for t in 0..7u64 {
            dense.tick(Cycle(t));
        }
        skipped.skip(7);
        assert_eq!(dense.rr_start, skipped.rr_start);
    }

    #[test]
    fn ready_at_defers_arbitration() {
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig::new(2));
        x.inject(Cycle(5), 0, 1, 1, 9).unwrap();
        for t in 0..5u64 {
            x.tick(Cycle(t));
            assert!(x.take_delivered(1).is_empty(), "not ready before cycle 5");
        }
        x.tick(Cycle(5));
        x.tick(Cycle(6));
        assert_eq!(x.take_delivered(1), vec![9]);
    }
}
