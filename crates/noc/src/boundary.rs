//! Cut-link flit exchange for spatially partitioned simulation.
//!
//! When one simulated SoC is split into spatial partitions stepped by
//! different host threads, every NoC link that crosses a partition
//! boundary is *cut*: the hub exports each flit crossing the cut with the
//! cycle it becomes visible on the far side, and the owning partition
//! imports exactly the flits whose stamp has come due. Because the mesh
//! charges at least one cycle per hop, a flit exported during cycle `t`
//! can never influence the far side before the hub hands it over — the
//! link latency is the conservative lookahead window that makes the
//! barrier protocol race-free *and* cycle-exact.
//!
//! The channel is deliberately dumb — a stamped FIFO — so that ordering
//! is entirely the exporter's: flits come out in the order they went in,
//! which is what keeps the partitioned stepper bit-exact with the
//! single-threaded reference.

use std::collections::VecDeque;

use maple_sim::Cycle;

/// A payload annotated with the cycle it becomes visible to the importer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<T> {
    /// First cycle the importing partition may observe the payload.
    pub at: Cycle,
    /// The carried flit payload.
    pub payload: T,
}

/// One direction of a cut NoC link: stamped, order-preserving handover
/// of flits from the hub into a partition.
#[derive(Debug)]
pub struct BoundaryChannel<T> {
    queue: VecDeque<Stamped<T>>,
}

impl<T> Default for BoundaryChannel<T> {
    fn default() -> Self {
        BoundaryChannel { queue: VecDeque::new() }
    }
}

impl<T> BoundaryChannel<T> {
    /// An empty channel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Exports a flit that becomes visible to the importer at `at`.
    ///
    /// Stamps must be non-decreasing (the exporter hands flits over in
    /// simulation order); this is debug-asserted rather than enforced so
    /// the hot path stays a push.
    pub fn export(&mut self, at: Cycle, payload: T) {
        debug_assert!(
            self.queue.back().is_none_or(|b| b.at <= at),
            "boundary stamps must be non-decreasing"
        );
        self.queue.push_back(Stamped { at, payload });
    }

    /// Imports every flit stamped at or before `now`, in export order.
    pub fn import_ready(&mut self, now: Cycle) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || {
            if self.queue.front().is_some_and(|f| f.at <= now) {
                self.queue.pop_front().map(|f| f.payload)
            } else {
                None
            }
        })
    }

    /// Number of flits waiting in the channel.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the channel holds no flits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_respects_stamps_and_order() {
        let mut ch = BoundaryChannel::new();
        ch.export(Cycle(1), "a");
        ch.export(Cycle(1), "b");
        ch.export(Cycle(3), "c");
        assert_eq!(ch.len(), 3);
        let at1: Vec<_> = ch.import_ready(Cycle(1)).collect();
        assert_eq!(at1, ["a", "b"], "due flits come out in export order");
        assert!(ch.import_ready(Cycle(2)).next().is_none(), "c not due yet");
        let at3: Vec<_> = ch.import_ready(Cycle(3)).collect();
        assert_eq!(at3, ["c"]);
        assert!(ch.is_empty());
    }

    #[test]
    fn flit_exactly_on_the_import_cycle_is_delivered() {
        // The barrier-cycle edge case: a stamp equal to `now` is due.
        let mut ch = BoundaryChannel::new();
        ch.export(Cycle(7), 42u64);
        assert_eq!(ch.import_ready(Cycle(7)).collect::<Vec<_>>(), [42]);
    }
}
