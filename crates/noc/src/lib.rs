//! A packet-level 2-D mesh Network-on-Chip model.
//!
//! This models the OpenPiton-style P-Mesh interconnect the paper integrates
//! MAPLE into (Section 3.7): a grid of routers with dimension-ordered XY
//! routing, one cycle of latency per hop, per-output-port serialization by
//! packet size, and credit-based backpressure between adjacent routers.
//!
//! The mesh is generic over its payload type so the memory system, the cores
//! and the MAPLE engines can all exchange their own message enums through a
//! single interconnect.
//!
//! # Observability
//!
//! [`Mesh::set_tracer`] attaches a [`maple_trace::Tracer`]; the mesh then
//! emits a hop event per router traversal and fault markers for injected
//! packet drops/delays. Tracing never alters routing or timing.
//!
//! # Example
//!
//! ```
//! use maple_noc::{Coord, Mesh, MeshConfig};
//! use maple_sim::Cycle;
//!
//! let mut mesh: Mesh<&str> = Mesh::new(MeshConfig::new(2, 2));
//! let src = Coord::new(0, 0);
//! let dst = Coord::new(1, 1);
//! mesh.inject(Cycle(0), src, dst, 1, "ping").unwrap();
//! let mut now = Cycle(0);
//! loop {
//!     mesh.tick(now);
//!     let got = mesh.take_delivered(dst);
//!     if !got.is_empty() {
//!         assert_eq!(got, ["ping"]);
//!         break;
//!     }
//!     now += 1;
//! }
//! ```

#![deny(missing_docs)]

pub mod boundary;
pub mod crossbar;
pub mod fabric;

pub use crossbar::{Crossbar, CrossbarConfig};
pub use fabric::{ClusterTopology, ClusteredNoc, Fabric, XbarFault};

use std::collections::VecDeque;

use maple_sim::stats::{Counter, Histogram};
use maple_sim::Cycle;
use maple_trace::{FaultSite, TraceEvent, Tracer};

/// A router position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Column, increasing eastward.
    pub x: u16,
    /// Row, increasing southward.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    ///
    /// Coordinates are 16-bit so kilotile fabrics (e.g. a 32×32 grid of
    /// 256 clusters) can never silently truncate a tile id the way the
    /// old 8-bit fields could.
    #[must_use]
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to `other`, i.e. the hop count under XY routing.
    #[must_use]
    pub fn hops_to(self, other: Coord) -> u64 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs() as u64;
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs() as u64;
        dx + dy
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Mesh dimensions and timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Number of columns.
    pub width: u16,
    /// Number of rows.
    pub height: u16,
    /// Cycles a packet spends traversing one hop (paper: 1).
    pub hop_latency: u64,
    /// Packets an input buffer can hold before backpressure.
    pub buffer_depth: usize,
}

/// Upper bound on router counts accepted at construction: generous for
/// the 1024-tile fabrics the scaling sweeps exercise, but small enough
/// to catch a garbage dimension (e.g. a truncated cast) immediately.
pub const MAX_NODES: usize = 64 * 1024;

impl MeshConfig {
    /// A mesh of `width` × `height` routers with the paper's default timing
    /// (1 cycle per hop, 8-deep input buffers).
    #[must_use]
    pub fn new(width: u16, height: u16) -> Self {
        debug_assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        debug_assert!(
            usize::from(width) * usize::from(height) <= MAX_NODES,
            "mesh of {width}x{height} routers exceeds MAX_NODES ({MAX_NODES})"
        );
        MeshConfig {
            width,
            height,
            hop_latency: 1,
            buffer_depth: 8,
        }
    }

    /// Overrides the per-hop latency.
    #[must_use]
    pub fn with_hop_latency(mut self, cycles: u64) -> Self {
        self.hop_latency = cycles;
        self
    }

    /// Overrides the router input-buffer depth.
    #[must_use]
    pub fn with_buffer_depth(mut self, packets: usize) -> Self {
        self.buffer_depth = packets;
        self
    }

    /// Number of routers in the mesh.
    #[must_use]
    pub fn nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }
}

/// Error returned by [`Mesh::inject`] when the local input buffer is full.
///
/// The payload is handed back so the caller can retry next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure<T>(pub T);

impl<T> std::fmt::Display for Backpressure<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network injection refused: local buffer full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for Backpressure<T> {}

/// Aggregate mesh statistics.
#[derive(Debug, Clone, Default)]
pub struct MeshStats {
    /// Packets injected successfully.
    pub injected: Counter,
    /// Packets delivered to their destination.
    pub delivered: Counter,
    /// Total hops traversed by delivered packets.
    pub hops: Counter,
    /// End-to-end latency (inject to deliver) of delivered packets.
    pub latency: Histogram,
    /// Packets dropped by the fault plane (counted as injected, never
    /// delivered).
    pub dropped: Counter,
    /// Packets held back by the fault plane's extra-delay schedule.
    pub delayed: Counter,
}

/// The NoC's slice of the fault plane: independent drop and extra-delay
/// schedules. Installed with [`Mesh::set_fault`]; only packets injected
/// through [`Mesh::inject_unreliable`] are subject to it.
#[derive(Debug, Clone)]
pub struct NocFault {
    /// Packet-drop schedule.
    pub drop: maple_sim::fault::FaultSchedule,
    /// Extra-delay schedule (magnitude = extra cycles).
    pub delay: maple_sim::fault::FaultSchedule,
}

impl NocFault {
    /// Builds the NoC fault state from a plane configuration.
    #[must_use]
    pub fn from_plane(cfg: &maple_sim::fault::FaultPlaneConfig) -> Self {
        NocFault {
            drop: cfg.noc_drop_schedule(),
            delay: cfg.noc_delay_schedule(),
        }
    }
}

const PORTS: usize = 5;
const LOCAL: usize = 0;
const NORTH: usize = 1;
const EAST: usize = 2;
const SOUTH: usize = 3;
const WEST: usize = 4;

#[derive(Debug)]
struct Packet<T> {
    dst: Coord,
    flits: u8,
    injected_at: Cycle,
    ready_at: Cycle,
    hops: u64,
    payload: T,
}

/// The mesh interconnect. See the crate docs for an example.
#[derive(Debug)]
pub struct Mesh<T> {
    cfg: MeshConfig,
    /// Input buffers: `buffers[router][port]`.
    buffers: Vec<Vec<VecDeque<Packet<T>>>>,
    /// Serialization: each output port is busy until this cycle.
    port_busy: Vec<[Cycle; PORTS]>,
    /// Round-robin arbitration state per router.
    rr_start: Vec<usize>,
    delivered: Vec<VecDeque<T>>,
    stats: MeshStats,
    /// Fault plane slice; `None` (the default) means perfectly reliable.
    fault: Option<NocFault>,
    /// Observability tracer (disabled by default; hop and fault events).
    tracer: Tracer,
}

impl<T> Mesh<T> {
    /// Builds an idle mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(cfg: MeshConfig) -> Self {
        assert!(cfg.width > 0 && cfg.height > 0, "mesh must be non-empty");
        let n = cfg.nodes();
        Mesh {
            cfg,
            buffers: (0..n)
                .map(|_| (0..PORTS).map(|_| VecDeque::new()).collect())
                .collect(),
            port_busy: vec![[Cycle::ZERO; PORTS]; n],
            rr_start: vec![0; n],
            delivered: (0..n).map(|_| VecDeque::new()).collect(),
            stats: MeshStats::default(),
            fault: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the fault plane's NoC schedules. Fault-free operation is
    /// the default; installing schedules only affects packets injected
    /// through [`Mesh::inject_unreliable`].
    pub fn set_fault(&mut self, fault: NocFault) {
        self.fault = Some(fault);
    }

    /// Installs an observability tracer; every router hop and fault-plane
    /// action is recorded through it. Tracing never changes routing or
    /// timing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The mesh configuration.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    fn idx(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.cfg.width) + usize::from(c.x)
    }

    fn coord(&self, idx: usize) -> Coord {
        Coord::new(
            (idx % usize::from(self.cfg.width)) as u16,
            (idx / usize::from(self.cfg.width)) as u16,
        )
    }

    fn in_bounds(&self, c: Coord) -> bool {
        c.x < self.cfg.width && c.y < self.cfg.height
    }

    /// Injects a packet of `flits` flits at `src` destined for `dst`.
    ///
    /// The packet becomes routable on the next cycle. Returns the payload
    /// wrapped in [`Backpressure`] if the local input buffer is full.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] carrying the payload when the local input
    /// buffer at `src` is full; callers retry on a later cycle.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` lies outside the mesh, or `flits == 0`.
    pub fn inject(
        &mut self,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        assert!(self.in_bounds(src), "inject: src {src} out of bounds");
        assert!(self.in_bounds(dst), "inject: dst {dst} out of bounds");
        assert!(flits > 0, "inject: packets need at least one flit");
        let i = self.idx(src);
        if self.buffers[i][LOCAL].len() >= self.cfg.buffer_depth {
            return Err(Backpressure(payload));
        }
        self.buffers[i][LOCAL].push_back(Packet {
            dst,
            flits,
            injected_at: now,
            ready_at: now,
            hops: 0,
            payload,
        });
        self.stats.injected.inc();
        Ok(())
    }

    /// Like [`Mesh::inject`], but the packet is subject to the installed
    /// [`NocFault`] schedules: it may be silently dropped (counted as
    /// injected and in [`MeshStats::dropped`]) or held for extra cycles.
    ///
    /// Fault draws happen only after the packet is admitted, so a
    /// backpressured retry does not consume randomness. Without an
    /// installed fault state this is exactly [`Mesh::inject`].
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] as [`Mesh::inject`] does.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Mesh::inject`].
    pub fn inject_unreliable(
        &mut self,
        now: Cycle,
        src: Coord,
        dst: Coord,
        flits: u8,
        payload: T,
    ) -> Result<(), Backpressure<T>> {
        assert!(self.in_bounds(src), "inject: src {src} out of bounds");
        assert!(self.in_bounds(dst), "inject: dst {dst} out of bounds");
        assert!(flits > 0, "inject: packets need at least one flit");
        let i = self.idx(src);
        if self.buffers[i][LOCAL].len() >= self.cfg.buffer_depth {
            return Err(Backpressure(payload));
        }
        let mut ready_at = now;
        if let Some(f) = &mut self.fault {
            if f.drop.strike() {
                // The packet entered the network and died there.
                self.stats.injected.inc();
                self.stats.dropped.inc();
                self.tracer
                    .emit(now, || TraceEvent::FaultInjected { site: FaultSite::NocDrop });
                return Ok(());
            }
            if f.delay.strike() {
                self.stats.delayed.inc();
                ready_at = now.plus(f.delay.magnitude());
                self.tracer
                    .emit(now, || TraceEvent::FaultInjected { site: FaultSite::NocDelay });
            }
        }
        self.buffers[i][LOCAL].push_back(Packet {
            dst,
            flits,
            injected_at: now,
            ready_at,
            hops: 0,
            payload,
        });
        self.stats.injected.inc();
        Ok(())
    }

    /// Whether a new packet can currently be injected at `src`.
    #[must_use]
    pub fn can_inject(&self, src: Coord) -> bool {
        let i = self.idx(src);
        self.buffers[i][LOCAL].len() < self.cfg.buffer_depth
    }

    /// XY route: move east/west until the column matches, then north/south.
    fn route(&self, here: Coord, dst: Coord) -> usize {
        if dst.x > here.x {
            EAST
        } else if dst.x < here.x {
            WEST
        } else if dst.y > here.y {
            SOUTH
        } else if dst.y < here.y {
            NORTH
        } else {
            LOCAL
        }
    }

    fn neighbor(&self, here: Coord, dir: usize) -> Coord {
        match dir {
            NORTH => Coord::new(here.x, here.y - 1),
            SOUTH => Coord::new(here.x, here.y + 1),
            EAST => Coord::new(here.x + 1, here.y),
            WEST => Coord::new(here.x - 1, here.y),
            _ => here,
        }
    }

    /// Reverse of the output direction: the input port a packet arrives on.
    fn entry_port(dir: usize) -> usize {
        match dir {
            NORTH => SOUTH,
            SOUTH => NORTH,
            EAST => WEST,
            WEST => EAST,
            other => other,
        }
    }

    /// Advances every router by one cycle.
    ///
    /// Each router considers its five input ports in round-robin order and
    /// forwards at most one packet per *output* port per cycle; forwarding a
    /// packet occupies the output for `flits` cycles (serialization) and the
    /// packet arrives at the neighbour `hop_latency` cycles later.
    pub fn tick(&mut self, now: Cycle) {
        for r in 0..self.buffers.len() {
            let here = self.coord(r);
            let start = self.rr_start[r];
            self.rr_start[r] = (start + 1) % PORTS;
            // Each output port grants at most once per cycle.
            let mut granted = [false; PORTS];
            for k in 0..PORTS {
                let port = (start + k) % PORTS;
                let Some(head) = self.buffers[r][port].front() else {
                    continue;
                };
                if head.ready_at > now {
                    continue;
                }
                let out = self.route(here, head.dst);
                if granted[out] || self.port_busy[r][out] > now {
                    continue;
                }
                if out == LOCAL {
                    let pkt = self.buffers[r][port].pop_front().expect("head exists");
                    granted[LOCAL] = true;
                    self.port_busy[r][LOCAL] = now.plus(u64::from(pkt.flits));
                    self.stats.delivered.inc();
                    self.stats.hops.add(pkt.hops);
                    self.stats.latency.record(now.since(pkt.injected_at));
                    self.delivered[r].push_back(pkt.payload);
                    continue;
                }
                let next = self.neighbor(here, out);
                let next_idx = self.idx(next);
                let entry = Self::entry_port(out);
                if self.buffers[next_idx][entry].len() >= self.cfg.buffer_depth {
                    continue; // credit-based backpressure
                }
                let mut pkt = self.buffers[r][port].pop_front().expect("head exists");
                granted[out] = true;
                self.port_busy[r][out] = now.plus(u64::from(pkt.flits));
                pkt.ready_at = now.plus(self.cfg.hop_latency);
                pkt.hops += 1;
                self.tracer.emit(now, || TraceEvent::NocHop {
                    x: here.x,
                    y: here.y,
                    flits: pkt.flits,
                });
                self.buffers[next_idx][entry].push_back(pkt);
            }
        }
    }

    /// Earliest cycle at or after `now` at which ticking the mesh could
    /// have an observable effect, for the event-horizon scheduler.
    ///
    /// Conservative: any buffered packet or undrained delivery pins the
    /// horizon to `now` — the mesh never skips while traffic is in flight
    /// (arbitration, serialization and backpressure interact per cycle).
    /// An empty mesh is quiescent; its only per-cycle state, the
    /// round-robin pointers, is caught up in bulk by [`Mesh::skip`].
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_quiescent() {
            None
        } else {
            Some(now)
        }
    }

    /// Catches the mesh up over `cycles` skipped (quiescent) cycles.
    ///
    /// The dense loop rotates every router's round-robin arbitration
    /// pointer once per [`Mesh::tick`] whether or not any packet moves;
    /// skipping must apply the same rotation in bulk so the first
    /// arbitration after a gap matches the dense reference bit-for-bit.
    pub fn skip(&mut self, cycles: u64) {
        let step = (cycles % PORTS as u64) as usize;
        for start in &mut self.rr_start {
            *start = (*start + step) % PORTS;
        }
    }

    /// Removes and returns every payload delivered at `node` so far.
    pub fn take_delivered(&mut self, node: Coord) -> Vec<T> {
        let i = self.idx(node);
        self.delivered[i].drain(..).collect()
    }

    /// Removes and returns at most one delivered payload at `node`.
    pub fn take_one_delivered(&mut self, node: Coord) -> Option<T> {
        let i = self.idx(node);
        self.delivered[i].pop_front()
    }

    /// Number of packets currently buffered anywhere in the mesh.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.buffers
            .iter()
            .map(|ports| ports.iter().map(VecDeque::len).sum::<usize>())
            .sum()
    }

    /// Whether the mesh holds no packets (in routers or awaiting ejection).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0 && self.delivered.iter().all(VecDeque::is_empty)
    }

    /// Aggregate statistics since construction.
    #[must_use]
    pub fn stats(&self) -> &MeshStats {
        &self.stats
    }
}

impl<T> maple_sim::Clocked for Mesh<T> {
    type Ctx<'a> = ();

    fn tick(&mut self, now: Cycle, (): ()) {
        Mesh::tick(self, now);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Mesh::next_event(self, now)
    }
}

#[cfg(test)]
#[allow(clippy::explicit_counter_loop)]
mod tests {
    use super::*;

    fn drive<T>(mesh: &mut Mesh<T>, from: Cycle, cycles: u64) -> Cycle {
        let mut now = from;
        for _ in 0..cycles {
            mesh.tick(now);
            now += 1;
        }
        now
    }

    #[test]
    fn coord_hops() {
        assert_eq!(Coord::new(0, 0).hops_to(Coord::new(3, 2)), 5);
        assert_eq!(Coord::new(3, 2).hops_to(Coord::new(0, 0)), 5);
        assert_eq!(Coord::new(1, 1).hops_to(Coord::new(1, 1)), 0);
        assert_eq!(Coord::new(2, 1).to_string(), "(2,1)");
    }

    #[test]
    fn single_hop_delivery_latency() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(2, 1));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        mesh.inject(Cycle(0), src, dst, 1, 99).unwrap();
        // Cycle 0: forwarded east, arrives ready at cycle 1.
        // Cycle 1: delivered locally at dst.
        mesh.tick(Cycle(0));
        assert!(mesh.take_delivered(dst).is_empty());
        mesh.tick(Cycle(1));
        assert_eq!(mesh.take_delivered(dst), vec![99]);
        assert_eq!(mesh.stats().hops.get(), 1);
    }

    #[test]
    fn self_delivery() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(1, 1));
        let c = Coord::new(0, 0);
        mesh.inject(Cycle(0), c, c, 1, 7).unwrap();
        mesh.tick(Cycle(0));
        assert_eq!(mesh.take_delivered(c), vec![7]);
        assert_eq!(mesh.stats().hops.get(), 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(8, 8));
        let src = Coord::new(0, 0);
        let dst = Coord::new(7, 7);
        mesh.inject(Cycle(0), src, dst, 1, 1).unwrap();
        drive(&mut mesh, Cycle(0), 40);
        assert_eq!(mesh.take_delivered(dst), vec![1]);
        assert_eq!(mesh.stats().hops.get(), 14);
        // 14 hops then ejection on the cycle after the last hop.
        assert_eq!(mesh.stats().latency.mean(), 14.0);
    }

    #[test]
    fn xy_routing_no_reordering_same_pair() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(4, 4));
        let src = Coord::new(0, 3);
        let dst = Coord::new(3, 0);
        let mut now = Cycle(0);
        for i in 0..6 {
            mesh.inject(now, src, dst, 1, i).unwrap();
            mesh.tick(now);
            now += 1;
        }
        drive(&mut mesh, now, 30);
        assert_eq!(mesh.take_delivered(dst), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn backpressure_on_full_local_buffer() {
        let cfg = MeshConfig::new(2, 1).with_buffer_depth(2);
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        // No ticks: local buffer can hold exactly 2.
        assert!(mesh.inject(Cycle(0), src, dst, 1, 0).is_ok());
        assert!(mesh.inject(Cycle(0), src, dst, 1, 1).is_ok());
        assert!(!mesh.can_inject(src));
        let err = mesh.inject(Cycle(0), src, dst, 1, 2).unwrap_err();
        assert_eq!(err, Backpressure(2));
        assert!(err.to_string().contains("injection refused"));
    }

    #[test]
    fn serialization_throttles_big_packets() {
        // Two 8-flit packets from the same source: second must wait for the
        // first to serialize onto the east port.
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(2, 1));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        mesh.inject(Cycle(0), src, dst, 8, 0).unwrap();
        mesh.inject(Cycle(0), src, dst, 8, 1).unwrap();
        let mut arrivals = Vec::new();
        let mut now = Cycle(0);
        for _ in 0..40 {
            mesh.tick(now);
            for _ in mesh.take_delivered(dst) {
                arrivals.push(now);
            }
            now += 1;
        }
        assert_eq!(arrivals.len(), 2);
        assert!(
            arrivals[1].since(arrivals[0]) >= 8,
            "second packet should be serialized at least 8 cycles later, got {arrivals:?}"
        );
    }

    #[test]
    fn all_pairs_delivery() {
        let cfg = MeshConfig::new(3, 3);
        let mut mesh: Mesh<(Coord, Coord)> = Mesh::new(cfg);
        let mut expected = 0;
        let mut now = Cycle(0);
        for sy in 0..3 {
            for sx in 0..3 {
                for dy in 0..3 {
                    for dx in 0..3 {
                        let s = Coord::new(sx, sy);
                        let d = Coord::new(dx, dy);
                        loop {
                            match mesh.inject(now, s, d, 1, (s, d)) {
                                Ok(()) => break,
                                Err(_) => {
                                    mesh.tick(now);
                                    now += 1;
                                }
                            }
                        }
                        expected += 1;
                    }
                }
            }
        }
        let mut got = 0;
        for _ in 0..500 {
            mesh.tick(now);
            for dy in 0..3 {
                for dx in 0..3 {
                    let here = Coord::new(dx, dy);
                    for (_s, d) in mesh.take_delivered(here) {
                        assert_eq!(d, here, "packet delivered to wrong node");
                        got += 1;
                    }
                }
            }
            now += 1;
        }
        assert_eq!(got, expected);
        assert!(mesh.is_quiescent());
        assert_eq!(mesh.stats().delivered.get(), expected as u64);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn inject_out_of_bounds_panics() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(2, 2));
        let _ = mesh.inject(Cycle(0), Coord::new(0, 0), Coord::new(5, 5), 1, 0);
    }

    #[test]
    fn hop_latency_config_respected() {
        let cfg = MeshConfig::new(3, 1).with_hop_latency(4);
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let src = Coord::new(0, 0);
        let dst = Coord::new(2, 0);
        mesh.inject(Cycle(0), src, dst, 1, 5).unwrap();
        let mut now = Cycle(0);
        let mut arrival = None;
        for _ in 0..60 {
            mesh.tick(now);
            if !mesh.take_delivered(dst).is_empty() {
                arrival = Some(now);
                break;
            }
            now += 1;
        }
        // 2 hops × 4 cycles each, plus ejection.
        assert!(arrival.expect("delivered").0 >= 8);
    }

    #[test]
    fn take_one_delivered() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(1, 1));
        let c = Coord::new(0, 0);
        mesh.inject(Cycle(0), c, c, 1, 1).unwrap();
        mesh.inject(Cycle(1), c, c, 1, 2).unwrap();
        drive(&mut mesh, Cycle(0), 5);
        assert_eq!(mesh.take_one_delivered(c), Some(1));
        assert_eq!(mesh.take_one_delivered(c), Some(2));
        assert_eq!(mesh.take_one_delivered(c), None);
    }

    #[test]
    fn fault_plane_drops_unreliable_packets() {
        use maple_sim::fault::FaultPlaneConfig;
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(2, 2));
        mesh.set_fault(NocFault::from_plane(
            &FaultPlaneConfig::new(3).with_noc_drop(1.0),
        ));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 1);
        for k in 0..8 {
            mesh.inject_unreliable(Cycle(k), src, dst, 1, k as u32).unwrap();
        }
        drive(&mut mesh, Cycle(8), 64);
        assert!(mesh.take_delivered(dst).is_empty(), "all packets dropped");
        assert_eq!(mesh.stats().dropped.get(), 8);
        assert_eq!(mesh.stats().injected.get(), 8, "drops still count as injected");
        assert_eq!(mesh.stats().delivered.get(), 0);
        assert!(mesh.is_quiescent());
    }

    #[test]
    fn fault_plane_delays_but_delivers() {
        use maple_sim::fault::FaultPlaneConfig;
        let extra = 40;
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(2, 1));
        mesh.set_fault(NocFault::from_plane(
            &FaultPlaneConfig::new(5).with_noc_delay(1.0, extra),
        ));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        mesh.inject_unreliable(Cycle(0), src, dst, 1, 77).unwrap();
        let mut arrival = None;
        for t in 0..200u64 {
            mesh.tick(Cycle(t));
            if let Some(v) = mesh.take_one_delivered(dst) {
                arrival = Some((t, v));
                break;
            }
        }
        let (t, v) = arrival.expect("delayed packet still arrives");
        assert_eq!(v, 77);
        assert!(t >= extra, "held at least {extra} extra cycles, arrived at {t}");
        assert_eq!(mesh.stats().delayed.get(), 1);
        assert_eq!(mesh.stats().dropped.get(), 0);
    }

    #[test]
    fn inject_unreliable_without_fault_state_is_reliable() {
        let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(2, 1));
        let src = Coord::new(0, 0);
        let dst = Coord::new(1, 0);
        mesh.inject_unreliable(Cycle(0), src, dst, 1, 9).unwrap();
        drive(&mut mesh, Cycle(0), 16);
        assert_eq!(mesh.take_delivered(dst), [9]);
        assert_eq!(mesh.stats().dropped.get(), 0);
        assert_eq!(mesh.stats().delayed.get(), 0);
    }
}
