//! The property runner: seeded case generation, failure detection
//! (returned errors *and* panics), greedy shrinking, and a reproduction
//! report.

use crate::gen::Gen;
use maple_sim::rng::SimRng;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex, Once, OnceLock};
use std::thread::ThreadId;

/// Default number of generated cases per property. Kept moderate because
/// several properties drive full-system simulations; raise per-property
/// with [`Config::with_cases`] or globally with `MAPLE_TESTKIT_CASES`.
pub const DEFAULT_CASES: u64 = 256;

/// Fixed base so unseeded runs are deterministic in CI; the property name
/// is folded in so distinct properties explore distinct streams.
const DEFAULT_SEED: u64 = 0x4D41_504C_4521_2121; // "MAPLE!!!"

/// Runner configuration for one property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Property name, printed in failure reports.
    pub name: &'static str,
    /// Number of generated cases.
    pub cases: u64,
    /// Base seed; case `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Cap on accepted shrink steps.
    pub max_shrink_rounds: u64,
    /// Cap on total candidate executions during shrinking.
    pub max_shrink_candidates: u64,
}

impl Config {
    /// Builds the default configuration for a named property.
    ///
    /// The seed defaults to a fixed constant mixed with the property name
    /// (deterministic CI); `MAPLE_TESTKIT_SEED` overrides it (decimal or
    /// `0x`-prefixed hex) to reproduce a printed failure, and
    /// `MAPLE_TESTKIT_CASES` overrides the case count.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        let seed = match env_u64("MAPLE_TESTKIT_SEED") {
            Some(s) => s,
            None => DEFAULT_SEED ^ fnv1a(name.as_bytes()),
        };
        Config {
            name,
            cases: env_u64("MAPLE_TESTKIT_CASES").unwrap_or(DEFAULT_CASES),
            seed,
            max_shrink_rounds: 1024,
            max_shrink_candidates: 4096,
        }
    }

    /// Overrides the case count (unless `MAPLE_TESTKIT_CASES` is set,
    /// which always wins so a long fuzz session needs no code edits).
    #[must_use]
    pub fn with_cases(mut self, cases: u64) -> Self {
        if std::env::var_os("MAPLE_TESTKIT_CASES").is_none() {
            self.cases = cases;
        }
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("[maple-testkit] could not parse {key}={raw} as u64"),
    }
}

/// FNV-1a, used only to fold property names into the default seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the per-case seed. One splitmix-style scramble keeps adjacent
/// cases decorrelated while staying a pure function of `(base, case)`.
fn case_seed(base: u64, case: u64) -> u64 {
    let mut r = SimRng::seed(base ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
    r.next_u64()
}

/// Checks a property over generated cases; panics with a shrunk
/// counterexample and a reproduction seed on failure.
///
/// The property signals failure by returning `Err(message)` (see
/// [`tk_assert!`](crate::tk_assert)) or by panicking — both are caught,
/// so plain `assert!`/`unwrap` inside the property or the code under test
/// also count as falsifications and get shrunk.
///
/// # Panics
///
/// Panics when the property is falsified (that is the failure report).
pub fn check<G, F>(cfg: &Config, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let cs = case_seed(cfg.seed, case);
        let value = gen.generate(&mut SimRng::seed(cs));
        if let Some(first_msg) = run_case(&prop, &value) {
            falsify(cfg, gen, &prop, case, value, first_msg);
        }
    }
}

/// [`check`] with the case evaluations dispatched as one fleet batch
/// (worker count from `MAPLE_JOBS`).
///
/// Each case's value is a pure function of `(seed, case index)` — the
/// generator is re-run inside the job — so parallel evaluation observes
/// exactly the cases the serial runner would. On failure, the *lowest*
/// failing case index is shrunk and reported through the same tail as
/// [`check`], so the failure report (seed, counterexample, message) is
/// identical at every worker count. The shrink descent itself stays
/// serial: each step depends on which candidate failed before it.
///
/// # Panics
///
/// Panics when the property is falsified (that is the failure report).
pub fn check_parallel<G, F>(cfg: &Config, gen: &G, prop: F)
where
    G: Gen + Sync,
    F: Fn(&G::Value) -> Result<(), String> + Sync,
{
    let prop = &prop;
    let jobs: Vec<_> = (0..cfg.cases)
        .map(|case| {
            let cs = case_seed(cfg.seed, case);
            move || {
                let value = gen.generate(&mut SimRng::seed(cs));
                run_case(prop, &value)
            }
        })
        .collect();
    let verdicts = maple_fleet::run_batch(&maple_fleet::FleetConfig::from_env(), jobs)
        .into_results()
        .unwrap_or_else(|(i, e)| {
            panic!(
                "[maple-testkit] property '{}' case {i} escaped run_case: {e}",
                cfg.name
            )
        });
    // Outcomes are in submission order, so "first Some" is the same case
    // the serial runner would have stopped at.
    if let Some((case, first_msg)) = verdicts
        .into_iter()
        .enumerate()
        .find_map(|(i, v)| v.map(|msg| (i as u64, msg)))
    {
        let value = gen.generate(&mut SimRng::seed(case_seed(cfg.seed, case)));
        falsify(cfg, gen, prop, case, value, first_msg);
    }
}

/// The shared failure tail of [`check`]/[`check_parallel`]: greedy
/// shrink descent, then the reproduction report as a panic.
fn falsify<G, F>(cfg: &Config, gen: &G, prop: &F, case: u64, value: G::Value, first_msg: String) -> !
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    // Greedy descent: take the first candidate that still fails,
    // restart from it, stop when no candidate fails or caps hit.
    let mut cur = value.clone();
    let mut cur_msg = first_msg.clone();
    let mut rounds = 0u64;
    let mut evals = 0u64;
    'outer: while rounds < cfg.max_shrink_rounds {
        for cand in gen.shrink(&cur) {
            if evals >= cfg.max_shrink_candidates {
                break 'outer;
            }
            evals += 1;
            if let Some(msg) = run_case(prop, &cand) {
                cur = cand;
                cur_msg = msg;
                rounds += 1;
                continue 'outer;
            }
        }
        break;
    }

    panic!(
        "[maple-testkit] property '{name}' falsified\n\
         \x20 case {case}/{cases}, base seed {seed:#018x}\n\
         \x20 reproduce with: MAPLE_TESTKIT_SEED={seed:#x} cargo test {name}\n\
         \x20 original input: {orig}\n\
         \x20 original failure: {first_msg}\n\
         \x20 shrunk input ({rounds} shrink rounds, {evals} candidate runs): {shrunk}\n\
         \x20 shrunk failure: {cur_msg}",
        name = cfg.name,
        cases = cfg.cases,
        seed = cfg.seed,
        orig = clip(&format!("{value:?}"), 2000),
        shrunk = clip(&format!("{cur:?}"), 4000),
    );
}

/// Runs the property once; `Some(message)` on failure (error or panic).
fn run_case<V, F>(prop: &F, value: &V) -> Option<String>
where
    F: Fn(&V) -> Result<(), String>,
{
    let _quiet = QuietPanics::enter();
    match panic::catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

fn clip(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let cut = (0..=max).rev().find(|&i| s.is_char_boundary(i)).unwrap_or(0);
    format!("{}… [{} bytes clipped]", &s[..cut], s.len() - cut)
}

/// Suppresses the default panic-hook backtrace spam for panics raised on
/// threads currently inside [`run_case`] — shrinking may execute hundreds
/// of intentionally-failing candidates. Panics from other threads (e.g.
/// unrelated tests in the same process) still reach the previous hook.
struct QuietPanics;

fn suppressed() -> &'static Mutex<HashSet<ThreadId>> {
    static SET: OnceLock<Mutex<HashSet<ThreadId>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

impl QuietPanics {
    fn enter() -> QuietPanics {
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                let me = std::thread::current().id();
                let quiet = suppressed().lock().map(|s| s.contains(&me)).unwrap_or(false);
                if !quiet {
                    prev(info);
                }
            }));
        });
        if let Ok(mut set) = suppressed().lock() {
            set.insert(std::thread::current().id());
        }
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Ok(mut set) = suppressed().lock() {
            set.remove(&std::thread::current().id());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_completes() {
        let cfg = Config::new("always_true").with_cases(64);
        check(&cfg, &gen::u64_any(), |_| Ok(()));
    }

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        let a: Vec<u64> = (0..64).map(|i| case_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| case_seed(1, i)).collect();
        assert_eq!(a, b);
        let distinct: std::collections::BTreeSet<&u64> = a.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn failing_property_reports_and_shrinks() {
        // Falsify "no vector contains a value >= 100" and confirm the
        // report carries the seed and a fully-shrunk counterexample.
        let cfg = Config {
            name: "no_big_values",
            cases: 200,
            seed: 0x5EED,
            max_shrink_rounds: 1024,
            max_shrink_candidates: 4096,
        };
        let g = gen::vec_of(gen::u64_in(0..256), 0, 20);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check(&cfg, &g, |v| {
                if v.iter().any(|&x| x >= 100) {
                    Err(format!("contains big value: {v:?}"))
                } else {
                    Ok(())
                }
            });
        }));
        let msg = panic_message(&*outcome.expect_err("property must be falsified"));
        assert!(msg.contains("no_big_values"), "report names the property: {msg}");
        assert!(msg.contains("0x0000000000005eed"), "report prints the seed: {msg}");
        // Greedy shrinking must reach the minimal counterexample: the
        // single-element vector [100].
        assert!(
            msg.contains("shrunk input") && msg.contains("[100]"),
            "minimal counterexample found: {msg}"
        );
    }

    #[test]
    fn shrunk_failure_reproduces_from_seed() {
        // Two runs with the same seed falsify on the identical case and
        // shrink to the identical counterexample — the reproduction
        // contract printed in every report.
        let run = || {
            let cfg = Config {
                name: "repro",
                cases: 500,
                seed: 0xABCD_EF01,
                max_shrink_rounds: 1024,
                max_shrink_candidates: 4096,
            };
            let g = gen::vec_of(gen::u64_any(), 0, 30);
            let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                check(&cfg, &g, |v| {
                    let sum: u64 = v.iter().fold(0, |a, &b| a.wrapping_add(b));
                    if sum % 7 == 3 {
                        Err("sum hit the bad residue".into())
                    } else {
                        Ok(())
                    }
                });
            }));
            panic_message(&*out.expect_err("must fail"))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let cfg = Config {
            name: "panics_on_big",
            cases: 200,
            seed: 7,
            max_shrink_rounds: 1024,
            max_shrink_candidates: 4096,
        };
        let g = gen::u64_in(0..1000);
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
            check(&cfg, &g, |&v| {
                assert!(v < 500, "value too big: {v}");
                Ok(())
            });
        }));
        let msg = panic_message(&*out.expect_err("must fail"));
        // Integer halving toward the range floor lands exactly on the
        // boundary value.
        assert!(msg.contains("500"), "shrunk to the boundary: {msg}");
    }

    #[test]
    fn parallel_runner_matches_serial_report() {
        // check and check_parallel must produce the identical failure
        // report: same falsified case, same shrunk counterexample, same
        // message — regardless of worker scheduling.
        let drive = |parallel: bool| {
            let cfg = Config {
                name: "no_big_values_par",
                cases: 200,
                seed: 0x5EED,
                max_shrink_rounds: 1024,
                max_shrink_candidates: 4096,
            };
            let g = gen::vec_of(gen::u64_in(0..256), 0, 20);
            let prop = |v: &Vec<u64>| {
                if v.iter().any(|&x| x >= 100) {
                    Err(format!("contains big value: {v:?}"))
                } else {
                    Ok(())
                }
            };
            let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if parallel {
                    check_parallel(&cfg, &g, prop);
                } else {
                    check(&cfg, &g, prop);
                }
            }));
            panic_message(&*out.expect_err("property must be falsified"))
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn parallel_runner_passes_clean_properties() {
        let cfg = Config::new("always_true_par").with_cases(64);
        check_parallel(&cfg, &gen::u64_any(), |_| Ok(()));
    }

    #[test]
    fn name_folding_is_deterministic_and_distinct() {
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        // env_u64 itself is exercised through Config::new in the selftest
        // integration test; here we only pin the name-folding hash.
        assert_eq!(fnv1a(b"queue"), fnv1a(b"queue"));
    }
}
