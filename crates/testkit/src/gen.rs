//! Generators: seeded random construction plus shrinking.
//!
//! A [`Gen`] produces values from a [`SimRng`] and, given a failing value,
//! proposes a list of *simpler* candidate values ([`Gen::shrink`]). The
//! runner tries candidates in order and greedily descends into the first
//! one that still fails, so candidate lists should be ordered from most
//! aggressive (smallest) to least.
//!
//! Combinators shrink where an inverse is known: integers shrink toward
//! their lower bound (or zero) by halving, vectors shrink by removing
//! chunks and by shrinking individual elements, tuples shrink per
//! component, [`choice`] shrinks toward earlier alternatives. [`map`] and
//! [`from_fn`] cannot shrink — when shrinking matters for a composite
//! type, implement [`Gen`] directly (see the workspace's ported property
//! suites for examples) and reuse the [`shrink_u64`]/[`shrink_i64_toward`]
//! helpers.

use maple_sim::rng::SimRng;
use std::fmt::Debug;
use std::ops::Range;

/// A value generator with shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Debug + Clone;

    /// Produces one value from the seeded RNG.
    fn generate(&self, rng: &mut SimRng) -> Self::Value;

    /// Proposes simpler variants of a failing value, most aggressive
    /// first. The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut SimRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

impl<G: Gen + ?Sized> Gen for Box<G> {
    type Value = G::Value;
    fn generate(&self, rng: &mut SimRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Halving ladder from `v` toward `lo`, most aggressive first.
#[must_use]
pub fn shrink_u64_toward(v: u64, lo: u64) -> Vec<u64> {
    if v <= lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo && out.last() != Some(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    out.dedup();
    out
}

/// Halving ladder from `v` toward zero.
#[must_use]
pub fn shrink_u64(v: u64) -> Vec<u64> {
    shrink_u64_toward(v, 0)
}

/// Halving ladder from `v` toward `target` (for signed values, usually 0).
#[must_use]
pub fn shrink_i64_toward(v: i64, target: i64) -> Vec<i64> {
    if v == target {
        return Vec::new();
    }
    let mut out = vec![target];
    let mut delta = (v - target) / 2;
    while delta != 0 {
        let cand = v - delta;
        if cand != target && out.last() != Some(&cand) {
            out.push(cand);
        }
        delta /= 2;
    }
    out.dedup();
    out
}

/// Uniform integer in a half-open range, shrinking toward the lower bound.
#[derive(Debug, Clone)]
pub struct UintGen {
    lo: u64,
    hi: u64,
}

impl Gen for UintGen {
    type Value = u64;
    fn generate(&self, rng: &mut SimRng) -> u64 {
        rng.range(self.lo, self.hi)
    }
    fn shrink(&self, value: &u64) -> Vec<u64> {
        shrink_u64_toward(*value, self.lo)
    }
}

/// Uniform `u64` in `[range.start, range.end)`, shrinking toward the
/// lower bound.
///
/// # Panics
///
/// Panics if the range is empty.
#[must_use]
pub fn u64_in(range: Range<u64>) -> UintGen {
    assert!(range.start < range.end, "u64_in requires a non-empty range");
    UintGen {
        lo: range.start,
        hi: range.end,
    }
}

/// Uniform `u64` over the full domain.
#[must_use]
pub fn u64_any() -> impl Gen<Value = u64> {
    struct AnyU64;
    impl Gen for AnyU64 {
        type Value = u64;
        fn generate(&self, rng: &mut SimRng) -> u64 {
            rng.next_u64()
        }
        fn shrink(&self, value: &u64) -> Vec<u64> {
            shrink_u64(*value)
        }
    }
    AnyU64
}

macro_rules! narrow_uint_gen {
    ($fname:ident, $ty:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        #[must_use]
        pub fn $fname(range: Range<$ty>) -> impl Gen<Value = $ty> {
            struct Narrow(UintGen);
            impl Gen for Narrow {
                type Value = $ty;
                fn generate(&self, rng: &mut SimRng) -> $ty {
                    self.0.generate(rng) as $ty
                }
                fn shrink(&self, value: &$ty) -> Vec<$ty> {
                    self.0
                        .shrink(&(*value as u64))
                        .into_iter()
                        .map(|v| v as $ty)
                        .collect()
                }
            }
            assert!(range.start < range.end, "empty range");
            Narrow(UintGen {
                lo: range.start as u64,
                hi: range.end as u64,
            })
        }
    };
}

narrow_uint_gen!(u8_in, u8, "Uniform `u8` in a half-open range, shrinking toward the lower bound.");
narrow_uint_gen!(u32_in, u32, "Uniform `u32` in a half-open range, shrinking toward the lower bound.");
narrow_uint_gen!(usize_in, usize, "Uniform `usize` in a half-open range, shrinking toward the lower bound.");

/// Uniform `i64` in `[range.start, range.end)`, shrinking toward zero
/// when the range contains it (toward the bound closest to zero
/// otherwise).
///
/// # Panics
///
/// Panics if the range is empty.
#[must_use]
pub fn i64_in(range: Range<i64>) -> impl Gen<Value = i64> {
    struct IntGen {
        lo: i64,
        hi: i64,
    }
    impl Gen for IntGen {
        type Value = i64;
        fn generate(&self, rng: &mut SimRng) -> i64 {
            let width = self.hi.wrapping_sub(self.lo) as u64;
            self.lo.wrapping_add(rng.below(width) as i64)
        }
        fn shrink(&self, value: &i64) -> Vec<i64> {
            let target = 0i64.clamp(self.lo, self.hi - 1);
            shrink_i64_toward(*value, target)
        }
    }
    assert!(range.start < range.end, "i64_in requires a non-empty range");
    IntGen {
        lo: range.start,
        hi: range.end,
    }
}

/// Fair coin, shrinking `true` to `false`.
#[must_use]
pub fn bools() -> impl Gen<Value = bool> {
    struct BoolGen;
    impl Gen for BoolGen {
        type Value = bool;
        fn generate(&self, rng: &mut SimRng) -> bool {
            rng.below(2) == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
    BoolGen
}

/// The constant generator: always `value`, never shrinks.
#[must_use]
pub fn just<T: Debug + Clone>(value: T) -> impl Gen<Value = T> {
    struct Just<T>(T);
    impl<T: Debug + Clone> Gen for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SimRng) -> T {
            self.0.clone()
        }
    }
    Just(value)
}

/// Uniform pick from a fixed list, shrinking toward earlier entries
/// (order the list simplest-first).
///
/// # Panics
///
/// Panics if `items` is empty.
#[must_use]
pub fn choice<T: Debug + Clone + PartialEq>(items: Vec<T>) -> impl Gen<Value = T> {
    struct Choice<T>(Vec<T>);
    impl<T: Debug + Clone + PartialEq> Gen for Choice<T> {
        type Value = T;
        fn generate(&self, rng: &mut SimRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            match self.0.iter().position(|x| x == value) {
                Some(pos) => self.0[..pos].to_vec(),
                None => Vec::new(),
            }
        }
    }
    assert!(!items.is_empty(), "choice requires at least one item");
    Choice(items)
}

/// A generator from a plain closure; no shrinking.
#[must_use]
pub fn from_fn<T, F>(f: F) -> impl Gen<Value = T>
where
    T: Debug + Clone,
    F: Fn(&mut SimRng) -> T,
{
    struct FromFn<F>(F);
    impl<T: Debug + Clone, F: Fn(&mut SimRng) -> T> Gen for FromFn<F> {
        type Value = T;
        fn generate(&self, rng: &mut SimRng) -> T {
            (self.0)(rng)
        }
    }
    FromFn(f)
}

/// Applies `f` to generated values. The mapping is not invertible, so the
/// result does not shrink — implement [`Gen`] directly when shrinking of
/// the mapped type matters.
#[must_use]
pub fn map<G, T, F>(inner: G, f: F) -> impl Gen<Value = T>
where
    G: Gen,
    T: Debug + Clone,
    F: Fn(G::Value) -> T,
{
    struct Map<G, F>(G, F);
    impl<G: Gen, T: Debug + Clone, F: Fn(G::Value) -> T> Gen for Map<G, F> {
        type Value = T;
        fn generate(&self, rng: &mut SimRng) -> T {
            (self.1)(self.0.generate(rng))
        }
    }
    Map(inner, f)
}

/// Boxes a generator for use in heterogeneous lists ([`one_of`]).
#[must_use]
pub fn boxed<G>(g: G) -> Box<dyn Gen<Value = G::Value>>
where
    G: Gen + 'static,
{
    Box::new(g)
}

/// Picks uniformly among alternative generators of the same value type.
/// Shrink candidates are pooled from every arm (a candidate only
/// survives if the property still fails on it, so arms may propose
/// values they could not have produced).
///
/// # Panics
///
/// Panics if `arms` is empty.
#[must_use]
pub fn one_of<T: Debug + Clone>(arms: Vec<Box<dyn Gen<Value = T>>>) -> impl Gen<Value = T> {
    struct OneOf<T>(Vec<Box<dyn Gen<Value = T>>>);
    impl<T: Debug + Clone> Gen for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut SimRng) -> T {
            let arm = rng.below(self.0.len() as u64) as usize;
            self.0[arm].generate(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.iter().flat_map(|arm| arm.shrink(value)).collect()
        }
    }
    assert!(!arms.is_empty(), "one_of requires at least one arm");
    OneOf(arms)
}

/// Vector generator: length uniform in `[min_len, max_len]`, elements
/// from `elem`. Shrinks by removing chunks (halves down to single
/// elements, from several positions) and by shrinking individual
/// elements in place.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Builds a [`VecGen`]; bounds are inclusive.
///
/// # Panics
///
/// Panics if `min_len > max_len`.
#[must_use]
pub fn vec_of<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecGen<G> {
    assert!(min_len <= max_len, "vec_of requires min_len <= max_len");
    VecGen {
        elem,
        min_len,
        max_len,
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut SimRng) -> Vec<G::Value> {
        let span = (self.max_len - self.min_len) as u64 + 1;
        let len = self.min_len + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let n = value.len();
        let mut out = Vec::new();
        // Structural shrinks: drop chunks, biggest first.
        let mut chunk = n.saturating_sub(self.min_len);
        while chunk > 0 {
            let positions = [0, (n - chunk) / 2, n - chunk];
            let mut last = usize::MAX;
            for &start in &positions {
                if start == last {
                    continue;
                }
                last = start;
                let mut cand = Vec::with_capacity(n - chunk);
                cand.extend_from_slice(&value[..start]);
                cand.extend_from_slice(&value[start + chunk..]);
                out.push(cand);
            }
            chunk /= 2;
        }
        // Element shrinks: a few candidates per position.
        for i in 0..n {
            for ev in self.elem.shrink(&value[i]).into_iter().take(3) {
                let mut cand = value.clone();
                cand[i] = ev;
                out.push(cand);
            }
        }
        out
    }
}

macro_rules! tuple_gen {
    ($($g:ident : $v:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut SimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A: a: 0, B: b: 1);
tuple_gen!(A: a: 0, B: b: 1, C: c: 2);
tuple_gen!(A: a: 0, B: b: 1, C: c: 2, D: d: 3);
tuple_gen!(A: a: 0, B: b: 1, C: c: 2, D: d: 3, E: e: 4);
tuple_gen!(A: a: 0, B: b: 1, C: c: 2, D: d: 3, E: e: 4, F: f: 5);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(0xC0FFEE)
    }

    #[test]
    fn uint_respects_bounds_and_shrinks_toward_lo() {
        let g = u64_in(5..20);
        let mut r = rng();
        for _ in 0..500 {
            let v = g.generate(&mut r);
            assert!((5..20).contains(&v));
        }
        let cands = g.shrink(&19);
        assert!(cands.contains(&5), "lower bound proposed first");
        assert!(cands.iter().all(|&c| (5..19).contains(&c)));
        assert!(g.shrink(&5).is_empty(), "minimum does not shrink");
    }

    #[test]
    fn i64_shrinks_toward_zero() {
        let g = i64_in(-64..64);
        assert!(g.shrink(&-37).contains(&0));
        assert!(g.shrink(&0).is_empty());
        let positive = i64_in(10..20);
        assert!(positive.shrink(&19).contains(&10));
    }

    #[test]
    fn vec_len_bounds_hold() {
        let g = vec_of(u64_in(0..10), 2, 6);
        let mut r = rng();
        for _ in 0..300 {
            let v = g.generate(&mut r);
            assert!((2..=6).contains(&v.len()));
        }
    }

    #[test]
    fn vec_shrink_never_violates_min_len() {
        let g = vec_of(u64_in(0..10), 2, 8);
        let v = vec![9, 9, 9, 9, 9, 9];
        for cand in g.shrink(&v) {
            assert!(cand.len() >= 2, "candidate too short: {cand:?}");
        }
        // And chunk removal really is proposed.
        assert!(g.shrink(&v).iter().any(|c| c.len() < v.len()));
    }

    #[test]
    fn choice_shrinks_to_earlier_entries() {
        let g = choice(vec!["a", "b", "c"]);
        assert_eq!(g.shrink(&"c"), vec!["a", "b"]);
        assert!(g.shrink(&"a").is_empty());
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let g = (u64_in(0..100), bools());
        let cands = g.shrink(&(50, true));
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(50, false)));
    }

    #[test]
    fn one_of_pools_arm_shrinks() {
        let g = one_of(vec![boxed(u64_in(0..10)), boxed(u64_in(0..100))]);
        let cands = g.shrink(&50);
        assert!(cands.contains(&0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of(u64_any(), 0, 32);
        let a = g.generate(&mut SimRng::seed(77));
        let b = g.generate(&mut SimRng::seed(77));
        assert_eq!(a, b);
    }
}
