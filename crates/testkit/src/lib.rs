//! A dependency-free property-testing mini-framework for the MAPLE
//! workspace.
//!
//! The paper's correctness story rests on formal verification of the RTL;
//! the model-level analogue in this repository is randomized differential
//! testing of every component against a host reference. That testing has
//! to run *hermetically* — the build environment has no network, so
//! `proptest` and `rand` are unavailable — which is what this crate
//! provides, built on nothing but `std` and [`maple_sim::rng::SimRng`]
//! (the workspace's in-tree splitmix64/xoshiro256** PRNG).
//!
//! Three pieces:
//!
//! - [`gen`]: the [`Gen`] trait (generate + shrink) and combinators —
//!   integer ranges, booleans, constant choices, vectors, tuples,
//!   alternation ([`gen::one_of`]) and mapping.
//! - [`runner`]: [`check`], a seeded runner that executes a property over
//!   N generated cases, and on failure **greedily shrinks** the input —
//!   repeatedly taking the first shrink candidate that still fails —
//!   before reporting the minimal counterexample together with the seed
//!   that reproduces it.
//! - assertion macros [`tk_assert!`], [`tk_assert_eq!`], [`tk_assert_ne!`]
//!   that make a property return an error message instead of unwinding
//!   (plain `assert!` also works: the runner catches panics).
//!
//! # Example
//!
//! ```
//! use maple_testkit::{check, gen, Config, tk_assert};
//!
//! // "reversing twice is the identity"
//! let vecs = gen::vec_of(gen::u64_in(0..100), 0, 16);
//! check(&Config::new("reverse_reverse_id"), &vecs, |v| {
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     tk_assert!(w == *v, "double reverse changed {v:?} into {w:?}");
//!     Ok(())
//! });
//! ```
//!
//! # Reproducing a failure
//!
//! On failure the runner panics with a report that includes the base seed:
//!
//! ```text
//! [maple-testkit] property 'queue_matches_reference_model' falsified
//!   case 17/256, base seed 0x3a94f2c11d08b77d
//!   reproduce with: MAPLE_TESTKIT_SEED=0x3a94f2c11d08b77d cargo test ...
//! ```
//!
//! Setting `MAPLE_TESTKIT_SEED` replays the identical case sequence;
//! `MAPLE_TESTKIT_CASES` overrides the case count (e.g. a long overnight
//! run with `MAPLE_TESTKIT_CASES=100000`).

#![deny(missing_docs)]

pub mod gen;
pub mod runner;

pub use gen::Gen;
pub use maple_sim::rng::SimRng;
pub use runner::{check, check_parallel, Config};

/// Asserts a condition inside a property; on failure returns an error
/// from the enclosing property function.
///
/// With a single argument, the stringified condition becomes the message;
/// extra arguments are a `format!` message.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

/// Asserts two expressions are equal inside a property; on failure returns
/// an error carrying both values.
#[macro_export]
macro_rules! tk_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($arg)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts two expressions differ inside a property.
#[macro_export]
macro_rules! tk_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} ({}:{})\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("{}\n  both: {:?}", format!($($arg)+), l));
        }
    }};
}
