//! End-to-end selftest of the public maple-testkit API: the example from
//! the crate docs, macro-based properties, and the environment-variable
//! reproduction contract.

use maple_testkit::{check, gen, tk_assert, tk_assert_eq, Config, Gen};

#[test]
fn doc_example_reverse_reverse_identity() {
    let vecs = gen::vec_of(gen::u64_in(0..100), 0, 16);
    check(&Config::new("reverse_reverse_id"), &vecs, |v| {
        let mut w = v.clone();
        w.reverse();
        w.reverse();
        tk_assert!(w == *v, "double reverse changed {v:?} into {w:?}");
        Ok(())
    });
}

#[test]
fn tuple_and_choice_generators_compose() {
    let g = (
        gen::u32_in(1..64),
        gen::choice(vec!["spmv", "sdhp", "bfs"]),
        gen::bools(),
    );
    check(&Config::new("tuple_compose").with_cases(128), &g, |(n, kernel, flag)| {
        tk_assert!(*n >= 1 && *n < 64, "n out of range: {n}");
        tk_assert!(["spmv", "sdhp", "bfs"].contains(kernel), "bad kernel {kernel}");
        let _ = flag;
        Ok(())
    });
}

#[test]
fn tk_assert_eq_reports_both_values() {
    let cfg = Config {
        name: "eq_macro",
        cases: 10,
        seed: 1,
        max_shrink_rounds: 16,
        max_shrink_candidates: 64,
    };
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check(&cfg, &gen::just(41u64), |&v| {
            tk_assert_eq!(v + 1, 43, "off-by-one check");
            Ok(())
        });
    }));
    let payload = out.expect_err("must fail");
    let msg = payload
        .downcast_ref::<String>()
        .expect("report is a String payload");
    assert!(msg.contains("off-by-one check"), "{msg}");
    assert!(msg.contains("left: 42"), "{msg}");
    assert!(msg.contains("right: 43"), "{msg}");
}

/// This test owns the env-var contract, so it is the only test in the
/// binary that mutates the environment. Integration tests in this file
/// otherwise avoid `MAPLE_TESTKIT_*` to keep runs independent.
#[test]
fn env_seed_override_replays_identical_cases() {
    let gen_under = gen::vec_of(gen::u64_any(), 1, 8);
    let collect = || {
        let cfg = Config::new("env_replay");
        let seen = std::cell::RefCell::new(Vec::new());
        check(&cfg.clone().with_cases(16), &gen_under, |v| {
            seen.borrow_mut().push(v.clone());
            Ok(())
        });
        let seen = seen.into_inner();
        (cfg.seed, seen)
    };

    std::env::set_var("MAPLE_TESTKIT_SEED", "0xfeed_beef".replace('_', ""));
    let (seed_a, run_a) = collect();
    std::env::set_var("MAPLE_TESTKIT_SEED", "4276993775"); // same value, decimal
    let (seed_b, run_b) = collect();
    std::env::remove_var("MAPLE_TESTKIT_SEED");
    let (seed_c, _) = collect();

    assert_eq!(seed_a, 0xFEED_BEEF);
    assert_eq!(seed_a, seed_b, "hex and decimal parse to the same seed");
    assert_eq!(run_a, run_b, "same seed replays the identical case sequence");
    assert_ne!(seed_c, seed_a, "unset env falls back to the name-derived seed");
}

#[test]
fn custom_gen_impl_with_domain_shrink() {
    /// A domain-specific generator: power-of-two sizes, shrinking by
    /// halving — the pattern the workload oracles use for queue
    /// capacities and mesh dimensions.
    struct PowerOfTwo {
        max_log2: u32,
    }
    impl Gen for PowerOfTwo {
        type Value = u64;
        fn generate(&self, rng: &mut maple_testkit::SimRng) -> u64 {
            1u64 << rng.below(u64::from(self.max_log2) + 1)
        }
        fn shrink(&self, value: &u64) -> Vec<u64> {
            if *value > 1 {
                vec![value >> 1]
            } else {
                Vec::new()
            }
        }
    }

    check(&Config::new("pow2_in_range"), &PowerOfTwo { max_log2: 12 }, |&v| {
        tk_assert!(v.is_power_of_two(), "not a power of two: {v}");
        tk_assert!(v <= 4096, "too large: {v}");
        Ok(())
    });

    // And its shrink ladder terminates at 1.
    let cfg = Config {
        name: "pow2_shrink",
        cases: 50,
        seed: 99,
        max_shrink_rounds: 64,
        max_shrink_candidates: 256,
    };
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        check(&cfg, &PowerOfTwo { max_log2: 12 }, |&v| {
            tk_assert!(v == 0, "never zero: {v}");
            Ok(())
        });
    }));
    let payload = out.expect_err("must fail");
    let msg = payload.downcast_ref::<String>().expect("String payload");
    assert!(
        msg.contains("shrunk input") && msg.lines().any(|l| l.contains("shrunk input") && l.ends_with(": 1")),
        "halving ladder reaches the minimal power of two: {msg}"
    );
}
