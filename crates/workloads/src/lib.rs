//! The paper's evaluation workloads (Section 4.1) over the simulated SoC:
//! SDHP, SPMM, SPMV and BFS, each in every latency-tolerance variant the
//! figures compare, with host-side reference implementations every run is
//! verified against.

#![deny(missing_docs)]

pub mod bfs;
pub mod data;
#[cfg(test)]
mod edge_tests;
pub mod harness;
pub mod oracle;
pub mod sdhp;
pub mod slice;
pub mod spmm;
pub mod spmv;

pub use harness::{RunStats, Variant};
