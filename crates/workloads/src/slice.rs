//! Short request kernels for multi-tenant serving.
//!
//! A serving request is a small slice of work against a tenant's resident
//! dataset: an SPMV row slice (`y[r] = Σ values[j] * x[col_idx[j]]` over a
//! row range) or a BFS-style neighbor-gather query (`out[u] = Σ (x[c] ^ c)`
//! over `u`'s neighbors `c` — a one-hop frontier-expansion aggregate).
//! Both center on the same cache-averse indirect gather `x[col_idx[j]]`
//! the full kernels exercise, so every ladder rung applies: MAPLE
//! decoupling, software decoupling through shared-memory rings, and plain
//! do-all.
//!
//! The builders here are pure: they turn a query plus device addresses
//! into a [`Program`] and its register bindings without touching the
//! [`System`], so the serving scheduler can build programs for any core,
//! engine, or queue assignment at dispatch time.

use maple_baselines::swdec::{SwConsumer, SwProducer, SwQueueLayout};
use maple_isa::builder::ProgramBuilder;
use maple_isa::{Program, Reg};
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_vm::VAddr;

use crate::data::Csr;
use crate::harness::upload_u32;

/// What a serving request computes over its row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// SPMV row slice: `out[r-lo] = Σ_j values[j] * x[col_idx[j]]`.
    SpmvSlice,
    /// Neighbor-gather query: `out[u-lo] = Σ_c (x[c] ^ c)` over the
    /// neighbors `c` of vertex `u` — the per-vertex aggregate of a BFS
    /// frontier expansion reading a vertex-label array `x`.
    NeighborSum,
}

impl QueryKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::SpmvSlice => "spmv-slice",
            QueryKind::NeighborSum => "neighbor-sum",
        }
    }
}

/// One serving request: a query kind over rows `lo..hi` of the tenant's
/// CSR dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceQuery {
    /// What to compute.
    pub kind: QueryKind,
    /// First row (inclusive).
    pub lo: usize,
    /// Last row (exclusive).
    pub hi: usize,
}

impl SliceQuery {
    /// Number of output words the query produces.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.hi - self.lo
    }

    /// Host reference result (wrapping arithmetic, bit-comparable with
    /// the simulated output).
    #[must_use]
    pub fn reference(&self, a: &Csr, x: &[u32]) -> Vec<u32> {
        (self.lo..self.hi)
            .map(|r| {
                a.row_range(r).fold(0u32, |acc, j| {
                    let c = a.col_idx[j];
                    let xv = x[c as usize];
                    let term = match self.kind {
                        QueryKind::SpmvSlice => a.values[j].wrapping_mul(xv),
                        QueryKind::NeighborSum => xv ^ c,
                    };
                    acc.wrapping_add(term)
                })
            })
            .collect()
    }
}

/// Device-side addresses of one tenant's resident dataset.
#[derive(Debug, Clone, Copy)]
pub struct TenantArrays {
    /// CSR row pointers.
    pub rp: VAddr,
    /// CSR column indices.
    pub ci: VAddr,
    /// CSR values (SPMV slices only; neighbor sums ignore it).
    pub vv: VAddr,
    /// The dense vector / vertex-label array the gather reads.
    pub xx: VAddr,
}

/// Uploads a tenant's dataset into device memory once; every request
/// against this tenant then references the resident arrays.
pub fn upload_tenant(sys: &mut System, a: &Csr, x: &[u32]) -> TenantArrays {
    TenantArrays {
        rp: upload_u32(sys, &a.row_ptr),
        ci: upload_u32(sys, &a.col_idx),
        vv: upload_u32(sys, &a.values),
        xx: upload_u32(sys, x),
    }
}

/// The register set every slice program binds: the tenant arrays plus
/// the request's output buffer.
struct SliceRegs {
    rp: Reg,
    ci: Reg,
    vv: Reg,
    xx: Reg,
    out: Reg,
}

impl SliceRegs {
    fn allocate(b: &mut ProgramBuilder) -> Self {
        SliceRegs {
            rp: b.reg("rp"),
            ci: b.reg("ci"),
            vv: b.reg("vv"),
            xx: b.reg("xx"),
            out: b.reg("out"),
        }
    }

    fn bindings(&self, t: &TenantArrays, out: VAddr) -> Vec<(Reg, u64)> {
        vec![
            (self.rp, t.rp.0),
            (self.ci, t.ci.0),
            (self.vv, t.vv.0),
            (self.xx, t.xx.0),
            (self.out, out.0),
        ]
    }
}

/// Single-core do-all shape: the whole query on one core, blocking
/// gathers. The bottom rung of the ladder — no engine, no partner core.
#[must_use]
pub fn doall_query(q: &SliceQuery, arrays: &TenantArrays, out: VAddr) -> (Program, Vec<(Reg, u64)>) {
    let mut b = ProgramBuilder::new();
    let regs = SliceRegs::allocate(&mut b);
    let r = b.reg("r");
    let ro = b.reg("ro");
    let j = b.reg("j");
    let jend = b.reg("jend");
    let c = b.reg("c");
    let v = b.reg("v");
    let xv = b.reg("xv");
    let acc = b.reg("acc");
    let tmp = b.reg("tmp");
    b.li(r, q.lo as u64);
    b.li(ro, 0);
    let row = b.here("row");
    let done = b.label("done");
    b.bge(r, q.hi as i64, done);
    b.load_indexed(j, regs.rp, r, 2, 4, tmp);
    b.addi(tmp, r, 1);
    b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
    b.li(acc, 0);
    let inner = b.here("inner");
    let endrow = b.label("endrow");
    b.bge(j, jend, endrow);
    b.load_indexed(c, regs.ci, j, 2, 4, tmp);
    b.load_indexed(xv, regs.xx, c, 2, 4, tmp);
    match q.kind {
        QueryKind::SpmvSlice => {
            b.load_indexed(v, regs.vv, j, 2, 4, tmp);
            b.mul(v, v, xv);
        }
        QueryKind::NeighborSum => {
            b.alu(maple_isa::AluOp::Xor, v, xv, maple_isa::Operand::Reg(c));
        }
    }
    b.add(acc, acc, v);
    b.addi(j, j, 1);
    b.jump(inner);
    b.bind(endrow);
    b.store_indexed(acc, regs.out, ro, 2, 4, tmp);
    b.addi(r, r, 1);
    b.addi(ro, ro, 1);
    b.jump(row);
    b.bind(done);
    b.halt();
    let p = b.build().expect("doall slice builds");
    (p, regs.bindings(arrays, out))
}

/// MAPLE-decoupled Access shape: walks the query's rows producing
/// `&x[col_idx[j]]` pointers into engine queue `queue` of the instance
/// mapped at `maple_va`. Pairs with [`maple_execute_query`].
#[must_use]
pub fn maple_access_query(
    q: &SliceQuery,
    arrays: &TenantArrays,
    maple_va: VAddr,
    queue: u8,
) -> (Program, Vec<(Reg, u64)>) {
    let mut b = ProgramBuilder::new();
    let regs = SliceRegs::allocate(&mut b);
    let mbase = b.reg("maple");
    let api = MapleApi::new(mbase);
    let r = b.reg("r");
    let j = b.reg("j");
    let jend = b.reg("jend");
    let c = b.reg("c");
    let ptr = b.reg("ptr");
    let tmp = b.reg("tmp");
    let open = b.here("open");
    api.open(&mut b, queue, tmp);
    b.beq(tmp, 0i64, open);
    b.li(r, q.lo as u64);
    let row = b.here("row");
    let done = b.label("done");
    b.bge(r, q.hi as i64, done);
    b.load_indexed(j, regs.rp, r, 2, 4, tmp);
    b.addi(tmp, r, 1);
    b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
    let inner = b.here("inner");
    let endrow = b.label("endrow");
    b.bge(j, jend, endrow);
    b.load_indexed(c, regs.ci, j, 2, 4, tmp);
    b.index_addr(ptr, regs.xx, c, 2);
    api.produce_ptr(&mut b, queue, ptr);
    b.addi(j, j, 1);
    b.jump(inner);
    b.bind(endrow);
    b.addi(r, r, 1);
    b.jump(row);
    b.bind(done);
    api.close(&mut b, queue);
    b.halt();
    let mut binds = regs.bindings(arrays, VAddr(0));
    binds.push((mbase, maple_va.0));
    (b.build().expect("slice access builds"), binds)
}

/// MAPLE-decoupled Execute shape: consumes gathered `x` values from
/// engine queue `queue`, combines per [`QueryKind`], and stores the
/// per-row results into `out`. Pairs with [`maple_access_query`].
#[must_use]
pub fn maple_execute_query(
    q: &SliceQuery,
    arrays: &TenantArrays,
    out: VAddr,
    maple_va: VAddr,
    queue: u8,
) -> (Program, Vec<(Reg, u64)>) {
    let mut b = ProgramBuilder::new();
    let regs = SliceRegs::allocate(&mut b);
    let mbase = b.reg("maple");
    let api = MapleApi::new(mbase);
    let r = b.reg("r");
    let ro = b.reg("ro");
    let j = b.reg("j");
    let jend = b.reg("jend");
    let v = b.reg("v");
    let xv = b.reg("xv");
    let acc = b.reg("acc");
    let tmp = b.reg("tmp");
    b.li(r, q.lo as u64);
    b.li(ro, 0);
    let row = b.here("row");
    let done = b.label("done");
    b.bge(r, q.hi as i64, done);
    b.load_indexed(j, regs.rp, r, 2, 4, tmp);
    b.addi(tmp, r, 1);
    b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
    b.li(acc, 0);
    let inner = b.here("inner");
    let endrow = b.label("endrow");
    b.bge(j, jend, endrow);
    match q.kind {
        QueryKind::SpmvSlice => b.load_indexed(v, regs.vv, j, 2, 4, tmp),
        QueryKind::NeighborSum => b.load_indexed(v, regs.ci, j, 2, 4, tmp),
    }
    api.consume(&mut b, queue, xv, 4);
    match q.kind {
        QueryKind::SpmvSlice => b.mul(v, v, xv),
        QueryKind::NeighborSum => {
            b.alu(maple_isa::AluOp::Xor, v, v, maple_isa::Operand::Reg(xv));
        }
    }
    b.add(acc, acc, v);
    b.addi(j, j, 1);
    b.jump(inner);
    b.bind(endrow);
    b.store_indexed(acc, regs.out, ro, 2, 4, tmp);
    b.addi(r, r, 1);
    b.addi(ro, ro, 1);
    b.jump(row);
    b.bind(done);
    b.halt();
    let mut binds = regs.bindings(arrays, out);
    binds.push((mbase, maple_va.0));
    (b.build().expect("slice execute builds"), binds)
}

/// Software-decoupled Access shape: performs the gather itself
/// (blocking) and pushes values through a shared-memory ring at `qva`.
/// Pairs with [`swdec_execute_query`]; the middle rung of the ladder —
/// decoupled, but no engine.
#[must_use]
pub fn swdec_access_query(
    q: &SliceQuery,
    arrays: &TenantArrays,
    qva: VAddr,
    layout: &SwQueueLayout,
) -> (Program, Vec<(Reg, u64)>) {
    let mut b = ProgramBuilder::new();
    let regs = SliceRegs::allocate(&mut b);
    let qbase = b.reg("qbase");
    let prod = SwProducer::new(&mut b, qbase, layout.capacity);
    let r = b.reg("r");
    let j = b.reg("j");
    let jend = b.reg("jend");
    let c = b.reg("c");
    let xv = b.reg("xv");
    let tmp = b.reg("tmp");
    b.li(r, q.lo as u64);
    let row = b.here("row");
    let done = b.label("done");
    b.bge(r, q.hi as i64, done);
    b.load_indexed(j, regs.rp, r, 2, 4, tmp);
    b.addi(tmp, r, 1);
    b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
    let inner = b.here("inner");
    let endrow = b.label("endrow");
    b.bge(j, jend, endrow);
    b.load_indexed(c, regs.ci, j, 2, 4, tmp);
    b.load_indexed(xv, regs.xx, c, 2, 4, tmp); // blocking IMA
    prod.emit_produce(&mut b, xv);
    b.addi(j, j, 1);
    b.jump(inner);
    b.bind(endrow);
    b.addi(r, r, 1);
    b.jump(row);
    b.bind(done);
    b.halt();
    let mut binds = regs.bindings(arrays, VAddr(0));
    binds.push((qbase, qva.0));
    (b.build().expect("slice sw access builds"), binds)
}

/// Software-decoupled Execute shape: pops gathered values from the ring
/// at `qva`, combines per [`QueryKind`], stores into `out`. Pairs with
/// [`swdec_access_query`].
#[must_use]
pub fn swdec_execute_query(
    q: &SliceQuery,
    arrays: &TenantArrays,
    out: VAddr,
    qva: VAddr,
    layout: &SwQueueLayout,
) -> (Program, Vec<(Reg, u64)>) {
    let mut b = ProgramBuilder::new();
    let regs = SliceRegs::allocate(&mut b);
    let qbase = b.reg("qbase");
    let cons = SwConsumer::new(&mut b, qbase, layout.capacity);
    let r = b.reg("r");
    let ro = b.reg("ro");
    let j = b.reg("j");
    let jend = b.reg("jend");
    let v = b.reg("v");
    let xv = b.reg("xv");
    let acc = b.reg("acc");
    let tmp = b.reg("tmp");
    b.li(r, q.lo as u64);
    b.li(ro, 0);
    let row = b.here("row");
    let done = b.label("done");
    b.bge(r, q.hi as i64, done);
    b.load_indexed(j, regs.rp, r, 2, 4, tmp);
    b.addi(tmp, r, 1);
    b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
    b.li(acc, 0);
    let inner = b.here("inner");
    let endrow = b.label("endrow");
    b.bge(j, jend, endrow);
    match q.kind {
        QueryKind::SpmvSlice => b.load_indexed(v, regs.vv, j, 2, 4, tmp),
        QueryKind::NeighborSum => b.load_indexed(v, regs.ci, j, 2, 4, tmp),
    }
    cons.emit_consume(&mut b, xv);
    match q.kind {
        QueryKind::SpmvSlice => b.mul(v, v, xv),
        QueryKind::NeighborSum => {
            b.alu(maple_isa::AluOp::Xor, v, v, maple_isa::Operand::Reg(xv));
        }
    }
    b.add(acc, acc, v);
    b.addi(j, j, 1);
    b.jump(inner);
    b.bind(endrow);
    b.store_indexed(acc, regs.out, ro, 2, 4, tmp);
    b.addi(r, r, 1);
    b.addi(ro, ro, 1);
    b.jump(row);
    b.bind(done);
    b.halt();
    let mut binds = regs.bindings(arrays, out);
    binds.push((qbase, qva.0));
    (b.build().expect("slice sw execute builds"), binds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{dense_vector, uniform_sparse};
    use crate::harness::{alloc_u32, config_for, Variant, MAX_CYCLES};

    fn instance() -> (Csr, Vec<u32>) {
        let a = uniform_sparse(64, 8 * 1024, 5, 11);
        let x = dense_vector(8 * 1024, 12);
        (a, x)
    }

    fn queries() -> Vec<SliceQuery> {
        vec![
            SliceQuery { kind: QueryKind::SpmvSlice, lo: 3, hi: 19 },
            SliceQuery { kind: QueryKind::NeighborSum, lo: 40, hi: 64 },
            SliceQuery { kind: QueryKind::SpmvSlice, lo: 0, hi: 0 },
        ]
    }

    #[test]
    fn doall_query_matches_reference() {
        let (a, x) = instance();
        for q in queries() {
            let mut sys = System::new(config_for(Variant::Doall, 1));
            let arrays = upload_tenant(&mut sys, &a, &x);
            let out = alloc_u32(&mut sys, q.rows());
            let (prog, binds) = doall_query(&q, &arrays, out);
            sys.load_program(prog, &binds);
            assert!(sys.run(MAX_CYCLES).is_finished());
            assert_eq!(
                sys.read_slice_u32(out, q.rows()),
                q.reference(&a, &x),
                "{} {}..{}",
                q.kind.label(),
                q.lo,
                q.hi
            );
        }
    }

    #[test]
    fn maple_query_pair_matches_reference() {
        let (a, x) = instance();
        for q in queries() {
            let mut sys = System::new(config_for(Variant::MapleDecoupled, 2));
            let arrays = upload_tenant(&mut sys, &a, &x);
            let out = alloc_u32(&mut sys, q.rows());
            let maple_va = sys.map_maple(0);
            let (ap, ab) = maple_access_query(&q, &arrays, maple_va, 0);
            let (ep, eb) = maple_execute_query(&q, &arrays, out, maple_va, 0);
            sys.load_program(ap, &ab);
            sys.load_program(ep, &eb);
            assert!(sys.run(MAX_CYCLES).is_finished());
            assert_eq!(sys.read_slice_u32(out, q.rows()), q.reference(&a, &x));
        }
    }

    #[test]
    fn swdec_query_pair_matches_reference() {
        let (a, x) = instance();
        for q in queries() {
            let mut sys = System::new(config_for(Variant::SwDecoupled, 2));
            let arrays = upload_tenant(&mut sys, &a, &x);
            let out = alloc_u32(&mut sys, q.rows());
            let layout = SwQueueLayout::new(64);
            let qva = sys.alloc(layout.bytes());
            let (ap, ab) = swdec_access_query(&q, &arrays, qva, &layout);
            let (ep, eb) = swdec_execute_query(&q, &arrays, out, qva, &layout);
            sys.load_program(ap, &ab);
            sys.load_program(ep, &eb);
            assert!(sys.run(MAX_CYCLES).is_finished());
            assert_eq!(sys.read_slice_u32(out, q.rows()), q.reference(&a, &x));
        }
    }
}
