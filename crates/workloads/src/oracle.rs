//! Differential oracle over the kernel zoo: every latency-tolerance
//! variant must compute bit-identical results to the scalar host
//! reference, and every run must satisfy hardware conservation laws the
//! paper establishes with RTL formal verification — here checked at the
//! model level on randomized instances.
//!
//! The oracle is kernel-agnostic: callers hand it a closure that runs one
//! `(variant, threads)` pair on a fixed problem instance (see
//! `tests/diff_oracle.rs` for the randomized drivers).

use crate::harness::{continue_fallback, FallbackOutcome, RunStats, Variant};
use maple_fleet::FleetConfig;
use maple_sim::fault::FaultPlaneConfig;

/// The variant/thread-count grid the oracle exercises on every instance.
pub const ORACLE_VARIANTS: [(Variant, usize); 5] = [
    (Variant::Doall, 2),
    (Variant::SwDecoupled, 2),
    (Variant::MapleDecoupled, 2),
    (Variant::Desc, 2),
    (Variant::Droplet, 2),
];

/// Lenient sanity bound: no variant may take more than this many times
/// the do-all cycles on the same instance (decoupling has per-run setup
/// overhead, so tiny instances legitimately run slower than do-all — but
/// never by orders of magnitude).
pub const MAX_SLOWDOWN: u64 = 8;

/// Fixed cycle allowance added on top of [`MAX_SLOWDOWN`], covering
/// instance-independent startup cost (queue configuration, pairing,
/// engine mapping) that dominates on near-empty instances.
pub const SLOWDOWN_SLACK: u64 = 500_000;

/// Per-run invariants: the result matched the host reference and the
/// hardware conservation laws held.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_run(label: &str, s: &RunStats) -> Result<(), String> {
    if !s.verified {
        return Err(format!("{label}: result diverged from host reference (or run did not finish in {} cycles)", s.cycles));
    }
    // Queue conservation: every entry that went into an engine queue must
    // have come out — a drained queue with produced != consumed means an
    // enqueue was lost or a dequeue was duplicated.
    if s.queues_drained && s.queues_produced != s.queues_consumed {
        return Err(format!(
            "{label}: queue conservation violated: produced {} != consumed {} with all queues drained",
            s.queues_produced, s.queues_consumed
        ));
    }
    if !s.queues_drained {
        return Err(format!(
            "{label}: engine queues not drained at end of run ({} produced, {} consumed)",
            s.queues_produced, s.queues_consumed
        ));
    }
    // NoC flit accounting: the mesh cannot deliver packets it never saw.
    if s.noc_delivered > s.noc_injected {
        return Err(format!(
            "{label}: NoC delivered {} packets but only {} were injected",
            s.noc_delivered, s.noc_injected
        ));
    }
    Ok(())
}

/// Cross-variant invariant: `other` may be slower than do-all on the same
/// instance, but only within [`MAX_SLOWDOWN`] (plus fixed slack).
///
/// # Errors
///
/// Returns a description of the violation.
pub fn check_cross(doall: &RunStats, label: &str, other: &RunStats) -> Result<(), String> {
    let bound = doall
        .cycles
        .saturating_mul(MAX_SLOWDOWN)
        .saturating_add(SLOWDOWN_SLACK);
    if other.cycles > bound {
        return Err(format!(
            "{label}: {} cycles exceeds sanity bound {} ({}x do-all's {} cycles + slack)",
            other.cycles, bound, MAX_SLOWDOWN, doall.cycles
        ));
    }
    Ok(())
}

/// Runs the full variant grid on one instance and checks every per-run
/// and cross-variant invariant.
///
/// The grid cells are independent simulations, so they are dispatched as
/// one fleet batch (worker count from `MAPLE_JOBS`); the batch returns
/// stats in grid order, so the check sequence — and therefore which
/// violation is reported first — is identical at every worker count.
///
/// # Errors
///
/// Returns the kernel name, the offending variant and the violated
/// invariant.
pub fn differential_check(
    kernel: &str,
    run: impl Fn(Variant, usize) -> RunStats + Sync,
) -> Result<(), String> {
    debug_assert!(matches!(ORACLE_VARIANTS[0].0, Variant::Doall));
    let run = &run;
    let jobs: Vec<_> = ORACLE_VARIANTS
        .iter()
        .map(|&(variant, threads)| move || run(variant, threads))
        .collect();
    let grid = maple_fleet::run_batch(&FleetConfig::from_env(), jobs)
        .into_results()
        .map_err(|(i, e)| format!("{kernel}/{}: {e}", ORACLE_VARIANTS[i].0.label()))?;
    let doall = &grid[0];
    check_run(&format!("{kernel}/{}", ORACLE_VARIANTS[0].0.label()), doall)?;
    for (&(variant, _), stats) in ORACLE_VARIANTS[1..].iter().zip(&grid[1..]) {
        let label = format!("{kernel}/{}", variant.label());
        check_run(&label, stats)?;
        check_cross(doall, &label, stats)?;
    }
    Ok(())
}

// --- chaos oracle ----------------------------------------------------------

/// A named fault schedule for the chaos grid.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Stable name for reporting and seed-replay command lines.
    pub name: &'static str,
    /// The fault plane to install for the MAPLE attempt.
    pub plane: FaultPlaneConfig,
    /// Whether the schedule is deliberately unrecoverable: the MAPLE
    /// attempt MUST fail structurally (hang diagnosis / poisoned engine)
    /// and the harness MUST degrade to a software variant.
    pub must_degrade: bool,
}

/// Extra cycle slack allowed for chaos runs on top of
/// [`MAX_SLOWDOWN`] × do-all: every watchdog timeout stalls the victim
/// for up to `timeout << retries` cycles, which has nothing to do with
/// instance size.
pub const CHAOS_SLOWDOWN_SLACK: u64 = 4_000_000;

/// The named fault schedules of the chaos grid, derived deterministically
/// from `seed` (same seed → bit-identical fault timing, replayable from
/// the failure report).
#[must_use]
pub fn chaos_schedules(seed: u64) -> Vec<ChaosSchedule> {
    vec![
        ChaosSchedule {
            name: "lossy-noc",
            plane: FaultPlaneConfig::new(seed ^ 0x01)
                .with_noc_drop(0.02)
                .with_noc_delay(0.02, 200),
            must_degrade: false,
        },
        ChaosSchedule {
            name: "dram-storm",
            plane: FaultPlaneConfig::new(seed ^ 0x02)
                .with_dram_spikes(0.05, 400)
                .with_tlb_shootdowns(2, 40_000),
            must_degrade: false,
        },
        ChaosSchedule {
            name: "reset-midrun",
            plane: FaultPlaneConfig::new(seed ^ 0x03)
                .with_engine_reset_at(5_000, 0)
                .with_mmio_ack_loss(0.02),
            must_degrade: false,
        },
        ChaosSchedule {
            name: "ack-blackout",
            plane: FaultPlaneConfig::new(seed ^ 0x04).with_mmio_ack_loss(1.0),
            must_degrade: true,
        },
    ]
}

/// Runs one kernel under one fault schedule through the graceful-
/// degradation ladder and checks the chaos invariants: the standing
/// result is bit-exact (directly or via a recorded degradation), every
/// injected fault and recovery action is visible in counters, failure is
/// structural (diagnosis/poison, never a silent wrong answer), and the
/// slowdown is bounded.
///
/// `run(variant, threads, plane)` must execute one run on a FRESH system,
/// installing `plane` when given (the chaos plane is only handed to the
/// originally requested variant; degraded software attempts run clean,
/// as the driver has already retired the faulty instance).
///
/// # Errors
///
/// Returns the kernel name, schedule and the violated invariant.
pub fn chaos_check(
    kernel: &str,
    schedule: &ChaosSchedule,
    run: impl Fn(Variant, usize, Option<&FaultPlaneConfig>) -> RunStats + Sync,
) -> Result<(), String> {
    let label = format!("{kernel}/{}", schedule.name);
    // The clean do-all baseline and the faulted MAPLE attempt are
    // independent runs on fresh systems: dispatch them as one fleet
    // batch, then walk the rest of the degradation ladder serially (each
    // further rung depends on the previous one failing).
    let run = &run;
    let first_two: Vec<Box<dyn Fn() -> RunStats + Send + '_>> = vec![
        Box::new(move || run(Variant::Doall, 2, None)),
        Box::new(move || run(Variant::MapleDecoupled, 2, Some(&schedule.plane))),
    ];
    let mut batch = maple_fleet::run_batch(&FleetConfig::from_env(), first_two)
        .into_results()
        .map_err(|(i, e)| {
            let which = if i == 0 { "doall-baseline" } else { "maple" };
            format!("{label}/{which}: {e}")
        })?;
    let maple_first = batch.pop().expect("two jobs submitted");
    let doall = batch.pop().expect("two jobs submitted");
    check_run(&format!("{label}/doall-baseline"), &doall)?;

    // Degraded software attempts run clean: the driver has already
    // retired the faulty instance.
    let outcome: FallbackOutcome = continue_fallback(
        Variant::MapleDecoupled,
        2,
        Some(maple_first),
        &mut |v, t| run(v, t, None),
    );

    // Invariant 1: no silent wrong answers — the standing output is
    // bit-exact, whether the MAPLE run recovered or the harness degraded.
    if !outcome.verified() {
        return Err(format!(
            "{label}: no variant produced a verified result (attempts: {:?})",
            outcome
                .attempts
                .iter()
                .map(|(v, s)| (v.label(), s.verified, s.hung))
                .collect::<Vec<_>>()
        ));
    }
    let (_, maple) = &outcome.attempts[0];

    // Invariant 2: the schedule actually struck, and every strike is
    // visible in counters.
    if maple.faults.injected() == 0 {
        return Err(format!(
            "{label}: fault schedule never struck ({:?})",
            maple.faults
        ));
    }

    // Invariant 3: failure is never silent. A MAPLE attempt that did not
    // verify must leave evidence: a structured hang diagnosis, a
    // poisoned engine, or injected-fault counters explaining the
    // divergence (e.g. a mid-run reset that lost queue state). Combined
    // with invariant 1, wrong data can never stand.
    if !maple.verified
        && !maple.hung
        && maple.faults.engines_poisoned == 0
        && maple.faults.resets_injected == 0
    {
        return Err(format!(
            "{label}: MAPLE attempt failed without a diagnosis, poison or reset to explain it \
             ({:?})",
            maple.faults
        ));
    }

    // Invariant 4: deliberately unrecoverable schedules degrade.
    if schedule.must_degrade {
        if maple.verified {
            return Err(format!(
                "{label}: schedule is unrecoverable by construction but the MAPLE run verified"
            ));
        }
        if !maple.hung || maple.faults.engines_poisoned == 0 {
            return Err(format!(
                "{label}: unrecoverable schedule must end in a hang diagnosis with a poisoned \
                 engine (hung={}, poisoned={})",
                maple.hung, maple.faults.engines_poisoned
            ));
        }
        if !outcome.degraded() {
            return Err(format!("{label}: harness did not degrade"));
        }
    }

    // Invariant 5: a recovered (non-degraded) run also satisfies the
    // conservation laws, and its slowdown over do-all is bounded.
    let fin = outcome.final_stats();
    if !outcome.degraded() {
        check_run(&label, fin)?;
    }
    let bound = doall
        .cycles
        .saturating_mul(MAX_SLOWDOWN)
        .saturating_add(CHAOS_SLOWDOWN_SLACK);
    if fin.cycles > bound {
        return Err(format!(
            "{label}: {} cycles exceeds chaos sanity bound {}",
            fin.cycles, bound
        ));
    }
    // NoC accounting holds even for failed attempts.
    if maple.noc_delivered > maple.noc_injected {
        return Err(format!(
            "{label}: NoC delivered {} packets but only {} were injected",
            maple.noc_delivered, maple.noc_injected
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_stats() -> RunStats {
        RunStats {
            cycles: 1000,
            loads: 10,
            mean_load_latency: 5.0,
            verified: true,
            cores: Vec::new(),
            engine: (0, 0, 0, 0),
            queue0_occupancy_mean: 0.0,
            queues_produced: 42,
            queues_consumed: 42,
            queues_drained: true,
            noc_injected: 100,
            noc_delivered: 100,
            hung: false,
            faults: crate::harness::FaultReport::default(),
            core_cycles: 0,
            stall: Default::default(),
        }
    }

    #[test]
    fn clean_stats_pass() {
        assert!(check_run("t", &ok_stats()).is_ok());
    }

    #[test]
    fn unverified_run_is_flagged() {
        let s = RunStats {
            verified: false,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("diverged"));
    }

    #[test]
    fn queue_conservation_violation_is_flagged() {
        let s = RunStats {
            queues_consumed: 41,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("conservation"));
    }

    #[test]
    fn stranded_queue_entries_are_flagged() {
        let s = RunStats {
            queues_drained: false,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("not drained"));
    }

    #[test]
    fn noc_overdelivery_is_flagged() {
        let s = RunStats {
            noc_delivered: 101,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("NoC"));
    }

    #[test]
    fn cross_variant_bound_is_lenient_but_finite() {
        let doall = ok_stats();
        let near = RunStats {
            cycles: 1000 * MAX_SLOWDOWN,
            ..ok_stats()
        };
        assert!(check_cross(&doall, "t", &near).is_ok());
        let absurd = RunStats {
            cycles: 1000 * MAX_SLOWDOWN + SLOWDOWN_SLACK + 1,
            ..ok_stats()
        };
        assert!(check_cross(&doall, "t", &absurd).unwrap_err().contains("sanity bound"));
    }

    #[test]
    fn chaos_schedules_are_named_unique_and_deterministic() {
        let s = chaos_schedules(7);
        assert!(s.len() >= 4, "grid floor: at least 4 schedules");
        let mut names: Vec<_> = s.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len(), "schedule names unique");
        assert!(
            s.iter().any(|c| c.must_degrade),
            "the grid includes a deliberately unrecoverable schedule"
        );
        // Same seed → identical planes (seed-replayable grid).
        for (a, b) in s.iter().zip(&chaos_schedules(7)) {
            assert!(a.plane == b.plane);
        }
    }

    #[test]
    fn grid_starts_with_doall() {
        assert!(matches!(ORACLE_VARIANTS[0].0, Variant::Doall));
        // One entry per oracle variant, no duplicates.
        let mut labels: Vec<&str> = ORACLE_VARIANTS.iter().map(|(v, _)| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ORACLE_VARIANTS.len());
    }
}
