//! Differential oracle over the kernel zoo: every latency-tolerance
//! variant must compute bit-identical results to the scalar host
//! reference, and every run must satisfy hardware conservation laws the
//! paper establishes with RTL formal verification — here checked at the
//! model level on randomized instances.
//!
//! The oracle is kernel-agnostic: callers hand it a closure that runs one
//! `(variant, threads)` pair on a fixed problem instance (see
//! `tests/diff_oracle.rs` for the randomized drivers).

use crate::harness::{RunStats, Variant};

/// The variant/thread-count grid the oracle exercises on every instance.
pub const ORACLE_VARIANTS: [(Variant, usize); 5] = [
    (Variant::Doall, 2),
    (Variant::SwDecoupled, 2),
    (Variant::MapleDecoupled, 2),
    (Variant::Desc, 2),
    (Variant::Droplet, 2),
];

/// Lenient sanity bound: no variant may take more than this many times
/// the do-all cycles on the same instance (decoupling has per-run setup
/// overhead, so tiny instances legitimately run slower than do-all — but
/// never by orders of magnitude).
pub const MAX_SLOWDOWN: u64 = 8;

/// Fixed cycle allowance added on top of [`MAX_SLOWDOWN`], covering
/// instance-independent startup cost (queue configuration, pairing,
/// engine mapping) that dominates on near-empty instances.
pub const SLOWDOWN_SLACK: u64 = 500_000;

/// Per-run invariants: the result matched the host reference and the
/// hardware conservation laws held.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_run(label: &str, s: &RunStats) -> Result<(), String> {
    if !s.verified {
        return Err(format!("{label}: result diverged from host reference (or run did not finish in {} cycles)", s.cycles));
    }
    // Queue conservation: every entry that went into an engine queue must
    // have come out — a drained queue with produced != consumed means an
    // enqueue was lost or a dequeue was duplicated.
    if s.queues_drained && s.queues_produced != s.queues_consumed {
        return Err(format!(
            "{label}: queue conservation violated: produced {} != consumed {} with all queues drained",
            s.queues_produced, s.queues_consumed
        ));
    }
    if !s.queues_drained {
        return Err(format!(
            "{label}: engine queues not drained at end of run ({} produced, {} consumed)",
            s.queues_produced, s.queues_consumed
        ));
    }
    // NoC flit accounting: the mesh cannot deliver packets it never saw.
    if s.noc_delivered > s.noc_injected {
        return Err(format!(
            "{label}: NoC delivered {} packets but only {} were injected",
            s.noc_delivered, s.noc_injected
        ));
    }
    Ok(())
}

/// Cross-variant invariant: `other` may be slower than do-all on the same
/// instance, but only within [`MAX_SLOWDOWN`] (plus fixed slack).
///
/// # Errors
///
/// Returns a description of the violation.
pub fn check_cross(doall: &RunStats, label: &str, other: &RunStats) -> Result<(), String> {
    let bound = doall
        .cycles
        .saturating_mul(MAX_SLOWDOWN)
        .saturating_add(SLOWDOWN_SLACK);
    if other.cycles > bound {
        return Err(format!(
            "{label}: {} cycles exceeds sanity bound {} ({}x do-all's {} cycles + slack)",
            other.cycles, bound, MAX_SLOWDOWN, doall.cycles
        ));
    }
    Ok(())
}

/// Runs the full variant grid on one instance and checks every per-run
/// and cross-variant invariant.
///
/// # Errors
///
/// Returns the kernel name, the offending variant and the violated
/// invariant.
pub fn differential_check(
    kernel: &str,
    run: impl Fn(Variant, usize) -> RunStats,
) -> Result<(), String> {
    let (doall_variant, doall_threads) = ORACLE_VARIANTS[0];
    debug_assert!(matches!(doall_variant, Variant::Doall));
    let doall = run(doall_variant, doall_threads);
    check_run(&format!("{kernel}/{}", doall_variant.label()), &doall)?;
    for &(variant, threads) in &ORACLE_VARIANTS[1..] {
        let label = format!("{kernel}/{}", variant.label());
        let stats = run(variant, threads);
        check_run(&label, &stats)?;
        check_cross(&doall, &label, &stats)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_stats() -> RunStats {
        RunStats {
            cycles: 1000,
            loads: 10,
            mean_load_latency: 5.0,
            verified: true,
            cores: Vec::new(),
            engine: (0, 0, 0, 0),
            queue0_occupancy_mean: 0.0,
            queues_produced: 42,
            queues_consumed: 42,
            queues_drained: true,
            noc_injected: 100,
            noc_delivered: 100,
        }
    }

    #[test]
    fn clean_stats_pass() {
        assert!(check_run("t", &ok_stats()).is_ok());
    }

    #[test]
    fn unverified_run_is_flagged() {
        let s = RunStats {
            verified: false,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("diverged"));
    }

    #[test]
    fn queue_conservation_violation_is_flagged() {
        let s = RunStats {
            queues_consumed: 41,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("conservation"));
    }

    #[test]
    fn stranded_queue_entries_are_flagged() {
        let s = RunStats {
            queues_drained: false,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("not drained"));
    }

    #[test]
    fn noc_overdelivery_is_flagged() {
        let s = RunStats {
            noc_delivered: 101,
            ..ok_stats()
        };
        assert!(check_run("t", &s).unwrap_err().contains("NoC"));
    }

    #[test]
    fn cross_variant_bound_is_lenient_but_finite() {
        let doall = ok_stats();
        let near = RunStats {
            cycles: 1000 * MAX_SLOWDOWN,
            ..ok_stats()
        };
        assert!(check_cross(&doall, "t", &near).is_ok());
        let absurd = RunStats {
            cycles: 1000 * MAX_SLOWDOWN + SLOWDOWN_SLACK + 1,
            ..ok_stats()
        };
        assert!(check_cross(&doall, "t", &absurd).unwrap_err().contains("sanity bound"));
    }

    #[test]
    fn grid_starts_with_doall() {
        assert!(matches!(ORACLE_VARIANTS[0].0, Variant::Doall));
        // One entry per oracle variant, no duplicates.
        let mut labels: Vec<&str> = ORACLE_VARIANTS.iter().map(|(v, _)| v.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ORACLE_VARIANTS.len());
    }
}
