//! Shared machinery for running a kernel variant on the simulated SoC and
//! extracting the statistics every figure reports.

use maple_soc::config::SocConfig;
use maple_soc::system::System;
use maple_trace::StallBreakdown;
use maple_vm::VAddr;

/// The latency-tolerance technique under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Plain do-all parallelism across `threads` cores (the Figure 8/12
    /// baseline; with one thread, the Figure 9 "no prefetching" baseline).
    Doall,
    /// Software-only decoupling through shared-memory ring buffers
    /// (1 Access + 1 Execute thread per pair).
    SwDecoupled,
    /// Decoupling through MAPLE queues (`PRODUCE_PTR`/`CONSUME`).
    MapleDecoupled,
    /// DeSC: coupled architectural queues with terminal loads (requires
    /// the ISA extension and core pairing).
    Desc,
    /// Software prefetching with the given iteration distance.
    SwPrefetch {
        /// Prefetch distance in loop iterations.
        dist: u32,
    },
    /// MAPLE's LIMA operation (non-speculative into queues, or
    /// speculative into the LLC where the kernel's IMA is a
    /// read-modify-write).
    MapleLima,
    /// Do-all with the DROPLET memory-side prefetcher enabled.
    Droplet,
}

impl Variant {
    /// Short label for result tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Variant::Doall => "doall",
            Variant::SwDecoupled => "sw-dec",
            Variant::MapleDecoupled => "maple-dec",
            Variant::Desc => "desc",
            Variant::SwPrefetch { .. } => "sw-pref",
            Variant::MapleLima => "maple-lima",
            Variant::Droplet => "droplet",
        }
    }
}

/// Fault-plane observability rolled into every run's stats: everything
/// the chaos plane injected and everything the recovery machinery did
/// about it. All-zero when no fault plane is installed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// NoC packets dropped by the plane.
    pub noc_dropped: u64,
    /// NoC packets given extra delay by the plane.
    pub noc_delayed: u64,
    /// DRAM accesses hit by a latency spike.
    pub dram_spikes: u64,
    /// Engine responses/acks dropped at the source.
    pub acks_dropped: u64,
    /// Engine memory fetches that overran their watchdog.
    pub fetch_timeouts: u64,
    /// Engine memory fetches re-issued after a timeout.
    pub fetch_retries: u64,
    /// Engine fetches abandoned after retry exhaustion (poison).
    pub poisoned_fetches: u64,
    /// Completed MMIO operations replayed from the dedup cache.
    pub replayed_responses: u64,
    /// Core-issued MMIO transactions that overran their watchdog.
    pub mmio_timeouts: u64,
    /// Core-issued MMIO transactions re-injected after a timeout.
    pub mmio_retries: u64,
    /// Scheduled mid-run engine RESETs delivered.
    pub resets_injected: u64,
    /// Randomly-timed TLB shootdowns delivered.
    pub shootdowns_injected: u64,
    /// Engines the driver retired after poisoning.
    pub engines_poisoned: u64,
    /// Which rung of [`fallback_ladder`] this run executed at: 0 is the
    /// requested variant, each degradation adds one. Stamped by
    /// [`run_with_fallback`]/[`continue_fallback`] — the one source of
    /// truth for "which attempt was this", so reports never have to
    /// reverse-engineer it from variant labels.
    pub ladder_rung: u64,
    /// Tenant whose request this run served, when dispatched by the
    /// multi-tenant serving scheduler (`None` for batch runs). A ladder
    /// descent's report therefore names the tenant that triggered it.
    pub tenant: Option<u64>,
}

impl FaultReport {
    /// Total faults the plane injected into this run.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.noc_dropped
            + self.noc_delayed
            + self.dram_spikes
            + self.acks_dropped
            + self.resets_injected
            + self.shootdowns_injected
    }

    /// Total recovery actions taken (retries and replays).
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.fetch_retries + self.mmio_retries + self.replayed_responses
    }
}

/// Per-core diagnostic detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreDetail {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles blocked on memory responses.
    pub mem_stall_cycles: u64,
    /// Load instructions retired.
    pub loads: u64,
}

/// Measured outcome of one kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Total cycles to completion.
    pub cycles: u64,
    /// Load instructions retired across all cores (Figure 10).
    pub loads: u64,
    /// Mean load-to-use latency in cycles (Figure 11).
    pub mean_load_latency: f64,
    /// Whether the simulated result matched the host reference.
    pub verified: bool,
    /// Per-core breakdown (diagnostics).
    pub cores: Vec<CoreDetail>,
    /// Engine-0 counters (diagnostics): memory fetches, produce stalls,
    /// consume stalls, TLB misses.
    pub engine: (u64, u64, u64, u64),
    /// Mean sampled occupancy of engine 0's queue 0 — the Section 4.4
    /// runahead observable.
    pub queue0_occupancy_mean: f64,
    /// Total entries enqueued across every engine queue (push + fill).
    pub queues_produced: u64,
    /// Total entries dequeued across every engine queue.
    pub queues_consumed: u64,
    /// Whether every engine queue was empty when the run finished.
    pub queues_drained: bool,
    /// Mesh packets injected.
    pub noc_injected: u64,
    /// Mesh packets delivered.
    pub noc_delivered: u64,
    /// Whether the run ended in a structured hang diagnosis (watchdog
    /// exhaustion / engine retirement) instead of finishing.
    pub hung: bool,
    /// Fault-plane and recovery counters (all zero without a plane).
    pub faults: FaultReport,
    /// Total core cycles (sum of each core's issue-to-halt span) backing
    /// the stall attribution.
    pub core_cycles: u64,
    /// Aggregate stall attribution across every core: blocking cycles
    /// split by cause, with compute as the remainder (see
    /// `maple-trace`).
    pub stall: StallBreakdown,
}

impl RunStats {
    /// Speedup of this run relative to `baseline`.
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// Builds the system configuration for a variant/thread-count pair.
#[must_use]
pub fn config_for(variant: Variant, threads: usize) -> SocConfig {
    let mut cfg = SocConfig::fpga_prototype().with_cores(threads.max(2));
    if matches!(variant, Variant::Droplet) {
        cfg = cfg.with_droplet(maple_baselines::droplet::DropletConfig::default());
    }
    cfg
}

/// Uploads a `u32` slice into freshly allocated device memory.
pub fn upload_u32(sys: &mut System, data: &[u32]) -> VAddr {
    let va = sys.alloc((data.len().max(1) * 4) as u64);
    sys.write_slice_u32(va, data);
    va
}

/// Allocates zeroed device memory for `words` u32 values.
pub fn alloc_u32(sys: &mut System, words: usize) -> VAddr {
    sys.alloc((words.max(1) * 4) as u64)
}

/// Finishes a run: checks completion, downloads `out_words` from
/// `out_va`, compares with `expected`, and packages the stats.
pub fn finish(
    sys: &mut System,
    outcome: maple_sim::RunOutcome,
    out_va: VAddr,
    expected: &[u32],
) -> RunStats {
    let finished = outcome.is_finished();
    let got = sys.read_slice_u32(out_va, expected.len());
    let cores = (0..sys.core_count())
        .map(|i| {
            let s = sys.core(i).stats();
            CoreDetail {
                instructions: s.instructions.get(),
                mem_stall_cycles: s.mem_stall_cycles.get(),
                loads: s.loads.get(),
            }
        })
        .collect();
    let e = sys.engine(0).stats();
    // Conservation counters over every engine queue: what went in, what
    // came out, and whether anything was stranded at the end of the run.
    let mut queues_produced = 0u64;
    let mut queues_consumed = 0u64;
    let mut queues_drained = true;
    for ei in 0..sys.config().maples {
        let engine = sys.engine(ei);
        for q in 0..engine.config().queues as u8 {
            let queue = engine.queue(q);
            queues_produced += queue.produced.get();
            queues_consumed += queue.consumed.get();
            queues_drained &= queue.is_empty();
        }
    }
    let mesh = sys.mesh_stats();
    let mut faults = FaultReport {
        noc_dropped: mesh.dropped.get(),
        noc_delayed: mesh.delayed.get(),
        dram_spikes: sys.dram_stats().spikes.get(),
        ..FaultReport::default()
    };
    for ei in 0..sys.config().maples {
        let es = sys.engine(ei).stats();
        faults.acks_dropped += es.acks_dropped.get();
        faults.fetch_timeouts += es.fetch_timeouts.get();
        faults.fetch_retries += es.fetch_retries.get();
        faults.poisoned_fetches += es.poisoned_fetches.get();
        faults.replayed_responses += es.replayed_responses.get();
    }
    if let Some(c) = sys.chaos_stats() {
        faults.mmio_timeouts = c.mmio_timeouts.get();
        faults.mmio_retries = c.mmio_retries.get();
        faults.resets_injected = c.resets_injected.get();
        faults.shootdowns_injected = c.shootdowns_injected.get();
        faults.engines_poisoned = c.engines_poisoned.get();
    }
    let (core_cycles, stall) = sys.stall_total();
    RunStats {
        cycles: outcome.cycle().0,
        loads: sys.total_loads(),
        mean_load_latency: sys.mean_load_latency(),
        verified: finished && got == expected,
        cores,
        engine: (
            e.mem_fetches.get(),
            e.produce_stalls.get(),
            e.consume_stalls.get(),
            sys.engine(0).tlb_misses(),
        ),
        queue0_occupancy_mean: sys.queue_occupancy(0, 0).mean(),
        queues_produced,
        queues_consumed,
        queues_drained,
        noc_injected: mesh.injected.get(),
        noc_delivered: mesh.delivered.get(),
        hung: outcome.diagnosis().is_some(),
        faults,
        core_cycles,
        stall,
    }
}

/// The graceful-degradation ladder for a requested variant: the variant
/// itself, then software decoupling, then plain do-all. Software
/// variants never touch a MAPLE engine, so a run that failed because an
/// instance was poisoned/retired still completes bit-exact on them.
#[must_use]
pub fn fallback_ladder(requested: Variant) -> Vec<Variant> {
    let mut ladder = vec![requested];
    if !matches!(requested, Variant::SwDecoupled | Variant::Doall) {
        ladder.push(Variant::SwDecoupled);
    }
    if requested != Variant::Doall {
        ladder.push(Variant::Doall);
    }
    ladder
}

/// The result of [`run_with_fallback`]: every attempt in ladder order
/// (the last one is the run whose output stands).
#[derive(Debug)]
pub struct FallbackOutcome {
    /// The variant the caller originally asked for.
    pub requested: Variant,
    /// `(variant, stats)` for each attempt, in execution order.
    pub attempts: Vec<(Variant, RunStats)>,
}

impl FallbackOutcome {
    /// The variant whose output stands (last attempted).
    #[must_use]
    pub fn final_variant(&self) -> Variant {
        self.attempts.last().expect("at least one attempt").0
    }

    /// Stats of the run whose output stands.
    #[must_use]
    pub fn final_stats(&self) -> &RunStats {
        &self.attempts.last().expect("at least one attempt").1
    }

    /// Whether the harness had to degrade away from the requested
    /// variant.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.attempts.len() > 1
    }

    /// Whether the standing output matched the host reference.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.final_stats().verified
    }
}

/// Runs `requested` and, when the run hangs or produces unverified
/// output (poisoned engine, lost state after a mid-run reset, …), walks
/// down [`fallback_ladder`] on a fresh system per attempt until a
/// variant verifies. This is the driver-level graceful degradation: a
/// failing MAPLE instance costs performance, never correctness.
///
/// Every attempt's stats are stamped with the ladder rung it executed at
/// ([`FaultReport::ladder_rung`]).
pub fn run_with_fallback(
    requested: Variant,
    threads: usize,
    mut run: impl FnMut(Variant, usize) -> RunStats,
) -> FallbackOutcome {
    continue_fallback(requested, threads, None, &mut run)
}

/// [`run_with_fallback`] on behalf of a serving tenant: every attempt's
/// [`FaultReport`] is tagged with `tenant`, so a degradation report names
/// the tenant whose request triggered the descent.
pub fn run_with_fallback_for_tenant(
    tenant: u64,
    requested: Variant,
    threads: usize,
    mut run: impl FnMut(Variant, usize) -> RunStats,
) -> FallbackOutcome {
    let mut out = continue_fallback(requested, threads, None, &mut run);
    for (_, stats) in &mut out.attempts {
        stats.faults.tenant = Some(tenant);
    }
    out
}

/// The tail of [`run_with_fallback`] with the first rung's result
/// optionally precomputed — callers that evaluate the requested variant
/// in a fleet batch (e.g. the chaos oracle running it alongside the
/// fault-free baseline) hand that result in as `first` and the ladder
/// continues from rung 1 only if it did not verify.
pub fn continue_fallback(
    requested: Variant,
    threads: usize,
    first: Option<RunStats>,
    run: &mut impl FnMut(Variant, usize) -> RunStats,
) -> FallbackOutcome {
    let mut first = first;
    let mut attempts = Vec::new();
    for (rung, variant) in fallback_ladder(requested).into_iter().enumerate() {
        let mut stats = match (rung, first.take()) {
            (0, Some(precomputed)) => precomputed,
            _ => run(variant, threads),
        };
        stats.faults.ladder_rung = rung as u64;
        let verified = stats.verified;
        attempts.push((variant, stats));
        if verified {
            break;
        }
    }
    FallbackOutcome {
        requested,
        attempts,
    }
}

/// Splits `n` items into `threads` contiguous chunks; returns `(lo, hi)`
/// per thread.
#[must_use]
pub fn partition(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(threads.max(1));
    (0..threads)
        .map(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            (lo, hi)
        })
        .collect()
}

/// Cycle budget for kernel runs (generous; runs that exceed it are
/// reported unverified rather than hanging the harness).
pub const MAX_CYCLES: u64 = 600_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 3, 4, 8] {
                let parts = partition(n, t);
                assert_eq!(parts.len(), t);
                let total: usize = parts.iter().map(|(lo, hi)| hi - lo).sum();
                assert_eq!(total, n, "n={n} t={t}");
                // Contiguous and ordered.
                let mut prev = 0;
                for (lo, hi) in parts {
                    assert!(lo <= hi);
                    assert_eq!(lo, prev.min(n));
                    prev = hi;
                }
            }
        }
    }

    #[test]
    fn speedup_computation() {
        let base = RunStats {
            cycles: 1000,
            loads: 0,
            mean_load_latency: 0.0,
            verified: true,
            cores: Vec::new(),
            engine: (0, 0, 0, 0),
            queue0_occupancy_mean: 0.0,
            queues_produced: 0,
            queues_consumed: 0,
            queues_drained: true,
            noc_injected: 0,
            noc_delivered: 0,
            hung: false,
            faults: FaultReport::default(),
            core_cycles: 0,
            stall: Default::default(),
        };
        let fast = RunStats {
            cycles: 500,
            ..base.clone()
        };
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ladder_ends_in_doall_without_duplicates() {
        for requested in [
            Variant::MapleDecoupled,
            Variant::MapleLima,
            Variant::SwDecoupled,
            Variant::Doall,
            Variant::Desc,
        ] {
            let ladder = fallback_ladder(requested);
            assert_eq!(ladder[0], requested);
            assert_eq!(*ladder.last().unwrap(), Variant::Doall);
            let mut dedup = ladder.clone();
            dedup.dedup();
            assert_eq!(dedup, ladder, "no duplicate rungs");
        }
    }

    #[test]
    fn fallback_stops_at_first_verified_variant() {
        let stats = |verified| RunStats {
            cycles: 100,
            loads: 0,
            mean_load_latency: 0.0,
            verified,
            cores: Vec::new(),
            engine: (0, 0, 0, 0),
            queue0_occupancy_mean: 0.0,
            queues_produced: 0,
            queues_consumed: 0,
            queues_drained: true,
            noc_injected: 0,
            noc_delivered: 0,
            hung: !verified,
            faults: FaultReport::default(),
            core_cycles: 0,
            stall: Default::default(),
        };
        // Requested variant succeeds: no degradation.
        let direct = run_with_fallback(Variant::MapleDecoupled, 2, |_, _| stats(true));
        assert!(!direct.degraded() && direct.verified());
        assert_eq!(direct.final_variant(), Variant::MapleDecoupled);
        assert_eq!(direct.final_stats().faults.ladder_rung, 0);
        // Requested variant fails once: degrade exactly one rung.
        let mut calls = 0;
        let degraded = run_with_fallback(Variant::MapleDecoupled, 2, |v, _| {
            calls += 1;
            stats(v != Variant::MapleDecoupled)
        });
        assert!(degraded.degraded() && degraded.verified());
        assert_eq!(degraded.final_variant(), Variant::SwDecoupled);
        assert_eq!(degraded.final_stats().faults.ladder_rung, 1);
        assert_eq!(calls, 2);
        // Nothing verifies: every rung is attempted and recorded, each
        // stamped with its position on the ladder.
        let hopeless = run_with_fallback(Variant::MapleDecoupled, 2, |_, _| stats(false));
        assert!(!hopeless.verified());
        assert_eq!(hopeless.attempts.len(), 3);
        assert_eq!(hopeless.final_variant(), Variant::Doall);
        for (rung, (_, s)) in hopeless.attempts.iter().enumerate() {
            assert_eq!(s.faults.ladder_rung, rung as u64);
        }
    }

    #[test]
    fn continue_fallback_consumes_a_precomputed_first_attempt() {
        let stats = |verified| RunStats {
            cycles: 77,
            loads: 0,
            mean_load_latency: 0.0,
            verified,
            cores: Vec::new(),
            engine: (0, 0, 0, 0),
            queue0_occupancy_mean: 0.0,
            queues_produced: 0,
            queues_consumed: 0,
            queues_drained: true,
            noc_injected: 0,
            noc_delivered: 0,
            hung: false,
            faults: FaultReport::default(),
            core_cycles: 0,
            stall: Default::default(),
        };
        // A verifying precomputed first attempt: `run` is never called.
        let out = continue_fallback(
            Variant::MapleDecoupled,
            2,
            Some(stats(true)),
            &mut |_, _| panic!("rung 0 was precomputed"),
        );
        assert_eq!(out.attempts.len(), 1);
        assert_eq!(out.final_stats().faults.ladder_rung, 0);
        // A failing first attempt: the ladder continues at rung 1.
        let mut ran = Vec::new();
        let out = continue_fallback(Variant::MapleDecoupled, 2, Some(stats(false)), &mut |v, _| {
            ran.push(v);
            stats(true)
        });
        assert_eq!(ran, vec![Variant::SwDecoupled]);
        assert_eq!(out.attempts.len(), 2);
        assert_eq!(out.final_stats().faults.ladder_rung, 1);
    }

    #[test]
    fn variant_labels_unique() {
        let labels = [
            Variant::Doall.label(),
            Variant::SwDecoupled.label(),
            Variant::MapleDecoupled.label(),
            Variant::Desc.label(),
            Variant::SwPrefetch { dist: 8 }.label(),
            Variant::MapleLima.label(),
            Variant::Droplet.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
