//! Shared machinery for running a kernel variant on the simulated SoC and
//! extracting the statistics every figure reports.

use maple_soc::config::SocConfig;
use maple_soc::system::System;
use maple_vm::VAddr;

/// The latency-tolerance technique under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Plain do-all parallelism across `threads` cores (the Figure 8/12
    /// baseline; with one thread, the Figure 9 "no prefetching" baseline).
    Doall,
    /// Software-only decoupling through shared-memory ring buffers
    /// (1 Access + 1 Execute thread per pair).
    SwDecoupled,
    /// Decoupling through MAPLE queues (`PRODUCE_PTR`/`CONSUME`).
    MapleDecoupled,
    /// DeSC: coupled architectural queues with terminal loads (requires
    /// the ISA extension and core pairing).
    Desc,
    /// Software prefetching with the given iteration distance.
    SwPrefetch {
        /// Prefetch distance in loop iterations.
        dist: u32,
    },
    /// MAPLE's LIMA operation (non-speculative into queues, or
    /// speculative into the LLC where the kernel's IMA is a
    /// read-modify-write).
    MapleLima,
    /// Do-all with the DROPLET memory-side prefetcher enabled.
    Droplet,
}

impl Variant {
    /// Short label for result tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Variant::Doall => "doall",
            Variant::SwDecoupled => "sw-dec",
            Variant::MapleDecoupled => "maple-dec",
            Variant::Desc => "desc",
            Variant::SwPrefetch { .. } => "sw-pref",
            Variant::MapleLima => "maple-lima",
            Variant::Droplet => "droplet",
        }
    }
}

/// Per-core diagnostic detail.
#[derive(Debug, Clone, Copy)]
pub struct CoreDetail {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles blocked on memory responses.
    pub mem_stall_cycles: u64,
    /// Load instructions retired.
    pub loads: u64,
}

/// Measured outcome of one kernel run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Total cycles to completion.
    pub cycles: u64,
    /// Load instructions retired across all cores (Figure 10).
    pub loads: u64,
    /// Mean load-to-use latency in cycles (Figure 11).
    pub mean_load_latency: f64,
    /// Whether the simulated result matched the host reference.
    pub verified: bool,
    /// Per-core breakdown (diagnostics).
    pub cores: Vec<CoreDetail>,
    /// Engine-0 counters (diagnostics): memory fetches, produce stalls,
    /// consume stalls, TLB misses.
    pub engine: (u64, u64, u64, u64),
    /// Mean sampled occupancy of engine 0's queue 0 — the Section 4.4
    /// runahead observable.
    pub queue0_occupancy_mean: f64,
    /// Total entries enqueued across every engine queue (push + fill).
    pub queues_produced: u64,
    /// Total entries dequeued across every engine queue.
    pub queues_consumed: u64,
    /// Whether every engine queue was empty when the run finished.
    pub queues_drained: bool,
    /// Mesh packets injected.
    pub noc_injected: u64,
    /// Mesh packets delivered.
    pub noc_delivered: u64,
}

impl RunStats {
    /// Speedup of this run relative to `baseline`.
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }
}

/// Builds the system configuration for a variant/thread-count pair.
#[must_use]
pub fn config_for(variant: Variant, threads: usize) -> SocConfig {
    let mut cfg = SocConfig::fpga_prototype().with_cores(threads.max(2));
    if matches!(variant, Variant::Droplet) {
        cfg = cfg.with_droplet(maple_baselines::droplet::DropletConfig::default());
    }
    cfg
}

/// Uploads a `u32` slice into freshly allocated device memory.
pub fn upload_u32(sys: &mut System, data: &[u32]) -> VAddr {
    let va = sys.alloc((data.len().max(1) * 4) as u64);
    sys.write_slice_u32(va, data);
    va
}

/// Allocates zeroed device memory for `words` u32 values.
pub fn alloc_u32(sys: &mut System, words: usize) -> VAddr {
    sys.alloc((words.max(1) * 4) as u64)
}

/// Finishes a run: checks completion, downloads `out_words` from
/// `out_va`, compares with `expected`, and packages the stats.
pub fn finish(
    sys: &mut System,
    outcome: maple_sim::RunOutcome,
    out_va: VAddr,
    expected: &[u32],
) -> RunStats {
    let finished = outcome.is_finished();
    let got = sys.read_slice_u32(out_va, expected.len());
    let cores = (0..sys.core_count())
        .map(|i| {
            let s = sys.core(i).stats();
            CoreDetail {
                instructions: s.instructions.get(),
                mem_stall_cycles: s.mem_stall_cycles.get(),
                loads: s.loads.get(),
            }
        })
        .collect();
    let e = sys.engine(0).stats();
    // Conservation counters over every engine queue: what went in, what
    // came out, and whether anything was stranded at the end of the run.
    let mut queues_produced = 0u64;
    let mut queues_consumed = 0u64;
    let mut queues_drained = true;
    for ei in 0..sys.config().maples {
        let engine = sys.engine(ei);
        for q in 0..engine.config().queues as u8 {
            let queue = engine.queue(q);
            queues_produced += queue.produced.get();
            queues_consumed += queue.consumed.get();
            queues_drained &= queue.is_empty();
        }
    }
    let mesh = sys.mesh_stats();
    RunStats {
        cycles: outcome.cycle().0,
        loads: sys.total_loads(),
        mean_load_latency: sys.mean_load_latency(),
        verified: finished && got == expected,
        cores,
        engine: (
            e.mem_fetches.get(),
            e.produce_stalls.get(),
            e.consume_stalls.get(),
            sys.engine(0).tlb_misses(),
        ),
        queue0_occupancy_mean: sys.queue_occupancy(0, 0).mean(),
        queues_produced,
        queues_consumed,
        queues_drained,
        noc_injected: mesh.injected.get(),
        noc_delivered: mesh.delivered.get(),
    }
}

/// Splits `n` items into `threads` contiguous chunks; returns `(lo, hi)`
/// per thread.
#[must_use]
pub fn partition(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(threads.max(1));
    (0..threads)
        .map(|t| {
            let lo = (t * chunk).min(n);
            let hi = ((t + 1) * chunk).min(n);
            (lo, hi)
        })
        .collect()
}

/// Cycle budget for kernel runs (generous; runs that exceed it are
/// reported unverified rather than hanging the harness).
pub const MAX_CYCLES: u64 = 600_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 3, 4, 8] {
                let parts = partition(n, t);
                assert_eq!(parts.len(), t);
                let total: usize = parts.iter().map(|(lo, hi)| hi - lo).sum();
                assert_eq!(total, n, "n={n} t={t}");
                // Contiguous and ordered.
                let mut prev = 0;
                for (lo, hi) in parts {
                    assert!(lo <= hi);
                    assert_eq!(lo, prev.min(n));
                    prev = hi;
                }
            }
        }
    }

    #[test]
    fn speedup_computation() {
        let base = RunStats {
            cycles: 1000,
            loads: 0,
            mean_load_latency: 0.0,
            verified: true,
            cores: Vec::new(),
            engine: (0, 0, 0, 0),
            queue0_occupancy_mean: 0.0,
            queues_produced: 0,
            queues_consumed: 0,
            queues_drained: true,
            noc_injected: 0,
            noc_delivered: 0,
        };
        let fast = RunStats {
            cycles: 500,
            ..base.clone()
        };
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn variant_labels_unique() {
        let labels = [
            Variant::Doall.label(),
            Variant::SwDecoupled.label(),
            Variant::MapleDecoupled.label(),
            Variant::Desc.label(),
            Variant::SwPrefetch { dist: 8 }.label(),
            Variant::MapleLima.label(),
            Variant::Droplet.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
