//! Sparse Matrix–Matrix multiplication (SPMM), layer-wise.
//!
//! `C = A × B` with both operands sparse (CSC) and the output dense,
//! parallelized over the columns of `B` with a dense accumulator column
//! (Mofrad et al., the paper's reference implementation). The indirect
//! access is the accumulator update `Cc[r] += av*bv` — a **read-modify-
//! write**, which is why decoupling cannot hide it (Section 5.2): the
//! consumer immediately writes the location it just read.
//!
//! Variants:
//! - do-all over output columns;
//! - *partial* decoupling (software and MAPLE): the Access thread streams
//!   both sparse structures and ships `(row, product)` pairs; the Execute
//!   thread performs the RMW — the latency-bound part stays, which
//!   reproduces the paper's "decoupling is not effective for SPMM";
//! - DeSC: the slicer finds no decoupleable IMA and falls back to do-all
//!   (exactly what the paper reports for Figure 12);
//! - software prefetching and **speculative** LIMA into the LLC, which do
//!   help (the RMW is prefetchable even though it is not decoupleable);
//! - DROPLET.

use maple_baselines::swdec::{SwConsumer, SwProducer, SwQueueLayout};
use maple_isa::builder::ProgramBuilder;
use maple_isa::Reg;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_vm::VAddr;

use crate::data::{uniform_sparse, Csr};
use crate::harness::{
    alloc_u32, config_for, finish, partition, upload_u32, RunStats, Variant, MAX_CYCLES,
};

/// Column sentinel terminating a decoupled update stream.
const COL_SENTINEL: u32 = u32::MAX;

/// An SPMM instance: `A` is `n×n`, `B` is `n×m`, both column-compressed.
#[derive(Debug, Clone)]
pub struct Spmm {
    /// Left operand in CSC (stored transposed in [`Csr`] fields: "row"
    /// means column).
    pub a: Csr,
    /// Right operand in CSC.
    pub b: Csr,
    /// Dimension `n`.
    pub n: usize,
    /// Output columns `m`.
    pub m: usize,
}

impl Spmm {
    /// Builds a synthetic instance (riscv-tests style uniform sparsity).
    #[must_use]
    pub fn synthetic(n: usize, m: usize, nnz_per_col: usize, seed: u64) -> Self {
        Spmm {
            a: uniform_sparse(n, n, nnz_per_col, seed),
            b: uniform_sparse(m, n, nnz_per_col, seed ^ 0xB),
            n,
            m,
        }
    }

    /// Host reference: dense `n×m` output, column-major.
    #[must_use]
    pub fn reference(&self) -> Vec<u32> {
        let mut c = vec![0u32; self.n * self.m];
        for col in 0..self.m {
            for t in self.b.row_range(col) {
                let k = self.b.col_idx[t] as usize;
                let bv = self.b.values[t];
                for s in self.a.row_range(k) {
                    let r = self.a.col_idx[s] as usize;
                    let av = self.a.values[s];
                    let cell = &mut c[col * self.n + r];
                    *cell = cell.wrapping_add(av.wrapping_mul(bv));
                }
            }
        }
        c
    }

    /// Runs a variant and verifies the dense output.
    #[must_use]
    pub fn run(&self, variant: Variant, threads: usize) -> RunStats {
        let mut sys = System::new(config_for(variant, threads));
        let arrays = Arrays {
            acp: upload_u32(&mut sys, &self.a.row_ptr),
            ari: upload_u32(&mut sys, &self.a.col_idx),
            avv: upload_u32(&mut sys, &self.a.values),
            bcp: upload_u32(&mut sys, &self.b.row_ptr),
            bri: upload_u32(&mut sys, &self.b.col_idx),
            bvv: upload_u32(&mut sys, &self.b.values),
            cc: alloc_u32(&mut sys, self.n * self.m),
        };
        let expected = self.reference();

        match variant {
            Variant::Doall | Variant::Desc | Variant::MapleDecoupled => {
                // The slicing compiler cannot decouple a read-modify-write:
                // both DeSC and MAPLE fall back to do-all (Section 5.2).
                for (lo, hi) in partition(self.m, threads) {
                    let (p, binds) = self.doall_program(&arrays, lo, hi, None);
                    sys.load_program(p, &binds);
                }
            }
            Variant::Droplet => {
                sys.droplet_watch(
                    arrays.ari,
                    (self.a.nnz() * 4) as u64,
                    4,
                    arrays.cc,
                    4,
                );
                for (lo, hi) in partition(self.m, threads) {
                    let (p, binds) = self.doall_program(&arrays, lo, hi, None);
                    sys.load_program(p, &binds);
                }
            }
            Variant::SwPrefetch { dist } => {
                for (lo, hi) in partition(self.m, threads) {
                    let (p, binds) = self.doall_program(&arrays, lo, hi, Some(dist));
                    sys.load_program(p, &binds);
                }
            }
            Variant::SwDecoupled => self.load_sw_partial(&mut sys, &arrays, threads),
            Variant::MapleLima => self.load_lima(&mut sys, &arrays, threads),
        }

        let outcome = sys.run(MAX_CYCLES);
        finish(&mut sys, outcome, arrays.cc, &expected)
    }

    /// The streaming walk shared by every Access-side program: iterates
    /// `(col, k, s)` and calls `per_update` with `(r_reg, prod_reg)` live.
    #[allow(clippy::too_many_arguments)]
    fn emit_walk(
        &self,
        b: &mut ProgramBuilder,
        regs: &WalkRegs,
        lo: usize,
        hi: usize,
        mut per_column_start: impl FnMut(&mut ProgramBuilder, &WalkRegs),
        mut per_update: impl FnMut(&mut ProgramBuilder, &WalkRegs),
        mut per_column_end: impl FnMut(&mut ProgramBuilder, &WalkRegs),
    ) {
        let n = self.n as u64;
        b.li(regs.col, lo as u64);
        let col_loop = b.here("col");
        let done = b.label("done");
        b.bge(regs.col, hi as i64, done);
        // slab = C + col*n*4
        b.mul(regs.slab, regs.col, (n * 4) as i64);
        b.add(regs.slab, regs.slab, regs.cc);
        per_column_start(b, regs);
        b.load_indexed(regs.t, regs.bcp, regs.col, 2, 4, regs.tmp);
        b.addi(regs.tmp, regs.col, 1);
        b.load_indexed(regs.tend, regs.bcp, regs.tmp, 2, 4, regs.tmp);
        let t_loop = b.here("t");
        let t_done = b.label("t_done");
        b.bge(regs.t, regs.tend, t_done);
        b.load_indexed(regs.k, regs.bri, regs.t, 2, 4, regs.tmp);
        b.load_indexed(regs.bv, regs.bvv, regs.t, 2, 4, regs.tmp);
        b.load_indexed(regs.s, regs.acp, regs.k, 2, 4, regs.tmp);
        b.addi(regs.tmp, regs.k, 1);
        b.load_indexed(regs.send, regs.acp, regs.tmp, 2, 4, regs.tmp);
        let s_loop = b.here("s");
        let s_done = b.label("s_done");
        b.bge(regs.s, regs.send, s_done);
        b.load_indexed(regs.r, regs.ari, regs.s, 2, 4, regs.tmp);
        b.load_indexed(regs.av, regs.avv, regs.s, 2, 4, regs.tmp);
        b.mul(regs.prod, regs.av, regs.bv);
        per_update(b, regs);
        b.addi(regs.s, regs.s, 1);
        b.jump(s_loop);
        b.bind(s_done);
        b.addi(regs.t, regs.t, 1);
        b.jump(t_loop);
        b.bind(t_done);
        per_column_end(b, regs);
        b.addi(regs.col, regs.col, 1);
        b.jump(col_loop);
        b.bind(done);
        b.halt();
    }

    fn doall_program(
        &self,
        arrays: &Arrays,
        lo: usize,
        hi: usize,
        prefetch: Option<u32>,
    ) -> (maple_isa::Program, Vec<(Reg, u64)>) {
        let mut b = ProgramBuilder::new();
        let regs = WalkRegs::allocate(&mut b);
        let old = b.reg("old");
        let extra = prefetch.map(|_| (b.reg("sd"), b.reg("r2"), b.reg("ptmp")));
        let a_nnz = self.a.nnz() as i64;
        self.emit_walk(
            &mut b,
            &regs,
            lo,
            hi,
            |_, _| {},
            |b, regs| {
                // RMW: slab[r] += prod.
                b.index_addr(regs.tmp, regs.slab, regs.r, 2);
                b.ld(old, regs.tmp, 0, 4);
                b.add(old, old, regs.prod);
                b.st(old, regs.tmp, 0, 4);
                if let Some((sd, r2, ptmp)) = extra {
                    let dist = prefetch.expect("extra implies prefetch");
                    // Prefetch the accumulator line for a future row index.
                    b.addi(sd, regs.s, i64::from(dist));
                    b.alu(maple_isa::AluOp::MinU, sd, sd, a_nnz - 1);
                    b.load_indexed(r2, regs.ari, sd, 2, 4, ptmp);
                    b.index_addr(ptmp, regs.slab, r2, 2);
                    b.prefetch(ptmp, 0);
                }
            },
            |_, _| {},
        );
        (b.build().expect("spmm doall builds"), regs.bindings(arrays))
    }

    /// Runs the *forced* MAPLE partial decoupling (what a programmer could
    /// hand-write against the API despite the compiler's fallback): the
    /// Access thread streams and produces packed `(prod, r)` updates; the
    /// Execute thread wide-consumes and performs the RMW. Exists to
    /// demonstrate *why* the compiler falls back — the latency-bound RMW
    /// stays on the Execute side.
    #[must_use]
    pub fn run_forced_partial_decoupling(&self, threads: usize) -> RunStats {
        let mut sys = System::new(config_for(Variant::MapleDecoupled, threads));
        let arrays = Arrays {
            acp: upload_u32(&mut sys, &self.a.row_ptr),
            ari: upload_u32(&mut sys, &self.a.col_idx),
            avv: upload_u32(&mut sys, &self.a.values),
            bcp: upload_u32(&mut sys, &self.b.row_ptr),
            bri: upload_u32(&mut sys, &self.b.col_idx),
            bvv: upload_u32(&mut sys, &self.b.values),
            cc: alloc_u32(&mut sys, self.n * self.m),
        };
        let expected = self.reference();
        self.load_maple_partial(&mut sys, &arrays, threads);
        let outcome = sys.run(MAX_CYCLES);
        finish(&mut sys, outcome, arrays.cc, &expected)
    }

    fn load_maple_partial(&self, sys: &mut System, arrays: &Arrays, threads: usize) {
        assert!(threads.is_multiple_of(2));
        let maple_va = sys.map_maple(0);
        for (pair, (lo, hi)) in partition(self.m, threads / 2).into_iter().enumerate() {
            let q = pair as u8;

            // Access.
            let mut b = ProgramBuilder::new();
            let regs = WalkRegs::allocate(&mut b);
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let sent = b.reg("sent");
            b.li(sent, u64::from(COL_SENTINEL));
            self.emit_walk(
                &mut b,
                &regs,
                lo,
                hi,
                |_, _| {},
                |b, regs| {
                    // Two 4-byte produces: r then prod.
                    api.produce(b, q, regs.r);
                    api.produce(b, q, regs.prod);
                },
                |b, _| {
                    api.produce(b, q, sent);
                    api.produce(b, q, sent);
                },
            );
            let mut binds = regs.bindings(arrays);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("spmm maple access"), &binds);

            // Execute: wide consume pops (prod<<32)|r.
            let mut b = ProgramBuilder::new();
            let cc = b.reg("cc");
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let col = b.reg("col");
            let slab = b.reg("slab");
            let pair_reg = b.reg("pair");
            let r = b.reg("r");
            let prod = b.reg("prod");
            let old = b.reg("old");
            let tmp = b.reg("tmp");
            let mask = b.reg("mask");
            b.li(mask, 0xffff_ffff);
            b.li(col, lo as u64);
            let col_loop = b.here("col");
            let done = b.label("done");
            b.bge(col, hi as i64, done);
            b.mul(slab, col, (self.n * 4) as i64);
            b.add(slab, slab, cc);
            let upd = b.here("upd");
            let col_end = b.label("col_end");
            api.consume(&mut b, q, pair_reg, 8);
            b.alu(maple_isa::AluOp::And, r, pair_reg, maple_isa::Operand::Reg(mask));
            b.beq(r, u64::from(COL_SENTINEL) as i64, col_end);
            b.alu(maple_isa::AluOp::Srl, prod, pair_reg, 32);
            b.index_addr(tmp, slab, r, 2);
            b.ld(old, tmp, 0, 4);
            b.add(old, old, prod);
            b.st(old, tmp, 0, 4);
            b.jump(upd);
            b.bind(col_end);
            b.addi(col, col, 1);
            b.jump(col_loop);
            b.bind(done);
            b.halt();
            sys.load_program(
                b.build().expect("spmm maple execute"),
                &[(cc, arrays.cc.0), (mbase, maple_va.0)],
            );
        }
    }

    /// Software partial decoupling through a shared-memory ring.
    fn load_sw_partial(&self, sys: &mut System, arrays: &Arrays, threads: usize) {
        assert!(threads.is_multiple_of(2));
        let layout = SwQueueLayout::new(64);
        for (lo, hi) in partition(self.m, threads / 2) {
            let qva = sys.alloc(layout.bytes());

            // Access: packs (prod << 32) | r into one u64.
            let mut b = ProgramBuilder::new();
            let regs = WalkRegs::allocate(&mut b);
            let qbase = b.reg("qbase");
            let prodq = SwProducer::new(&mut b, qbase, layout.capacity);
            let packed = b.reg("packed");
            let sent = b.reg("sent");
            b.li(sent, u64::from(COL_SENTINEL));
            self.emit_walk(
                &mut b,
                &regs,
                lo,
                hi,
                |_, _| {},
                |b, regs| {
                    b.slli(packed, regs.prod, 32);
                    b.add(packed, packed, regs.r);
                    prodq.emit_produce(b, packed);
                },
                |b, _| {
                    prodq.emit_produce(b, sent);
                },
            );
            let mut binds = regs.bindings(arrays);
            binds.push((qbase, qva.0));
            sys.load_program(b.build().expect("spmm sw access"), &binds);

            // Execute.
            let mut b = ProgramBuilder::new();
            let cc = b.reg("cc");
            let qbase = b.reg("qbase");
            let cons = SwConsumer::new(&mut b, qbase, layout.capacity);
            let col = b.reg("col");
            let slab = b.reg("slab");
            let packed = b.reg("packed");
            let r = b.reg("r");
            let prod = b.reg("prod");
            let old = b.reg("old");
            let tmp = b.reg("tmp");
            let mask = b.reg("mask");
            b.li(mask, 0xffff_ffff);
            b.li(col, lo as u64);
            let col_loop = b.here("col");
            let done = b.label("done");
            b.bge(col, hi as i64, done);
            b.mul(slab, col, (self.n * 4) as i64);
            b.add(slab, slab, cc);
            let upd = b.here("upd");
            let col_end = b.label("col_end");
            cons.emit_consume(&mut b, packed);
            b.alu(maple_isa::AluOp::And, r, packed, maple_isa::Operand::Reg(mask));
            b.beq(r, u64::from(COL_SENTINEL) as i64, col_end);
            b.alu(maple_isa::AluOp::Srl, prod, packed, 32);
            b.index_addr(tmp, slab, r, 2);
            b.ld(old, tmp, 0, 4);
            b.add(old, old, prod);
            b.st(old, tmp, 0, 4);
            b.jump(upd);
            b.bind(col_end);
            b.addi(col, col, 1);
            b.jump(col_loop);
            b.bind(done);
            b.halt();
            sys.load_program(
                b.build().expect("spmm sw execute"),
                &[(cc, arrays.cc.0), (qbase, qva.0)],
            );
        }
    }

    /// Speculative LIMA: prefetch the next A-column segment's accumulator
    /// lines into the LLC while the current segment's RMWs execute.
    fn load_lima(&self, sys: &mut System, arrays: &Arrays, threads: usize) {
        assert_eq!(threads, 1);
        let maple_va = sys.map_maple(0);
        let (lo, hi) = (0usize, self.m);

        // Custom walk with one-segment LIMA runahead.
        let mut b = ProgramBuilder::new();
        let regs = WalkRegs::allocate(&mut b);
        let mbase = b.reg("maple");
        let api2 = MapleApi::new(mbase);
        let old = b.reg("old");
        let t2 = b.reg("t2");
        let k2 = b.reg("k2");
        let s2 = b.reg("s2");
        let s2e = b.reg("s2e");
        let ltmp = b.reg("ltmp");
        let ltmp2 = b.reg("ltmp2");
        b.li(regs.col, lo as u64);
        let col_loop = b.here("col");
        let done = b.label("done");
        b.bge(regs.col, hi as i64, done);
        b.mul(regs.slab, regs.col, (self.n * 4) as i64);
        b.add(regs.slab, regs.slab, regs.cc);
        b.load_indexed(regs.t, regs.bcp, regs.col, 2, 4, regs.tmp);
        b.addi(regs.tmp, regs.col, 1);
        b.load_indexed(regs.tend, regs.bcp, regs.tmp, 2, 4, regs.tmp);
        let t_loop = b.here("t");
        let t_done = b.label("t_done");
        b.bge(regs.t, regs.tend, t_done);
        // LIMA runahead: prefetch segment t+1's accumulator lines.
        let no_next = b.label("no_next");
        b.addi(t2, regs.t, 1);
        b.bge(t2, regs.tend, no_next);
        b.load_indexed(k2, regs.bri, t2, 2, 4, ltmp);
        b.load_indexed(s2, regs.acp, k2, 2, 4, ltmp);
        b.addi(ltmp, k2, 1);
        b.load_indexed(s2e, regs.acp, ltmp, 2, 4, ltmp);
        api2.lima(&mut b, 0, regs.slab, regs.ari, s2, s2e, true, 4, 4, ltmp, ltmp2);
        b.bind(no_next);
        b.load_indexed(regs.k, regs.bri, regs.t, 2, 4, regs.tmp);
        b.load_indexed(regs.bv, regs.bvv, regs.t, 2, 4, regs.tmp);
        b.load_indexed(regs.s, regs.acp, regs.k, 2, 4, regs.tmp);
        b.addi(regs.tmp, regs.k, 1);
        b.load_indexed(regs.send, regs.acp, regs.tmp, 2, 4, regs.tmp);
        let s_loop = b.here("s");
        let s_done = b.label("s_done");
        b.bge(regs.s, regs.send, s_done);
        b.load_indexed(regs.r, regs.ari, regs.s, 2, 4, regs.tmp);
        b.load_indexed(regs.av, regs.avv, regs.s, 2, 4, regs.tmp);
        b.mul(regs.prod, regs.av, regs.bv);
        b.index_addr(regs.tmp, regs.slab, regs.r, 2);
        b.ld(old, regs.tmp, 0, 4);
        b.add(old, old, regs.prod);
        b.st(old, regs.tmp, 0, 4);
        b.addi(regs.s, regs.s, 1);
        b.jump(s_loop);
        b.bind(s_done);
        b.addi(regs.t, regs.t, 1);
        b.jump(t_loop);
        b.bind(t_done);
        b.addi(regs.col, regs.col, 1);
        b.jump(col_loop);
        b.bind(done);
        b.halt();
        let mut binds = regs.bindings(arrays);
        binds.push((mbase, maple_va.0));
        sys.load_program(b.build().expect("spmm lima"), &binds);
    }
}

struct Arrays {
    acp: VAddr,
    ari: VAddr,
    avv: VAddr,
    bcp: VAddr,
    bri: VAddr,
    bvv: VAddr,
    cc: VAddr,
}

struct WalkRegs {
    acp: Reg,
    ari: Reg,
    avv: Reg,
    bcp: Reg,
    bri: Reg,
    bvv: Reg,
    cc: Reg,
    col: Reg,
    slab: Reg,
    t: Reg,
    tend: Reg,
    k: Reg,
    bv: Reg,
    s: Reg,
    send: Reg,
    r: Reg,
    av: Reg,
    prod: Reg,
    tmp: Reg,
}

impl WalkRegs {
    fn allocate(b: &mut ProgramBuilder) -> Self {
        WalkRegs {
            acp: b.reg("acp"),
            ari: b.reg("ari"),
            avv: b.reg("avv"),
            bcp: b.reg("bcp"),
            bri: b.reg("bri"),
            bvv: b.reg("bvv"),
            cc: b.reg("cc"),
            col: b.reg("col"),
            slab: b.reg("slab"),
            t: b.reg("t"),
            tend: b.reg("tend"),
            k: b.reg("k"),
            bv: b.reg("bv"),
            s: b.reg("s"),
            send: b.reg("send"),
            r: b.reg("r"),
            av: b.reg("av"),
            prod: b.reg("prod"),
            tmp: b.reg("tmp"),
        }
    }

    fn bindings(&self, a: &Arrays) -> Vec<(Reg, u64)> {
        vec![
            (self.acp, a.acp.0),
            (self.ari, a.ari.0),
            (self.avv, a.avv.0),
            (self.bcp, a.bcp.0),
            (self.bri, a.bri.0),
            (self.bvv, a.bvv.0),
            (self.cc, a.cc.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Spmm {
        Spmm::synthetic(128, 4, 6, 13)
    }

    #[test]
    fn doall_verifies() {
        assert!(small().run(Variant::Doall, 1).verified);
        assert!(small().run(Variant::Doall, 2).verified);
    }

    #[test]
    fn partial_decoupling_verifies() {
        assert!(small().run_forced_partial_decoupling(2).verified);
        assert!(small().run(Variant::SwDecoupled, 2).verified);
    }

    #[test]
    fn desc_and_maple_fall_back_to_doall() {
        let inst = small();
        let doall = inst.run(Variant::Doall, 2);
        for v in [Variant::Desc, Variant::MapleDecoupled] {
            let s = inst.run(v, 2);
            assert!(s.verified);
            assert_eq!(s.cycles, doall.cycles, "fallback is exactly do-all");
        }
    }

    #[test]
    fn forced_partial_decoupling_shows_why_the_compiler_falls_back() {
        let inst = small();
        let doall = inst.run(Variant::Doall, 2);
        let forced = inst.run_forced_partial_decoupling(2);
        assert!(forced.verified);
        // The RMW stays latency-bound on the Execute thread: no big win.
        assert!(
            (forced.cycles as f64) > 0.7 * doall.cycles as f64,
            "partial decoupling must not hide the RMW: {} vs {}",
            forced.cycles,
            doall.cycles
        );
    }

    #[test]
    fn prefetch_variants_verify() {
        let inst = small();
        assert!(inst.run(Variant::SwPrefetch { dist: 8 }, 1).verified);
        assert!(inst.run(Variant::MapleLima, 1).verified);
    }

    #[test]
    fn droplet_verifies() {
        assert!(small().run(Variant::Droplet, 2).verified);
    }
}
