//! Breadth-First Search (level-synchronous, frontier-based).
//!
//! Computes hop distances from a root over a directed graph in CSR form.
//! Each level, threads partition the current frontier, examine neighbor
//! lists (`col_idx` streams per vertex) and test `dist[v]` — the indirect
//! access. Updates use an atomic fetch-min so every variant, decoupled or
//! not, is race-free: a stale `dist[v]` observation can only cause a
//! redundant atomic, never a wrong distance.
//!
//! The decoupled variants ship `(v, dist[v])` pairs from the Access walker
//! to the Execute updater; DeSC additionally routes update *decisions*
//! back to the Supply core because its Compute core has no memory
//! visibility — the structural reason DeSC loses runahead on BFS
//! (Section 5.2).

use maple_baselines::swdec::{SwConsumer, SwProducer, SwQueueLayout};
use maple_isa::builder::ProgramBuilder;
use maple_isa::{AtomicOp, Reg, ZERO};
use maple_soc::runtime::{Barrier, MapleApi, BARRIER_BYTES};
use maple_soc::system::System;
use maple_vm::VAddr;

use crate::data::{Csr, Dataset};
use crate::harness::{alloc_u32, config_for, finish, upload_u32, RunStats, Variant, MAX_CYCLES};

/// Unvisited marker.
const UNVISITED: u32 = u32::MAX;
/// Frontier sentinel (cannot be a node id).
const SENT: u32 = u32::MAX;
/// DeSC "level finished" marker on the decision queue.
const END_MARK: u64 = 0xFFFF_FFFE;

/// A BFS problem instance.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// The graph (directed, CSR).
    pub graph: Csr,
    /// Source vertex.
    pub root: u32,
}

impl Bfs {
    /// Builds an instance from a dataset preset, rooting at the first
    /// vertex with outgoing edges.
    #[must_use]
    pub fn new(dataset: Dataset, seed: u64) -> Self {
        let graph = dataset.generate(seed);
        let root = (0..graph.nrows)
            .find(|&r| !graph.row_range(r).is_empty())
            .unwrap_or(0) as u32;
        Bfs { graph, root }
    }

    /// Host reference distances.
    #[must_use]
    pub fn reference(&self) -> Vec<u32> {
        let mut dist = vec![UNVISITED; self.graph.nrows];
        dist[self.root as usize] = 0;
        let mut frontier = vec![self.root];
        let mut level = 1u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for j in self.graph.row_range(u as usize) {
                    let v = self.graph.col_idx[j] as usize;
                    if dist[v] == UNVISITED {
                        dist[v] = level;
                        next.push(v as u32);
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        dist
    }

    /// Runs a variant on `threads` hardware threads.
    #[must_use]
    pub fn run(&self, variant: Variant, threads: usize) -> RunStats {
        self.run_tuned(variant, threads, |c| c)
    }

    /// Like [`Bfs::run`] with a configuration hook for sweeps.
    #[must_use]
    pub fn run_tuned(
        &self,
        variant: Variant,
        threads: usize,
        tune: impl FnOnce(maple_soc::SocConfig) -> maple_soc::SocConfig,
    ) -> RunStats {
        let mut cfg = config_for(variant, threads);
        if matches!(variant, Variant::MapleDecoupled) {
            // Fewer, larger queues (Section 3.4): each pair uses one
            // queue for (v, dv) edges and one for row-bound gathers, and
            // they split the whole scratchpad for maximum runahead.
            let pairs = (threads / 2).max(1);
            let entries = (1024 / (pairs * 2 * 4)).min(256);
            cfg = cfg.with_queue_entries(entries);
        }
        let mut sys = System::new(tune(cfg));
        let n = self.graph.nrows;
        let dev = Dev {
            rp: upload_u32(&mut sys, &self.graph.row_ptr),
            ci: upload_u32(&mut sys, &self.graph.col_idx),
            dist: {
                let init = vec![UNVISITED; n];
                
                upload_u32(&mut sys, &init)
            },
            cur: alloc_u32(&mut sys, n.max(1)),
            next: alloc_u32(&mut sys, n.max(1)),
            ctrl: sys.alloc(128),
            bar: sys.alloc(BARRIER_BYTES),
        };
        // Seed: dist[root] = 0, frontier = {root}.
        sys.write_u32(dev.dist.offset(u64::from(self.root) * 4), 0);
        sys.write_u32(dev.cur, self.root);
        sys.write_u64(dev.ctrl, 1); // cur_count

        let expected = self.reference();

        match variant {
            Variant::Doall => self.load_doall(&mut sys, &dev, threads, None, false),
            Variant::Droplet => {
                sys.droplet_watch(
                    dev.ci,
                    (self.graph.nnz() * 4) as u64,
                    4,
                    dev.dist,
                    4,
                );
                self.load_doall(&mut sys, &dev, threads, None, false);
            }
            Variant::SwPrefetch { dist } => {
                self.load_doall(&mut sys, &dev, threads, Some(dist), false);
            }
            Variant::MapleLima => {
                assert_eq!(threads, 1);
                self.load_doall(&mut sys, &dev, 1, None, true);
            }
            Variant::MapleDecoupled => self.load_maple_dec(&mut sys, &dev, threads),
            Variant::SwDecoupled => self.load_sw_dec(&mut sys, &dev, threads),
            Variant::Desc => self.load_desc(&mut sys, &dev, threads),
        }

        let outcome = sys.run(MAX_CYCLES);
        finish(&mut sys, outcome, dev.dist, &expected)
    }

    // --- do-all (with optional software prefetch or LIMA) ----------------

    fn load_doall(
        &self,
        sys: &mut System,
        dev: &Dev,
        threads: usize,
        prefetch: Option<u32>,
        lima: bool,
    ) {
        assert!(threads.is_power_of_two(), "partitioning uses shifts");
        let maple_va = lima.then(|| sys.map_maple(0));
        for w in 0..threads {
            let mut b = ProgramBuilder::new();
            let c = Common::allocate(&mut b, threads as u64);
            let i = b.reg("i");
            let hi = b.reg("hi");
            let u = b.reg("u");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let v = b.reg("v");
            let dv = b.reg("dv");
            let maple_regs = maple_va.map(|_| {
                (
                    b.reg("maple"),
                    b.reg("u2"),
                    b.reg("l2"),
                    b.reg("h2"),
                    b.reg("lt"),
                    b.reg("lt2"),
                )
            });
            let pf = prefetch.map(|_| (b.reg("jd"), b.reg("v2")));

            c.emit_level_loop(&mut b, w == 0, |b, c| {
                c.emit_partition(b, w as u64, i, hi);
                if let Some((mbase, u2, l2, h2, lt, lt2)) = maple_regs {
                    let api = MapleApi::new(mbase);
                    // Prologue LIMA for the first frontier vertex.
                    let no_pro = b.label("no_pro");
                    b.bge(i, hi, no_pro);
                    b.load_indexed(u2, c.curp, i, 2, 4, c.tmp);
                    b.load_indexed(l2, c.rp, u2, 2, 4, c.tmp);
                    b.addi(c.tmp, u2, 1);
                    b.load_indexed(h2, c.rp, c.tmp, 2, 4, c.tmp);
                    api.lima(b, 0, c.dist, c.ci, l2, h2, false, 4, 4, lt, lt2);
                    b.bind(no_pro);
                }
                let floop = b.here("frontier");
                let fdone = b.label("fdone");
                b.bge(i, hi, fdone);
                if let Some((mbase, u2, l2, h2, lt, lt2)) = maple_regs {
                    let api = MapleApi::new(mbase);
                    // Runahead: LIMA for the next frontier vertex.
                    let no_next = b.label("no_next");
                    b.addi(u2, i, 1);
                    b.bge(u2, hi, no_next);
                    b.load_indexed(u2, c.curp, u2, 2, 4, c.tmp);
                    b.load_indexed(l2, c.rp, u2, 2, 4, c.tmp);
                    b.addi(c.tmp, u2, 1);
                    b.load_indexed(h2, c.rp, c.tmp, 2, 4, c.tmp);
                    api.lima(b, 0, c.dist, c.ci, l2, h2, false, 4, 4, lt, lt2);
                    b.bind(no_next);
                }
                b.load_indexed(u, c.curp, i, 2, 4, c.tmp);
                b.load_indexed(j, c.rp, u, 2, 4, c.tmp);
                b.addi(c.tmp, u, 1);
                b.load_indexed(jend, c.rp, c.tmp, 2, 4, c.tmp);
                let nloop = b.here("neigh");
                let nnext = b.label("nnext");
                b.bge(j, jend, nnext);
                b.load_indexed(v, c.ci, j, 2, 4, c.tmp);
                if let Some((mbase, ..)) = maple_regs {
                    let api = MapleApi::new(mbase);
                    api.consume(b, 0, dv, 4);
                } else {
                    b.load_indexed(dv, c.dist, v, 2, 4, c.tmp);
                }
                if let Some((jd, v2)) = pf {
                    let d = prefetch.expect("pf implies prefetch");
                    // Prefetch dist[ci[min(j+d, jend-1)]].
                    b.addi(jd, j, i64::from(d));
                    b.addi(c.tmp, jend, -1);
                    b.alu(maple_isa::AluOp::MinU, jd, jd, maple_isa::Operand::Reg(c.tmp));
                    b.load_indexed(v2, c.ci, jd, 2, 4, c.tmp);
                    b.index_addr(c.tmp, c.dist, v2, 2);
                    b.prefetch(c.tmp, 0);
                }
                let skip = b.label("skip");
                b.bne(dv, c.maxv, skip);
                c.emit_update(b, v, skip);
                b.bind(skip);
                b.addi(j, j, 1);
                b.jump(nloop);
                b.bind(nnext);
                b.addi(i, i, 1);
                b.jump(floop);
                b.bind(fdone);
            });
            let mut binds = c.bindings(dev);
            if let Some((mbase, ..)) = maple_regs {
                binds.push((mbase, maple_va.expect("lima has a mapped engine").0));
            }
            sys.load_program(b.build().expect("bfs doall builds"), &binds);
        }
    }

    // --- MAPLE decoupling --------------------------------------------------

    fn load_maple_dec(&self, sys: &mut System, dev: &Dev, threads: usize) {
        assert!(threads.is_multiple_of(2));
        let pairs = threads / 2;
        assert!(pairs.is_power_of_two());
        let maple_va = sys.map_maple(0);
        /// Vertices of row-bound runahead on the Access side.
        const RUNAHEAD: i64 = 6;
        for p in 0..pairs {
            // Two queues per pair. `q`: the vertex id (data produce) and
            // its gathered distance (pointer produce) occupy adjacent
            // 4-byte slots, so the Execute thread pops both with a single
            // 8-byte consume — the two-words-per-load trick of Figure 10.
            // `q_rp`: the Access thread's *own* irregular loads — the row
            // bounds rp[u], rp[u+1] — are pointer-produced `RUNAHEAD`
            // vertices ahead and consumed back as one wide load, so the
            // Access thread never blocks on DRAM either.
            let q = (2 * p) as u8;
            let q_rp = (2 * p + 1) as u8;

            // Access: walks its frontier share, produces v and &dist[v].
            let mut b = ProgramBuilder::new();
            let c = Common::allocate(&mut b, threads as u64);
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let i = b.reg("i");
            let hi = b.reg("hi");
            let k = b.reg("k");
            let klim = b.reg("klim");
            let u = b.reg("u");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let bounds = b.reg("bounds");
            let v = b.reg("v");
            let ptr = b.reg("ptr");
            let sent = b.reg("sent");
            let mask = b.reg("mask");
            b.li(mask, 0xffff_ffff);
            c.emit_level_loop(&mut b, false, |b, c| {
                c.emit_partition_of(b, p as u64, pairs as u64, i, hi);
                // Prologue: gather row bounds for the first RUNAHEAD
                // vertices.
                b.mv(k, i);
                b.addi(klim, i, RUNAHEAD);
                b.alu(maple_isa::AluOp::MinU, klim, klim, maple_isa::Operand::Reg(hi));
                let pro = b.here("prologue");
                let pro_done = b.label("pro_done");
                b.bge(k, klim, pro_done);
                b.load_indexed(u, c.curp, k, 2, 4, c.tmp);
                b.index_addr(ptr, c.rp, u, 2);
                api.produce_ptr_llc(b, q_rp, ptr);
                b.addi(ptr, ptr, 4);
                api.produce_ptr_llc(b, q_rp, ptr);
                b.addi(k, k, 1);
                b.jump(pro);
                b.bind(pro_done);

                let floop = b.here("frontier");
                let fdone = b.label("fdone");
                b.bge(i, hi, fdone);
                // Keep the row-bound pipeline primed.
                let no_ahead = b.label("no_ahead");
                b.bge(k, hi, no_ahead);
                b.load_indexed(u, c.curp, k, 2, 4, c.tmp);
                b.index_addr(ptr, c.rp, u, 2);
                api.produce_ptr_llc(b, q_rp, ptr);
                b.addi(ptr, ptr, 4);
                api.produce_ptr_llc(b, q_rp, ptr);
                b.addi(k, k, 1);
                b.bind(no_ahead);
                // Row bounds arrive as one wide consume: (jend<<32)|j.
                api.consume(b, q_rp, bounds, 8);
                b.alu(maple_isa::AluOp::And, j, bounds, maple_isa::Operand::Reg(mask));
                b.alu(maple_isa::AluOp::Srl, jend, bounds, 32);
                let nloop = b.here("neigh");
                let nnext = b.label("nnext");
                b.bge(j, jend, nnext);
                b.load_indexed(v, c.ci, j, 2, 4, c.tmp);
                api.produce(b, q, v);
                b.index_addr(ptr, c.dist, v, 2);
                // Coherent LLC path: dist is mutable (the Execute thread
                // writes it), and pulling the line into the L2 makes the
                // subsequent atomic fetch-min an L2 hit.
                api.produce_ptr_llc(b, q, ptr);
                b.addi(j, j, 1);
                b.jump(nloop);
                b.bind(nnext);
                b.addi(i, i, 1);
                b.jump(floop);
                b.bind(fdone);
                b.li(sent, u64::from(SENT));
                api.produce(b, q, sent);
                api.produce(b, q, sent);
            });
            let mut binds = c.bindings(dev);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("bfs maple access"), &binds);

            // Execute: one wide consume pops (dv << 32) | v.
            let mut b = ProgramBuilder::new();
            let c = Common::allocate(&mut b, threads as u64);
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let pairv = b.reg("pair");
            let v = b.reg("v");
            let dv = b.reg("dv");
            let mask = b.reg("mask");
            b.li(mask, 0xffff_ffff);
            c.emit_level_loop(&mut b, p == 0, |b, c| {
                let eloop = b.here("consume");
                let edone = b.label("edone");
                api.consume(b, q, pairv, 8);
                b.alu(maple_isa::AluOp::And, v, pairv, maple_isa::Operand::Reg(mask));
                b.beq(v, u64::from(SENT) as i64, edone);
                b.alu(maple_isa::AluOp::Srl, dv, pairv, 32);
                let skip = b.label("skip");
                b.bne(dv, c.maxv, skip);
                c.emit_update(b, v, skip);
                b.bind(skip);
                b.jump(eloop);
                b.bind(edone);
            });
            let mut binds = c.bindings(dev);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("bfs maple execute"), &binds);
        }
    }

    // --- software decoupling -----------------------------------------------

    fn load_sw_dec(&self, sys: &mut System, dev: &Dev, threads: usize) {
        assert!(threads.is_multiple_of(2));
        let pairs = threads / 2;
        assert!(pairs.is_power_of_two());
        let layout = SwQueueLayout::new(64);
        for p in 0..pairs {
            let qva = sys.alloc(layout.bytes());

            // Access: loads dist[v] itself (blocking), packs (v<<32)|dv.
            let mut b = ProgramBuilder::new();
            let c = Common::allocate(&mut b, threads as u64);
            let qbase = b.reg("qbase");
            let prod = SwProducer::new(&mut b, qbase, layout.capacity);
            let i = b.reg("i");
            let hi = b.reg("hi");
            let u = b.reg("u");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let v = b.reg("v");
            let dv = b.reg("dv");
            let packed = b.reg("packed");
            c.emit_level_loop(&mut b, false, |b, c| {
                c.emit_partition_of(b, p as u64, pairs as u64, i, hi);
                let floop = b.here("frontier");
                let fdone = b.label("fdone");
                b.bge(i, hi, fdone);
                b.load_indexed(u, c.curp, i, 2, 4, c.tmp);
                b.load_indexed(j, c.rp, u, 2, 4, c.tmp);
                b.addi(c.tmp, u, 1);
                b.load_indexed(jend, c.rp, c.tmp, 2, 4, c.tmp);
                let nloop = b.here("neigh");
                let nnext = b.label("nnext");
                b.bge(j, jend, nnext);
                b.load_indexed(v, c.ci, j, 2, 4, c.tmp);
                b.load_indexed(dv, c.dist, v, 2, 4, c.tmp); // blocking IMA
                b.slli(packed, v, 32);
                b.add(packed, packed, dv);
                prod.emit_produce(b, packed);
                b.addi(j, j, 1);
                b.jump(nloop);
                b.bind(nnext);
                b.addi(i, i, 1);
                b.jump(floop);
                b.bind(fdone);
                b.li(packed, (u64::from(SENT) << 32) | u64::from(UNVISITED));
                prod.emit_produce(b, packed);
            });
            let mut binds = c.bindings(dev);
            binds.push((qbase, qva.0));
            sys.load_program(b.build().expect("bfs sw access"), &binds);

            // Execute.
            let mut b = ProgramBuilder::new();
            let c = Common::allocate(&mut b, threads as u64);
            let qbase = b.reg("qbase");
            let cons = SwConsumer::new(&mut b, qbase, layout.capacity);
            let packed = b.reg("packed");
            let v = b.reg("v");
            let dv = b.reg("dv");
            let mask = b.reg("mask");
            b.li(mask, 0xffff_ffff);
            c.emit_level_loop(&mut b, p == 0, |b, c| {
                let eloop = b.here("consume");
                let edone = b.label("edone");
                cons.emit_consume(b, packed);
                b.alu(maple_isa::AluOp::Srl, v, packed, 32);
                b.beq(v, u64::from(SENT) as i64, edone);
                b.alu(maple_isa::AluOp::And, dv, packed, maple_isa::Operand::Reg(mask));
                let skip = b.label("skip");
                b.bne(dv, c.maxv, skip);
                c.emit_update(b, v, skip);
                b.bind(skip);
                b.jump(eloop);
                b.bind(edone);
            });
            let mut binds = c.bindings(dev);
            binds.push((qbase, qva.0));
            sys.load_program(b.build().expect("bfs sw execute"), &binds);
        }
    }

    // --- DeSC ----------------------------------------------------------------

    fn load_desc(&self, sys: &mut System, dev: &Dev, threads: usize) {
        assert_eq!(threads, 2);

        // Supply: walks, terminal-loads dist[v], and — because Compute has
        // no memory access — performs every atomic update itself, draining
        // the decision queue opportunistically.
        let mut b = ProgramBuilder::new();
        let c = Common::allocate(&mut b, 2);
        let i = b.reg("i");
        let hi = b.reg("hi");
        let u = b.reg("u");
        let j = b.reg("j");
        let jend = b.reg("jend");
        let v = b.reg("v");
        let ptr = b.reg("ptr");
        let dec = b.reg("dec");
        let emptyv = b.reg("emptyv");
        c.emit_level_loop(&mut b, true, |b, c| {
            b.li(emptyv, u64::MAX);
            c.emit_partition_of(b, 0, 1, i, hi);
            let floop = b.here("frontier");
            let fdone = b.label("fdone");
            b.bge(i, hi, fdone);
            b.load_indexed(u, c.curp, i, 2, 4, c.tmp);
            b.load_indexed(j, c.rp, u, 2, 4, c.tmp);
            b.addi(c.tmp, u, 1);
            b.load_indexed(jend, c.rp, c.tmp, 2, 4, c.tmp);
            let nloop = b.here("neigh");
            let nnext = b.label("nnext");
            b.bge(j, jend, nnext);
            // Opportunistically apply one pending decision.
            let no_dec = b.label("no_dec");
            b.desc_try_consume(dec, 2);
            b.beq(dec, maple_isa::Operand::Reg(emptyv), no_dec);
            c.emit_update(b, dec, no_dec);
            b.bind(no_dec);
            b.load_indexed(v, c.ci, j, 2, 4, c.tmp);
            b.index_addr(ptr, c.dist, v, 2);
            b.desc_produce_load(0, ptr, 0, 4);
            b.desc_produce(1, v);
            b.addi(j, j, 1);
            b.jump(nloop);
            b.bind(nnext);
            b.addi(i, i, 1);
            b.jump(floop);
            b.bind(fdone);
            // Close the level and drain remaining decisions.
            b.li(c.tmp, u64::from(SENT));
            b.desc_produce(1, c.tmp);
            let drain = b.here("drain");
            let drained = b.label("drained");
            b.desc_consume(dec, 2);
            b.beq(dec, END_MARK as i64, drained);
            let skip = b.label("skip");
            c.emit_update(b, dec, skip);
            b.bind(skip);
            b.jump(drain);
            b.bind(drained);
        });
        let supply = sys.load_program(b.build().expect("bfs desc supply"), &c.bindings(dev));

        // Compute: checks dist values, returns candidate updates.
        let mut b = ProgramBuilder::new();
        let c = Common::allocate(&mut b, 2);
        let v = b.reg("v");
        let dv = b.reg("dv");
        let endm = b.reg("endm");
        c.emit_level_loop(&mut b, false, |b, c| {
            b.li(endm, END_MARK);
            let cloop = b.here("check");
            let cdone = b.label("cdone");
            b.desc_consume(v, 1);
            b.beq(v, u64::from(SENT) as i64, cdone);
            b.desc_consume(dv, 0);
            let no_cand = b.label("no_cand");
            b.bne(dv, c.maxv, no_cand);
            b.desc_produce(2, v);
            b.bind(no_cand);
            b.jump(cloop);
            b.bind(cdone);
            b.desc_produce(2, endm);
        });
        let compute = sys.load_program(b.build().expect("bfs desc compute"), &c.bindings(dev));
        sys.pair_desc(supply, compute, 3);
    }
}

/// Device arrays.
struct Dev {
    rp: VAddr,
    ci: VAddr,
    dist: VAddr,
    cur: VAddr,
    next: VAddr,
    ctrl: VAddr,
    bar: VAddr,
}

/// Registers and emitters shared by every BFS program.
struct Common {
    rp: Reg,
    ci: Reg,
    dist: Reg,
    curp: Reg,
    nextp: Reg,
    ctrl: Reg,
    bar_base: Reg,
    level: Reg,
    cc: Reg,
    maxv: Reg,
    one: Reg,
    old: Reg,
    slot: Reg,
    tmp: Reg,
    tmp2: Reg,
    barrier: Barrier,
    threads: u64,
}

impl Common {
    fn allocate(b: &mut ProgramBuilder, threads: u64) -> Self {
        let bar_base = b.reg("bar");
        let barrier = Barrier::new(b, bar_base, threads);
        Common {
            rp: b.reg("rp"),
            ci: b.reg("ci"),
            dist: b.reg("dist"),
            curp: b.reg("curp"),
            nextp: b.reg("nextp"),
            ctrl: b.reg("ctrl"),
            bar_base,
            level: b.reg("level"),
            cc: b.reg("cc"),
            maxv: b.reg("maxv"),
            one: b.reg("one"),
            old: b.reg("old"),
            slot: b.reg("slot"),
            tmp: b.reg("tmp"),
            tmp2: b.reg("tmp2"),
            barrier,
            threads,
        }
    }

    fn bindings(&self, d: &Dev) -> Vec<(Reg, u64)> {
        vec![
            (self.rp, d.rp.0),
            (self.ci, d.ci.0),
            (self.dist, d.dist.0),
            (self.curp, d.cur.0),
            (self.nextp, d.next.0),
            (self.ctrl, d.ctrl.0),
            (self.bar_base, d.bar.0),
        ]
    }

    /// The level-synchronous skeleton: read the frontier size, run the
    /// variant's work phase, synchronize, let the manager swap counters,
    /// swap frontier pointers locally, repeat until the frontier is empty.
    fn emit_level_loop(
        &self,
        b: &mut ProgramBuilder,
        is_manager: bool,
        mut work: impl FnMut(&mut ProgramBuilder, &Common),
    ) {
        b.li(self.level, 1);
        b.li(self.maxv, u64::from(UNVISITED));
        b.li(self.one, 1);
        let level_top = b.here("level");
        let halt_l = b.label("halt");
        b.ld_volatile(self.cc, self.ctrl, 0, 8);
        b.beq(self.cc, 0i64, halt_l);
        work(b, self);
        self.barrier.emit(b);
        if is_manager {
            b.ld_volatile(self.tmp, self.ctrl, 64, 8);
            b.st(self.tmp, self.ctrl, 0, 8);
            b.st(ZERO, self.ctrl, 64, 8);
        }
        self.barrier.emit(b);
        // Swap cur/next locally.
        b.mv(self.tmp, self.curp);
        b.mv(self.curp, self.nextp);
        b.mv(self.nextp, self.tmp);
        b.addi(self.level, self.level, 1);
        b.jump(level_top);
        b.bind(halt_l);
        b.halt();
    }

    /// `i = w*chunk, hi = min((w+1)*chunk, cc)` with
    /// `chunk = (cc + W - 1) >> log2(W)`.
    fn emit_partition(&self, b: &mut ProgramBuilder, w: u64, i: Reg, hi: Reg) {
        self.emit_partition_of(b, w, self.threads, i, hi);
    }

    /// Partition among `of` workers (decoupled variants partition among
    /// pairs, not threads).
    fn emit_partition_of(&self, b: &mut ProgramBuilder, w: u64, of: u64, i: Reg, hi: Reg) {
        assert!(of.is_power_of_two());
        let s = of.trailing_zeros() as i64;
        // chunk = (cc + of - 1) >> s
        b.addi(self.tmp2, self.cc, of as i64 - 1);
        b.alu(maple_isa::AluOp::Srl, self.tmp2, self.tmp2, maple_isa::Operand::Imm(s));
        b.li(i, w);
        b.mul(i, i, self.tmp2);
        b.add(hi, i, self.tmp2);
        b.alu(maple_isa::AluOp::MinU, hi, hi, maple_isa::Operand::Reg(self.cc));
        b.alu(maple_isa::AluOp::MinU, i, i, maple_isa::Operand::Reg(self.cc));
    }

    /// The atomic update: `old = amo_min(dist[v], level); if old == MAX
    /// { next[amo_add(next_count, 1)] = v }`. Jumps to `skip` when the
    /// vertex was already visited.
    fn emit_update(&self, b: &mut ProgramBuilder, v: Reg, skip: maple_isa::builder::Label) {
        b.index_addr(self.tmp, self.dist, v, 2);
        b.amo(AtomicOp::MinU, self.old, self.tmp, 0, 4, self.level, ZERO);
        b.bne(self.old, self.maxv, skip);
        b.amo(AtomicOp::Add, self.slot, self.ctrl, 64, 8, self.one, ZERO);
        b.store_indexed(v, self.nextp, self.slot, 2, 4, self.tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::rmat;

    fn small() -> Bfs {
        let graph = rmat(7, 6, (0.5, 0.2, 0.2, 0.1), 3);
        let root = (0..graph.nrows)
            .find(|&r| !graph.row_range(r).is_empty())
            .unwrap() as u32;
        Bfs { graph, root }
    }

    #[test]
    fn reference_sane() {
        let b = small();
        let d = b.reference();
        assert_eq!(d[b.root as usize], 0);
        assert!(d.contains(&1), "root has reachable neighbors");
    }

    #[test]
    fn doall_verifies_one_and_two_threads() {
        let inst = small();
        assert!(inst.run(Variant::Doall, 1).verified);
        assert!(inst.run(Variant::Doall, 2).verified);
    }

    #[test]
    fn maple_decoupled_verifies() {
        assert!(small().run(Variant::MapleDecoupled, 2).verified);
    }

    #[test]
    fn sw_decoupled_verifies() {
        assert!(small().run(Variant::SwDecoupled, 2).verified);
    }

    #[test]
    fn desc_verifies() {
        assert!(small().run(Variant::Desc, 2).verified);
    }

    #[test]
    fn prefetch_variants_verify() {
        let inst = small();
        assert!(inst.run(Variant::SwPrefetch { dist: 8 }, 1).verified);
        assert!(inst.run(Variant::MapleLima, 1).verified);
    }

    #[test]
    fn droplet_verifies() {
        assert!(small().run(Variant::Droplet, 2).verified);
    }

    #[test]
    fn four_thread_scaling_works() {
        let inst = small();
        assert!(inst.run(Variant::Doall, 4).verified);
        assert!(inst.run(Variant::MapleDecoupled, 4).verified);
    }
}
