//! Sparse–Dense Hadamard Product (SDHP).
//!
//! Element-wise product of a sparse matrix and a dense matrix: for each
//! stored element `k` at `(r, c)`, `out[k] = values[k] * D[r*ncols + c]`.
//! The host linearizes the dense-index array `lin[k] = r*ncols + c`, so
//! the kernel is exactly the paper's running example
//! `res[i] = A[B[i]] * C[i]` — and the decoupled variants are produced by
//! the automatic slicing compiler of
//! [`maple_soc::compiler`] (Section 3.3), not by hand.

use maple_baselines::swdec::{SwConsumer, SwProducer, SwQueueLayout};
use maple_isa::builder::ProgramBuilder;
use maple_soc::compiler::{KernelSpec, ValueOp};
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_vm::VAddr;

use crate::data::{dense_vector, Csr, Dataset};
use crate::harness::{
    alloc_u32, config_for, finish, partition, upload_u32, RunStats, Variant, MAX_CYCLES,
};

/// An SDHP problem instance (already linearized).
#[derive(Debug, Clone)]
pub struct Sdhp {
    /// Dense matrix, flattened (`A`).
    pub dense: Vec<u32>,
    /// Linearized dense indices per stored element (`B`).
    pub lin: Vec<u32>,
    /// Sparse values (`C`).
    pub values: Vec<u32>,
}

impl Sdhp {
    /// Builds an instance from a sparse dataset; the dense matrix gets
    /// random contents.
    #[must_use]
    pub fn new(dataset: Dataset, seed: u64) -> Self {
        let s = dataset.generate(seed);
        Self::from_sparse(&s, seed)
    }

    /// Builds from an explicit sparse matrix.
    #[must_use]
    pub fn from_sparse(s: &Csr, seed: u64) -> Self {
        let dense = dense_vector(s.nrows * s.ncols.min(2048), seed ^ 0xD);
        let ncols = s.ncols.min(2048);
        let mut lin = Vec::with_capacity(s.nnz());
        for r in 0..s.nrows {
            for j in s.row_range(r) {
                let c = (s.col_idx[j] as usize) % ncols;
                lin.push((r * ncols + c) as u32 % dense.len() as u32);
            }
        }
        Sdhp {
            dense,
            lin,
            values: s.values.clone(),
        }
    }

    /// Element count.
    #[must_use]
    pub fn n(&self) -> usize {
        self.lin.len()
    }

    /// Host reference.
    #[must_use]
    pub fn reference(&self) -> Vec<u32> {
        self.lin
            .iter()
            .zip(&self.values)
            .map(|(&b, &c)| self.dense[b as usize].wrapping_mul(c))
            .collect()
    }

    /// Runs a variant and verifies against the reference.
    #[must_use]
    pub fn run(&self, variant: Variant, threads: usize) -> RunStats {
        self.run_tuned(variant, threads, |c| c)
    }

    /// Like [`Sdhp::run`] with a configuration hook for sweeps.
    #[must_use]
    pub fn run_tuned(
        &self,
        variant: Variant,
        threads: usize,
        tune: impl FnOnce(maple_soc::SocConfig) -> maple_soc::SocConfig,
    ) -> RunStats {
        let mut sys = System::new(tune(config_for(variant, threads)));
        let a = upload_u32(&mut sys, &self.dense);
        let bb = upload_u32(&mut sys, &self.lin);
        let c = upload_u32(&mut sys, &self.values);
        let res = alloc_u32(&mut sys, self.n());
        let expected = self.reference();
        let spec = KernelSpec {
            with_stream: true,
            op: ValueOp::Mul,
            with_store: true,
        };

        match variant {
            Variant::Doall | Variant::Droplet => {
                if matches!(variant, Variant::Droplet) {
                    sys.droplet_watch(bb, (self.n() * 4) as u64, 4, a, 4);
                }
                for (lo, hi) in partition(self.n(), threads) {
                    let (prog, args) = spec.gen_doall();
                    sys.load_program(
                        prog,
                        &[
                            (args.a, a.0),
                            (args.b, bb.0 + lo as u64 * 4),
                            (args.c, c.0 + lo as u64 * 4),
                            (args.res, res.0 + lo as u64 * 4),
                            (args.n, (hi - lo) as u64),
                        ],
                    );
                }
            }
            Variant::MapleDecoupled => {
                assert!(threads.is_multiple_of(2));
                let maple_va = sys.map_maple(0);
                for (pair, (lo, hi)) in
                    partition(self.n(), threads / 2).into_iter().enumerate()
                {
                    let p = spec.gen_maple_pair(pair as u8);
                    sys.load_program(
                        p.access,
                        &[
                            (p.access_args.a, a.0),
                            (p.access_args.b, bb.0 + lo as u64 * 4),
                            (p.access_args.n, (hi - lo) as u64),
                            (p.access_maple, maple_va.0),
                        ],
                    );
                    sys.load_program(
                        p.execute,
                        &[
                            (p.execute_args.c, c.0 + lo as u64 * 4),
                            (p.execute_args.res, res.0 + lo as u64 * 4),
                            (p.execute_args.n, (hi - lo) as u64),
                            (p.execute_maple, maple_va.0),
                        ],
                    );
                }
            }
            Variant::Desc => {
                assert_eq!(threads, 2);
                let p = spec.gen_desc_pair();
                let supply = sys.load_program(
                    p.access,
                    &[
                        (p.access_args.a, a.0),
                        (p.access_args.b, bb.0),
                        (p.access_args.c, c.0),
                        (p.access_args.res, res.0),
                        (p.access_args.n, self.n() as u64),
                    ],
                );
                let compute =
                    sys.load_program(p.execute, &[(p.execute_args.n, self.n() as u64)]);
                sys.pair_desc(supply, compute, 3);
            }
            Variant::SwDecoupled => self.load_swdec(&mut sys, a, bb, c, res, threads),
            Variant::SwPrefetch { dist } => {
                assert_eq!(threads, 1);
                self.load_swpref(&mut sys, a, bb, c, res, dist);
            }
            Variant::MapleLima => {
                assert_eq!(threads, 1);
                self.load_lima(&mut sys, a, bb, c, res);
            }
        }

        let outcome = sys.run(MAX_CYCLES);
        finish(&mut sys, outcome, res, &expected)
    }

    fn load_swdec(
        &self,
        sys: &mut System,
        a: VAddr,
        bb: VAddr,
        c: VAddr,
        res: VAddr,
        threads: usize,
    ) {
        assert!(threads.is_multiple_of(2));
        let layout = SwQueueLayout::new(64);
        for (lo, hi) in partition(self.n(), threads / 2) {
            let qva = sys.alloc(layout.bytes());
            let n = (hi - lo) as u64;

            // Access: loads A[B[i]] (blocking) and pushes the value.
            let mut b = ProgramBuilder::new();
            let ra = b.reg("a");
            let rb = b.reg("b");
            let qbase = b.reg("q");
            let prod = SwProducer::new(&mut b, qbase, layout.capacity);
            let i = b.reg("i");
            let idx = b.reg("idx");
            let xv = b.reg("xv");
            let tmp = b.reg("tmp");
            b.li(i, 0);
            let top = b.here("top");
            let done = b.label("done");
            b.bge(i, n as i64, done);
            b.load_indexed(idx, rb, i, 2, 4, tmp);
            b.load_indexed(xv, ra, idx, 2, 4, tmp);
            prod.emit_produce(&mut b, xv);
            b.addi(i, i, 1);
            b.jump(top);
            b.bind(done);
            b.halt();
            sys.load_program(
                b.build().expect("sdhp sw access"),
                &[(ra, a.0), (rb, bb.0 + lo as u64 * 4), (qbase, qva.0)],
            );

            // Execute: pops, multiplies with C, stores.
            let mut b = ProgramBuilder::new();
            let rc = b.reg("c");
            let rr = b.reg("res");
            let qbase = b.reg("q");
            let cons = SwConsumer::new(&mut b, qbase, layout.capacity);
            let i = b.reg("i");
            let xv = b.reg("xv");
            let cv = b.reg("cv");
            let tmp = b.reg("tmp");
            b.li(i, 0);
            let top = b.here("top");
            let done = b.label("done");
            b.bge(i, n as i64, done);
            cons.emit_consume(&mut b, xv);
            b.load_indexed(cv, rc, i, 2, 4, tmp);
            b.mul(xv, xv, cv);
            b.store_indexed(xv, rr, i, 2, 4, tmp);
            b.addi(i, i, 1);
            b.jump(top);
            b.bind(done);
            b.halt();
            sys.load_program(
                b.build().expect("sdhp sw execute"),
                &[
                    (rc, c.0 + lo as u64 * 4),
                    (rr, res.0 + lo as u64 * 4),
                    (qbase, qva.0),
                ],
            );
        }
    }

    fn load_swpref(
        &self,
        sys: &mut System,
        a: VAddr,
        bb: VAddr,
        c: VAddr,
        res: VAddr,
        dist: u32,
    ) {
        let n = self.n() as u64;
        let mut b = ProgramBuilder::new();
        let ra = b.reg("a");
        let rb = b.reg("b");
        let rc = b.reg("c");
        let rr = b.reg("res");
        let i = b.reg("i");
        let idx = b.reg("idx");
        let xv = b.reg("xv");
        let cv = b.reg("cv");
        let jd = b.reg("jd");
        let idx2 = b.reg("idx2");
        let tmp = b.reg("tmp");
        b.li(i, 0);
        let top = b.here("top");
        let done = b.label("done");
        b.bge(i, n as i64, done);
        b.load_indexed(idx, rb, i, 2, 4, tmp);
        b.load_indexed(xv, ra, idx, 2, 4, tmp);
        b.load_indexed(cv, rc, i, 2, 4, tmp);
        b.mul(xv, xv, cv);
        b.store_indexed(xv, rr, i, 2, 4, tmp);
        // Prefetch A[B[i+dist]] (re-loads B: the code-bloat overhead).
        b.addi(jd, i, i64::from(dist));
        b.alu(maple_isa::AluOp::MinU, jd, jd, (n as i64) - 1);
        b.load_indexed(idx2, rb, jd, 2, 4, tmp);
        b.index_addr(tmp, ra, idx2, 2);
        b.prefetch(tmp, 0);
        b.addi(i, i, 1);
        b.jump(top);
        b.bind(done);
        b.halt();
        sys.load_program(
            b.build().expect("sdhp sw prefetch"),
            &[(ra, a.0), (rb, bb.0), (rc, c.0), (rr, res.0)],
        );
    }

    fn load_lima(&self, sys: &mut System, a: VAddr, bb: VAddr, c: VAddr, res: VAddr) {
        let maple_va = sys.map_maple(0);
        let n = self.n() as u64;
        const CHUNK: u64 = 64;

        let mut b = ProgramBuilder::new();
        let ra = b.reg("a");
        let rb = b.reg("b");
        let rc = b.reg("c");
        let rr = b.reg("res");
        let mbase = b.reg("maple");
        let api = MapleApi::new(mbase);
        let i = b.reg("i");
        let chunk_end = b.reg("chunk_end");
        let next_lo = b.reg("next_lo");
        let next_hi = b.reg("next_hi");
        let xv = b.reg("xv");
        let cv = b.reg("cv");
        let tmp = b.reg("tmp");
        let tmp2 = b.reg("tmp2");

        // Prologue: LIMA for chunk 0.
        b.li(i, 0);
        b.li(next_lo, 0);
        b.li(next_hi, CHUNK.min(n));
        api.lima(&mut b, 0, ra, rb, next_lo, next_hi, false, 4, 4, tmp, tmp2);
        let chunk_top = b.here("chunk");
        let done = b.label("done");
        b.bge(i, n as i64, done);
        // chunk_end = min(i + CHUNK, n); issue LIMA for the next chunk.
        b.addi(chunk_end, i, CHUNK as i64);
        b.alu(maple_isa::AluOp::MinU, chunk_end, chunk_end, n as i64);
        let no_next = b.label("no_next");
        b.bge(chunk_end, n as i64, no_next);
        b.mv(next_lo, chunk_end);
        b.addi(next_hi, chunk_end, CHUNK as i64);
        b.alu(maple_isa::AluOp::MinU, next_hi, next_hi, n as i64);
        api.lima(&mut b, 0, ra, rb, next_lo, next_hi, false, 4, 4, tmp, tmp2);
        b.bind(no_next);
        // Consume the current chunk.
        let inner = b.here("inner");
        let endchunk = b.label("endchunk");
        b.bge(i, chunk_end, endchunk);
        api.consume(&mut b, 0, xv, 4);
        b.load_indexed(cv, rc, i, 2, 4, tmp);
        b.mul(xv, xv, cv);
        b.store_indexed(xv, rr, i, 2, 4, tmp);
        b.addi(i, i, 1);
        b.jump(inner);
        b.bind(endchunk);
        b.jump(chunk_top);
        b.bind(done);
        b.halt();
        sys.load_program(
            b.build().expect("sdhp lima"),
            &[
                (ra, a.0),
                (rb, bb.0),
                (rc, c.0),
                (rr, res.0),
                (mbase, maple_va.0),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::uniform_sparse;

    fn small() -> Sdhp {
        Sdhp::from_sparse(&uniform_sparse(32, 512, 8, 21), 5)
    }

    #[test]
    fn all_variants_verify() {
        let inst = small();
        for (variant, threads) in [
            (Variant::Doall, 1),
            (Variant::Doall, 2),
            (Variant::SwDecoupled, 2),
            (Variant::MapleDecoupled, 2),
            (Variant::Desc, 2),
            (Variant::SwPrefetch { dist: 16 }, 1),
            (Variant::MapleLima, 1),
            (Variant::Droplet, 2),
        ] {
            let s = inst.run(variant, threads);
            assert!(
                s.verified,
                "{} with {threads} threads failed verification",
                variant.label()
            );
        }
    }

    #[test]
    fn maple_decoupling_beats_software_decoupling() {
        let inst = small();
        let sw = inst.run(Variant::SwDecoupled, 2);
        let hw = inst.run(Variant::MapleDecoupled, 2);
        assert!(
            hw.cycles < sw.cycles,
            "MAPLE {} should beat software {}",
            hw.cycles,
            sw.cycles
        );
    }
}
