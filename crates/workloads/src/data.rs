//! Sparse data structures and dataset generators.
//!
//! The paper evaluates on SuiteSparse matrices, a Kronecker network,
//! Wikipedia/YouTube/LiveJournal graphs, and the synthetic matrices of
//! `riscv-tests`. Real downloads are out of scope for a self-contained
//! reproduction, so this module generates synthetic stand-ins that
//! preserve the property the kernels are sensitive to — the sparsity
//! pattern and degree skew driving the indirect-access behaviour:
//!
//! - [`uniform_sparse`]: uniform random column indices (riscv-tests
//!   style), for SPMM/SPMV.
//! - [`rmat`]: R-MAT/Kronecker generator; parameter presets mimic the
//!   skew of the paper's graph datasets ([`Dataset`]).
//!
//! All values are `u32` and all kernel arithmetic wraps, so simulated and
//! host-side reference results are bit-comparable.

use maple_sim::rng::SimRng;

/// Compressed Sparse Row matrix with `u32` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// `nrows + 1` offsets into `col_idx`/`values`.
    pub row_ptr: Vec<u32>,
    /// Column index of each stored element.
    pub col_idx: Vec<u32>,
    /// Stored element values.
    pub values: Vec<u32>,
}

impl Csr {
    /// Number of stored elements.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The half-open range of element positions for `row`.
    #[must_use]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.row_ptr[row] as usize..self.row_ptr[row + 1] as usize
    }

    /// Builds a CSR from per-row (column, value) lists.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    #[must_use]
    pub fn from_rows(nrows: usize, ncols: usize, rows: &[Vec<(u32, u32)>]) -> Self {
        assert_eq!(rows.len(), nrows);
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in rows {
            for &(c, v) in r {
                assert!((c as usize) < ncols, "column {c} out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Validates the structural invariants (for property tests).
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.row_ptr.len() == self.nrows + 1
            && self.row_ptr[0] == 0
            && self.row_ptr.windows(2).all(|w| w[0] <= w[1])
            && *self.row_ptr.last().unwrap() as usize == self.col_idx.len()
            && self.col_idx.len() == self.values.len()
            && self.col_idx.iter().all(|&c| (c as usize) < self.ncols)
    }
}

/// Uniform random sparse matrix: every row holds exactly `nnz_per_row`
/// elements at uniformly random distinct columns (the shape of the
/// `riscv-tests` inputs used for SPMM and SPMV).
#[must_use]
pub fn uniform_sparse(nrows: usize, ncols: usize, nnz_per_row: usize, seed: u64) -> Csr {
    assert!(nnz_per_row <= ncols, "row cannot exceed the column count");
    let mut rng = SimRng::seed(seed);
    let rows: Vec<Vec<(u32, u32)>> = (0..nrows)
        .map(|_| {
            let mut cols = std::collections::BTreeSet::new();
            while cols.len() < nnz_per_row {
                cols.insert(rng.below(ncols as u64) as u32);
            }
            cols.into_iter()
                .map(|c| (c, 1 + rng.below(64) as u32))
                .collect()
        })
        .collect();
    Csr::from_rows(nrows, ncols, &rows)
}

/// R-MAT (recursive-matrix / Kronecker) graph generator.
///
/// Produces a directed graph of `1 << scale` vertices and approximately
/// `edge_factor << scale` edges with the skewed degree distribution that
/// makes graph analytics cache-averse. Self-loops are kept; duplicate
/// edges are removed.
#[must_use]
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> Csr {
    let n = 1usize << scale;
    let target_edges = n * edge_factor;
    let (a, b, c, _d) = probs;
    let mut rng = SimRng::seed(seed);
    let mut edges = std::collections::BTreeSet::new();
    for _ in 0..target_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let p = rng.unit_f64();
            let (ubit, vbit) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= ubit << bit;
            v |= vbit << bit;
        }
        edges.insert((u as u32, v as u32));
    }
    let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (u, v) in edges {
        rows[u as usize].push((v, 1));
    }
    Csr::from_rows(n, n, &rows)
}

/// The evaluation datasets, as synthetic stand-ins scaled for simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Wikipedia-link-like graph (strong hub skew).
    WikiLike,
    /// YouTube-social-like graph (moderate skew).
    YoutubeLike,
    /// LiveJournal-like graph (large, moderate skew).
    LiveJournalLike,
    /// Kronecker network (Graph500-style parameters).
    Kron,
    /// SuiteSparse-like uniform sparse matrix.
    Suite,
    /// riscv-tests-style uniform synthetic matrix.
    RiscvTests,
}

impl Dataset {
    /// Generates the dataset at a simulation-friendly size.
    #[must_use]
    pub fn generate(self, seed: u64) -> Csr {
        match self {
            // Graph sizes put the dist array (4 B per vertex) well beyond
            // the 8 KB L1 and 64 KB L2, and the edge factors match the
            // real datasets' average degrees (wiki ≈ 20+, livejournal
            // ≈ 17), which is what amortizes per-vertex costs over edges.
            Dataset::WikiLike => rmat(14, 16, (0.57, 0.19, 0.19, 0.05), seed),
            Dataset::YoutubeLike => rmat(13, 12, (0.45, 0.22, 0.22, 0.11), seed ^ 1),
            Dataset::LiveJournalLike => rmat(14, 18, (0.57, 0.19, 0.19, 0.05), seed ^ 2),
            Dataset::Kron => rmat(9, 16, (0.57, 0.19, 0.19, 0.05), seed ^ 3),
            Dataset::Suite => uniform_sparse(512, 4096, 16, seed ^ 4),
            Dataset::RiscvTests => uniform_sparse(256, 2048, 12, seed ^ 5),
        }
    }

    /// A short label for result tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dataset::WikiLike => "wiki",
            Dataset::YoutubeLike => "youtube",
            Dataset::LiveJournalLike => "livejournal",
            Dataset::Kron => "kron",
            Dataset::Suite => "suitesparse",
            Dataset::RiscvTests => "riscv-tests",
        }
    }
}

/// Generates a dense `u32` vector.
#[must_use]
pub fn dense_vector(len: usize, seed: u64) -> Vec<u32> {
    let mut rng = SimRng::seed(seed);
    (0..len).map(|_| rng.below(1 << 16) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sparse_structure() {
        let m = uniform_sparse(32, 256, 8, 42);
        assert!(m.is_well_formed());
        assert_eq!(m.nnz(), 32 * 8);
        for r in 0..m.nrows {
            let range = m.row_range(r);
            assert_eq!(range.len(), 8);
            // Distinct, sorted columns.
            let cols = &m.col_idx[range];
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rmat_structure_and_skew() {
        let g = rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 7);
        assert!(g.is_well_formed());
        assert_eq!(g.nrows, 256);
        assert!(g.nnz() > 500, "dedup keeps most edges: {}", g.nnz());
        // Skew: the busiest row should be much larger than the mean.
        let mean = g.nnz() as f64 / g.nrows as f64;
        let max = (0..g.nrows).map(|r| g.row_range(r).len()).max().unwrap();
        assert!(
            max as f64 > 4.0 * mean,
            "R-MAT should be skewed (max {max}, mean {mean:.1})"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_sparse(16, 64, 4, 1), uniform_sparse(16, 64, 4, 1));
        assert_eq!(
            rmat(6, 4, (0.5, 0.2, 0.2, 0.1), 2),
            rmat(6, 4, (0.5, 0.2, 0.2, 0.1), 2)
        );
        assert_eq!(dense_vector(10, 3), dense_vector(10, 3));
    }

    #[test]
    fn all_datasets_generate() {
        for d in [
            Dataset::WikiLike,
            Dataset::YoutubeLike,
            Dataset::LiveJournalLike,
            Dataset::Kron,
            Dataset::Suite,
            Dataset::RiscvTests,
        ] {
            let m = d.generate(11);
            assert!(m.is_well_formed(), "{} malformed", d.label());
            assert!(m.nnz() > 0);
        }
    }

    #[test]
    fn from_rows_rejects_bad_column() {
        let rows = vec![vec![(5u32, 1u32)]];
        let result = std::panic::catch_unwind(|| Csr::from_rows(1, 4, &rows));
        assert!(result.is_err());
    }
}
