//! Sparse Matrix–Vector multiplication (SPMV).
//!
//! `y[r] = Σ_j values[j] * x[col_idx[j]]` over each row's nonzeros. The
//! indirect access is the gather `x[col_idx[j]]`; rows stream. Every
//! latency-tolerance variant of Section 5 is implemented:
//!
//! - do-all (row-partitioned threads),
//! - software decoupling (shared-memory rings),
//! - MAPLE decoupling (`PRODUCE_PTR`/`CONSUME`),
//! - DeSC (terminal loads + coupled queues),
//! - software prefetching (distance-`D`, with the address-recomputation
//!   overhead the paper charges),
//! - MAPLE LIMA (one command per row, non-speculative into a queue),
//! - DROPLET (memory-side indirect prefetcher).

use maple_baselines::swdec::{SwConsumer, SwProducer, SwQueueLayout};
use maple_isa::builder::ProgramBuilder;
use maple_isa::Program;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_vm::VAddr;

use crate::data::{dense_vector, Csr, Dataset};
use crate::harness::{
    alloc_u32, config_for, finish, partition, upload_u32, RunStats, Variant, MAX_CYCLES,
};

/// An SPMV problem instance.
#[derive(Debug, Clone)]
pub struct Spmv {
    /// The sparse matrix.
    pub a: Csr,
    /// The dense vector.
    pub x: Vec<u32>,
}

/// Device-side addresses of the uploaded instance.
struct DeviceArrays {
    rp: VAddr,
    ci: VAddr,
    vv: VAddr,
    xx: VAddr,
    yy: VAddr,
}

impl Spmv {
    /// Builds an instance from a dataset preset.
    #[must_use]
    pub fn new(dataset: Dataset, seed: u64) -> Self {
        let a = dataset.generate(seed);
        let x = dense_vector(a.ncols, seed ^ 0x5151);
        Spmv { a, x }
    }

    /// Host reference result (wrapping arithmetic, bit-comparable).
    #[must_use]
    pub fn reference(&self) -> Vec<u32> {
        (0..self.a.nrows)
            .map(|r| {
                self.a.row_range(r).fold(0u32, |acc, j| {
                    let prod = self.a.values[j].wrapping_mul(self.x[self.a.col_idx[j] as usize]);
                    acc.wrapping_add(prod)
                })
            })
            .collect()
    }

    fn upload(&self, sys: &mut System) -> DeviceArrays {
        DeviceArrays {
            rp: upload_u32(sys, &self.a.row_ptr),
            ci: upload_u32(sys, &self.a.col_idx),
            vv: upload_u32(sys, &self.a.values),
            xx: upload_u32(sys, &self.x),
            yy: alloc_u32(sys, self.a.nrows),
        }
    }

    /// Runs the given variant on `threads` hardware threads and verifies
    /// the result against the host reference.
    ///
    /// # Panics
    ///
    /// Panics on unsupported combinations (e.g. DeSC with more than two
    /// threads).
    #[must_use]
    pub fn run(&self, variant: Variant, threads: usize) -> RunStats {
        self.run_tuned(variant, threads, |c| c)
    }

    /// Like [`Spmv::run`] but lets the caller adjust the SoC configuration
    /// (queue-size and communication-latency sweeps).
    #[must_use]
    pub fn run_tuned(
        &self,
        variant: Variant,
        threads: usize,
        tune: impl FnOnce(maple_soc::SocConfig) -> maple_soc::SocConfig,
    ) -> RunStats {
        self.run_observed(variant, threads, tune).0
    }

    /// Like [`Spmv::run_tuned`] but also returns the finished [`System`],
    /// giving callers the observability surface: captured trace records,
    /// the metrics snapshot, and per-core stall rows (see the
    /// `trace_spmv` example).
    #[must_use]
    pub fn run_observed(
        &self,
        variant: Variant,
        threads: usize,
        tune: impl FnOnce(maple_soc::SocConfig) -> maple_soc::SocConfig,
    ) -> (RunStats, System) {
        let mut sys = System::new(tune(config_for(variant, threads)));
        let arrays = self.upload(&mut sys);
        let expected = self.reference();

        match variant {
            Variant::Doall => self.load_doall(&mut sys, &arrays, threads, None),
            Variant::Droplet => {
                sys.droplet_watch(
                    arrays.ci,
                    (self.a.nnz() * 4) as u64,
                    4,
                    arrays.xx,
                    4,
                );
                self.load_doall(&mut sys, &arrays, threads, None);
            }
            Variant::SwPrefetch { dist } => {
                self.load_doall(&mut sys, &arrays, threads, Some(dist));
            }
            Variant::SwDecoupled => self.load_swdec(&mut sys, &arrays, threads),
            Variant::MapleDecoupled => self.load_maple_dec(&mut sys, &arrays, threads),
            Variant::Desc => self.load_desc(&mut sys, &arrays, threads),
            Variant::MapleLima => self.load_lima(&mut sys, &arrays, threads),
        }

        let outcome = sys.run(MAX_CYCLES);
        let stats = finish(&mut sys, outcome, arrays.yy, &expected);
        (stats, sys)
    }

    /// Asymmetric decoupling (paper §3.1): **one** Access thread supplies
    /// `executes` Execute threads through per-consumer queues — a relation
    /// prior DAE architectures, which scale only in Access/Execute pairs,
    /// cannot express. Rows are interleaved across Execute threads; the
    /// Access thread selects the destination queue at run time by forming
    /// the MMIO address in a register.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= executes <= 7` (queue-count bound).
    #[must_use]
    pub fn run_asymmetric(&self, executes: usize) -> RunStats {
        assert!((1..=7).contains(&executes), "one queue per Execute thread");
        let threads = 1 + executes;
        let mut sys = System::new(config_for(Variant::MapleDecoupled, threads));
        let arrays = self.upload(&mut sys);
        let expected = self.reference();
        let maple_va = sys.map_maple(0);
        let nrows = self.a.nrows;

        // Access: walks every row, round-robining rows over the queues.
        {
            use maple_soc::mmio::{store_offset, StoreOp};
            let mut b = ProgramBuilder::new();
            let regs = DeviceRegs::allocate(&mut b);
            let mbase = b.reg("maple");
            let r = b.reg("r");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let c = b.reg("c");
            let ptr = b.reg("ptr");
            let qc = b.reg("qc");
            let qoff = b.reg("qoff");
            let tmp = b.reg("tmp");
            b.li(r, 0);
            b.li(qc, 0);
            let row = b.here("row");
            let done = b.label("done");
            b.bge(r, nrows as i64, done);
            // qoff = maple_base + (qc << 9): queue field of the MMIO page.
            b.slli(qoff, qc, 9);
            b.add(qoff, qoff, mbase);
            b.load_indexed(j, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
            let inner = b.here("inner");
            let endrow = b.label("endrow");
            b.bge(j, jend, endrow);
            b.load_indexed(c, regs.ci, j, 2, 4, tmp);
            b.index_addr(ptr, regs.xx, c, 2);
            // PRODUCE_PTR with a runtime queue: static op bits, dynamic
            // queue bits.
            b.st(ptr, qoff, store_offset(StoreOp::ProducePtr, 0) as i64, 8);
            b.addi(j, j, 1);
            b.jump(inner);
            b.bind(endrow);
            // qc = (qc + 1) % executes
            let wrap = b.label("wrap");
            b.addi(qc, qc, 1);
            b.blt(qc, executes as i64, wrap);
            b.li(qc, 0);
            b.bind(wrap);
            b.addi(r, r, 1);
            b.jump(row);
            b.bind(done);
            b.halt();
            let mut binds = regs.bindings(&arrays);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("asymmetric access builds"), &binds);
        }

        // Execute e: rows e, e+E, e+2E, … consuming from queue e.
        for e in 0..executes {
            let mut b = ProgramBuilder::new();
            let regs = DeviceRegs::allocate(&mut b);
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let r = b.reg("r");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let v = b.reg("v");
            let xv = b.reg("xv");
            let acc = b.reg("acc");
            let tmp = b.reg("tmp");
            b.li(r, e as u64);
            let row = b.here("row");
            let done = b.label("done");
            b.bge(r, nrows as i64, done);
            b.load_indexed(j, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
            b.li(acc, 0);
            let inner = b.here("inner");
            let endrow = b.label("endrow");
            b.bge(j, jend, endrow);
            b.load_indexed(v, regs.vv, j, 2, 4, tmp);
            api.consume(&mut b, e as u8, xv, 4);
            b.mul(v, v, xv);
            b.add(acc, acc, v);
            b.addi(j, j, 1);
            b.jump(inner);
            b.bind(endrow);
            b.store_indexed(acc, regs.yy, r, 2, 4, tmp);
            b.addi(r, r, executes as i64);
            b.jump(row);
            b.bind(done);
            b.halt();
            let mut binds = regs.bindings(&arrays);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("asymmetric execute builds"), &binds);
        }

        let outcome = sys.run(MAX_CYCLES);
        finish(&mut sys, outcome, arrays.yy, &expected)
    }

    // --- do-all (optionally with software prefetching) -------------------

    fn doall_program(
        &self,
        lo: usize,
        hi: usize,
        prefetch: Option<u32>,
    ) -> (Program, Vec<(maple_isa::Reg, u64)>, DeviceRegs) {
        let mut b = ProgramBuilder::new();
        let regs = DeviceRegs::allocate(&mut b);
        let r = b.reg("r");
        let j = b.reg("j");
        let jend = b.reg("jend");
        let c = b.reg("c");
        let v = b.reg("v");
        let xv = b.reg("xv");
        let acc = b.reg("acc");
        let tmp = b.reg("tmp");
        b.li(r, lo as u64);
        let row = b.here("row");
        let done = b.label("done");
        b.bge(r, hi as i64, done);
        b.load_indexed(j, regs.rp, r, 2, 4, tmp);
        b.addi(tmp, r, 1);
        b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
        b.li(acc, 0);
        let inner = b.here("inner");
        let endrow = b.label("endrow");
        b.bge(j, jend, endrow);
        b.load_indexed(c, regs.ci, j, 2, 4, tmp);
        b.load_indexed(v, regs.vv, j, 2, 4, tmp);
        b.load_indexed(xv, regs.xx, c, 2, 4, tmp);
        b.mul(v, v, xv);
        b.add(acc, acc, v);
        if let Some(dist) = prefetch {
            // jd = min(j + dist, nnz - 1); prefetch &x[ci[jd]].
            // The re-load of ci[jd] and the address arithmetic are the
            // instruction overhead Figure 10 charges to software
            // prefetching.
            let jd = b.reg("jd");
            let c2 = b.reg("c2");
            b.addi(jd, j, i64::from(dist));
            b.alu(
                maple_isa::AluOp::MinU,
                jd,
                jd,
                maple_isa::Operand::Imm(self.a.nnz() as i64 - 1),
            );
            b.load_indexed(c2, regs.ci, jd, 2, 4, tmp);
            b.index_addr(tmp, regs.xx, c2, 2);
            b.prefetch(tmp, 0);
        }
        b.addi(j, j, 1);
        b.jump(inner);
        b.bind(endrow);
        b.store_indexed(acc, regs.yy, r, 2, 4, tmp);
        b.addi(r, r, 1);
        b.jump(row);
        b.bind(done);
        b.halt();
        let p = b.build().expect("spmv doall builds");
        (p, Vec::new(), regs)
    }

    fn load_doall(
        &self,
        sys: &mut System,
        arrays: &DeviceArrays,
        threads: usize,
        prefetch: Option<u32>,
    ) {
        for (lo, hi) in partition(self.a.nrows, threads) {
            let (prog, _, regs) = self.doall_program(lo, hi, prefetch);
            sys.load_program(prog, &regs.bindings(arrays));
        }
    }

    // --- MAPLE decoupling --------------------------------------------------

    fn load_maple_dec(&self, sys: &mut System, arrays: &DeviceArrays, threads: usize) {
        assert!(threads >= 2 && threads.is_multiple_of(2), "decoupling needs pairs");
        let pairs = threads / 2;
        // Pairs are distributed round-robin over the configured MAPLE
        // instances (the paper's tiled scaling: "more units can be
        // employed for larger thread counts").
        let maples = sys.config().maples;
        let maple_vas: Vec<_> = (0..maples).map(|e| sys.map_maple(e)).collect();
        for (pair, (lo, hi)) in partition(self.a.nrows, pairs).into_iter().enumerate() {
            let maple_va = maple_vas[pair % maples];
            let q = (pair / maples) as u8;

            // Access slice.
            let mut b = ProgramBuilder::new();
            let regs = DeviceRegs::allocate(&mut b);
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let r = b.reg("r");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let c = b.reg("c");
            let ptr = b.reg("ptr");
            let tmp = b.reg("tmp");
            // API lifecycle: OPEN claims the queue exclusively (spinning
            // until granted) and CLOSE releases it on exit.
            let open = b.here("open");
            api.open(&mut b, q, tmp);
            b.beq(tmp, 0i64, open);
            b.li(r, lo as u64);
            let row = b.here("row");
            let done = b.label("done");
            b.bge(r, hi as i64, done);
            b.load_indexed(j, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
            let inner = b.here("inner");
            let endrow = b.label("endrow");
            b.bge(j, jend, endrow);
            b.load_indexed(c, regs.ci, j, 2, 4, tmp);
            b.index_addr(ptr, regs.xx, c, 2);
            api.produce_ptr(&mut b, q, ptr);
            b.addi(j, j, 1);
            b.jump(inner);
            b.bind(endrow);
            b.addi(r, r, 1);
            b.jump(row);
            b.bind(done);
            api.close(&mut b, q);
            b.halt();
            let mut binds = regs.bindings(arrays);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("access builds"), &binds);

            // Execute slice.
            let mut b = ProgramBuilder::new();
            let regs = DeviceRegs::allocate(&mut b);
            let mbase = b.reg("maple");
            let api = MapleApi::new(mbase);
            let r = b.reg("r");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let v = b.reg("v");
            let xv = b.reg("xv");
            let acc = b.reg("acc");
            let tmp = b.reg("tmp");
            b.li(r, lo as u64);
            let row = b.here("row");
            let done = b.label("done");
            b.bge(r, hi as i64, done);
            b.load_indexed(j, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
            b.li(acc, 0);
            let inner = b.here("inner");
            let endrow = b.label("endrow");
            b.bge(j, jend, endrow);
            b.load_indexed(v, regs.vv, j, 2, 4, tmp);
            api.consume(&mut b, q, xv, 4);
            b.mul(v, v, xv);
            b.add(acc, acc, v);
            b.addi(j, j, 1);
            b.jump(inner);
            b.bind(endrow);
            b.store_indexed(acc, regs.yy, r, 2, 4, tmp);
            b.addi(r, r, 1);
            b.jump(row);
            b.bind(done);
            b.halt();
            let mut binds = regs.bindings(arrays);
            binds.push((mbase, maple_va.0));
            sys.load_program(b.build().expect("execute builds"), &binds);
        }
    }

    // --- software decoupling ----------------------------------------------

    fn load_swdec(&self, sys: &mut System, arrays: &DeviceArrays, threads: usize) {
        assert!(threads >= 2 && threads.is_multiple_of(2), "decoupling needs pairs");
        let pairs = threads / 2;
        let layout = SwQueueLayout::new(64);
        for (lo, hi) in partition(self.a.nrows, pairs) {
            let qva = sys.alloc(layout.bytes());

            // Access: performs the IMA itself (blocking), pushes values.
            let mut b = ProgramBuilder::new();
            let regs = DeviceRegs::allocate(&mut b);
            let qbase = b.reg("qbase");
            let prod = SwProducer::new(&mut b, qbase, layout.capacity);
            let r = b.reg("r");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let c = b.reg("c");
            let xv = b.reg("xv");
            let tmp = b.reg("tmp");
            b.li(r, lo as u64);
            let row = b.here("row");
            let done = b.label("done");
            b.bge(r, hi as i64, done);
            b.load_indexed(j, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
            let inner = b.here("inner");
            let endrow = b.label("endrow");
            b.bge(j, jend, endrow);
            b.load_indexed(c, regs.ci, j, 2, 4, tmp);
            b.load_indexed(xv, regs.xx, c, 2, 4, tmp); // blocking IMA
            prod.emit_produce(&mut b, xv);
            b.addi(j, j, 1);
            b.jump(inner);
            b.bind(endrow);
            b.addi(r, r, 1);
            b.jump(row);
            b.bind(done);
            b.halt();
            let mut binds = regs.bindings(arrays);
            binds.push((qbase, qva.0));
            sys.load_program(b.build().expect("sw access builds"), &binds);

            // Execute: pops values, computes, stores.
            let mut b = ProgramBuilder::new();
            let regs = DeviceRegs::allocate(&mut b);
            let qbase = b.reg("qbase");
            let cons = SwConsumer::new(&mut b, qbase, layout.capacity);
            let r = b.reg("r");
            let j = b.reg("j");
            let jend = b.reg("jend");
            let v = b.reg("v");
            let xv = b.reg("xv");
            let acc = b.reg("acc");
            let tmp = b.reg("tmp");
            b.li(r, lo as u64);
            let row = b.here("row");
            let done = b.label("done");
            b.bge(r, hi as i64, done);
            b.load_indexed(j, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
            b.li(acc, 0);
            let inner = b.here("inner");
            let endrow = b.label("endrow");
            b.bge(j, jend, endrow);
            b.load_indexed(v, regs.vv, j, 2, 4, tmp);
            cons.emit_consume(&mut b, xv);
            b.mul(v, v, xv);
            b.add(acc, acc, v);
            b.addi(j, j, 1);
            b.jump(inner);
            b.bind(endrow);
            b.store_indexed(acc, regs.yy, r, 2, 4, tmp);
            b.addi(r, r, 1);
            b.jump(row);
            b.bind(done);
            b.halt();
            let mut binds = regs.bindings(arrays);
            binds.push((qbase, qva.0));
            sys.load_program(b.build().expect("sw execute builds"), &binds);
        }
    }

    // --- DeSC ---------------------------------------------------------------

    fn load_desc(&self, sys: &mut System, arrays: &DeviceArrays, threads: usize) {
        assert_eq!(threads, 2, "the DeSC comparison runs one Supply/Compute pair");
        let (lo, hi) = (0, self.a.nrows);

        // Supply: streams structure, terminal-loads x and values; row
        // results return on the store-value queue (q2) and are stored
        // asynchronously (opportunistic drain + final flush).
        let mut b = ProgramBuilder::new();
        let regs = DeviceRegs::allocate(&mut b);
        let r = b.reg("r");
        let r2 = b.reg("store_row");
        let j = b.reg("j");
        let jend = b.reg("jend");
        let c = b.reg("c");
        let ptr = b.reg("ptr");
        let len = b.reg("len");
        let acc = b.reg("acc");
        let tmp = b.reg("tmp");
        let empty = b.reg("empty");
        b.li(r, lo as u64);
        b.li(r2, lo as u64);
        b.li(empty, u64::MAX);
        let row = b.here("row");
        let done = b.label("done");
        b.bge(r, hi as i64, done);
        b.load_indexed(j, regs.rp, r, 2, 4, tmp);
        b.addi(tmp, r, 1);
        b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
        b.sub(len, jend, j);
        b.desc_produce(3, len);
        let inner = b.here("inner");
        let endrow = b.label("endrow");
        b.bge(j, jend, endrow);
        b.load_indexed(c, regs.ci, j, 2, 4, tmp);
        b.index_addr(ptr, regs.xx, c, 2);
        b.desc_produce_load(0, ptr, 0, 4);
        b.index_addr(ptr, regs.vv, j, 2);
        b.desc_produce_load(1, ptr, 0, 4);
        b.addi(j, j, 1);
        b.jump(inner);
        b.bind(endrow);
        // Drain at most one finished row without blocking.
        let no_out = b.label("no_out");
        b.desc_try_consume(acc, 2);
        b.beq(acc, maple_isa::Operand::Reg(empty), no_out);
        b.store_indexed(acc, regs.yy, r2, 2, 4, tmp);
        b.addi(r2, r2, 1);
        b.bind(no_out);
        b.addi(r, r, 1);
        b.jump(row);
        b.bind(done);
        // Flush the remaining row results.
        let flush = b.here("flush");
        let flushed = b.label("flushed");
        b.bge(r2, hi as i64, flushed);
        b.desc_consume(acc, 2);
        b.store_indexed(acc, regs.yy, r2, 2, 4, tmp);
        b.addi(r2, r2, 1);
        b.jump(flush);
        b.bind(flushed);
        b.halt();
        let supply = sys.load_program(b.build().expect("desc supply builds"), &regs.bindings(arrays));

        // Compute: no memory visibility; everything arrives on queues.
        let mut b = ProgramBuilder::new();
        let r = b.reg("r");
        let nrows = b.reg("nrows");
        let len = b.reg("len");
        let k = b.reg("k");
        let xv = b.reg("xv");
        let v = b.reg("v");
        let acc = b.reg("acc");
        b.li(r, 0);
        b.li(nrows, (hi - lo) as u64);
        let row = b.here("row");
        let done = b.label("done");
        b.bge(r, nrows, done);
        b.desc_consume(len, 3);
        b.li(acc, 0);
        b.li(k, 0);
        let inner = b.here("inner");
        let endrow = b.label("endrow");
        b.bge(k, len, endrow);
        b.desc_consume(xv, 0);
        b.desc_consume(v, 1);
        b.mul(v, v, xv);
        b.add(acc, acc, v);
        b.addi(k, k, 1);
        b.jump(inner);
        b.bind(endrow);
        // Mask to the stored width so the value can never alias the
        // try-consume empty marker (u64::MAX).
        b.alu(maple_isa::AluOp::And, acc, acc, 0xffff_ffffi64);
        b.desc_produce(2, acc);
        b.addi(r, r, 1);
        b.jump(row);
        b.bind(done);
        b.halt();
        let compute = sys.load_program(b.build().expect("desc compute builds"), &[]);
        sys.pair_desc(supply, compute, 4);
    }

    // --- MAPLE LIMA ----------------------------------------------------------

    fn load_lima(&self, sys: &mut System, arrays: &DeviceArrays, threads: usize) {
        assert_eq!(threads, 1, "the prefetch study runs single-threaded");
        let maple_va = sys.map_maple(0);
        let (lo, hi) = (0usize, self.a.nrows);

        let mut b = ProgramBuilder::new();
        let regs = DeviceRegs::allocate(&mut b);
        let mbase = b.reg("maple");
        let api = MapleApi::new(mbase);
        let r = b.reg("r");
        let rn = b.reg("rn");
        let j = b.reg("j");
        let jend = b.reg("jend");
        let lo2 = b.reg("lo2");
        let hi2 = b.reg("hi2");
        let v = b.reg("v");
        let xv = b.reg("xv");
        let acc = b.reg("acc");
        let tmp = b.reg("tmp");
        let tmp2 = b.reg("tmp2");

        // Prologue: LIMA for the first row.
        b.li(r, lo as u64);
        let start = b.label("start");
        if lo < hi {
            b.load_indexed(lo2, regs.rp, r, 2, 4, tmp);
            b.addi(tmp, r, 1);
            b.load_indexed(hi2, regs.rp, tmp, 2, 4, tmp);
            api.lima(&mut b, 0, regs.xx, regs.ci, lo2, hi2, false, 4, 4, tmp, tmp2);
        }
        b.bind(start);
        let row = b.here("row");
        let done = b.label("done");
        b.bge(r, hi as i64, done);
        // Issue LIMA for row r+1 (one-row runahead, Figure 4's D).
        let no_next = b.label("no_next");
        b.addi(rn, r, 1);
        b.bge(rn, hi as i64, no_next);
        b.load_indexed(lo2, regs.rp, rn, 2, 4, tmp);
        b.addi(tmp, rn, 1);
        b.load_indexed(hi2, regs.rp, tmp, 2, 4, tmp);
        api.lima(&mut b, 0, regs.xx, regs.ci, lo2, hi2, false, 4, 4, tmp, tmp2);
        b.bind(no_next);
        // Process row r, consuming the gathered x values.
        b.load_indexed(j, regs.rp, r, 2, 4, tmp);
        b.addi(tmp, r, 1);
        b.load_indexed(jend, regs.rp, tmp, 2, 4, tmp);
        b.li(acc, 0);
        let inner = b.here("inner");
        let endrow = b.label("endrow");
        b.bge(j, jend, endrow);
        b.load_indexed(v, regs.vv, j, 2, 4, tmp);
        api.consume(&mut b, 0, xv, 4);
        b.mul(v, v, xv);
        b.add(acc, acc, v);
        b.addi(j, j, 1);
        b.jump(inner);
        b.bind(endrow);
        b.store_indexed(acc, regs.yy, r, 2, 4, tmp);
        b.addi(r, r, 1);
        b.jump(row);
        b.bind(done);
        b.halt();
        let mut binds = regs.bindings(arrays);
        binds.push((mbase, maple_va.0));
        sys.load_program(b.build().expect("lima builds"), &binds);
    }
}

/// The five device-array base registers every SPMV program takes.
struct DeviceRegs {
    rp: maple_isa::Reg,
    ci: maple_isa::Reg,
    vv: maple_isa::Reg,
    xx: maple_isa::Reg,
    yy: maple_isa::Reg,
}

impl DeviceRegs {
    fn allocate(b: &mut ProgramBuilder) -> Self {
        DeviceRegs {
            rp: b.reg("rp"),
            ci: b.reg("ci"),
            vv: b.reg("vv"),
            xx: b.reg("xx"),
            yy: b.reg("yy"),
        }
    }

    fn bindings(&self, a: &DeviceArrays) -> Vec<(maple_isa::Reg, u64)> {
        vec![
            (self.rp, a.rp.0),
            (self.ci, a.ci.0),
            (self.vv, a.vv.0),
            (self.xx, a.xx.0),
            (self.yy, a.yy.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::uniform_sparse;

    fn small_instance() -> Spmv {
        // x is 128 KB — far beyond L1+L2 — so the gather is genuinely
        // cache-averse, as in the evaluation.
        let a = uniform_sparse(48, 32 * 1024, 6, 9);
        let x = dense_vector(32 * 1024, 10);
        Spmv { a, x }
    }

    #[test]
    fn doall_single_thread_verifies() {
        let s = small_instance().run(Variant::Doall, 1);
        assert!(s.verified, "doall produced wrong results");
        assert!(s.loads > 0);
    }

    #[test]
    fn doall_two_threads_verifies() {
        assert!(small_instance().run(Variant::Doall, 2).verified);
    }

    #[test]
    fn maple_decoupled_verifies_and_speeds_up() {
        let inst = small_instance();
        let base = inst.run(Variant::Doall, 2);
        let maple = inst.run(Variant::MapleDecoupled, 2);
        assert!(maple.verified);
        assert!(
            maple.speedup_over(&base) > 1.1,
            "expected speedup, got {:.2}",
            maple.speedup_over(&base)
        );
    }

    #[test]
    fn sw_decoupled_verifies() {
        assert!(small_instance().run(Variant::SwDecoupled, 2).verified);
    }

    #[test]
    fn desc_verifies() {
        assert!(small_instance().run(Variant::Desc, 2).verified);
    }

    #[test]
    fn sw_prefetch_verifies_with_more_loads() {
        let inst = small_instance();
        let base = inst.run(Variant::Doall, 1);
        let pref = inst.run(Variant::SwPrefetch { dist: 16 }, 1);
        assert!(pref.verified);
        // SPMV's inner loop already has three loads, so the re-loaded
        // index adds a third more (flatter kernels like SDHP double).
        assert!(
            pref.loads as f64 > 1.25 * base.loads as f64,
            "software prefetching must add load instructions: {} vs {}",
            pref.loads,
            base.loads
        );
    }

    #[test]
    fn lima_verifies_and_cuts_load_latency() {
        let inst = small_instance();
        let base = inst.run(Variant::Doall, 1);
        let lima = inst.run(Variant::MapleLima, 1);
        assert!(lima.verified);
        assert!(
            lima.mean_load_latency < base.mean_load_latency,
            "LIMA should cut mean load latency: {:.1} vs {:.1}",
            lima.mean_load_latency,
            base.mean_load_latency
        );
        assert!(lima.speedup_over(&base) > 1.0);
    }

    #[test]
    fn droplet_verifies() {
        assert!(small_instance().run(Variant::Droplet, 2).verified);
    }

    #[test]
    fn asymmetric_one_access_many_executes_verifies() {
        let inst = small_instance();
        for executes in [1usize, 2, 3] {
            let s = inst.run_asymmetric(executes);
            assert!(s.verified, "asymmetric 1A+{executes}E failed");
        }
    }

    #[test]
    fn asymmetric_beats_symmetric_when_access_is_cheap() {
        // With a compute-heavier Execute side, one Access thread can feed
        // two Executes: 3 threads total vs the 2-thread symmetric pair.
        let inst = small_instance();
        let pair = inst.run(Variant::MapleDecoupled, 2);
        let asym = inst.run_asymmetric(2);
        assert!(asym.verified);
        assert!(
            (asym.cycles as f64) < 1.1 * pair.cycles as f64,
            "1A+2E ({}) should be competitive with 1A+1E ({})",
            asym.cycles,
            pair.cycles
        );
    }
}
