//! Edge-case tests: degenerate problem instances through the full stack.
//! Empty matrices, empty rows, isolated BFS roots, and single-element
//! inputs must all complete and verify — in every variant.

use crate::bfs::Bfs;
use crate::data::{dense_vector, Csr};
use crate::harness::Variant;
use crate::sdhp::Sdhp;
use crate::spmv::Spmv;

fn csr_from(nrows: usize, ncols: usize, rows: &[Vec<(u32, u32)>]) -> Csr {
    Csr::from_rows(nrows, ncols, rows)
}

#[test]
fn spmv_with_empty_rows_everywhere() {
    // Alternating empty and tiny rows.
    let rows: Vec<Vec<(u32, u32)>> = (0..16)
        .map(|r| {
            if r % 2 == 0 {
                Vec::new()
            } else {
                vec![(r as u32 * 3 % 64, 5)]
            }
        })
        .collect();
    let a = csr_from(16, 64, &rows);
    let inst = Spmv {
        a,
        x: dense_vector(64, 9),
    };
    for (v, t) in [
        (Variant::Doall, 1),
        (Variant::MapleDecoupled, 2),
        (Variant::SwDecoupled, 2),
        (Variant::Desc, 2),
        (Variant::MapleLima, 1),
    ] {
        let s = inst.run(v, t);
        assert!(s.verified, "{} failed on empty rows", v.label());
    }
}

#[test]
fn spmv_with_completely_empty_matrix() {
    let a = csr_from(8, 32, &vec![Vec::new(); 8]);
    let inst = Spmv {
        a,
        x: dense_vector(32, 1),
    };
    for (v, t) in [
        (Variant::Doall, 2),
        (Variant::MapleDecoupled, 2),
        (Variant::MapleLima, 1),
    ] {
        let s = inst.run(v, t);
        assert!(s.verified, "{} failed on empty matrix", v.label());
        assert!(s.cycles > 0);
    }
}

#[test]
fn spmv_single_element() {
    let a = csr_from(1, 4, &[vec![(2, 7)]]);
    let inst = Spmv {
        a,
        x: vec![1, 2, 3, 4],
    };
    let s = inst.run(Variant::MapleDecoupled, 2);
    assert!(s.verified);
}

#[test]
fn sdhp_empty_instance() {
    let inst = Sdhp {
        dense: vec![0; 16],
        lin: Vec::new(),
        values: Vec::new(),
    };
    assert!(inst.run(Variant::Doall, 1).verified);
    assert!(inst.run(Variant::MapleDecoupled, 2).verified);
}

#[test]
fn bfs_isolated_root_terminates_immediately() {
    // Root has no out-edges: the frontier empties after level 1.
    let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 8];
    rows[1] = vec![(2, 1), (3, 1)]; // unreachable from root 0
    let graph = csr_from(8, 8, &rows);
    let inst = Bfs { graph, root: 0 };
    let d = inst.reference();
    assert_eq!(d[0], 0);
    assert!(d[1..].iter().all(|&x| x == u32::MAX));
    for (v, t) in [
        (Variant::Doall, 2),
        (Variant::MapleDecoupled, 2),
        (Variant::Desc, 2),
    ] {
        let s = inst.run(v, t);
        assert!(s.verified, "{} failed on isolated root", v.label());
    }
}

#[test]
fn bfs_self_loop_and_chain() {
    // Root with a self-loop plus a chain: distances 0,1,2,3.
    let rows = vec![
        vec![(0u32, 1u32), (1, 1)],
        vec![(2, 1)],
        vec![(3, 1)],
        Vec::new(),
    ];
    let graph = csr_from(4, 4, &rows);
    let inst = Bfs { graph, root: 0 };
    assert_eq!(inst.reference(), vec![0, 1, 2, 3]);
    assert!(inst.run(Variant::MapleDecoupled, 2).verified);
    assert!(inst.run(Variant::MapleLima, 1).verified);
}

#[test]
fn more_threads_than_rows_is_fine() {
    let a = csr_from(3, 32, &[vec![(1, 2)], vec![(5, 3)], vec![(9, 4)]]);
    let inst = Spmv {
        a,
        x: dense_vector(32, 2),
    };
    // 8 threads over 3 rows: most partitions are empty.
    assert!(inst.run(Variant::Doall, 8).verified);
    assert!(inst.run(Variant::MapleDecoupled, 8).verified);
}
