//! The randomized differential oracle: for randomly generated CSR /
//! vector / graph instances, run every oracle variant through the full
//! simulated SoC and check bit-identical results against the scalar host
//! reference plus the hardware conservation invariants
//! (`maple_workloads::oracle`).
//!
//! Instances are deliberately tiny — the point is input-space coverage
//! (empty rows, single rows, duplicate columns, skewed shapes,
//! disconnected graphs), not throughput. Cases dispatch through the
//! `maple-fleet` pool (`MAPLE_JOBS` controls the worker count; the
//! failure report is identical at any setting). Failures shrink toward
//! the smallest instance that still violates an invariant and print a
//! `MAPLE_TESTKIT_SEED` reproduction line.

use maple_testkit::{check_parallel, gen, Config, SimRng};
use maple_workloads::bfs::Bfs;
use maple_workloads::data::{dense_vector, Csr};
use maple_workloads::oracle::differential_check;
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;

/// Number of randomized instances per kernel (the acceptance floor is
/// 64; `MAPLE_TESTKIT_CASES` raises it for long fuzz runs).
const INSTANCES: u64 = 64;

/// Random small CSR: `rows` rows over `ncols` columns, up to 6 nonzeros
/// per row, expanded deterministically from `seed`. Covers empty rows and
/// duplicate column picks (deduped, as CSR requires).
fn random_csr(rows: usize, ncols: usize, seed: u64) -> Csr {
    let mut rng = SimRng::seed(seed);
    let rows_vec: Vec<Vec<(u32, u32)>> = (0..rows)
        .map(|_| {
            let nnz = rng.below(7) as usize;
            let mut cols: Vec<u32> = (0..nnz)
                .map(|_| rng.below(ncols as u64) as u32)
                .collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, 1 + rng.below(100) as u32))
                .collect()
        })
        .collect();
    Csr::from_rows(rows, ncols, &rows_vec)
}

#[test]
fn spmv_all_variants_match_reference_and_conserve() {
    let inputs = (gen::usize_in(1..12), gen::u64_any(), gen::u64_any());
    let cfg = Config::new("spmv_all_variants_match_reference_and_conserve")
        .with_cases(INSTANCES);
    check_parallel(&cfg, &inputs, |&(rows, csr_seed, x_seed)| {
        let a = random_csr(rows, 128, csr_seed);
        let x = dense_vector(128, x_seed);
        let inst = Spmv { a, x };
        differential_check("spmv", |v, t| inst.run(v, t))
    });
}

#[test]
fn sdhp_all_variants_match_reference_and_conserve() {
    let inputs = (gen::usize_in(1..10), gen::u64_any(), gen::u64_any());
    let cfg = Config::new("sdhp_all_variants_match_reference_and_conserve")
        .with_cases(INSTANCES);
    check_parallel(&cfg, &inputs, |&(rows, csr_seed, sdhp_seed)| {
        let a = random_csr(rows, 128, csr_seed);
        let inst = Sdhp::from_sparse(&a, sdhp_seed);
        differential_check("sdhp", |v, t| inst.run(v, t))
    });
}

#[test]
fn bfs_all_variants_match_reference_and_conserve() {
    // Square graphs so vertices and columns coincide; the root is the
    // first vertex with outgoing edges (matching `Bfs::new`), so the
    // traversal always has at least one level. Disconnected remainders
    // stay UNVISITED and are still compared bit-for-bit.
    let inputs = (gen::usize_in(2..24), gen::u64_any());
    let cfg = Config::new("bfs_all_variants_match_reference_and_conserve")
        .with_cases(INSTANCES);
    check_parallel(&cfg, &inputs, |&(verts, graph_seed)| {
        let graph = random_csr(verts, verts, graph_seed);
        let root = (0..graph.nrows)
            .find(|&r| !graph.row_range(r).is_empty())
            .unwrap_or(0) as u32;
        let inst = Bfs { graph, root };
        differential_check("bfs", |v, t| inst.run(v, t))
    });
}
