//! Property suite for the partitioned parallel stepper: for ANY
//! generated mesh size, partition cut, worker count and (optionally)
//! chaos schedule, the partitioned run must be bit-identical to the
//! single-threaded skipping stepper — run statistics, metrics-snapshot
//! JSON, and full `RunOutcome::Hung` diagnoses included.
//!
//! Seeded and shrinkable: failures print a `MAPLE_TESTKIT_SEED`
//! reproduction line, and the runner greedily shrinks the mesh/cut
//! parameters toward the minimal diverging configuration.
//! `MAPLE_TESTKIT_CASES` scales the case count for soak runs.

use maple_isa::builder::ProgramBuilder;
use maple_sim::fault::FaultPlaneConfig;
use maple_sim::rng::SimRng;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_testkit::{check, gen, Config};
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::Variant;
use maple_workloads::spmv::Spmv;

/// Expands one random word into a recoverable fault plane (drop-rate
/// well below 1 so the run's fate is decided by the watchdogs, not the
/// budget), roughly mirroring `chaos_prop`'s schedule space.
fn random_plane(seed: u64) -> FaultPlaneConfig {
    let mut rng = SimRng::seed(seed);
    let pct = |rng: &mut SimRng, limit_pct: u64| rng.below(limit_pct) as f64 / 100.0;
    let mut plane = FaultPlaneConfig::new(seed)
        .with_noc_drop(pct(&mut rng, 4))
        .with_noc_delay(pct(&mut rng, 6), 50 + rng.below(300))
        .with_dram_spikes(pct(&mut rng, 8), 100 + rng.below(500));
    if rng.below(2) == 1 {
        plane = plane.with_engine_reset_at(2_000 + rng.below(30_000), 0);
    }
    if rng.below(2) == 1 {
        plane = plane.with_tlb_shootdowns(1 + rng.below(3) as u32, 50_000);
    }
    plane
}

#[test]
fn partitioned_equals_single_threaded_on_random_meshes() {
    // Random mesh (threads × engines), random cut (partitions), random
    // worker count, random data, optional chaos: the partitioned run
    // must reproduce the skipping stepper byte-for-byte.
    let inputs = (
        (
            gen::choice(vec![2usize, 4]), // threads (decoupling runs in pairs)
            gen::usize_in(1..3),  // MAPLE engines
            gen::usize_in(1..6),  // partitions
            gen::usize_in(1..5),  // workers
        ),
        (
            gen::usize_in(8..24), // rows
            gen::u64_any(),       // data seed
            gen::bools(),         // chaos on/off
            gen::u64_any(),       // chaos seed
            gen::bools(),         // compiled fast path on/off
        ),
    );
    let cfg = Config::new("partitioned_equals_single_threaded_on_random_meshes").with_cases(12);
    check(&cfg, &inputs, |&((threads, maples, parts, workers), (rows, data_seed, chaos, chaos_seed, fast))| {
        let a = uniform_sparse(rows, 2 * 1024, 5, data_seed);
        let x = dense_vector(2 * 1024, data_seed ^ 0x51);
        let inst = Spmv { a, x };
        let plane = chaos.then(|| random_plane(chaos_seed));
        let tune = |c: SocConfig| {
            let c = c.with_maples(maples).with_fast_path(fast);
            match plane.clone() {
                Some(p) => c.with_fault_plane(p),
                None => c,
            }
        };
        let (part_stats, part_sys) = inst.run_observed(Variant::MapleDecoupled, threads, |c| {
            tune(c).with_partitions(parts).with_partition_workers(workers)
        });
        let (seq_stats, seq_sys) = inst.run_observed(Variant::MapleDecoupled, threads, tune);
        maple_testkit::tk_assert_eq!(
            part_stats,
            seq_stats,
            "threads={threads} maples={maples} partitions={parts} workers={workers} \
             chaos={chaos} fast={fast}: partitioned stats diverged"
        );
        maple_testkit::tk_assert_eq!(
            part_sys.metrics_snapshot().to_json().render(),
            seq_sys.metrics_snapshot().to_json().render(),
            "threads={threads} maples={maples} partitions={parts} workers={workers} \
             chaos={chaos} fast={fast}: metrics JSON diverged"
        );
        Ok(())
    });
}

#[test]
fn fast_path_equals_interpreter_on_random_meshes() {
    // The cross-mode property: the compiled fast path (batched micro-op
    // runs) on a random partitioned mesh, with or without chaos, must
    // reproduce the per-instruction interpreter under the plain skipping
    // stepper — run stats and the metrics snapshot with the
    // mode-dependent `/dispatch/` counters stripped.
    let inputs = (
        (
            gen::choice(vec![2usize, 4]), // threads (decoupling runs in pairs)
            gen::usize_in(1..3),          // MAPLE engines
            gen::usize_in(1..6),          // partitions
        ),
        (
            gen::usize_in(8..24), // rows
            gen::u64_any(),       // data seed
            gen::bools(),         // chaos on/off
            gen::u64_any(),       // chaos seed
        ),
    );
    let cfg = Config::new("fast_path_equals_interpreter_on_random_meshes").with_cases(12);
    check(
        &cfg,
        &inputs,
        |&((threads, maples, parts), (rows, data_seed, chaos, chaos_seed))| {
            let a = uniform_sparse(rows, 2 * 1024, 5, data_seed);
            let x = dense_vector(2 * 1024, data_seed ^ 0x51);
            let inst = Spmv { a, x };
            let plane = chaos.then(|| random_plane(chaos_seed));
            let tune = |c: SocConfig| {
                let c = c.with_maples(maples);
                match plane.clone() {
                    Some(p) => c.with_fault_plane(p),
                    None => c,
                }
            };
            let (fast_stats, fast_sys) = inst.run_observed(Variant::MapleDecoupled, threads, |c| {
                tune(c).with_fast_path(true).with_partitions(parts)
            });
            let (ref_stats, ref_sys) = inst.run_observed(Variant::MapleDecoupled, threads, tune);
            let stripped = |sys: &System| {
                let mut snap = sys.metrics_snapshot();
                snap.retain(|name| !name.contains("/dispatch/"));
                snap.to_json().render()
            };
            maple_testkit::tk_assert_eq!(
                fast_stats,
                ref_stats,
                "threads={threads} maples={maples} partitions={parts} chaos={chaos}: \
                 fast-path stats diverged from the interpreter"
            );
            maple_testkit::tk_assert_eq!(
                stripped(&fast_sys),
                stripped(&ref_sys),
                "threads={threads} maples={maples} partitions={parts} chaos={chaos}: \
                 fast-path metrics JSON diverged from the interpreter"
            );
            Ok(())
        },
    );
}

#[test]
fn clustered_fabrics_agree_across_steppers_on_random_shapes() {
    // Hierarchical generalisation: a random cluster grid (including the
    // degenerate 1×1), a random bank count and random chaos must leave
    // the three steppers bit-identical. Cluster-aligned partition cuts,
    // crossbar fault sites and per-bank DRAM streams are all in play.
    let inputs = (
        (
            gen::usize_in(1..3),          // clusters_x
            gen::usize_in(1..3),          // clusters_y
            gen::u64_any(),               // bank count draw (folded mod clusters)
            gen::choice(vec![2usize, 4]), // threads (decoupling runs in pairs)
            gen::usize_in(1..3),          // MAPLE engines
        ),
        (
            gen::usize_in(1..5),  // partitions
            gen::usize_in(1..4),  // workers
            gen::usize_in(8..20), // rows
            gen::u64_any(),       // data seed
            gen::bools(),         // chaos on/off
            gen::u64_any(),       // chaos seed
        ),
    );
    let cfg = Config::new("clustered_fabrics_agree_across_steppers_on_random_shapes").with_cases(10);
    check(&cfg, &inputs, |&(
        (cx, cy, bank_draw, threads, maples),
        (parts, workers, rows, data_seed, chaos, chaos_seed),
    )| {
        let clusters = cx * cy;
        let banks = 1 + (bank_draw as usize) % clusters;
        // 9 tiles per cluster holds the worst 1×1 packing
        // (4 cores + 1 bank + 2 engines) with room to spare.
        let shape = maple_soc::ClusterConfig::new(9, cx as u16, cy as u16).with_l2_banks(banks);
        let a = uniform_sparse(rows, 2 * 1024, 5, data_seed);
        let x = dense_vector(2 * 1024, data_seed ^ 0x51);
        let inst = Spmv { a, x };
        let plane = chaos.then(|| random_plane(chaos_seed));
        let tune = |c: SocConfig| {
            let c = c.with_maples(maples).with_clusters(shape);
            match plane.clone() {
                Some(p) => c.with_fault_plane(p),
                None => c,
            }
        };
        let (part_stats, part_sys) = inst.run_observed(Variant::MapleDecoupled, threads, |c| {
            tune(c).with_partitions(parts).with_partition_workers(workers)
        });
        let (seq_stats, seq_sys) = inst.run_observed(Variant::MapleDecoupled, threads, tune);
        let dense_stats = inst.run_tuned(Variant::MapleDecoupled, threads, |c| {
            tune(c).with_dense_stepper()
        });
        maple_testkit::tk_assert_eq!(
            part_stats,
            seq_stats,
            "clusters={cx}x{cy} banks={banks} threads={threads} maples={maples} \
             partitions={parts} workers={workers} chaos={chaos}: partitioned stats diverged"
        );
        maple_testkit::tk_assert_eq!(
            seq_stats,
            dense_stats,
            "clusters={cx}x{cy} banks={banks} threads={threads} maples={maples} \
             chaos={chaos}: skipping diverged from dense"
        );
        maple_testkit::tk_assert_eq!(
            part_sys.metrics_snapshot().to_json().render(),
            seq_sys.metrics_snapshot().to_json().render(),
            "clusters={cx}x{cy} banks={banks} partitions={parts} workers={workers} \
             chaos={chaos}: metrics JSON diverged"
        );
        Ok(())
    });
}

/// A consumer with nothing to consume: parks forever, so the run ends in
/// a structured hang diagnosis (or, under chaos, possibly a watchdog
/// retirement) — the outcome shape the property below pins.
fn load_starved_consumer(sys: &mut System) {
    let maple_va = sys.map_maple(0);
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let api = MapleApi::new(base);
    api.consume(&mut b, 0, v, 4);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
}

#[test]
fn hung_diagnoses_are_identical_across_steppers() {
    // Hang diagnoses carry per-core stall labels and per-engine queue
    // occupancy — state reassembled from the partitions — so comparing
    // the full `RunOutcome` (diagnosis included) across partitioned,
    // skipping and dense steppers is the sharpest end-state probe.
    let inputs = (
        gen::usize_in(1..6), // partitions
        gen::usize_in(1..5), // workers
        gen::bools(),        // chaos on/off
        gen::u64_any(),      // chaos seed
    );
    let cfg = Config::new("hung_diagnoses_are_identical_across_steppers").with_cases(16);
    check(&cfg, &inputs, |&(parts, workers, chaos, chaos_seed)| {
        const BUDGET: u64 = 150_000;
        let run = |cfg: SocConfig| {
            let cfg = match chaos.then(|| random_plane(chaos_seed)) {
                Some(p) => cfg.with_fault_plane(p),
                None => cfg,
            };
            let mut sys = System::new(cfg);
            load_starved_consumer(&mut sys);
            let out = sys.run(BUDGET);
            (out, sys)
        };
        let (part_out, part_sys) = run(SocConfig::fpga_prototype()
            .with_partitions(parts)
            .with_partition_workers(workers));
        let (skip_out, skip_sys) = run(SocConfig::fpga_prototype());
        let (dense_out, _) = run(SocConfig::fpga_prototype().with_dense_stepper());
        maple_testkit::tk_assert_eq!(
            part_out,
            skip_out,
            "partitions={parts} workers={workers} chaos={chaos}: outcome/diagnosis diverged \
             from the skipping stepper"
        );
        maple_testkit::tk_assert_eq!(
            skip_out,
            dense_out,
            "chaos={chaos}: skipping outcome diverged from dense"
        );
        maple_testkit::tk_assert_eq!(
            part_sys.metrics_snapshot().to_json().render(),
            skip_sys.metrics_snapshot().to_json().render(),
            "partitions={parts} workers={workers} chaos={chaos}: metrics diverged on hang"
        );
        Ok(())
    });
}
