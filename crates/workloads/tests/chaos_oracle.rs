//! The fixed-seed chaos grid: every named fault schedule × every kernel,
//! running MAPLE-decoupled through the graceful-degradation ladder and
//! checking the chaos invariants (`maple_workloads::oracle::chaos_check`):
//! the standing result is bit-exact — directly or via a recorded
//! degradation to a software variant — every injected fault/retry/poison
//! is visible in counters, and the deliberately unrecoverable schedule
//! ends in a structured hang diagnosis, never a bare timeout or panic.
//!
//! Seeds are fixed so a failure replays exactly:
//!     cargo test --offline -p maple-workloads --test chaos_oracle

use maple_sim::fault::FaultPlaneConfig;
use maple_workloads::bfs::Bfs;
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::oracle::{chaos_check, chaos_schedules, ChaosSchedule};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;

/// Master seed of the grid. Every schedule derives its fault timing from
/// this; change it and every chaos run changes, keep it and every run is
/// bit-identical.
const GRID_SEED: u64 = 0xC0FF_EE00;

/// Runs one `(variant, threads)` on a fresh system, installing `plane`
/// when the oracle hands one down (MAPLE attempts only).
fn run_spmv(inst: &Spmv, v: Variant, t: usize, plane: Option<&FaultPlaneConfig>) -> RunStats {
    match plane {
        Some(p) => {
            let p = p.clone();
            inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
        }
        None => inst.run(v, t),
    }
}

fn run_bfs(inst: &Bfs, v: Variant, t: usize, plane: Option<&FaultPlaneConfig>) -> RunStats {
    match plane {
        Some(p) => {
            let p = p.clone();
            inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
        }
        None => inst.run(v, t),
    }
}

fn run_sdhp(inst: &Sdhp, v: Variant, t: usize, plane: Option<&FaultPlaneConfig>) -> RunStats {
    match plane {
        Some(p) => {
            let p = p.clone();
            inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
        }
        None => inst.run(v, t),
    }
}

/// The recoverable slice of the grid (the unrecoverable schedule gets its
/// own acceptance test below).
fn recoverable_schedules() -> Vec<ChaosSchedule> {
    chaos_schedules(GRID_SEED)
        .into_iter()
        .filter(|s| !s.must_degrade)
        .collect()
}

#[test]
fn chaos_grid_spmv() {
    // Big enough that the gather is cache-averse and the run comfortably
    // outlives the scheduled mid-run reset at cycle 5000.
    let a = uniform_sparse(32, 8 * 1024, 6, GRID_SEED);
    let x = dense_vector(8 * 1024, GRID_SEED ^ 0x51);
    let inst = Spmv { a, x };
    let schedules = recoverable_schedules();
    assert!(schedules.len() >= 3, "grid floor: 3 recoverable schedules");
    for schedule in &schedules {
        chaos_check("spmv", schedule, |v, t, p| run_spmv(&inst, v, t, p))
            .unwrap_or_else(|e| panic!("{e}\nreplay: GRID_SEED={GRID_SEED:#x}"));
    }
}

#[test]
fn chaos_grid_bfs() {
    let graph = uniform_sparse(48, 48, 4, GRID_SEED ^ 0xB);
    let root = (0..graph.nrows)
        .find(|&r| !graph.row_range(r).is_empty())
        .unwrap_or(0) as u32;
    let inst = Bfs { graph, root };
    for schedule in &recoverable_schedules() {
        chaos_check("bfs", schedule, |v, t, p| run_bfs(&inst, v, t, p))
            .unwrap_or_else(|e| panic!("{e}\nreplay: GRID_SEED={GRID_SEED:#x}"));
    }
}

#[test]
fn chaos_grid_sdhp() {
    let a = uniform_sparse(32, 2048, 6, GRID_SEED ^ 0x5);
    let inst = Sdhp::from_sparse(&a, GRID_SEED ^ 0x50);
    for schedule in &recoverable_schedules() {
        chaos_check("sdhp", schedule, |v, t, p| run_sdhp(&inst, v, t, p))
            .unwrap_or_else(|e| panic!("{e}\nreplay: GRID_SEED={GRID_SEED:#x}"));
    }
}

#[test]
fn ack_blackout_degrades_with_diagnosis() {
    // Acceptance criterion: 100% MMIO ack loss is unrecoverable by
    // construction. chaos_check enforces the full contract: the MAPLE
    // attempt ends hung with a poisoned engine (structured diagnosis,
    // never a bare timeout), the harness degrades, and the degraded
    // software run is bit-exact.
    let a = uniform_sparse(24, 4 * 1024, 5, GRID_SEED ^ 0xAC);
    let x = dense_vector(4 * 1024, GRID_SEED ^ 0xACC);
    let inst = Spmv { a, x };
    let blackout = chaos_schedules(GRID_SEED)
        .into_iter()
        .find(|s| s.must_degrade)
        .expect("grid includes the unrecoverable schedule");
    chaos_check("spmv", &blackout, |v, t, p| run_spmv(&inst, v, t, p))
        .unwrap_or_else(|e| panic!("{e}\nreplay: GRID_SEED={GRID_SEED:#x}"));
}
