//! Stepper differential suite: the event-horizon skipping scheduler
//! (`System::run`) must be **bit-exact** with the dense cycle-by-cycle
//! reference loop (`System::dense_run`) — identical cycle counts, run
//! statistics, fault reports, trace event streams, metrics snapshots and
//! occupancy samples — across the oracle variant grid, the chaos
//! schedule grid, and traced runs.
//!
//! The dense stepper is selected through the configuration
//! (`SocConfig::with_dense_stepper`), which reaches every workload entry
//! point via the `run_tuned` tuning closure.

use maple_trace::TraceConfig;
use maple_workloads::bfs::Bfs;
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::oracle::{chaos_schedules, ORACLE_VARIANTS};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;

/// Master seed: fixed so any divergence replays exactly.
const SEED: u64 = 0x57E9_9E87;

fn assert_same(kernel: &str, v: Variant, t: usize, skip: &RunStats, dense: &RunStats) {
    assert_eq!(
        skip, dense,
        "{kernel} {v:?} x{t}: skipping stepper diverged from dense reference\n\
         replay: SEED={SEED:#x}"
    );
    assert!(skip.verified, "{kernel} {v:?} x{t}: wrong result");
}

#[test]
fn grid_spmv_bit_exact() {
    let a = uniform_sparse(24, 4 * 1024, 5, SEED);
    let x = dense_vector(4 * 1024, SEED ^ 0x51);
    let inst = Spmv { a, x };
    // The oracle grid plus the variants it leaves out (LIMA command mode
    // and software prefetch), so every load path crosses the stepper.
    let grid: Vec<(Variant, usize)> = ORACLE_VARIANTS
        .iter()
        .copied()
        .chain([(Variant::MapleLima, 1), (Variant::SwPrefetch { dist: 4 }, 1)])
        .collect();
    for (v, t) in grid {
        let skip = inst.run(v, t);
        let dense = inst.run_tuned(v, t, |c| c.with_dense_stepper());
        assert_same("spmv", v, t, &skip, &dense);
    }
}

#[test]
fn grid_bfs_bit_exact() {
    let graph = uniform_sparse(48, 48, 4, SEED ^ 0xB);
    let root = (0..graph.nrows)
        .find(|&r| !graph.row_range(r).is_empty())
        .unwrap_or(0) as u32;
    let inst = Bfs { graph, root };
    for &(v, t) in &ORACLE_VARIANTS {
        let skip = inst.run(v, t);
        let dense = inst.run_tuned(v, t, |c| c.with_dense_stepper());
        assert_same("bfs", v, t, &skip, &dense);
    }
}

#[test]
fn grid_sdhp_bit_exact() {
    let a = uniform_sparse(24, 2048, 5, SEED ^ 0x5);
    let inst = Sdhp::from_sparse(&a, SEED ^ 0x50);
    for &(v, t) in &ORACLE_VARIANTS {
        let skip = inst.run(v, t);
        let dense = inst.run_tuned(v, t, |c| c.with_dense_stepper());
        assert_same("sdhp", v, t, &skip, &dense);
    }
}

#[test]
fn chaos_grid_bit_exact() {
    // Every named chaos schedule, including the deliberately
    // unrecoverable ack blackout: injected faults, watchdog retries,
    // poisons and the final hang diagnosis must be cycle-identical under
    // both steppers (chaos injections are horizon terms, so a skipped-to
    // cycle lands exactly on the injection).
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0xC);
    let x = dense_vector(4 * 1024, SEED ^ 0xC1);
    let inst = Spmv { a, x };
    for schedule in chaos_schedules(SEED) {
        let plane = schedule.plane.clone();
        let skip = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| c.with_fault_plane(p)
        });
        let dense = inst.run_tuned(Variant::MapleDecoupled, 2, move |c| {
            c.with_fault_plane(plane).with_dense_stepper()
        });
        assert_eq!(
            skip, dense,
            "chaos schedule `{}`: skipping diverged from dense\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        // No claim about recovery here (that is chaos_oracle's contract,
        // which runs the full degradation ladder): only that both
        // steppers tell the same story, hung or not.
        assert_eq!(skip.hung, dense.hung);
    }
}

#[test]
fn partitioned_grid_bit_exact() {
    // The partitions×workers cell grid: every combination of 1/2/4
    // spatial partitions and 1/2/4 workers must reproduce the dense
    // reference byte-for-byte — run stats, the metrics snapshot JSON
    // (which embeds the occupancy histograms sampled on scheduled
    // cycles), everything. 4 cores + 2 engines so a 4-way split
    // exercises real cuts, including zero-engine partitions.
    let a = uniform_sparse(32, 4 * 1024, 5, SEED ^ 0x17);
    let x = dense_vector(4 * 1024, SEED ^ 0x171);
    let inst = Spmv { a, x };
    let tune = |c: maple_soc::SocConfig| c.with_maples(2);
    let (dense_stats, dense_sys) =
        inst.run_observed(Variant::MapleDecoupled, 4, |c| tune(c).with_dense_stepper());
    let dense_json = dense_sys.metrics_snapshot().to_json().render();
    for parts in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            let (stats, sys) = inst.run_observed(Variant::MapleDecoupled, 4, move |c| {
                tune(c).with_partitions(parts).with_partition_workers(workers)
            });
            assert_eq!(
                stats, dense_stats,
                "partitions={parts} workers={workers}: diverged from dense\n\
                 replay: SEED={SEED:#x}"
            );
            assert_eq!(
                sys.metrics_snapshot().to_json().render(),
                dense_json,
                "partitions={parts} workers={workers}: metrics JSON diverged"
            );
        }
    }
}

#[test]
fn partitioned_variant_grid_bit_exact() {
    // Every oracle variant (plus LIMA command mode and software
    // prefetch) through the partitioned stepper at an odd partition
    // count, so uneven cuts and the DeSC pair constraint both fire.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x23);
    let x = dense_vector(4 * 1024, SEED ^ 0x231);
    let inst = Spmv { a, x };
    let grid: Vec<(Variant, usize)> = ORACLE_VARIANTS
        .iter()
        .copied()
        .chain([(Variant::MapleLima, 1), (Variant::SwPrefetch { dist: 4 }, 1)])
        .collect();
    for (v, t) in grid {
        let part = inst.run_tuned(v, t, |c| c.with_partitions(3).with_partition_workers(2));
        let dense = inst.run_tuned(v, t, |c| c.with_dense_stepper());
        assert_eq!(
            part, dense,
            "spmv {v:?} x{t}: partitioned stepper diverged from dense\n\
             replay: SEED={SEED:#x}"
        );
        assert!(part.verified, "spmv {v:?} x{t}: wrong result");
    }
}

#[test]
fn partitioned_chaos_grid_bit_exact() {
    // Chaos injections land hub-side and cross the cut as commands; a
    // reset aimed at an engine in another partition, watchdog retries
    // and retirements must all replay identically — including the final
    // hang diagnosis when the schedule is unrecoverable.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x2C);
    let x = dense_vector(4 * 1024, SEED ^ 0x2C1);
    let inst = Spmv { a, x };
    for schedule in chaos_schedules(SEED ^ 0xFACE) {
        let plane = schedule.plane.clone();
        let part = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| {
                c.with_fault_plane(p)
                    .with_partitions(4)
                    .with_partition_workers(4)
            }
        });
        let dense = inst.run_tuned(Variant::MapleDecoupled, 2, move |c| {
            c.with_fault_plane(plane).with_dense_stepper()
        });
        assert_eq!(
            part, dense,
            "chaos schedule `{}`: partitioned diverged from dense\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        assert_eq!(part.hung, dense.hung);
    }
}

#[test]
fn partitioned_traced_streams_identical() {
    // The sharpest probe: per-cycle trace records from per-component
    // rings, merged canonically, must be byte-identical to the dense
    // run's — regardless of which worker emitted them.
    let a = uniform_sparse(16, 2048, 4, SEED ^ 0x37);
    let x = dense_vector(2048, SEED ^ 0x371);
    let inst = Spmv { a, x };
    let (part_stats, part_sys) = inst.run_observed(Variant::MapleDecoupled, 4, |c| {
        c.with_maples(2)
            .with_tracing(TraceConfig::default())
            .with_partitions(4)
            .with_partition_workers(4)
    });
    let (dense_stats, dense_sys) = inst.run_observed(Variant::MapleDecoupled, 4, |c| {
        c.with_maples(2)
            .with_tracing(TraceConfig::default())
            .with_dense_stepper()
    });
    assert_eq!(part_stats, dense_stats, "stats diverged on traced run");
    let part_records = part_sys.trace_records();
    let dense_records = dense_sys.trace_records();
    assert_eq!(
        part_records.len(),
        dense_records.len(),
        "trace record count diverged"
    );
    for (i, (p, d)) in part_records.iter().zip(&dense_records).enumerate() {
        assert_eq!(p, d, "trace record {i} diverged");
    }
    assert_eq!(part_sys.trace_dropped(), dense_sys.trace_dropped());
    assert_eq!(
        part_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "metrics snapshot diverged on traced run"
    );
}

/// Strips the per-core `/dispatch/` counters, which legitimately differ
/// between interpreter and fast-path dispatch, from a rendered snapshot.
fn comparable_metrics(sys: &maple_soc::System) -> String {
    let mut snap = sys.metrics_snapshot();
    snap.retain(|name| !name.contains("/dispatch/"));
    snap.to_json().render()
}

#[test]
fn fast_path_grid_bit_exact() {
    // The compiled fast path batches straight-line compute into micro-op
    // runs; every variant (each mixes compute with a different memory
    // path) must replay identically with the path on — under both the
    // skipping and the dense stepper — against the interpreter-only
    // dense reference.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x41);
    let x = dense_vector(4 * 1024, SEED ^ 0x411);
    let inst = Spmv { a, x };
    let grid: Vec<(Variant, usize)> = ORACLE_VARIANTS
        .iter()
        .copied()
        .chain([(Variant::MapleLima, 1), (Variant::SwPrefetch { dist: 4 }, 1)])
        .collect();
    for (v, t) in grid {
        let dense = inst.run_tuned(v, t, |c| c.with_dense_stepper());
        let fast_skip = inst.run_tuned(v, t, |c| c.with_fast_path(true));
        let fast_dense = inst.run_tuned(v, t, |c| c.with_fast_path(true).with_dense_stepper());
        assert_eq!(
            fast_skip, dense,
            "spmv {v:?} x{t}: fast-path skipping diverged from interpreter dense\n\
             replay: SEED={SEED:#x}"
        );
        assert_eq!(
            fast_dense, dense,
            "spmv {v:?} x{t}: fast-path dense diverged from interpreter dense\n\
             replay: SEED={SEED:#x}"
        );
        assert!(fast_skip.verified, "spmv {v:?} x{t}: wrong result");
    }
}

#[test]
fn fast_path_chaos_grid_bit_exact() {
    // Chaos injections are exactly what the dispatch fence guards: a run
    // must never execute past a cycle where the hub could act. Every
    // schedule — including the unrecoverable ack blackout — must tell
    // the same story with the fast path on, sequentially and partitioned.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x4C);
    let x = dense_vector(4 * 1024, SEED ^ 0x4C1);
    let inst = Spmv { a, x };
    for schedule in chaos_schedules(SEED ^ 0xFA57) {
        let plane = schedule.plane.clone();
        let reference = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| c.with_fault_plane(p).with_dense_stepper()
        });
        let fast = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| c.with_fault_plane(p).with_fast_path(true)
        });
        let fast_part = inst.run_tuned(Variant::MapleDecoupled, 2, move |c| {
            c.with_fault_plane(plane)
                .with_fast_path(true)
                .with_partitions(4)
                .with_partition_workers(4)
        });
        assert_eq!(
            fast, reference,
            "chaos schedule `{}`: fast path diverged from interpreter\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        assert_eq!(
            fast_part, reference,
            "chaos schedule `{}`: partitioned fast path diverged\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        assert_eq!(fast.hung, reference.hung);
    }
}

#[test]
fn fast_path_partitioned_grid_bit_exact() {
    // The partitions×workers cell grid with the fast path on: run stats
    // and the dispatch-stripped metrics snapshot must match the
    // interpreter-only dense reference in every cell, and the fast-path
    // run count itself must be identical in every cell (dispatch is
    // decided by phase-1 state shared by all steppers).
    let a = uniform_sparse(32, 4 * 1024, 5, SEED ^ 0x47);
    let x = dense_vector(4 * 1024, SEED ^ 0x471);
    let inst = Spmv { a, x };
    let tune = |c: maple_soc::SocConfig| c.with_maples(2);
    let (dense_stats, dense_sys) =
        inst.run_observed(Variant::MapleDecoupled, 4, |c| tune(c).with_dense_stepper());
    let dense_json = comparable_metrics(&dense_sys);
    let mut run_counts: Vec<String> = Vec::new();
    for parts in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            let (stats, sys) = inst.run_observed(Variant::MapleDecoupled, 4, move |c| {
                tune(c)
                    .with_fast_path(true)
                    .with_partitions(parts)
                    .with_partition_workers(workers)
            });
            assert_eq!(
                stats, dense_stats,
                "fast path, partitions={parts} workers={workers}: diverged from dense\n\
                 replay: SEED={SEED:#x}"
            );
            assert_eq!(
                comparable_metrics(&sys),
                dense_json,
                "fast path, partitions={parts} workers={workers}: metrics JSON diverged"
            );
            let snap = sys.metrics_snapshot();
            let dispatch: String = snap
                .entries()
                .iter()
                .filter(|(name, _)| name.contains("/dispatch/"))
                .map(|(name, v)| format!("{name}={v:?};"))
                .collect();
            run_counts.push(dispatch);
        }
    }
    assert!(
        run_counts.windows(2).all(|w| w[0] == w[1]),
        "dispatch counters are not stepper-invariant across the cell grid"
    );
}

#[test]
fn fast_path_traced_streams_identical() {
    // The core traces stall spans and MMIO transactions, never compute
    // retirement, so batched dispatch must leave the trace stream
    // byte-identical to the interpreter's.
    let a = uniform_sparse(16, 2048, 4, SEED ^ 0x4F);
    let x = dense_vector(2048, SEED ^ 0x4F1);
    let inst = Spmv { a, x };
    let (fast_stats, fast_sys) = inst.run_observed(Variant::MapleDecoupled, 2, |c| {
        c.with_tracing(TraceConfig::default()).with_fast_path(true)
    });
    let (ref_stats, ref_sys) = inst.run_observed(Variant::MapleDecoupled, 2, |c| {
        c.with_tracing(TraceConfig::default())
    });
    assert_eq!(fast_stats, ref_stats, "stats diverged on traced run");
    assert_eq!(
        fast_sys.trace_records(),
        ref_sys.trace_records(),
        "trace stream diverged under fast-path dispatch"
    );
    assert_eq!(
        comparable_metrics(&fast_sys),
        comparable_metrics(&ref_sys),
        "metrics snapshot diverged under fast-path dispatch"
    );
}

/// Wraps a flat configuration in the degenerate hierarchy: one cluster
/// sized exactly to the existing mesh, so the clustered configuration
/// surface is exercised while the simulation must stay byte-identical.
fn one_cluster(c: maple_soc::SocConfig) -> maple_soc::SocConfig {
    let tiles = usize::from(c.mesh_width) * usize::from(c.mesh_height);
    c.with_clusters(maple_soc::ClusterConfig::new(tiles, 1, 1))
}

/// A genuinely hierarchical fabric: 2×2 clusters of 3×3 tiles with one
/// L2 bank per cluster — crossbars, inter-cluster mesh legs and address
/// interleaving all live.
fn clustered(c: maple_soc::SocConfig) -> maple_soc::SocConfig {
    c.with_clusters(maple_soc::ClusterConfig::new(9, 2, 2))
}

#[test]
fn one_cluster_grid_bit_identical_to_flat() {
    // The tentpole's anchor: a hierarchical configuration with a single
    // cluster shaped like the flat mesh must be byte-identical to the
    // flat configuration — run stats AND the full metrics snapshot —
    // across every oracle variant, all three steppers, and the fast path.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x61);
    let x = dense_vector(4 * 1024, SEED ^ 0x611);
    let inst = Spmv { a, x };
    let grid: Vec<(Variant, usize)> = ORACLE_VARIANTS
        .iter()
        .copied()
        .chain([(Variant::MapleLima, 1), (Variant::SwPrefetch { dist: 4 }, 1)])
        .collect();
    for (v, t) in grid {
        let (flat_stats, flat_sys) = inst.run_observed(v, t, |c| c);
        let flat_json = flat_sys.metrics_snapshot().to_json().render();
        let (one_stats, one_sys) = inst.run_observed(v, t, one_cluster);
        assert_eq!(
            one_stats, flat_stats,
            "spmv {v:?} x{t}: 1-cluster hierarchy diverged from flat mesh\n\
             replay: SEED={SEED:#x}"
        );
        assert_eq!(
            one_sys.metrics_snapshot().to_json().render(),
            flat_json,
            "spmv {v:?} x{t}: 1-cluster metrics JSON diverged from flat"
        );
    }
    // The remaining steppers and dispatch modes, on the richest variant.
    let (flat_stats, flat_sys) = inst.run_observed(Variant::MapleDecoupled, 2, |c| c);
    let flat_json = flat_sys.metrics_snapshot().to_json().render();
    let modes: Vec<(&str, RunStats, String)> = vec![
        {
            let (s, sys) =
                inst.run_observed(Variant::MapleDecoupled, 2, |c| one_cluster(c).with_dense_stepper());
            ("dense", s, sys.metrics_snapshot().to_json().render())
        },
        {
            let (s, sys) = inst.run_observed(Variant::MapleDecoupled, 2, |c| {
                one_cluster(c).with_partitions(3).with_partition_workers(2)
            });
            ("partitioned", s, sys.metrics_snapshot().to_json().render())
        },
    ];
    for (mode, s, json) in modes {
        assert_eq!(
            s, flat_stats,
            "1-cluster {mode} stepper diverged from flat skipping\nreplay: SEED={SEED:#x}"
        );
        assert_eq!(json, flat_json, "1-cluster {mode} metrics JSON diverged");
    }
    let fast_flat = inst.run_tuned(Variant::MapleDecoupled, 2, |c| c.with_fast_path(true));
    let fast_one = inst.run_tuned(Variant::MapleDecoupled, 2, |c| one_cluster(c).with_fast_path(true));
    assert_eq!(
        fast_one, fast_flat,
        "1-cluster fast path diverged from flat fast path\nreplay: SEED={SEED:#x}"
    );
}

#[test]
fn one_cluster_chaos_bit_identical_to_flat() {
    // Chaos replay must not notice the degenerate hierarchy either: the
    // flat fabric arm draws the same RNG streams in the same order, and
    // bank 0 draws the historical DRAM stream.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x6C);
    let x = dense_vector(4 * 1024, SEED ^ 0x6C1);
    let inst = Spmv { a, x };
    for schedule in chaos_schedules(SEED ^ 0xC10) {
        let plane = schedule.plane.clone();
        let flat = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| c.with_fault_plane(p)
        });
        let one = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| one_cluster(c).with_fault_plane(p)
        });
        let one_part = inst.run_tuned(Variant::MapleDecoupled, 2, move |c| {
            one_cluster(c)
                .with_fault_plane(plane)
                .with_partitions(4)
                .with_partition_workers(4)
        });
        assert_eq!(
            one, flat,
            "chaos schedule `{}`: 1-cluster diverged from flat\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        assert_eq!(
            one_part, flat,
            "chaos schedule `{}`: partitioned 1-cluster diverged from flat\nreplay: SEED={SEED:#x}",
            schedule.name
        );
    }
}

#[test]
fn clustered_fabric_steppers_bit_exact() {
    // A live hierarchy (crossbars, mesh legs, 4 L2 banks): no flat
    // reference exists, so the contract is stepper-invariance — dense,
    // skipping and partitioned (cluster-aligned cuts) must agree on run
    // stats and the full metrics snapshot, banked/global namespaces
    // included.
    let a = uniform_sparse(32, 4 * 1024, 5, SEED ^ 0x71);
    let x = dense_vector(4 * 1024, SEED ^ 0x711);
    let inst = Spmv { a, x };
    let tune = |c: maple_soc::SocConfig| clustered(c.with_maples(2));
    let (dense_stats, dense_sys) =
        inst.run_observed(Variant::MapleDecoupled, 4, |c| tune(c).with_dense_stepper());
    assert!(dense_stats.verified, "clustered run computed a wrong result");
    let dense_json = dense_sys.metrics_snapshot().to_json().render();
    let (skip_stats, skip_sys) = inst.run_observed(Variant::MapleDecoupled, 4, tune);
    assert_eq!(
        skip_stats, dense_stats,
        "clustered: skipping diverged from dense\nreplay: SEED={SEED:#x}"
    );
    assert_eq!(
        skip_sys.metrics_snapshot().to_json().render(),
        dense_json,
        "clustered: skipping metrics JSON diverged"
    );
    for parts in [2usize, 4] {
        for workers in [1usize, 4] {
            let (stats, sys) = inst.run_observed(Variant::MapleDecoupled, 4, move |c| {
                tune(c).with_partitions(parts).with_partition_workers(workers)
            });
            assert_eq!(
                stats, dense_stats,
                "clustered partitions={parts} workers={workers}: diverged from dense\n\
                 replay: SEED={SEED:#x}"
            );
            assert_eq!(
                sys.metrics_snapshot().to_json().render(),
                dense_json,
                "clustered partitions={parts} workers={workers}: metrics JSON diverged"
            );
        }
    }
    // Fast path on the clustered fabric, dispatch counters stripped.
    let fast = inst.run_tuned(Variant::MapleDecoupled, 4, |c| tune(c).with_fast_path(true));
    assert_eq!(
        fast, dense_stats,
        "clustered fast path diverged from interpreter dense\nreplay: SEED={SEED:#x}"
    );
}

#[test]
fn clustered_chaos_grid_bit_exact() {
    // Chaos on the live hierarchy, including mid-run engine resets whose
    // commands cross cluster-aligned partition cuts into the pool of a
    // different cluster, plus the crossbar's own fault sites.
    let a = uniform_sparse(24, 4 * 1024, 5, SEED ^ 0x7C);
    let x = dense_vector(4 * 1024, SEED ^ 0x7C1);
    let inst = Spmv { a, x };
    let tune = |c: maple_soc::SocConfig| clustered(c.with_maples(2));
    for schedule in chaos_schedules(SEED ^ 0xC1A) {
        let plane = schedule.plane.clone();
        let dense = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| tune(c).with_fault_plane(p).with_dense_stepper()
        });
        let skip = inst.run_tuned(Variant::MapleDecoupled, 2, {
            let p = plane.clone();
            move |c| tune(c).with_fault_plane(p)
        });
        let part = inst.run_tuned(Variant::MapleDecoupled, 2, move |c| {
            tune(c)
                .with_fault_plane(plane)
                .with_partitions(4)
                .with_partition_workers(4)
        });
        assert_eq!(
            skip, dense,
            "clustered chaos `{}`: skipping diverged from dense\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        assert_eq!(
            part, dense,
            "clustered chaos `{}`: partitioned diverged from dense\nreplay: SEED={SEED:#x}",
            schedule.name
        );
        assert_eq!(skip.hung, dense.hung);
    }
}

#[test]
fn traced_run_streams_identical() {
    // Tracing observes individual cycles, so it is the sharpest probe of
    // skipping correctness: every captured (cycle, event) record must be
    // identical, as must the full metrics snapshot (which carries the
    // occupancy histograms sampled on scheduled cycles).
    let a = uniform_sparse(16, 2048, 4, SEED ^ 0x7);
    let x = dense_vector(2048, SEED ^ 0x71);
    let inst = Spmv { a, x };
    let (skip_stats, skip_sys) = inst.run_observed(Variant::MapleDecoupled, 2, |c| {
        c.with_tracing(TraceConfig::default())
    });
    let (dense_stats, dense_sys) = inst.run_observed(Variant::MapleDecoupled, 2, |c| {
        c.with_tracing(TraceConfig::default()).with_dense_stepper()
    });
    assert_eq!(skip_stats, dense_stats, "stats diverged on traced run");
    let skip_records = skip_sys.trace_records();
    let dense_records = dense_sys.trace_records();
    assert_eq!(
        skip_records.len(),
        dense_records.len(),
        "trace record count diverged"
    );
    for (i, (s, d)) in skip_records.iter().zip(&dense_records).enumerate() {
        assert_eq!(s, d, "trace record {i} diverged");
    }
    assert_eq!(
        skip_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "metrics snapshot diverged on traced run"
    );
}
