//! Property test over the fault-schedule space (satellite of the chaos
//! plane): for ANY generated fault schedule with drop-rate < 1, a kernel
//! run either completes bit-exact under MAPLE decoupling or gracefully
//! degrades to a software variant that completes bit-exact — no silent
//! wrong answers, and no livelock beyond the watchdog bound (a failing
//! run is retired by the watchdogs long before the cycle budget, so the
//! ladder always terminates).
//!
//! Case count scales with `MAPLE_CHAOS_CASES` (the CI chaos stage sets
//! it); cases dispatch through the `maple-fleet` pool (`MAPLE_JOBS`);
//! failures print a `MAPLE_TESTKIT_SEED` reproduction line.

use maple_sim::fault::FaultPlaneConfig;
use maple_sim::rng::SimRng;
use maple_testkit::{check_parallel, gen, Config};
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{run_with_fallback, Variant};
use maple_workloads::spmv::Spmv;

/// Default generated-schedule count; `MAPLE_CHAOS_CASES` overrides (the
/// CI chaos stage pins it so the gate's cost is explicit).
fn cases() -> u64 {
    std::env::var("MAPLE_CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

/// Expands one random word into a full fault plane: every rate is drawn
/// below 1 (drop-rate strictly), magnitudes and event times vary, and
/// roughly half the schedules also carry a scheduled mid-run reset.
fn random_plane(seed: u64) -> FaultPlaneConfig {
    let mut rng = SimRng::seed(seed);
    let pct = |rng: &mut SimRng, limit_pct: u64| rng.below(limit_pct) as f64 / 100.0;
    let mut plane = FaultPlaneConfig::new(seed)
        // Drop-rate < 1 by construction (at most 5%: recoverable regime).
        .with_noc_drop(pct(&mut rng, 6))
        .with_noc_delay(pct(&mut rng, 6), 50 + rng.below(300))
        .with_dram_spikes(pct(&mut rng, 8), 100 + rng.below(500))
        .with_mmio_ack_loss(pct(&mut rng, 4));
    if rng.below(2) == 1 {
        plane = plane.with_engine_reset_at(2_000 + rng.below(30_000), 0);
    }
    if rng.below(2) == 1 {
        plane = plane.with_tlb_shootdowns(1 + rng.below(3) as u32, 50_000);
    }
    plane
}

#[test]
fn any_recoverable_schedule_completes_bit_exact_or_degrades() {
    let inputs = (gen::u64_any(), gen::usize_in(8..32), gen::u64_any());
    let cfg = Config::new("any_recoverable_schedule_completes_bit_exact_or_degrades")
        .with_cases(cases());
    check_parallel(&cfg, &inputs, |&(plane_seed, rows, data_seed)| {
        let a = uniform_sparse(rows, 4 * 1024, 5, data_seed);
        let x = dense_vector(4 * 1024, data_seed ^ 0x51);
        let inst = Spmv { a, x };
        let plane = random_plane(plane_seed);
        let outcome = run_with_fallback(Variant::MapleDecoupled, 2, |v, t| {
            if v == Variant::MapleDecoupled {
                let p = plane.clone();
                inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
            } else {
                inst.run(v, t)
            }
        });
        // The one outcome the recovery plane must rule out: wrong data
        // standing as the result.
        if !outcome.verified() {
            return Err(format!(
                "no bit-exact result under schedule {plane:?}; attempts: {:?}",
                outcome
                    .attempts
                    .iter()
                    .map(|(v, s)| (v.label(), s.verified, s.hung, s.cycles))
                    .collect::<Vec<_>>()
            ));
        }
        // A failed MAPLE attempt must have died by watchdog/diagnosis,
        // not by burning the whole cycle budget (livelock bound).
        let (_, maple) = &outcome.attempts[0];
        if !maple.verified && !maple.hung && maple.faults.resets_injected == 0 {
            return Err(format!(
                "MAPLE attempt failed without diagnosis or reset evidence: {:?}",
                maple.faults
            ));
        }
        // Watchdog bound: retry backoff tops out at timeout << 3 per
        // transaction, so even a hung run is retired within a few hundred
        // thousand cycles of its last progress — far below the budget.
        if !maple.verified && maple.cycles > 10_000_000 {
            return Err(format!(
                "hung MAPLE attempt lingered {} cycles past the watchdog bound",
                maple.cycles
            ));
        }
        Ok(())
    });
}
