//! The in-order, single-issue timing core.
//!
//! Models the evaluation platforms' slim cores (RISC-V Ariane on FPGA,
//! instruction window of 1 in simulation — Tables 2 and 3): one instruction
//! per cycle peak, **blocking loads** (the pipeline stalls until the L1
//! responds — this is the stall MAPLE exists to hide), a per-core 16-entry
//! TLB backed by a hardware page-table walker, and an owned write-through
//! L1. MMIO pages (MAPLE instances) are reached through ordinary loads and
//! stores, routed by the page flags the TLB returns.
//!
//! The core executes [`maple_isa::Program`]s over real data in
//! [`maple_mem::PhysMem`], so kernels compute actual results that tests
//! compare against host references.
//!
//! # The tick contract
//!
//! [`Core::tick`] advances the core by exactly one cycle and is the only
//! way core-private state changes. Each tick:
//!
//! 1. retires every memory response the L1 staged for this cycle (DeSC
//!    fills, MMIO store acks, the blocking response the pipeline waits
//!    on);
//! 2. returns early if the core is halted, faulted, blocked on memory,
//!    or simply not yet due (`now < next_ready`) — accruing the matching
//!    stall counter;
//! 3. otherwise **dispatches** the instruction at `pc`, through one of
//!    two paths:
//!    - the **compiled fast-path** (opt-in via [`CpuConfig::fast_path`]):
//!      if the instruction starts a straight-line compute run
//!      ([`maple_isa::fastpath`]), the whole run executes in this one
//!      call — registers updated in program order, `pc` advanced past
//!      the run, `next_ready` charged the run's total latency in bulk —
//!      counted in [`CpuStats::fast_path_runs`]/
//!      [`CpuStats::fast_path_insts`]. A run never contains a memory,
//!      MMIO, queue, or control-flow instruction, and it splits at the
//!      caller-supplied *fence* (the next cycle the hub could inject a
//!      command: a fault service completing or a scheduled chaos event),
//!      so batching is unobservable to the rest of the SoC.
//!    - the **interpreter**: a single instruction executes
//!      (counted in [`CpuStats::interpreted_ticks`]); memory
//!      instructions translate through the TLB and issue into the owned
//!      L1, control flow resolves the next `pc`, and dynamic-latency
//!      outcomes (cache misses, queue backpressure, page faults) park
//!      the core in the matching [`CoreState`].
//!
//! Both paths charge identical cycles for identical instructions — the
//! fast-path is a host-throughput optimization, bit-exact by
//! construction (DESIGN.md §12).
//!
//! # Observability
//!
//! Every stall is attributed: the core classifies each blocked cycle at
//! stall end using the [`ServedBy`] level of
//! the response (L1 / L2 / DRAM / MAPLE consume) into
//! [`CpuStats::stall`], and — when a [`maple_trace::Tracer`] is attached
//! via [`Core::set_tracer`] — emits begin/end stall spans and MMIO
//! transaction events into the trace. Tracing is pure observation: a
//! traced run is cycle-identical to an untraced one.

#![deny(missing_docs)]

pub mod desc;

use maple_isa::fastpath::{BlockCache, MicroOp};
use maple_isa::{AtomicOp, Inst, LdClass, Operand, Program, Reg, NUM_REGS};
use maple_mem::l1::{CoreOp, CoreReq, L1Cache, L1Config, L1Reject};
use maple_mem::msg::{MemReq, MemResp, ServedBy};
use maple_mem::phys::{AmoKind, PhysMem, WriteStage};
use maple_sim::stats::Counter;
use maple_sim::Cycle;
use maple_trace::{StallBreakdown, StallCause, TraceEvent, Tracer, WaitKind};
use maple_vm::page_table::{PageFault, PageTable, Translation};
use maple_vm::tlb::Tlb;
use maple_vm::walker::walk_latency;
use maple_vm::{VAddr, VirtPage};

use crate::desc::{DescQueues, SlotTicket};
use std::collections::HashMap;

/// Core timing parameters.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// L1 data cache configuration.
    pub l1: L1Config,
    /// TLB entries (paper: 16, fully associative).
    pub tlb_entries: usize,
    /// Latency of one page-table-walk level (one L2 read).
    pub ptw_read_latency: u64,
    /// Extra cycles charged for a taken branch (short in-order pipeline).
    pub taken_branch_penalty: u64,
    /// Outstanding terminal loads the DeSC Supply structure tracks.
    pub desc_outstanding: usize,
    /// Access latency of the DeSC coupled queues.
    pub desc_queue_latency: u64,
    /// Outstanding unacknowledged MMIO stores the store buffer tracks
    /// (produce operations are synchronous at the *instruction* level —
    /// they retire on the device ack — but the pipeline runs ahead until
    /// this many acks are pending, exactly like ordinary stores in a
    /// store buffer).
    pub mmio_store_outstanding: usize,
    /// Enables the compiled fast-path: straight-line compute runs
    /// ([`maple_isa::fastpath`]) execute in one tick with bulk cycle
    /// accounting instead of one instruction per tick. Bit-exact with
    /// the interpreter (DESIGN.md §12) and therefore excluded from
    /// `SocConfig::digest_into`, like the stepper knobs.
    pub fast_path: bool,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            l1: L1Config::default(),
            tlb_entries: 16,
            ptw_read_latency: 30,
            taken_branch_penalty: 1,
            desc_outstanding: 16,
            desc_queue_latency: 2,
            mmio_store_outstanding: 8,
            fast_path: false,
        }
    }
}

/// What the core is doing this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Executing (or ready to execute) instructions.
    Running,
    /// Blocked on a memory response.
    WaitingMem,
    /// Stopped at a `Halt`.
    Halted,
    /// Stopped on a page fault awaiting the OS.
    Faulted,
}

/// Details of a pending page fault, for the OS handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInfo {
    /// The faulting virtual address.
    pub vaddr: VAddr,
    /// Whether the access was a write.
    pub write: bool,
    /// The architectural fault.
    pub fault: PageFault,
}

/// Performance counters (Figures 10 and 11 derive from these plus the L1's
/// latency histogram).
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Instructions retired.
    pub instructions: Counter,
    /// Load instructions retired (cacheable + volatile + MMIO consume).
    pub loads: Counter,
    /// Store instructions retired (including MMIO produce).
    pub stores: Counter,
    /// Atomic instructions retired.
    pub atomics: Counter,
    /// Software prefetches issued.
    pub prefetches: Counter,
    /// Cycles spent blocked on memory.
    pub mem_stall_cycles: Counter,
    /// Cycles spent blocked on page-table walks.
    pub ptw_stall_cycles: Counter,
    /// Responses for transactions the core no longer tracks (duplicate
    /// deliveries after an uncore-level MMIO retry); discarded.
    pub stale_responses: Counter,
    /// Cycles spent parked in [`CoreState::Faulted`] awaiting the OS
    /// page-fault handler (also attributed to
    /// [`StallBreakdown::fault_recovery`]).
    pub fault_stall_cycles: Counter,
    /// Memory-stall cycles attributed by cause once each blocking access
    /// completed (the serving level rides back on the response).
    pub stall: StallBreakdown,
    /// Compute runs executed by the compiled fast-path (one per tick
    /// that dispatched a [`maple_isa::fastpath::Run`]). Zero unless
    /// [`CpuConfig::fast_path`] is set.
    pub fast_path_runs: Counter,
    /// Instructions retired through the fast-path (also counted in
    /// [`CpuStats::instructions`] — this is the dispatch-side split).
    pub fast_path_insts: Counter,
    /// Ticks dispatched through the interpreter (one instruction each;
    /// includes retried issues that made no progress, e.g. an L1 reject).
    pub interpreted_ticks: Counter,
    /// The cycle `Halt` retired, if it has.
    pub halted_at: Option<Cycle>,
}

#[derive(Debug, Clone, Copy)]
enum Waiting {
    /// A blocking response: write `rd` (if any) then continue.
    Resp { id: u64, rd: Option<Reg> },
}

/// The in-order core, owning its L1 and TLB.
#[derive(Debug)]
pub struct Core {
    /// Stable identifier (tile index) for debugging.
    pub id: usize,
    cfg: CpuConfig,
    program: Program,
    /// Lazily-decoded compute runs for the fast-path dispatcher; unused
    /// (and empty) unless [`CpuConfig::fast_path`] is set.
    block_cache: BlockCache,
    pc: usize,
    regs: [u64; NUM_REGS],
    state: CoreState,
    waiting: Option<Waiting>,
    fault: Option<FaultInfo>,
    next_ready: Cycle,
    tlb: Tlb,
    page_table: PageTable,
    l1: L1Cache,
    next_req_id: u64,
    /// DeSC terminal loads in flight: L1 transaction → queue slot.
    desc_inflight: HashMap<u64, SlotTicket>,
    /// Unacknowledged MMIO stores tracked by the store buffer:
    /// transaction → (issue cycle, physical address), kept for the MMIO
    /// trace events.
    mmio_inflight: HashMap<u64, (Cycle, u64)>,
    stats: CpuStats,
    tracer: Tracer,
    /// Issue cycle of the access the core is blocked on.
    stall_begin: Cycle,
    /// What kind of access the core is blocked on.
    stall_wait: WaitKind,
    /// Physical address of the blocking access (for MMIO trace events).
    stall_addr: u64,
    /// Set by the uncore when its watchdog re-issued the transaction the
    /// core is waiting on; the whole stall is then attributed to fault
    /// recovery.
    fault_retry: bool,
}

impl Core {
    /// Creates a core that will run `program` under `page_table`.
    #[must_use]
    pub fn new(id: usize, cfg: CpuConfig, program: Program, page_table: PageTable) -> Self {
        Core {
            id,
            program,
            block_cache: BlockCache::new(),
            pc: 0,
            regs: [0; NUM_REGS],
            state: CoreState::Running,
            waiting: None,
            fault: None,
            next_ready: Cycle::ZERO,
            tlb: Tlb::new(cfg.tlb_entries),
            page_table,
            l1: L1Cache::new(cfg.l1),
            next_req_id: 0,
            desc_inflight: HashMap::new(),
            mmio_inflight: HashMap::new(),
            stats: CpuStats::default(),
            tracer: Tracer::disabled(),
            stall_begin: Cycle::ZERO,
            stall_wait: WaitKind::Mem,
            stall_addr: 0,
            fault_retry: false,
            cfg,
        }
    }

    /// Installs an observability tracer (stall and MMIO events). Tracing
    /// never changes timing.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Tells the core that the uncore's MMIO watchdog re-issued the
    /// transaction it is blocked on; the stall, when it ends, is
    /// attributed to fault recovery.
    pub fn note_fault_retry(&mut self) {
        if self.waiting.is_some() {
            self.fault_retry = true;
        }
    }

    /// Sets an argument register before the program starts.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if r.0 != 0 {
            self.regs[usize::from(r.0)] = value;
        }
    }

    /// Reads a register (for tests and result extraction).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[usize::from(r.0)]
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> CoreState {
        self.state
    }

    /// Whether the core has halted.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.state == CoreState::Halted
    }

    /// The pending page fault, if the core is faulted.
    #[must_use]
    pub fn fault(&self) -> Option<FaultInfo> {
        self.fault
    }

    /// Resumes after the OS has serviced a fault; the faulting instruction
    /// re-executes after `handler_latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the core is not faulted.
    pub fn resume_from_fault(&mut self, now: Cycle, handler_latency: u64) {
        assert_eq!(self.state, CoreState::Faulted, "core is not faulted");
        self.fault = None;
        self.state = CoreState::Running;
        self.next_ready = now.plus(handler_latency);
    }

    /// Performance counters.
    #[must_use]
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The owned L1's statistics (hit rates, load-latency histogram).
    #[must_use]
    pub fn l1_stats(&self) -> &maple_mem::l1::L1Stats {
        self.l1.stats()
    }

    /// Pops the next outbound memory request (for NoC injection).
    pub fn pop_mem_request(&mut self) -> Option<MemReq> {
        self.l1.pop_outgoing()
    }

    /// Delivers a memory response that arrived over the NoC.
    pub fn on_mem_resp(&mut self, now: Cycle, resp: MemResp, mem: &PhysMem) {
        self.l1.on_mem_resp(now, resp, mem);
    }

    /// Flushes the TLB entry for one page (OS shootdown).
    pub fn tlb_shootdown(&mut self, vpn: VirtPage) {
        self.tlb.shootdown(vpn);
    }

    /// MMIO stores issued but not yet acknowledged (hang diagnostics).
    #[must_use]
    pub fn mmio_unacked(&self) -> usize {
        self.mmio_inflight.len()
    }

    /// The core's state as a static label (hang diagnostics).
    #[must_use]
    pub fn state_label(&self) -> &'static str {
        match self.state {
            CoreState::Running => "running",
            CoreState::WaitingMem => "waiting-mem",
            CoreState::Halted => "halted",
            CoreState::Faulted => "faulted",
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        id
    }

    fn va(&self, base: Reg, offset: i64) -> VAddr {
        VAddr(self.regs[usize::from(base.0)].wrapping_add(offset as u64))
    }

    fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.regs[usize::from(r.0)],
            Operand::Imm(v) => v as u64,
        }
    }

    fn write_reg(&mut self, r: Reg, v: u64) {
        if r.0 != 0 {
            self.regs[usize::from(r.0)] = v;
        }
    }

    /// Outcome of an instruction-side translation attempt.
    fn translate(&mut self, now: Cycle, va: VAddr, write: bool) -> Translate {
        if let Some(entry) = self.tlb.lookup(va.page()) {
            let ok = if write {
                entry.flags.write
            } else {
                entry.flags.read
            };
            if !ok {
                return Translate::Fault(PageFault::Protection(va));
            }
            return Translate::Ok(Translation {
                paddr: entry.frame.offset(va.page_offset()),
                flags: entry.flags,
            });
        }
        // TLB miss: the hardware walker performs WALK_LEVELS reads. The
        // functional walk happens now; the latency is charged and the
        // instruction re-issues (hitting the TLB next time).
        Translate::PtwStarted(now.plus(walk_latency(self.cfg.ptw_read_latency)), write, va)
    }

    fn finish_walk(&mut self, mem: &PhysMem, va: VAddr, write: bool) -> Option<PageFault> {
        match self.page_table.translate_checked(mem, va, write) {
            Ok(t) => {
                self.tlb
                    .insert(va.page(), t.paddr.line_base_page(), t.flags);
                None
            }
            Err(f) => Some(f),
        }
    }

    fn raise_fault(&mut self, va: VAddr, write: bool, fault: PageFault) {
        self.state = CoreState::Faulted;
        self.fault = Some(FaultInfo {
            vaddr: va,
            write,
            fault,
        });
    }

    /// Advances the core one cycle.
    ///
    /// Memory is read-only during the tick; plain stores are staged into
    /// `stage` and applied by the hub in core order at the end of the
    /// cycle (see [`WriteStage`]) — which is what lets partitions of cores
    /// tick in parallel against one shared memory image.
    ///
    /// `desc` supplies the coupled queues when this core is half of a DeSC
    /// pair; MAPLE and software configurations pass `None`.
    ///
    /// `fence`, when present, is the earliest future cycle at which the
    /// caller might inject state the core could observe (a fault service
    /// completing, a scheduled chaos event): the compiled fast-path never
    /// batches an instruction whose issue cycle would land at or past it.
    /// Interpreter dispatch ignores the fence — one instruction per tick
    /// can never cross a future cycle. `None` means "no boundary".
    pub fn tick(
        &mut self,
        now: Cycle,
        mem: &PhysMem,
        stage: &mut WriteStage,
        mut desc: Option<&mut DescQueues>,
        fence: Option<Cycle>,
    ) {
        // 1. Retire arrived memory responses.
        while let Some(resp) = self.l1.pop_core_resp(now) {
            if let Some(ticket) = self.desc_inflight.remove(&resp.id) {
                let q = desc
                    .as_deref_mut()
                    .expect("DeSC load completed without queues");
                q.fill(ticket, resp.data);
                continue;
            }
            if let Some((issued, addr)) = self.mmio_inflight.remove(&resp.id) {
                // MMIO store ack drains from the store buffer.
                self.tracer.emit(now, || TraceEvent::MmioComplete {
                    core: self.id,
                    addr,
                    write: true,
                    latency: now.since(issued),
                });
                continue;
            }
            match self.waiting {
                Some(Waiting::Resp { id, rd }) if id == resp.id => {
                    if let Some(rd) = rd {
                        self.write_reg(rd, resp.data);
                    }
                    self.waiting = None;
                    self.state = CoreState::Running;
                    self.next_ready = now.plus(1);
                    self.end_stall(now, resp.served_by);
                }
                // A response for a transaction the core no longer waits
                // on: possible when an uncore watchdog re-sent an MMIO
                // request and both the replayed and the original response
                // eventually arrived. Count and discard.
                _ => {
                    self.stats.stale_responses.inc();
                }
            }
        }

        match self.state {
            CoreState::Halted => return,
            CoreState::Faulted => {
                self.stats.fault_stall_cycles.inc();
                self.stats.stall.add(StallCause::FaultRecovery, 1);
                return;
            }
            CoreState::WaitingMem => {
                self.stats.mem_stall_cycles.inc();
                return;
            }
            CoreState::Running => {}
        }
        if now < self.next_ready {
            return;
        }

        // 2b. Compiled fast-path: when the instruction at `pc` starts a
        //     straight-line compute run, execute the whole run now and
        //     charge its cycles in bulk — the compute-side dual of the
        //     event-horizon stall skipping. Runs touch only `regs`/`pc`,
        //     so executing the ops "early" (all at this tick instead of
        //     one per cycle) is unobservable outside the core; the fence
        //     check keeps any op whose issue cycle lands at or past the
        //     next hub-injection boundary for a later tick.
        if self.cfg.fast_path {
            if let Some(run) = self.block_cache.run_for(&self.program, self.pc) {
                let mut executed: u64 = 0;
                let mut elapsed: u64 = 0;
                for &op in run.ops() {
                    // `elapsed` is the issue offset of `op`: the cycle
                    // the interpreter would have dispatched it.
                    if fence.is_some_and(|f| now.plus(elapsed) >= f) {
                        break;
                    }
                    match op {
                        MicroOp::Li { rd, imm } => {
                            if rd.0 != 0 {
                                self.regs[usize::from(rd.0)] = imm;
                            }
                        }
                        MicroOp::AluRR { op, rd, rs1, rs2 } => {
                            let v = op
                                .apply(self.regs[usize::from(rs1.0)], self.regs[usize::from(rs2.0)]);
                            if rd.0 != 0 {
                                self.regs[usize::from(rd.0)] = v;
                            }
                        }
                        MicroOp::AluRI { op, rd, rs1, imm } => {
                            let v = op.apply(self.regs[usize::from(rs1.0)], imm);
                            if rd.0 != 0 {
                                self.regs[usize::from(rd.0)] = v;
                            }
                        }
                        MicroOp::Nop => {}
                    }
                    executed += 1;
                    elapsed += op.latency();
                }
                // A fence at `now + 1` still admits the first op (it
                // issues at `now`, strictly before any valid fence), so
                // a non-empty run always makes progress; the guard only
                // protects against a (contract-violating) fence <= now.
                if executed > 0 {
                    self.pc += executed as usize;
                    self.stats.instructions.add(executed);
                    self.stats.fast_path_runs.inc();
                    self.stats.fast_path_insts.add(executed);
                    self.next_ready = now.plus(elapsed);
                    return;
                }
            }
        }

        let Some(&inst) = self.program.fetch(self.pc) else {
            // Running off the end behaves like Halt.
            self.state = CoreState::Halted;
            self.stats.halted_at = Some(now);
            return;
        };

        self.stats.interpreted_ticks.inc();
        match inst {
            Inst::Li { rd, imm } => {
                self.write_reg(rd, imm);
                self.retire(now, 1);
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs[usize::from(rs1.0)];
                let b = self.operand(rs2);
                self.write_reg(rd, op.apply(a, b));
                self.retire(now, op.latency());
            }
            Inst::Nop => self.retire(now, 1),
            Inst::Halt => {
                self.state = CoreState::Halted;
                self.stats.halted_at = Some(now);
                self.stats.instructions.inc();
            }
            Inst::Jump { target } => {
                self.pc = target;
                self.stats.instructions.inc();
                self.next_ready = now.plus(1 + self.cfg.taken_branch_penalty);
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let a = self.regs[usize::from(rs1.0)];
                let b = self.operand(rs2);
                self.stats.instructions.inc();
                if cond.eval(a, b) {
                    self.pc = target;
                    self.next_ready = now.plus(1 + self.cfg.taken_branch_penalty);
                } else {
                    self.pc += 1;
                    self.next_ready = now.plus(1);
                }
            }
            Inst::Ld {
                rd,
                base,
                offset,
                size,
                class,
            } => {
                let va = self.va(base, offset);
                match self.translate(now, va, false) {
                    Translate::Ok(t) => {
                        let op = if t.flags.mmio {
                            CoreOp::MmioLoad { size }
                        } else {
                            match class {
                                LdClass::Normal => CoreOp::Load { size },
                                LdClass::Volatile => CoreOp::LoadVolatile { size },
                            }
                        };
                        let id = self.fresh_id();
                        match self.l1.access(now, CoreReq { id, addr: t.paddr, op }, mem, stage) {
                            Ok(()) => {
                                self.stats.loads.inc();
                                self.waiting = Some(Waiting::Resp { id, rd: Some(rd) });
                                self.state = CoreState::WaitingMem;
                                self.pc += 1;
                                self.stats.instructions.inc();
                                self.begin_stall(
                                    now,
                                    if t.flags.mmio {
                                        WaitKind::MmioLoad
                                    } else {
                                        WaitKind::Mem
                                    },
                                    t.paddr.0,
                                );
                            }
                            Err(L1Reject::MshrFull | L1Reject::StoreBufferFull) => {
                                self.next_ready = now.plus(1); // retry
                            }
                        }
                    }
                    Translate::PtwStarted(ready, write, va) => {
                        self.ptw_stall(now, mem, ready, va, write);
                    }
                    Translate::Fault(f) => self.raise_fault(va, false, f),
                }
            }
            Inst::St {
                rs,
                base,
                offset,
                size,
            } => {
                let va = self.va(base, offset);
                let data = self.regs[usize::from(rs.0)];
                match self.translate(now, va, true) {
                    Translate::Ok(t) => {
                        if t.flags.mmio
                            && self.mmio_inflight.len() >= self.cfg.mmio_store_outstanding
                        {
                            // Store buffer full of unacked MMIO stores —
                            // this is how MAPLE's queue-full backpressure
                            // reaches the pipeline. Each retried cycle is
                            // an MMIO-attributed stall.
                            self.stats.stall.add(StallCause::Mmio, 1);
                            self.next_ready = now.plus(1);
                            return;
                        }
                        let id = self.fresh_id();
                        let op = if t.flags.mmio {
                            CoreOp::MmioStore { size, data }
                        } else {
                            CoreOp::Store { size, data }
                        };
                        match self.l1.access(now, CoreReq { id, addr: t.paddr, op }, mem, stage) {
                            Ok(()) => {
                                self.stats.stores.inc();
                                self.stats.instructions.inc();
                                self.pc += 1;
                                if t.flags.mmio {
                                    // Retires architecturally on the device
                                    // ack (paper, produce step 4), but the
                                    // pipeline runs ahead from the store
                                    // buffer.
                                    self.mmio_inflight.insert(id, (now, t.paddr.0));
                                }
                                self.next_ready = now.plus(1);
                            }
                            Err(_) => self.next_ready = now.plus(1),
                        }
                    }
                    Translate::PtwStarted(ready, write, va) => {
                        self.ptw_stall(now, mem, ready, va, write);
                    }
                    Translate::Fault(f) => self.raise_fault(va, true, f),
                }
            }
            Inst::Amo {
                op,
                rd,
                base,
                offset,
                size,
                rs,
                rs2,
            } => {
                let va = self.va(base, offset);
                match self.translate(now, va, true) {
                    Translate::Ok(t) => {
                        let operand = self.regs[usize::from(rs.0)];
                        let kind = match op {
                            AtomicOp::Add => AmoKind::Add,
                            AtomicOp::Swap => AmoKind::Swap,
                            AtomicOp::Cas => AmoKind::Cas {
                                expected: self.regs[usize::from(rs2.0)],
                            },
                            AtomicOp::MinU => AmoKind::MinU,
                            AtomicOp::MaxU => AmoKind::MaxU,
                        };
                        let id = self.fresh_id();
                        let req = CoreReq {
                            id,
                            addr: t.paddr,
                            op: CoreOp::Amo {
                                kind,
                                size,
                                operand,
                            },
                        };
                        match self.l1.access(now, req, mem, stage) {
                            Ok(()) => {
                                self.stats.atomics.inc();
                                self.stats.instructions.inc();
                                self.waiting = Some(Waiting::Resp { id, rd: Some(rd) });
                                self.state = CoreState::WaitingMem;
                                self.pc += 1;
                                self.begin_stall(now, WaitKind::Mem, t.paddr.0);
                            }
                            Err(_) => self.next_ready = now.plus(1),
                        }
                    }
                    Translate::PtwStarted(ready, write, va) => {
                        self.ptw_stall(now, mem, ready, va, write);
                    }
                    Translate::Fault(f) => self.raise_fault(va, true, f),
                }
            }
            Inst::Prefetch { base, offset } => {
                let va = self.va(base, offset);
                match self.translate(now, va, false) {
                    Translate::Ok(t) => {
                        let id = self.fresh_id();
                        let req = CoreReq {
                            id,
                            addr: t.paddr,
                            op: CoreOp::Prefetch,
                        };
                        // Prefetches never block and never fault.
                        if self.l1.access(now, req, mem, stage).is_ok() {
                            self.stats.prefetches.inc();
                        }
                        self.retire(now, 1);
                    }
                    Translate::PtwStarted(ready, write, va) => {
                        self.ptw_stall(now, mem, ready, va, write);
                    }
                    Translate::Fault(_) => self.retire(now, 1), // dropped
                }
            }
            Inst::DescProduce { q, rs } => {
                let queues = desc.as_deref_mut().expect("DeSC op without queues");
                let v = self.regs[usize::from(rs.0)];
                if queues.produce(q, v).is_ok() {
                    self.stats.instructions.inc();
                    self.pc += 1;
                    self.next_ready = now.plus(self.cfg.desc_queue_latency);
                } else {
                    self.next_ready = now.plus(1); // full: retry
                }
            }
            Inst::DescConsume { rd, q } => {
                let queues = desc.as_deref_mut().expect("DeSC op without queues");
                if let Some(v) = queues.consume(q) {
                    self.write_reg(rd, v);
                    self.stats.instructions.inc();
                    self.stats.loads.inc();
                    self.pc += 1;
                    self.next_ready = now.plus(self.cfg.desc_queue_latency);
                } else {
                    self.next_ready = now.plus(1); // empty: retry
                }
            }
            Inst::DescTryConsume { rd, q } => {
                let queues = desc.as_deref_mut().expect("DeSC op without queues");
                let v = queues.consume(q).unwrap_or(u64::MAX);
                self.write_reg(rd, v);
                self.stats.instructions.inc();
                self.pc += 1;
                self.next_ready = now.plus(self.cfg.desc_queue_latency);
            }
            Inst::DescProduceLoad {
                q,
                base,
                offset,
                size,
            } => {
                if self.desc_inflight.len() >= self.cfg.desc_outstanding {
                    self.next_ready = now.plus(1);
                    return;
                }
                {
                    let queues = desc.as_deref_mut().expect("DeSC op without queues");
                    if queues.is_full(q) {
                        self.next_ready = now.plus(1);
                        return;
                    }
                }
                let va = self.va(base, offset);
                match self.translate(now, va, false) {
                    Translate::Ok(t) => {
                        let id = self.fresh_id();
                        let req = CoreReq {
                            id,
                            addr: t.paddr,
                            op: CoreOp::Load { size },
                        };
                        match self.l1.access(now, req, mem, stage) {
                            Ok(()) => {
                                let queues =
                                    desc.expect("DeSC op without queues");
                                let ticket =
                                    queues.reserve(q).expect("checked not full above");
                                self.desc_inflight.insert(id, ticket);
                                self.stats.loads.inc();
                                self.stats.instructions.inc();
                                self.pc += 1;
                                // Terminal load: does NOT block the pipeline.
                                self.next_ready = now.plus(1);
                            }
                            Err(_) => self.next_ready = now.plus(1),
                        }
                    }
                    Translate::PtwStarted(ready, write, va) => {
                        self.ptw_stall(now, mem, ready, va, write);
                    }
                    Translate::Fault(f) => self.raise_fault(va, false, f),
                }
            }
        }
    }

    /// Earliest cycle at or after `now` at which ticking this core could
    /// have an observable effect, for the event-horizon scheduler.
    ///
    /// A running core acts when `next_ready` arrives (immediately if it is
    /// already due); pending L1 traffic and staged responses carry their
    /// own deadlines. After a fast-path run, `next_ready` already carries
    /// the whole run's bulk latency, so the horizon accounts for the run
    /// length with no extra term: the core simply stops pinning the
    /// horizon until the run retires. A core blocked in [`CoreState::WaitingMem`] or
    /// [`CoreState::Faulted`] reports no event of its own — the response
    /// or the OS fault service that unblocks it is tracked by another
    /// component's horizon — but accrues per-cycle stall counters, which
    /// [`Core::skip`] catches up in bulk over skipped gaps.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = maple_sim::Horizon::IDLE;
        h.observe(self.l1.next_event(now));
        if self.state == CoreState::Running {
            h.at(self.next_ready.max(now));
        }
        h.earliest()
    }

    /// Catches per-cycle stall accounting up across `cycles` skipped
    /// (quiescent) cycles, exactly as the dense loop would have accrued it
    /// one [`Core::tick`] at a time. The core's state cannot change inside
    /// a skipped gap — anything that would change it is an event that
    /// bounds the gap — so the per-cycle increment is constant across it.
    pub fn skip(&mut self, cycles: u64) {
        match self.state {
            CoreState::WaitingMem => self.stats.mem_stall_cycles.add(cycles),
            CoreState::Faulted => {
                self.stats.fault_stall_cycles.add(cycles);
                self.stats.stall.add(StallCause::FaultRecovery, cycles);
            }
            CoreState::Running | CoreState::Halted => {}
        }
    }

    /// Marks the start of a blocking memory stall (for attribution and
    /// tracing).
    fn begin_stall(&mut self, now: Cycle, waiting: WaitKind, addr: u64) {
        self.stall_begin = now;
        self.stall_wait = waiting;
        self.stall_addr = addr;
        self.tracer.emit(now, || TraceEvent::CoreStallBegin {
            core: self.id,
            waiting,
        });
    }

    /// Attributes a completed blocking stall now that the serving level is
    /// known, and emits the matching trace events.
    fn end_stall(&mut self, now: Cycle, served_by: ServedBy) {
        let latency = now.since(self.stall_begin);
        let cause = if self.fault_retry {
            StallCause::FaultRecovery
        } else {
            match (self.stall_wait, served_by) {
                (WaitKind::MmioLoad, _) => StallCause::ConsumeWait,
                (WaitKind::Mem, ServedBy::L1) => StallCause::L1Hit,
                (WaitKind::Mem, ServedBy::L2) => StallCause::L1Miss,
                (WaitKind::Mem, ServedBy::Dram) => StallCause::L2Miss,
                (WaitKind::Mem, ServedBy::DramDirect) => StallCause::Dram,
                // A plain load answered by a device should not happen,
                // but attribute it as MMIO rather than losing it.
                (WaitKind::Mem, ServedBy::Device) => StallCause::Mmio,
            }
        };
        self.fault_retry = false;
        self.stats.stall.add(cause, latency);
        self.tracer.emit(now, || TraceEvent::CoreStallEnd {
            core: self.id,
            cause,
        });
        if self.stall_wait == WaitKind::MmioLoad {
            self.tracer.emit(now, || TraceEvent::MmioComplete {
                core: self.id,
                addr: self.stall_addr,
                write: false,
                latency,
            });
        }
    }

    fn ptw_stall(&mut self, now: Cycle, mem: &PhysMem, ready: Cycle, va: VAddr, write: bool) {
        self.stats.ptw_stall_cycles.add(ready.since(now));
        if let Some(fault) = self.finish_walk(mem, va, write) {
            self.raise_fault(va, write, fault);
        } else {
            self.next_ready = ready; // re-issue; TLB now hits
        }
    }

    fn retire(&mut self, now: Cycle, latency: u64) {
        self.stats.instructions.inc();
        self.pc += 1;
        self.next_ready = now.plus(latency);
    }
}

impl maple_sim::Clocked for Core {
    type Ctx<'a> = (
        &'a PhysMem,
        &'a mut WriteStage,
        Option<&'a mut DescQueues>,
        Option<Cycle>,
    );

    fn tick(&mut self, now: Cycle, (mem, stage, desc, fence): Self::Ctx<'_>) {
        Core::tick(self, now, mem, stage, desc, fence);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Core::next_event(self, now)
    }
}

enum Translate {
    Ok(Translation),
    PtwStarted(Cycle, bool, VAddr),
    Fault(PageFault),
}

/// Helper: the physical *frame base* for a translation's page (TLBs cache
/// page-granular mappings).
trait FrameBase {
    fn line_base_page(self) -> maple_mem::PAddr;
}

impl FrameBase for maple_mem::PAddr {
    fn line_base_page(self) -> maple_mem::PAddr {
        maple_mem::PAddr(self.0 & !(maple_mem::PAGE_SIZE - 1))
    }
}

#[cfg(test)]
mod tests;
