//! Core unit tests, driven through a miniature harness that wires one or
//! two cores to a shared L2 with a fixed interconnect delay.

#![allow(clippy::explicit_counter_loop)]

use super::*;
use maple_isa::builder::ProgramBuilder;
use maple_isa::AtomicOp;
use maple_mem::dram::DramConfig;
use maple_mem::l2::{L2Config, SharedL2};
use maple_mem::phys::PAddr;
use maple_vm::page_table::{FrameAllocator, PageFlags};

/// A minimal single-tile test bench: cores talk straight to an L2 with a
/// fixed wire delay each way.
struct Bench {
    mem: PhysMem,
    frames: FrameAllocator,
    cores: Vec<Core>,
    l2: SharedL2,
    wire: u64,
    /// In-flight messages: (deliver_at, to_core, resp) / (deliver_at, req).
    to_l2: Vec<(Cycle, usize, MemReq)>,
    to_core: Vec<(Cycle, usize, MemResp)>,
}

impl Bench {
    fn new(num_cores: usize) -> (Self, PageTable) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x10_0000), 32 << 20);
        let pt = PageTable::new(&mut mem, &mut frames);
        let bench = Bench {
            mem,
            frames,
            cores: Vec::with_capacity(num_cores),
            l2: SharedL2::new(L2Config::default(), DramConfig::default()),
            wire: 2,
            to_l2: Vec::new(),
            to_core: Vec::new(),
        };
        (bench, pt)
    }

    /// Identity-maps `pages` pages at va == pa base 0x40_0000.
    fn map_data(&mut self, pt: &mut PageTable, pages: u64) -> VAddr {
        let va = VAddr(0x40_0000);
        for i in 0..pages {
            let frame = self.frames.alloc(&mut self.mem);
            pt.map(
                &mut self.mem,
                &mut self.frames,
                va.offset(i * maple_mem::PAGE_SIZE),
                frame,
                PageFlags::rw(),
            );
        }
        va
    }

    fn paddr_of(&self, pt: &PageTable, va: VAddr) -> PAddr {
        pt.translate(&self.mem, va).unwrap().paddr
    }

    fn run(&mut self, max: u64) -> Cycle {
        let mut now = Cycle::ZERO;
        for _ in 0..max {
            // Deliver due messages first.
            let mut i = 0;
            while i < self.to_l2.len() {
                if self.to_l2[i].0 <= now {
                    let (_, _, req) = self.to_l2.swap_remove(i);
                    self.l2.accept(now, req);
                } else {
                    i += 1;
                }
            }
            let mut i = 0;
            while i < self.to_core.len() {
                if self.to_core[i].0 <= now {
                    let (_, core, resp) = self.to_core.swap_remove(i);
                    let mem = &self.mem;
                    self.cores[core].on_mem_resp(now, resp, mem);
                } else {
                    i += 1;
                }
            }
            let mut stage = WriteStage::new();
            for c in &mut self.cores {
                c.tick(now, &self.mem, &mut stage, None, None);
            }
            stage.apply(&mut self.mem);
            for ci in 0..self.cores.len() {
                while let Some(req) = self.cores[ci].pop_mem_request() {
                    self.to_l2.push((now.plus(self.wire), ci, req));
                }
            }
            self.l2.tick(now, &mut self.mem);
            while let Some(out) = self.l2.pop_outgoing() {
                // reply_to is defaulted in these tests; route by request id
                // owner — single core benches use core 0, dual use id
                // parity. Simpler: respond to whichever core waits on it.
                let target = self
                    .cores
                    .iter()
                    .position(|_| true)
                    .expect("at least one core");
                let _ = target;
                // Find the core with a matching outstanding id is overkill;
                // tests use one core unless stated.
                self.to_core.push((now.plus(self.wire), 0, out.resp));
            }
            if self.cores.iter().all(Core::is_halted) {
                return now;
            }
            now += 1;
        }
        panic!("bench did not finish in {max} cycles");
    }
}

fn default_core(program: maple_isa::Program, pt: PageTable) -> Core {
    Core::new(0, CpuConfig::default(), program, pt)
}

#[test]
fn alu_program_computes() {
    let (mut bench, pt) = Bench::new(1);
    let mut b = ProgramBuilder::new();
    let x = b.reg("x");
    let y = b.reg("y");
    b.li(x, 6);
    b.li(y, 7);
    b.mul(x, x, y);
    b.addi(x, x, 1);
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(x, 0);
    bench.cores.push(core);
    bench.run(100);
    assert_eq!(bench.cores[0].reg(x), 43);
    assert_eq!(bench.cores[0].stats().instructions.get(), 5);
}

#[test]
fn loop_sums_correctly() {
    let (mut bench, pt) = Bench::new(1);
    let mut b = ProgramBuilder::new();
    let i = b.reg("i");
    let n = b.reg("n");
    let acc = b.reg("acc");
    b.li(i, 0);
    b.li(n, 10);
    b.li(acc, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, n, done);
    b.add(acc, acc, i);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    bench.cores.push(default_core(b.build().unwrap(), pt));
    bench.run(1000);
    assert_eq!(bench.cores[0].reg(maple_isa::Reg(3)), 45);
}

#[test]
fn load_store_roundtrip_with_memory_timing() {
    let (mut bench, mut pt) = Bench::new(1);
    let va = bench.map_data(&mut pt, 1);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let v = b.reg("v");
    let out = b.reg("out");
    b.li(v, 0xabcd);
    b.st(v, base, 0x10, 8);
    b.ld(out, base, 0x10, 8);
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, va.0);
    bench.cores.push(core);
    let end = bench.run(5000);
    assert_eq!(bench.cores[0].reg(out), 0xabcd, "read-your-write");
    // The load missed: at least wire + L2 + DRAM ≈ 330 cycles, plus a PTW.
    assert!(end.0 > 300, "timing charged (finished at {end})");
    assert_eq!(bench.cores[0].stats().loads.get(), 1);
    assert_eq!(bench.cores[0].stats().stores.get(), 1);
}

#[test]
fn second_load_hits_l1() {
    let (mut bench, mut pt) = Bench::new(1);
    let va = bench.map_data(&mut pt, 1);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let a = b.reg("a");
    let c = b.reg("c");
    b.ld(a, base, 0, 8);
    b.ld(c, base, 8, 8); // same line
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, va.0);
    bench.cores.push(core);
    bench.run(5000);
    let s = bench.cores[0].l1_stats();
    assert_eq!(s.loads.get(), 2);
    assert_eq!(s.load_hits.get(), 1, "second load hits the fetched line");
}

#[test]
fn tlb_miss_charges_walk_once() {
    let (mut bench, mut pt) = Bench::new(1);
    let va = bench.map_data(&mut pt, 1);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let a = b.reg("a");
    b.ld(a, base, 0, 8);
    b.ld(a, base, 8, 8);
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, va.0);
    bench.cores.push(core);
    bench.run(5000);
    let walks = bench.cores[0].stats().ptw_stall_cycles.get();
    assert_eq!(
        walks,
        maple_vm::walker::walk_latency(30),
        "exactly one walk for the shared page"
    );
}

#[test]
fn unmapped_access_faults_and_resumes() {
    let (mut bench, mut pt) = Bench::new(1);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let a = b.reg("a");
    b.ld(a, base, 0, 8);
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, 0x9000_0000);
    bench.cores.push(core);

    // Drive manually until faulted.
    let mut now = Cycle::ZERO;
    let mut stage = WriteStage::new();
    for _ in 0..200 {
        bench.cores[0].tick(now, &bench.mem, &mut stage, None, None);
        stage.apply(&mut bench.mem);
        if bench.cores[0].state() == CoreState::Faulted {
            break;
        }
        now += 1;
    }
    let fault = bench.cores[0].fault().expect("fault raised");
    assert_eq!(fault.vaddr, VAddr(0x9000_0000));
    assert!(!fault.write);

    // OS maps the page and resumes; the load then succeeds.
    let frame = bench.frames.alloc(&mut bench.mem);
    bench.mem.write_u64(frame, 4242);
    pt.map(
        &mut bench.mem,
        &mut bench.frames,
        VAddr(0x9000_0000),
        frame,
        PageFlags::rw(),
    );
    bench.cores[0].resume_from_fault(now, 500);
    bench.run(20_000);
    assert_eq!(bench.cores[0].reg(a), 4242);
}

#[test]
fn amo_fetch_add_returns_old_value() {
    let (mut bench, mut pt) = Bench::new(1);
    let va = bench.map_data(&mut pt, 1);
    let pa = bench.paddr_of(&pt, va);
    bench.mem.write_u64(pa, 100);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let old = b.reg("old");
    let inc = b.reg("inc");
    b.li(inc, 5);
    b.amo(AtomicOp::Add, old, base, 0, 8, inc, b.zero());
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, va.0);
    bench.cores.push(core);
    bench.run(5000);
    assert_eq!(bench.cores[0].reg(old), 100);
    assert_eq!(bench.mem.read_u64(pa), 105);
    assert_eq!(bench.cores[0].stats().atomics.get(), 1);
}

#[test]
fn volatile_loads_always_travel() {
    let (mut bench, mut pt) = Bench::new(1);
    let va = bench.map_data(&mut pt, 1);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let a = b.reg("a");
    b.ld_volatile(a, base, 0, 8);
    b.ld_volatile(a, base, 0, 8);
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, va.0);
    bench.cores.push(core);
    bench.run(5000);
    assert_eq!(
        bench.cores[0].l1_stats().load_hits.get(),
        0,
        "volatile loads never hit the L1"
    );
}

#[test]
fn prefetch_does_not_block_then_load_hits() {
    let (mut bench, mut pt) = Bench::new(1);
    let va = bench.map_data(&mut pt, 1);
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let a = b.reg("a");
    b.prefetch(base, 0);
    // Occupy the core while the prefetch is in flight.
    for _ in 0..120 {
        b.nop();
    }
    b.ld(a, base, 0, 8);
    b.halt();
    let mut core = default_core(b.build().unwrap(), pt);
    core.set_reg(base, va.0);
    bench.cores.push(core);
    bench.run(10_000);
    let s = bench.cores[0].l1_stats();
    assert_eq!(s.prefetches.get(), 1);
    // DRAM latency (300) exceeds 120 nops, so this particular load may
    // still be waiting — but it must merge, not refetch.
    assert_eq!(s.loads.get(), 1);
}

#[test]
fn mmio_stores_run_ahead_until_the_buffer_fills() {
    // Map an MMIO page; acks are withheld, so the pipeline runs ahead
    // for exactly `mmio_store_outstanding` stores and then stalls.
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PAddr(0x10_0000), 4 << 20);
    let mut pt = PageTable::new(&mut mem, &mut frames);
    let dev_va = VAddr(0x8000_0000);
    pt.map(&mut mem, &mut frames, dev_va, PAddr(0xF000_0000), PageFlags::device());

    let cfg = CpuConfig {
        mmio_store_outstanding: 2,
        ..CpuConfig::default()
    };
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let v = b.reg("v");
    b.li(v, 7);
    for _ in 0..4 {
        b.st(v, base, 0, 8);
    }
    b.halt();
    let mut core = Core::new(0, cfg, b.build().unwrap(), pt);
    core.set_reg(base, dev_va.0);

    // Never ack: only 2 stores may issue.
    let mut issued = Vec::new();
    let mut now = Cycle::ZERO;
    let mut stage = WriteStage::new();
    for _ in 0..500 {
        core.tick(now, &mem, &mut stage, None, None);
        stage.apply(&mut mem);
        while let Some(req) = core.pop_mem_request() {
            assert!(req.expects_response(), "MMIO store expects an ack");
            issued.push(req);
        }
        now += 1;
    }
    assert_eq!(issued.len(), 2, "store buffer caps unacked MMIO stores");
    assert!(!core.is_halted(), "stalled awaiting acks");

    // Acks drain the buffer; the remaining stores issue and the core
    // halts.
    for req in issued.drain(..) {
        core.on_mem_resp(now, MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
    }
    for _ in 0..500 {
        core.tick(now, &mem, &mut stage, None, None);
        stage.apply(&mut mem);
        while let Some(req) = core.pop_mem_request() {
            core.on_mem_resp(now.plus(10), MemResp { id: req.id, data: 0, served_by: ServedBy::Dram }, &mem);
        }
        if core.is_halted() {
            break;
        }
        now += 1;
    }
    assert!(core.is_halted());
    assert_eq!(core.stats().stores.get(), 4);
}

#[test]
fn desc_pair_produces_and_consumes() {
    // Two programs communicating through coupled queues, run lock-step.
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PAddr(0x10_0000), 16 << 20);
    let mut pt = PageTable::new(&mut mem, &mut frames);
    let va = VAddr(0x40_0000);
    let frame = frames.alloc(&mut mem);
    pt.map(&mut mem, &mut frames, va, frame, PageFlags::rw());
    for i in 0..8u64 {
        mem.write_u64(frame.offset(i * 8), 100 + i);
    }

    // Access: terminal-loads A[0..8] into queue 0.
    let mut b = ProgramBuilder::new();
    let base = b.reg("base");
    let i = b.reg("i");
    let n = b.reg("n");
    let addr = b.reg("addr");
    b.li(i, 0);
    b.li(n, 8);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, n, done);
    b.slli(addr, i, 3);
    b.add(addr, addr, base);
    b.desc_produce_load(0, addr, 0, 8);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    let mut access = Core::new(0, CpuConfig::default(), b.build().unwrap(), pt);
    access.set_reg(base, va.0);

    // Execute: consumes 8 values, sums them.
    let mut b = ProgramBuilder::new();
    let i = b.reg("i");
    let n = b.reg("n");
    let acc = b.reg("acc");
    let v = b.reg("v");
    b.li(i, 0);
    b.li(n, 8);
    b.li(acc, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, n, done);
    b.desc_consume(v, 0);
    b.add(acc, acc, v);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    let mut execute = Core::new(1, CpuConfig::default(), b.build().unwrap(), pt);
    let acc_reg = acc;

    let mut queues = DescQueues::new(1, 32);
    let mut l2 = SharedL2::new(L2Config::default(), DramConfig::default());
    let mut now = Cycle::ZERO;
    for _ in 0..100_000 {
        let mut stage = WriteStage::new();
        access.tick(now, &mem, &mut stage, Some(&mut queues), None);
        execute.tick(now, &mem, &mut stage, Some(&mut queues), None);
        stage.apply(&mut mem);
        while let Some(req) = access.pop_mem_request() {
            l2.accept(now, req);
        }
        l2.tick(now, &mut mem);
        while let Some(out) = l2.pop_outgoing() {
            access.on_mem_resp(now, out.resp, &mem);
        }
        if access.is_halted() && execute.is_halted() {
            break;
        }
        now += 1;
    }
    assert!(access.is_halted() && execute.is_halted());
    let expected: u64 = (0..8u64).map(|i| 100 + i).sum();
    assert_eq!(execute.reg(acc_reg), expected);
    assert!(queues.is_empty());
}

/// Minimal compute-only fixture: a fresh memory/page-table pair and a
/// core with the compiled fast path enabled.
fn fast_path_core(b: ProgramBuilder) -> (Core, PhysMem) {
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PAddr(0x10_0000), 4 << 20);
    let pt = PageTable::new(&mut mem, &mut frames);
    let cfg = CpuConfig {
        fast_path: true,
        ..CpuConfig::default()
    };
    (Core::new(0, cfg, b.build().unwrap(), pt), mem)
}

#[test]
fn fast_path_fence_splits_run_at_exact_boundary() {
    // Six 1-cycle ops; a fence at cycle 3 must admit exactly the ops
    // issuing at cycles 0, 1 and 2, and park the core ready at the
    // fence — the precise cycle the interpreter would issue op 3.
    let mut b = ProgramBuilder::new();
    let x = b.reg("x");
    for _ in 0..6 {
        b.addi(x, x, 1);
    }
    b.halt();
    let (mut core, mem) = fast_path_core(b);
    let mut stage = WriteStage::new();
    core.tick(Cycle::ZERO, &mem, &mut stage, None, Some(Cycle(3)));
    assert_eq!(core.stats().instructions.get(), 3, "split at the fence");
    assert_eq!(core.stats().fast_path_runs.get(), 1);
    // Before the fence the core is busy; ticking does nothing.
    core.tick(Cycle(2), &mem, &mut stage, None, Some(Cycle(3)));
    assert_eq!(core.stats().instructions.get(), 3);
    // At the fence the rest of the block runs to the halt.
    core.tick(Cycle(3), &mem, &mut stage, None, None);
    assert_eq!(core.stats().instructions.get(), 6);
    core.tick(Cycle(6), &mem, &mut stage, None, None);
    assert!(core.is_halted());
    assert_eq!(core.reg(x), 6);
}

#[test]
fn fast_path_run_ending_exactly_on_fence_is_not_split() {
    // Three 1-cycle ops and a fence at exactly the run's natural end
    // (cycle 3): every op issues strictly before the fence, so the whole
    // run completes in one dispatch with no artificial split.
    let mut b = ProgramBuilder::new();
    let x = b.reg("x");
    for _ in 0..3 {
        b.addi(x, x, 1);
    }
    b.halt();
    let (mut core, mem) = fast_path_core(b);
    let mut stage = WriteStage::new();
    core.tick(Cycle::ZERO, &mem, &mut stage, None, Some(Cycle(3)));
    assert_eq!(core.stats().instructions.get(), 3, "whole run dispatched");
    assert_eq!(core.stats().fast_path_runs.get(), 1, "no split needed");
    assert_eq!(core.reg(x), 3);
}

#[test]
fn fast_path_fence_at_next_cycle_still_makes_progress() {
    // The tightest legal fence (now + 1) admits exactly the first op —
    // dispatch can never wedge. A 3-cycle multiply still charges its
    // full latency even though it retires past the fence, exactly as
    // the interpreter issues it at `now` and occupies the core after.
    let mut b = ProgramBuilder::new();
    let x = b.reg("x");
    b.addi(x, x, 2);
    b.mul(x, x, 5i64);
    b.halt();
    let (mut core, mem) = fast_path_core(b);
    let mut stage = WriteStage::new();
    core.tick(Cycle::ZERO, &mem, &mut stage, None, Some(Cycle(1)));
    assert_eq!(core.stats().instructions.get(), 1, "first op always runs");
    core.tick(Cycle(1), &mem, &mut stage, None, Some(Cycle(2)));
    assert_eq!(core.stats().instructions.get(), 2, "multiply dispatched");
    // The multiply occupies cycles 1-3; ticks before 4 are idle.
    core.tick(Cycle(2), &mem, &mut stage, None, Some(Cycle(3)));
    core.tick(Cycle(3), &mem, &mut stage, None, Some(Cycle(4)));
    assert_eq!(core.stats().instructions.get(), 2, "latency respected");
    core.tick(Cycle(4), &mem, &mut stage, None, None);
    assert!(core.is_halted());
    assert_eq!(core.reg(x), 10);
}

#[test]
fn fast_path_matches_interpreter_cycle_for_cycle() {
    // The same branchy compute loop on a fast-path core and an
    // interpreter core, ticked in lockstep: they must halt on the same
    // cycle with the same registers and instruction count.
    let program = || {
        let mut b = ProgramBuilder::new();
        let i = b.reg("i");
        let n = b.reg("n");
        let acc = b.reg("acc");
        b.li(i, 0);
        b.li(n, 25);
        b.li(acc, 7);
        let top = b.here("top");
        b.mul(acc, acc, 3i64);
        b.add(acc, acc, i);
        b.addi(i, i, 1);
        b.bne(i, n, top);
        b.halt();
        (b.build().unwrap(), acc)
    };
    let mut mem = PhysMem::new();
    let mut frames = FrameAllocator::new(PAddr(0x10_0000), 4 << 20);
    let (prog, acc) = program();
    let mut fast = Core::new(
        0,
        CpuConfig {
            fast_path: true,
            ..CpuConfig::default()
        },
        prog,
        PageTable::new(&mut mem, &mut frames),
    );
    let (prog, _) = program();
    let mut interp = Core::new(
        1,
        CpuConfig::default(),
        prog,
        PageTable::new(&mut mem, &mut frames),
    );
    let mut halted_at = [None, None];
    let mut stage = WriteStage::new();
    for c in 0..10_000u64 {
        let now = Cycle(c);
        fast.tick(now, &mem, &mut stage, None, None);
        interp.tick(now, &mem, &mut stage, None, None);
        if halted_at[0].is_none() && fast.is_halted() {
            halted_at[0] = Some(c);
        }
        if halted_at[1].is_none() && interp.is_halted() {
            halted_at[1] = Some(c);
        }
        if halted_at.iter().all(Option::is_some) {
            break;
        }
    }
    assert_eq!(halted_at[0], halted_at[1], "halt cycle diverged");
    assert!(halted_at[0].is_some(), "both cores halted");
    assert_eq!(fast.reg(acc), interp.reg(acc), "results diverged");
    assert_eq!(
        fast.stats().instructions.get(),
        interp.stats().instructions.get()
    );
    assert!(fast.stats().fast_path_runs.get() > 0, "fast path engaged");
    assert_eq!(
        interp.stats().fast_path_runs.get(),
        0,
        "interpreter core never batches"
    );
}

#[test]
fn zero_register_is_immutable() {
    let (mut bench, pt) = Bench::new(1);
    let mut b = ProgramBuilder::new();
    b.li(maple_isa::ZERO, 99);
    b.halt();
    bench.cores.push(default_core(b.build().unwrap(), pt));
    bench.run(100);
    assert_eq!(bench.cores[0].reg(maple_isa::ZERO), 0);
}

#[test]
fn running_off_the_end_halts() {
    let (mut bench, pt) = Bench::new(1);
    let b = ProgramBuilder::new();
    bench.cores.push(default_core(b.build().unwrap(), pt));
    bench.run(10);
    assert!(bench.cores[0].is_halted());
}
