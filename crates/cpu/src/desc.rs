//! Core-coupled architectural queues for the DeSC baseline.
//!
//! DeSC (Ham et al.) connects a Supply (Access) core and a Compute
//! (Execute) core through architecturally-visible queues with dedicated
//! instructions. A queue supports in-order *slot reservation* so that the
//! Supply core's terminal loads — issued without blocking — deliver their
//! values in program order even when memory responses return out of order
//! (the same reordering trick MAPLE implements with scratchpad slot
//! indices).

use std::collections::VecDeque;

/// Error returned when a produce finds the queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "coupled queue full")
    }
}

impl std::error::Error for QueueFull {}

/// A ticket identifying a reserved slot, to be filled later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTicket {
    queue: u8,
    seq: u64,
}

#[derive(Debug)]
struct DescQueue {
    /// (sequence number, value-if-arrived) in FIFO order.
    slots: VecDeque<(u64, Option<u64>)>,
    next_seq: u64,
    capacity: usize,
}

impl DescQueue {
    fn new(capacity: usize) -> Self {
        DescQueue {
            slots: VecDeque::new(),
            next_seq: 0,
            capacity,
        }
    }

    fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    fn push(&mut self, value: Option<u64>) -> Result<u64, QueueFull> {
        if self.is_full() {
            return Err(QueueFull);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back((seq, value));
        Ok(seq)
    }

    fn fill(&mut self, seq: u64, value: u64) {
        let slot = self
            .slots
            .iter_mut()
            .find(|(s, _)| *s == seq)
            .expect("fill for a slot that was consumed or never reserved");
        assert!(slot.1.is_none(), "slot filled twice");
        slot.1 = Some(value);
    }

    fn pop(&mut self) -> Option<u64> {
        match self.slots.front() {
            Some((_, Some(_))) => self.slots.pop_front().and_then(|(_, v)| v),
            _ => None, // empty, or head still in flight (in-order delivery)
        }
    }
}

/// The set of coupled queues shared by one DeSC Supply/Compute core pair.
///
/// # Example
///
/// ```
/// use maple_cpu::desc::DescQueues;
///
/// let mut q = DescQueues::new(2, 32);
/// q.produce(0, 7).unwrap();
/// let ticket = q.reserve(0).unwrap();
/// assert_eq!(q.consume(0), Some(7));
/// assert_eq!(q.consume(0), None, "head slot still in flight");
/// q.fill(ticket, 99);
/// assert_eq!(q.consume(0), Some(99));
/// ```
#[derive(Debug)]
pub struct DescQueues {
    queues: Vec<DescQueue>,
}

impl DescQueues {
    /// Creates `count` queues of `capacity` entries each.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(count: usize, capacity: usize) -> Self {
        assert!(count > 0 && capacity > 0, "need at least one queue slot");
        DescQueues {
            queues: (0..count).map(|_| DescQueue::new(capacity)).collect(),
        }
    }

    fn queue_mut(&mut self, q: u8) -> &mut DescQueue {
        &mut self.queues[usize::from(q)]
    }

    /// Enqueues an immediate value.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the queue has no free slot.
    pub fn produce(&mut self, q: u8, value: u64) -> Result<(), QueueFull> {
        self.queue_mut(q).push(Some(value)).map(|_| ())
    }

    /// Reserves an in-order slot for a terminal load in flight.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the queue has no free slot.
    pub fn reserve(&mut self, q: u8) -> Result<SlotTicket, QueueFull> {
        self.queue_mut(q).push(None).map(|seq| SlotTicket { queue: q, seq })
    }

    /// Delivers the value for a previously reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if the ticket is stale or filled twice (protocol bug).
    pub fn fill(&mut self, ticket: SlotTicket, value: u64) {
        self.queue_mut(ticket.queue).fill(ticket.seq, value);
    }

    /// Pops the head value if it has arrived.
    pub fn consume(&mut self, q: u8) -> Option<u64> {
        self.queue_mut(q).pop()
    }

    /// Whether queue `q` has no free slots.
    #[must_use]
    pub fn is_full(&self, q: u8) -> bool {
        self.queues[usize::from(q)].is_full()
    }

    /// Entries (filled or reserved) in queue `q`.
    #[must_use]
    pub fn len(&self, q: u8) -> usize {
        self.queues[usize::from(q)].slots.len()
    }

    /// Whether every queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.slots.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_plain_produce() {
        let mut q = DescQueues::new(1, 8);
        for v in [1, 2, 3] {
            q.produce(0, v).unwrap();
        }
        assert_eq!(q.consume(0), Some(1));
        assert_eq!(q.consume(0), Some(2));
        assert_eq!(q.consume(0), Some(3));
        assert_eq!(q.consume(0), None);
    }

    #[test]
    fn out_of_order_fills_deliver_in_order() {
        let mut q = DescQueues::new(1, 8);
        let t1 = q.reserve(0).unwrap();
        let t2 = q.reserve(0).unwrap();
        // Memory returns the second load first.
        q.fill(t2, 22);
        assert_eq!(q.consume(0), None, "head not ready yet");
        q.fill(t1, 11);
        assert_eq!(q.consume(0), Some(11));
        assert_eq!(q.consume(0), Some(22));
    }

    #[test]
    fn capacity_enforced() {
        let mut q = DescQueues::new(1, 2);
        q.produce(0, 1).unwrap();
        let _ = q.reserve(0).unwrap();
        assert!(q.is_full(0));
        assert_eq!(q.produce(0, 3), Err(QueueFull));
        assert_eq!(q.reserve(0).unwrap_err().to_string(), "coupled queue full");
        // Consuming frees a slot.
        assert_eq!(q.consume(0), Some(1));
        assert!(q.produce(0, 3).is_ok());
    }

    #[test]
    fn queues_are_independent() {
        let mut q = DescQueues::new(2, 4);
        q.produce(0, 5).unwrap();
        assert_eq!(q.consume(1), None);
        assert_eq!(q.consume(0), Some(5));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let mut q = DescQueues::new(1, 4);
        let t = q.reserve(0).unwrap();
        q.fill(t, 1);
        q.fill(t, 2);
    }

    #[test]
    fn interleaved_produce_and_reserve_keep_order() {
        let mut q = DescQueues::new(1, 8);
        q.produce(0, 1).unwrap();
        let t = q.reserve(0).unwrap();
        q.produce(0, 3).unwrap();
        q.fill(t, 2);
        assert_eq!(q.consume(0), Some(1));
        assert_eq!(q.consume(0), Some(2));
        assert_eq!(q.consume(0), Some(3));
    }
}
