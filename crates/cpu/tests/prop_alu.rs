#![allow(clippy::explicit_counter_loop)]

//! Property test: the core's functional interpretation of straight-line
//! ALU programs matches a host-side model exactly, for random programs.

use maple_cpu::{Core, CpuConfig};
use maple_isa::builder::ProgramBuilder;
use maple_isa::{AluOp, Operand, Program, Reg};
use maple_mem::phys::{PAddr, PhysMem};
use maple_sim::Cycle;
use maple_vm::page_table::{FrameAllocator, PageTable};
use proptest::prelude::*;

const WORK_REGS: u8 = 6;

#[derive(Debug, Clone, Copy)]
struct RandInst {
    op: AluOp,
    rd: u8,
    rs1: u8,
    rs2_reg: bool,
    rs2: u8,
    imm: i64,
}

fn inst_strategy() -> impl Strategy<Value = RandInst> {
    let ops = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::SltU),
        Just(AluOp::MinU),
        Just(AluOp::MaxU),
    ];
    (
        ops,
        1..=WORK_REGS,
        1..=WORK_REGS,
        any::<bool>(),
        1..=WORK_REGS,
        -64i64..64,
    )
        .prop_map(|(op, rd, rs1, rs2_reg, rs2, imm)| RandInst {
            op,
            rd,
            rs1,
            rs2_reg,
            rs2,
            imm,
        })
}

fn build(seeds: &[u64], insts: &[RandInst]) -> Program {
    let mut b = ProgramBuilder::new();
    let regs: Vec<Reg> = (0..WORK_REGS).map(|i| b.reg(&format!("r{i}"))).collect();
    for (r, &s) in regs.iter().zip(seeds) {
        b.li(*r, s);
    }
    for i in insts {
        let rs2 = if i.rs2_reg {
            Operand::Reg(regs[usize::from(i.rs2 - 1)])
        } else {
            Operand::Imm(i.imm)
        };
        b.alu(i.op, regs[usize::from(i.rd - 1)], regs[usize::from(i.rs1 - 1)], rs2);
    }
    b.halt();
    b.build().expect("random straight-line program builds")
}

fn model(seeds: &[u64], insts: &[RandInst]) -> Vec<u64> {
    let mut r: Vec<u64> = seeds.to_vec();
    for i in insts {
        let a = r[usize::from(i.rs1 - 1)];
        let b = if i.rs2_reg {
            r[usize::from(i.rs2 - 1)]
        } else {
            i.imm as u64
        };
        r[usize::from(i.rd - 1)] = i.op.apply(a, b);
    }
    r
}

proptest! {
    #[test]
    fn core_matches_host_model(
        seeds in proptest::collection::vec(any::<u64>(), WORK_REGS as usize..=WORK_REGS as usize),
        insts in proptest::collection::vec(inst_strategy(), 0..60),
    ) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), 4 << 20);
        let pt = PageTable::new(&mut mem, &mut frames);
        let mut core = Core::new(0, CpuConfig::default(), build(&seeds, &insts), pt);
        let mut now = Cycle::ZERO;
        for _ in 0..(insts.len() * 8 + 100) {
            core.tick(now, &mut mem, None);
            if core.is_halted() {
                break;
            }
            now += 1;
        }
        prop_assert!(core.is_halted(), "ALU program must halt");
        let expect = model(&seeds, &insts);
        for (i, e) in expect.iter().enumerate() {
            // Builder allocates work registers starting at r1.
            prop_assert_eq!(core.reg(Reg(i as u8 + 1)), *e, "register {}", i);
        }
        // Instruction count: seeds + insts + halt.
        prop_assert_eq!(
            core.stats().instructions.get(),
            (seeds.len() + insts.len() + 1) as u64
        );
    }
}
