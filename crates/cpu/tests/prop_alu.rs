//! Property test: the core's functional interpretation of straight-line
//! ALU programs matches a host-side model exactly, for random programs.

#![allow(clippy::explicit_counter_loop)]

use maple_cpu::{Core, CpuConfig};
use maple_isa::builder::ProgramBuilder;
use maple_isa::{AluOp, Operand, Program, Reg};
use maple_mem::phys::{PAddr, PhysMem};
use maple_sim::Cycle;
use maple_testkit::{check, gen, tk_assert, tk_assert_eq, Config, Gen, SimRng};
use maple_vm::page_table::{FrameAllocator, PageTable};

const WORK_REGS: u8 = 6;

const OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::SltU,
    AluOp::MinU,
    AluOp::MaxU,
];

#[derive(Debug, Clone, Copy)]
struct RandInst {
    op: AluOp,
    rd: u8,
    rs1: u8,
    rs2_reg: bool,
    rs2: u8,
    imm: i64,
}

/// Generates one random instruction; shrinks the opcode toward `Add`, the
/// immediate toward zero, and register numbers toward r1.
struct InstGen;

impl Gen for InstGen {
    type Value = RandInst;

    fn generate(&self, rng: &mut SimRng) -> RandInst {
        RandInst {
            op: OPS[rng.below(OPS.len() as u64) as usize],
            rd: 1 + rng.below(u64::from(WORK_REGS)) as u8,
            rs1: 1 + rng.below(u64::from(WORK_REGS)) as u8,
            rs2_reg: rng.chance(0.5),
            rs2: 1 + rng.below(u64::from(WORK_REGS)) as u8,
            imm: rng.range(0, 128) as i64 - 64,
        }
    }

    fn shrink(&self, i: &RandInst) -> Vec<RandInst> {
        let mut out = Vec::new();
        if i.op != AluOp::Add {
            out.push(RandInst { op: AluOp::Add, ..*i });
        }
        for imm in gen::shrink_i64_toward(i.imm, 0).into_iter().take(3) {
            out.push(RandInst { imm, ..*i });
        }
        for (field, get) in [(0u8, i.rd), (1, i.rs1), (2, i.rs2)] {
            if get > 1 {
                let mut next = *i;
                match field {
                    0 => next.rd = 1,
                    1 => next.rs1 = 1,
                    _ => next.rs2 = 1,
                }
                out.push(next);
            }
        }
        if i.rs2_reg {
            out.push(RandInst { rs2_reg: false, ..*i });
        }
        out
    }
}

fn build(seeds: &[u64], insts: &[RandInst]) -> Program {
    let mut b = ProgramBuilder::new();
    let regs: Vec<Reg> = (0..WORK_REGS).map(|i| b.reg(&format!("r{i}"))).collect();
    for (r, &s) in regs.iter().zip(seeds) {
        b.li(*r, s);
    }
    for i in insts {
        let rs2 = if i.rs2_reg {
            Operand::Reg(regs[usize::from(i.rs2 - 1)])
        } else {
            Operand::Imm(i.imm)
        };
        b.alu(i.op, regs[usize::from(i.rd - 1)], regs[usize::from(i.rs1 - 1)], rs2);
    }
    b.halt();
    b.build().expect("random straight-line program builds")
}

fn model(seeds: &[u64], insts: &[RandInst]) -> Vec<u64> {
    let mut r: Vec<u64> = seeds.to_vec();
    for i in insts {
        let a = r[usize::from(i.rs1 - 1)];
        let b = if i.rs2_reg {
            r[usize::from(i.rs2 - 1)]
        } else {
            i.imm as u64
        };
        r[usize::from(i.rd - 1)] = i.op.apply(a, b);
    }
    r
}

#[test]
fn core_matches_host_model() {
    let inputs = (
        gen::vec_of(gen::u64_any(), WORK_REGS as usize, WORK_REGS as usize),
        gen::vec_of(InstGen, 0, 60),
    );
    check(&Config::new("core_matches_host_model"), &inputs, |(seeds, insts)| {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), 4 << 20);
        let pt = PageTable::new(&mut mem, &mut frames);
        let mut core = Core::new(0, CpuConfig::default(), build(seeds, insts), pt);
        let mut now = Cycle::ZERO;
        let mut stage = maple_mem::WriteStage::new();
        for _ in 0..(insts.len() * 8 + 100) {
            core.tick(now, &mem, &mut stage, None, None);
            stage.apply(&mut mem);
            if core.is_halted() {
                break;
            }
            now += 1;
        }
        tk_assert!(core.is_halted(), "ALU program must halt");
        let expect = model(seeds, insts);
        for (i, e) in expect.iter().enumerate() {
            // Builder allocates work registers starting at r1.
            tk_assert_eq!(core.reg(Reg(i as u8 + 1)), *e, "register {i}");
        }
        // Instruction count: seeds + insts + halt.
        tk_assert_eq!(
            core.stats().instructions.get(),
            (seeds.len() + insts.len() + 1) as u64
        );
        Ok(())
    });
}
