//! Software-only decoupling: shared-memory SPSC ring buffers.
//!
//! The paper's Figure 8 baseline. The Access and Execute threads
//! communicate through a ring buffer in ordinary memory: the producer
//! publishes a `tail` index, the consumer a `head` index, and each side
//! polls the other's index at the L2 coherence point (volatile loads —
//! the model's stand-in for the coherence misses such polling causes on
//! real hardware). No hardware assists: the Access thread still blocks on
//! every indirect load, which is precisely why software decoupling loses
//! runahead on a 1-deep in-order core.
//!
//! Memory layout of a queue control block (allocated zeroed):
//!
//! ```text
//! +0    head  (u64, written by consumer)
//! +64   tail  (u64, written by producer)   [separate line]
//! +128  data[capacity] (u64 each)
//! ```

use maple_isa::builder::ProgramBuilder;
use maple_isa::Reg;

/// Byte offset of the consumer index.
pub const HEAD_OFFSET: i64 = 0;
/// Byte offset of the producer index.
pub const TAIL_OFFSET: i64 = 64;
/// Byte offset of the data array.
pub const DATA_OFFSET: i64 = 128;

/// Ring capacity and sizing helper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwQueueLayout {
    /// Entries in the ring (must be a power of two).
    pub capacity: u64,
}

impl SwQueueLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity` is a nonzero power of two.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "ring capacity must be a power of two"
        );
        SwQueueLayout { capacity }
    }

    /// Bytes to allocate for the control block plus data.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        DATA_OFFSET as u64 + self.capacity * 8
    }
}

/// Producer-side code generator. Holds the registers that carry the
/// producer's local state across [`SwProducer::emit_produce`] calls.
#[derive(Debug, Clone, Copy)]
pub struct SwProducer {
    /// Queue control-block base address.
    pub qbase: Reg,
    /// Producer's local tail index (must start at 0).
    pub my_tail: Reg,
    /// Cached copy of the consumer's head index.
    pub head_cache: Reg,
    /// Scratch.
    pub tmp: Reg,
    /// Scratch.
    pub tmp2: Reg,
    /// Ring capacity.
    pub capacity: u64,
}

impl SwProducer {
    /// Allocates the registers this producer needs.
    pub fn new(b: &mut ProgramBuilder, qbase: Reg, capacity: u64) -> Self {
        assert!(capacity.is_power_of_two());
        SwProducer {
            qbase,
            my_tail: b.reg("swq_tail"),
            head_cache: b.reg("swq_headc"),
            tmp: b.reg("swq_ptmp"),
            tmp2: b.reg("swq_ptmp2"),
            capacity,
        }
    }

    /// Emits code pushing the value in `v` into the ring, spinning while
    /// full. Fast path: 6 instructions.
    pub fn emit_produce(&self, b: &mut ProgramBuilder, v: Reg) {
        let ok = b.label("swq_prod_ok");
        // Fast-path check against the cached head.
        b.sub(self.tmp, self.my_tail, self.head_cache);
        b.blt(self.tmp, self.capacity as i64, ok);
        // Slow path: refresh head from the coherence point and spin.
        let spin = b.here("swq_prod_spin");
        b.ld_volatile(self.head_cache, self.qbase, HEAD_OFFSET, 8);
        b.sub(self.tmp, self.my_tail, self.head_cache);
        b.bge(self.tmp, self.capacity as i64, spin);
        b.bind(ok);
        // data[tail & (cap-1)] = v
        b.alu(
            maple_isa::AluOp::And,
            self.tmp2,
            self.my_tail,
            (self.capacity - 1) as i64,
        );
        b.slli(self.tmp2, self.tmp2, 3);
        b.add(self.tmp2, self.tmp2, self.qbase);
        b.st(v, self.tmp2, DATA_OFFSET, 8);
        // Publish the new tail.
        b.addi(self.my_tail, self.my_tail, 1);
        b.st(self.my_tail, self.qbase, TAIL_OFFSET, 8);
    }
}

/// Consumer-side code generator.
#[derive(Debug, Clone, Copy)]
pub struct SwConsumer {
    /// Queue control-block base address.
    pub qbase: Reg,
    /// Consumer's local head index (must start at 0).
    pub my_head: Reg,
    /// Cached copy of the producer's tail index.
    pub tail_cache: Reg,
    /// Scratch.
    pub tmp: Reg,
    /// Ring capacity.
    pub capacity: u64,
}

impl SwConsumer {
    /// Allocates the registers this consumer needs.
    pub fn new(b: &mut ProgramBuilder, qbase: Reg, capacity: u64) -> Self {
        assert!(capacity.is_power_of_two());
        SwConsumer {
            qbase,
            my_head: b.reg("swq_head"),
            tail_cache: b.reg("swq_tailc"),
            tmp: b.reg("swq_ctmp"),
            capacity,
        }
    }

    /// Emits code popping the ring head into `rd`, spinning while empty.
    pub fn emit_consume(&self, b: &mut ProgramBuilder, rd: Reg) {
        let ok = b.label("swq_cons_ok");
        b.blt(self.my_head, self.tail_cache, ok);
        let spin = b.here("swq_cons_spin");
        b.ld_volatile(self.tail_cache, self.qbase, TAIL_OFFSET, 8);
        b.bge(self.my_head, self.tail_cache, spin);
        b.bind(ok);
        // rd = data[head & (cap-1)]
        b.alu(
            maple_isa::AluOp::And,
            self.tmp,
            self.my_head,
            (self.capacity - 1) as i64,
        );
        b.slli(self.tmp, self.tmp, 3);
        b.add(self.tmp, self.tmp, self.qbase);
        b.ld(rd, self.tmp, DATA_OFFSET, 8);
        // Publish the new head.
        b.addi(self.my_head, self.my_head, 1);
        b.st(self.my_head, self.qbase, HEAD_OFFSET, 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_sizing() {
        let l = SwQueueLayout::new(64);
        assert_eq!(l.bytes(), 128 + 64 * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn capacity_must_be_pow2() {
        let _ = SwQueueLayout::new(48);
    }

    #[test]
    fn emitters_build_valid_programs() {
        let mut b = ProgramBuilder::new();
        let qbase = b.reg("qbase");
        let v = b.reg("v");
        let prod = SwProducer::new(&mut b, qbase, 32);
        prod.emit_produce(&mut b, v);
        prod.emit_produce(&mut b, v);
        b.halt();
        let p = b.build().expect("labels resolve per emission");
        assert!(p.len() > 10);

        let mut b = ProgramBuilder::new();
        let qbase = b.reg("qbase");
        let rd = b.reg("rd");
        let cons = SwConsumer::new(&mut b, qbase, 32);
        cons.emit_consume(&mut b, rd);
        b.halt();
        assert!(b.build().is_ok());
    }
}
