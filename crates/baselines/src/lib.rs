//! Prior-work comparators for the Figure 12 evaluation.
//!
//! - [`droplet`]: a DROPLET-style **memory-side indirect prefetcher**: it
//!   snoops demand fetches of an index array `B` at the shared L2 and
//!   issues prefetches for the dependent `A[B[i]]` lines into the LLC.
//!   Like the original, it needs no core changes but adds hardware at the
//!   memory side and prefetches *speculatively into the cache* (no
//!   program-order data supply).
//! - [`swdec`]: the **software-only decoupling** library — a shared-memory
//!   SPSC ring buffer with head/tail indices polled at the coherence
//!   point. This is the paper's "software decoupling" baseline (Figure 8):
//!   it provides the DAE programming model but no latency-tolerance
//!   hardware, so an Access thread with a 1-deep instruction window still
//!   stalls on every IMA.
//! - The DeSC comparator is split between [`maple_cpu::desc`] (the coupled
//!   queues + terminal loads, i.e. the core modification) and the
//!   workloads that emit its instructions.

#![deny(missing_docs)]

pub mod droplet;
pub mod swdec;
