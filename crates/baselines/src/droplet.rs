//! DROPLET-style memory-side dependent prefetcher.
//!
//! Basak et al. (HPCA'19) place a data-aware prefetcher at the memory
//! controller: when a demand fetch brings in a cache line of the *index*
//! array of a graph workload, the prefetcher decodes the indices in that
//! line and prefetches the dependent *data* lines. The model here does the
//! same at the shared L2: [`DropletPrefetcher::observe`] watches demand
//! `ReadLine` traffic, and once the observed line's data would have
//! arrived from DRAM, decodes its indices and emits `PrefetchLine`
//! requests for `A[B[i]]`.

use maple_mem::msg::{MemReq, MemReqKind};
use maple_mem::phys::{PAddr, PhysMem, LINE_SIZE};
use maple_noc::Coord;
use maple_sim::link::DelayQueue;
use maple_sim::stats::Counter;
use maple_sim::Cycle;

/// One indirect pattern the prefetcher is programmed to watch
/// (physical-address ranges; the driver translates at configuration time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectWatch {
    /// Start of the index array `B` (inclusive).
    pub b_start: PAddr,
    /// End of the index array `B` (exclusive).
    pub b_end: PAddr,
    /// Element size of `B` in bytes (4 or 8).
    pub b_elem: u8,
    /// Base of the data array `A`.
    pub a_base: PAddr,
    /// Element size of `A` in bytes.
    pub a_elem: u8,
}

/// Prefetcher configuration.
#[derive(Debug, Clone, Copy)]
pub struct DropletConfig {
    /// Cycles between observing the demand fetch and issuing dependent
    /// prefetches (decode happens when the line returns from DRAM).
    pub decode_delay: u64,
    /// Maximum dependent prefetches issued per observed line.
    pub max_per_line: usize,
}

impl Default for DropletConfig {
    fn default() -> Self {
        DropletConfig {
            decode_delay: 300,
            max_per_line: 16,
        }
    }
}

/// Prefetcher statistics.
#[derive(Debug, Clone, Default)]
pub struct DropletStats {
    /// Index lines observed.
    pub observed_lines: Counter,
    /// Dependent prefetches issued.
    pub prefetches: Counter,
}

/// The prefetcher component; owned by the L2 tile.
#[derive(Debug)]
pub struct DropletPrefetcher {
    cfg: DropletConfig,
    watches: Vec<IndirectWatch>,
    pending: DelayQueue<(PAddr, usize)>,
    stats: DropletStats,
}

impl DropletPrefetcher {
    /// Creates a prefetcher with no watches programmed.
    #[must_use]
    pub fn new(cfg: DropletConfig) -> Self {
        DropletPrefetcher {
            cfg,
            watches: Vec::new(),
            pending: DelayQueue::new(),
            stats: DropletStats::default(),
        }
    }

    /// Programs an indirect pattern (driver-side, per workload).
    pub fn add_watch(&mut self, watch: IndirectWatch) {
        assert!(
            matches!(watch.b_elem, 4 | 8),
            "index element size must be 4 or 8"
        );
        self.watches.push(watch);
    }

    /// Removes all watches.
    pub fn clear_watches(&mut self) {
        self.watches.clear();
    }

    /// Observes a request arriving at the L2. Demand line fetches within a
    /// watched index range schedule a decode.
    pub fn observe(&mut self, now: Cycle, req: &MemReq) {
        if !matches!(req.kind, MemReqKind::ReadLine) {
            return;
        }
        let line = req.addr.line_base();
        for (i, w) in self.watches.iter().enumerate() {
            if line.0 >= w.b_start.0 && line.0 < w.b_end.0 {
                self.stats.observed_lines.inc();
                self.pending.send(now, self.cfg.decode_delay, (line, i));
                break;
            }
        }
    }

    /// Emits due dependent prefetches (to be fed into the L2 as
    /// `PrefetchLine` requests). Reads the index values from the backing
    /// store — by the time the decode fires, the demand line has arrived.
    pub fn tick(&mut self, now: Cycle, mem: &PhysMem) -> Vec<MemReq> {
        let mut out = Vec::new();
        while let Some((line, widx)) = self.pending.recv(now) {
            let w = self.watches[widx];
            let elem = u64::from(w.b_elem);
            let start = line.0.max(w.b_start.0);
            let end = (line.0 + LINE_SIZE).min(w.b_end.0);
            let mut issued = 0;
            let mut idx = start;
            let mut last_target: Option<PAddr> = None;
            while idx + elem <= end && issued < self.cfg.max_per_line {
                let b = mem.read_uint(PAddr(idx), w.b_elem);
                let target = PAddr(w.a_base.0 + b * u64::from(w.a_elem)).line_base();
                if last_target != Some(target) {
                    self.stats.prefetches.inc();
                    out.push(MemReq {
                        id: 0,
                        addr: target,
                        kind: MemReqKind::PrefetchLine,
                        reply_to: Coord::default(),
                    });
                    last_target = Some(target);
                    issued += 1;
                }
                idx += elem;
            }
        }
        out
    }

    /// Statistics.
    #[must_use]
    pub fn stats(&self) -> &DropletStats {
        &self.stats
    }

    /// Earliest cycle at or after `now` at which ticking the prefetcher
    /// could emit work: the deadline of the oldest scheduled decode.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.pending.next_deadline().map(|d| d.max(now))
    }
}

impl maple_sim::Clocked for DropletPrefetcher {
    type Ctx<'a> = ();

    /// No-op: the owning L2 tile drives the inherent [`DropletPrefetcher::tick`]
    /// (which returns the prefetch requests to inject); this impl exists so
    /// the prefetcher participates in the event-horizon computation.
    fn tick(&mut self, _now: Cycle, (): ()) {}

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        DropletPrefetcher::next_event(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watch() -> IndirectWatch {
        IndirectWatch {
            b_start: PAddr(0x1000),
            b_end: PAddr(0x1100),
            b_elem: 4,
            a_base: PAddr(0x8000),
            a_elem: 4,
        }
    }

    fn read_line(addr: u64) -> MemReq {
        MemReq {
            id: 1,
            addr: PAddr(addr),
            kind: MemReqKind::ReadLine,
            reply_to: Coord::default(),
        }
    }

    #[test]
    fn observes_only_watched_demand_lines() {
        let mut d = DropletPrefetcher::new(DropletConfig::default());
        d.add_watch(watch());
        let mem = PhysMem::new();
        d.observe(Cycle(0), &read_line(0x1000));
        d.observe(Cycle(0), &read_line(0x5000)); // outside
        d.observe(
            Cycle(0),
            &MemReq {
                kind: MemReqKind::ReadWord { size: 4 },
                ..read_line(0x1000)
            },
        ); // not a line fetch
        assert_eq!(d.stats().observed_lines.get(), 1);
        let _ = mem;
    }

    #[test]
    fn issues_dependent_prefetches_after_delay() {
        let mut d = DropletPrefetcher::new(DropletConfig {
            decode_delay: 10,
            max_per_line: 16,
        });
        d.add_watch(watch());
        let mut mem = PhysMem::new();
        // Indices 5, 5, 99 in the first line: dedup adjacent duplicates.
        mem.write_u32(PAddr(0x1000), 5);
        mem.write_u32(PAddr(0x1004), 5);
        mem.write_u32(PAddr(0x1008), 99);
        d.observe(Cycle(0), &read_line(0x1000));
        assert!(d.tick(Cycle(9), &mem).is_empty(), "decode not due yet");
        let reqs = d.tick(Cycle(10), &mem);
        assert!(!reqs.is_empty());
        let targets: Vec<u64> = reqs.iter().map(|r| r.addr.0).collect();
        assert!(targets.contains(&PAddr(0x8000 + 5 * 4).line_base().0));
        assert!(targets.contains(&PAddr(0x8000 + 99 * 4).line_base().0));
        assert!(reqs.iter().all(|r| r.kind == MemReqKind::PrefetchLine));
    }

    #[test]
    fn respects_per_line_budget() {
        let mut d = DropletPrefetcher::new(DropletConfig {
            decode_delay: 0,
            max_per_line: 2,
        });
        d.add_watch(watch());
        let mut mem = PhysMem::new();
        for i in 0..16u64 {
            mem.write_u32(PAddr(0x1000 + i * 4), (i * 100) as u32);
        }
        d.observe(Cycle(0), &read_line(0x1000));
        let reqs = d.tick(Cycle(0), &mem);
        assert_eq!(reqs.len(), 2);
    }

    #[test]
    fn clamps_to_watch_bounds() {
        let mut d = DropletPrefetcher::new(DropletConfig {
            decode_delay: 0,
            max_per_line: 64,
        });
        // Watch covers only half a line.
        d.add_watch(IndirectWatch {
            b_start: PAddr(0x1000),
            b_end: PAddr(0x1020),
            b_elem: 8,
            a_base: PAddr(0x8000),
            a_elem: 8,
        });
        let mut mem = PhysMem::new();
        for i in 0..8u64 {
            mem.write_u64(PAddr(0x1000 + i * 8), i * 1000);
        }
        d.observe(Cycle(0), &read_line(0x1000));
        let reqs = d.tick(Cycle(0), &mem);
        assert_eq!(reqs.len(), 4, "only indices inside the watch decoded");
    }

    #[test]
    #[should_panic(expected = "4 or 8")]
    fn bad_elem_size_rejected() {
        let mut d = DropletPrefetcher::new(DropletConfig::default());
        d.add_watch(IndirectWatch {
            b_start: PAddr(0),
            b_end: PAddr(64),
            b_elem: 3,
            a_base: PAddr(0x8000),
            a_elem: 4,
        });
    }
}
