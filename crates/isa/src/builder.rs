//! Program construction with labels and named registers.
//!
//! The builder is the workspace's "assembler": workload kernels and the
//! decoupling compiler emit instructions through it, and it resolves
//! forward branches at [`ProgramBuilder::build`] time. Compound helpers
//! such as [`ProgramBuilder::load_indexed`] expand to the same address
//! arithmetic a compiler would emit, so instruction-count comparisons
//! (Figure 10's software-prefetch overhead) are honest.

use crate::{AluOp, AtomicOp, Cond, Inst, LdClass, Operand, Program, Reg, NUM_REGS, ZERO};

/// A branch target, created by [`ProgramBuilder::label`] and positioned by
/// [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Error returned by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(String),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnboundLabel(name) => write!(f, "label `{name}` was never bound"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental program builder. See the crate docs for an example.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    label_pos: Vec<Option<usize>>,
    label_names: Vec<String>,
    /// (instruction index, label) pairs to patch at build time.
    fixups: Vec<(usize, Label)>,
    next_reg: u8,
}

impl ProgramBuilder {
    /// Creates an empty builder. Register 0 is reserved as the zero
    /// register.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            insts: Vec::new(),
            label_pos: Vec::new(),
            label_names: Vec::new(),
            fixups: Vec::new(),
            next_reg: 1,
        }
    }

    /// Allocates a fresh register. The name is used in panics only.
    ///
    /// # Panics
    ///
    /// Panics when all registers are in use.
    pub fn reg(&mut self, name: &str) -> Reg {
        assert!(
            (self.next_reg as usize) < NUM_REGS,
            "out of registers allocating `{name}`"
        );
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// The zero register.
    #[must_use]
    pub fn zero(&self) -> Reg {
        ZERO
    }

    /// Creates a label to be bound later.
    pub fn label(&mut self, name: &str) -> Label {
        self.label_pos.push(None);
        self.label_names.push(name.to_owned());
        Label(self.label_pos.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.label_pos[label.0].is_none(),
            "label `{}` bound twice",
            self.label_names[label.0]
        );
        self.label_pos[label.0] = Some(self.insts.len());
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// Current instruction count (useful for size assertions in tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    // --- basic emitters -------------------------------------------------

    /// `rd = imm`
    pub fn li(&mut self, rd: Reg, imm: u64) {
        self.insts.push(Inst::Li { rd, imm });
    }

    /// `rd = rs`
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.alu(AluOp::Add, rd, rs, Operand::Imm(0));
    }

    /// Generic ALU emitter.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.insts.push(Inst::Alu {
            op,
            rd,
            rs1,
            rs2: rs2.into(),
        });
    }

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.alu(AluOp::Add, rd, rs1, rs2);
    }

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.alu(AluOp::Add, rd, rs1, Operand::Imm(imm));
    }

    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.alu(AluOp::Sub, rd, rs1, rs2);
    }

    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.alu(AluOp::Mul, rd, rs1, rs2);
    }

    /// `rd = rs1 << shamt`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.alu(AluOp::Sll, rd, rs1, Operand::Imm(shamt));
    }

    /// Cacheable load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64, size: u8) {
        self.insts.push(Inst::Ld {
            rd,
            base,
            offset,
            size,
            class: LdClass::Normal,
        });
    }

    /// Volatile (coherence-point) load.
    pub fn ld_volatile(&mut self, rd: Reg, base: Reg, offset: i64, size: u8) {
        self.insts.push(Inst::Ld {
            rd,
            base,
            offset,
            size,
            class: LdClass::Volatile,
        });
    }

    /// Store.
    pub fn st(&mut self, rs: Reg, base: Reg, offset: i64, size: u8) {
        self.insts.push(Inst::St {
            rs,
            base,
            offset,
            size,
        });
    }

    /// Atomic; `rd` receives the old value. For [`AtomicOp::Cas`], `rs` is
    /// the new value and `rs2` the expected value.
    #[allow(clippy::too_many_arguments)]
    pub fn amo(
        &mut self,
        op: AtomicOp,
        rd: Reg,
        base: Reg,
        offset: i64,
        size: u8,
        rs: Reg,
        rs2: Reg,
    ) {
        self.insts.push(Inst::Amo {
            op,
            rd,
            base,
            offset,
            size,
            rs,
            rs2,
        });
    }

    /// Software prefetch into the L1.
    pub fn prefetch(&mut self, base: Reg, offset: i64) {
        self.insts.push(Inst::Prefetch { base, offset });
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: Cond, rs1: Reg, rs2: impl Into<Operand>, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.insts.push(Inst::Branch {
            cond,
            rs1,
            rs2: rs2.into(),
            target: usize::MAX,
        });
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: impl Into<Operand>, target: Label) {
        self.br(Cond::Eq, rs1, rs2, target);
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: impl Into<Operand>, target: Label) {
        self.br(Cond::Ne, rs1, rs2, target);
    }

    /// Branch if unsigned less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: impl Into<Operand>, target: Label) {
        self.br(Cond::LtU, rs1, rs2, target);
    }

    /// Branch if unsigned greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: impl Into<Operand>, target: Label) {
        self.br(Cond::GeU, rs1, rs2, target);
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: Label) {
        self.fixups.push((self.insts.len(), target));
        self.insts.push(Inst::Jump { target: usize::MAX });
    }

    /// One-cycle no-op.
    pub fn nop(&mut self) {
        self.insts.push(Inst::Nop);
    }

    /// Stop the thread.
    pub fn halt(&mut self) {
        self.insts.push(Inst::Halt);
    }

    // --- compound helpers (expand to real instructions) ------------------

    /// `tmp = base + (idx << scale)` — the address arithmetic for
    /// `base[idx]` with `1 << scale`-byte elements.
    pub fn index_addr(&mut self, tmp: Reg, base: Reg, idx: Reg, scale: i64) {
        self.slli(tmp, idx, scale);
        self.add(tmp, tmp, base);
    }

    /// `rd = base[idx]` for `1 << scale`-byte elements, via `tmp`.
    /// Expands to three instructions (shift, add, load).
    #[allow(clippy::too_many_arguments)]
    pub fn load_indexed(&mut self, rd: Reg, base: Reg, idx: Reg, scale: i64, size: u8, tmp: Reg) {
        self.index_addr(tmp, base, idx, scale);
        self.ld(rd, tmp, 0, size);
    }

    /// `base[idx] = rs` for `1 << scale`-byte elements, via `tmp`.
    #[allow(clippy::too_many_arguments)]
    pub fn store_indexed(&mut self, rs: Reg, base: Reg, idx: Reg, scale: i64, size: u8, tmp: Reg) {
        self.index_addr(tmp, base, idx, scale);
        self.st(rs, tmp, 0, size);
    }

    // --- DeSC baseline extension -----------------------------------------

    /// DeSC: enqueue `rs` into coupled queue `q`.
    pub fn desc_produce(&mut self, q: u8, rs: Reg) {
        self.insts.push(Inst::DescProduce { q, rs });
    }

    /// DeSC: dequeue from coupled queue `q` into `rd`.
    pub fn desc_consume(&mut self, rd: Reg, q: u8) {
        self.insts.push(Inst::DescConsume { rd, q });
    }

    /// DeSC: non-blocking dequeue (`u64::MAX` when empty).
    pub fn desc_try_consume(&mut self, rd: Reg, q: u8) {
        self.insts.push(Inst::DescTryConsume { rd, q });
    }

    /// DeSC terminal load into queue `q`.
    pub fn desc_produce_load(&mut self, q: u8, base: Reg, offset: i64, size: u8) {
        self.insts.push(Inst::DescProduceLoad {
            q,
            base,
            offset,
            size,
        });
    }

    /// Finishes the program, resolving all branch targets.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn build(mut self) -> Result<Program, BuildError> {
        for (idx, label) in &self.fixups {
            let pos = self.label_pos[label.0]
                .ok_or_else(|| BuildError::UnboundLabel(self.label_names[label.0].clone()))?;
            match &mut self.insts[*idx] {
                Inst::Branch { target, .. } | Inst::Jump { target } => *target = pos,
                other => unreachable!("fixup points at non-branch {other:?}"),
            }
        }
        Ok(Program::from_insts(self.insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let i = b.reg("i");
        let n = b.reg("n");
        b.li(i, 0);
        b.li(n, 10);
        let top = b.here("top");
        let done = b.label("done");
        b.bge(i, n, done); // forward
        b.addi(i, i, 1);
        b.jump(top); // backward
        b.bind(done);
        b.halt();
        let p = b.build().unwrap();
        // bge at index 2 targets halt at index 5; jump at 4 targets 2.
        assert_eq!(p.fetch(2), Some(&Inst::Branch {
            cond: Cond::GeU,
            rs1: Reg(1),
            rs2: Operand::Reg(Reg(2)),
            target: 5,
        }));
        assert_eq!(p.fetch(4), Some(&Inst::Jump { target: 2 }));
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.label("nowhere");
        b.jump(l);
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildError::UnboundLabel("nowhere".into()));
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label("l");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn register_allocation_is_fresh() {
        let mut b = ProgramBuilder::new();
        let a = b.reg("a");
        let c = b.reg("c");
        assert_ne!(a, c);
        assert_ne!(a, b.zero());
    }

    #[test]
    #[should_panic(expected = "out of registers")]
    fn register_exhaustion_panics() {
        let mut b = ProgramBuilder::new();
        for i in 0..NUM_REGS {
            let _ = b.reg(&format!("r{i}"));
        }
    }

    #[test]
    fn compound_helpers_expand_honestly() {
        let mut b = ProgramBuilder::new();
        let rd = b.reg("rd");
        let base = b.reg("base");
        let idx = b.reg("idx");
        let tmp = b.reg("tmp");
        b.load_indexed(rd, base, idx, 3, 8, tmp);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.len(), 4, "shift + add + load + halt");
    }

    #[test]
    fn mv_is_add_zero_imm() {
        let mut b = ProgramBuilder::new();
        let a = b.reg("a");
        let c = b.reg("c");
        b.mv(a, c);
        let p = b.build().unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Inst::Alu {
                op: AluOp::Add,
                rd: a,
                rs1: c,
                rs2: Operand::Imm(0)
            })
        );
    }

    #[test]
    fn empty_builder_builds_empty_program() {
        let b = ProgramBuilder::new();
        assert!(b.is_empty());
        let p = b.build().unwrap();
        assert!(p.is_empty());
    }
}
