//! A minimal RISC-style instruction set for the simulated in-order cores.
//!
//! The paper's premise is that MAPLE needs **no new ISA instructions**: the
//! whole API is plain loads and stores to memory-mapped pages. This IR
//! honours that — there is one generic [`Inst::Ld`]/[`Inst::St`] pair, and
//! whether an access reaches DRAM, the shared L2, or a MAPLE instance is
//! decided by the *page flags* the TLB returns, exactly as on the real SoC.
//! (The one modelling concession is [`LdClass::Volatile`], a hint standing
//! in for the coherence misses that shared-flag polling incurs on real
//! hardware.)
//!
//! Programs are built with [`builder::ProgramBuilder`], which resolves
//! labels and allocates registers:
//!
//! ```
//! use maple_isa::builder::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let x = b.reg("x");
//! b.li(x, 5);
//! b.addi(x, x, 1);
//! b.halt();
//! let prog = b.build().unwrap();
//! assert_eq!(prog.len(), 3);
//! ```
//!
//! # Execution model: instruction classes
//!
//! The in-order core executes one instruction per cycle gated by each
//! instruction's latency; from the simulator's perspective the IR splits
//! into three classes, and the split is what makes the compiled fast-path
//! ([`fastpath`]) sound:
//!
//! - **Compute** — [`Inst::Li`], [`Inst::Alu`], [`Inst::Nop`]. Read and
//!   write only the core-private register file (`r0` hardwired to zero)
//!   and advance `pc` by one. Latency is static ([`AluOp::latency`]:
//!   3 cycles for `Mul`, 1 otherwise). These are the only *run-eligible*
//!   instructions: a straight-line stretch of them can be pre-decoded
//!   into a [`fastpath::Run`] and executed in one `tick`.
//! - **Memory / queue** — [`Inst::Ld`], [`Inst::St`], [`Inst::Amo`],
//!   [`Inst::Prefetch`], and the DeSC baseline ops
//!   ([`Inst::DescProduce`], [`Inst::DescConsume`],
//!   [`Inst::DescTryConsume`], [`Inst::DescProduceLoad`]). Latency is
//!   dynamic (cache state, NoC contention, device occupancy, queue
//!   backpressure), and whether an access is plain memory or a MAPLE
//!   MMIO command is decided by page flags at translation time — so
//!   every one of these **terminates a run** and goes through the
//!   interpreter.
//! - **Control** — [`Inst::Branch`], [`Inst::Jump`], [`Inst::Halt`].
//!   The next pc is data-dependent (or execution stops), so these also
//!   terminate runs; the interpreter resolves them and the next run
//!   starts at the resolved target.

#![deny(missing_docs)]

pub mod builder;
pub mod fastpath;

/// Number of architectural registers.
pub const NUM_REGS: usize = 64;

/// An architectural register. `Reg(0)` is hardwired to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// The always-zero register.
pub const ZERO: Reg = Reg(0);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second ALU operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register value.
    Reg(Reg),
    /// A sign-extended immediate.
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Two-source ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (3-cycle latency on the modelled core).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (amount masked to 6 bits).
    Sll,
    /// Logical shift right (amount masked to 6 bits).
    Srl,
    /// Unsigned set-less-than (1 or 0).
    SltU,
    /// Unsigned minimum.
    MinU,
    /// Unsigned maximum.
    MaxU,
}

impl AluOp {
    /// Execution latency of this operation on the in-order core.
    #[must_use]
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            _ => 1,
        }
    }

    /// Applies the operation.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::SltU => u64::from(a < b),
            AluOp::MinU => a.min(b),
            AluOp::MaxU => a.max(b),
        }
    }
}

/// Branch conditions (unsigned comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl Cond {
    /// Evaluates the condition.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::LtU => a < b,
            Cond::GeU => a >= b,
        }
    }
}

/// Load cacheability class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LdClass {
    /// Ordinary cacheable load.
    Normal,
    /// Served at the L2 coherence point every time — the model's stand-in
    /// for loads of actively-shared data (software queue indices, flags)
    /// that miss due to coherence invalidations on real hardware.
    Volatile,
}

/// Atomic operations (mirror of the memory system's AMO kinds; `expected`
/// for CAS comes from a register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// Fetch-and-add.
    Add,
    /// Swap.
    Swap,
    /// Compare-and-swap; `expected` is read from the instruction's second
    /// source register.
    Cas,
    /// Unsigned fetch-min.
    MinU,
    /// Unsigned fetch-max.
    MaxU,
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Load immediate.
    Li {
        /// Destination.
        rd: Reg,
        /// Value.
        imm: u64,
    },
    /// Register-register / register-immediate ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Operand,
    },
    /// Load `size` bytes from `[base + offset]` into `rd`.
    ///
    /// Page flags decide the path: normal memory goes through the L1,
    /// MMIO pages are routed over the NoC to the owning device (this is a
    /// MAPLE `CONSUME`/config read when the page maps a MAPLE instance).
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width (1, 2, 4, 8).
        size: u8,
        /// Cacheability class.
        class: LdClass,
    },
    /// Store the low `size` bytes of `rs` to `[base + offset]`.
    ///
    /// On an MMIO page this is a MAPLE `PRODUCE`/`PRODUCE_PTR`/config write;
    /// the core retires it when the device acknowledges (paper step 4).
    St {
        /// Value source.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: u8,
    },
    /// Atomic read-modify-write on `[base + offset]`; old value into `rd`.
    Amo {
        /// Atomic operation.
        op: AtomicOp,
        /// Destination for the old value.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Width (4 or 8).
        size: u8,
        /// Operand register (new value / addend). For CAS this is the new
        /// value and `rs2` the expected value.
        rs: Reg,
        /// CAS expected-value register (ignored otherwise).
        rs2: Reg,
    },
    /// Software prefetch of the line at `[base + offset]` into the L1.
    Prefetch {
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch to the resolved instruction index `target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Operand,
        /// Destination instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jump {
        /// Destination instruction index.
        target: usize,
    },
    /// No operation (one cycle).
    Nop,
    /// Stop the hardware thread.
    Halt,

    // --- DeSC baseline extension -----------------------------------------
    //
    // The DeSC comparator (Ham et al.) requires new ISA instructions and
    // core-coupled architectural queues — precisely the modification MAPLE
    // avoids (Table 1 of the paper). These three instructions exist so the
    // baseline can be modelled honestly; MAPLE program variants never emit
    // them.
    /// DeSC: enqueue `rs` into coupled queue `q` (blocking when full).
    DescProduce {
        /// Queue index.
        q: u8,
        /// Value source.
        rs: Reg,
    },
    /// DeSC: dequeue from coupled queue `q` into `rd` (blocking when
    /// empty).
    DescConsume {
        /// Destination.
        rd: Reg,
        /// Queue index.
        q: u8,
    },
    /// DeSC: non-blocking dequeue — `rd` receives the head of queue `q`,
    /// or `u64::MAX` when the queue is empty (models the Supply core
    /// opportunistically draining the store queue).
    DescTryConsume {
        /// Destination.
        rd: Reg,
        /// Queue index.
        q: u8,
    },
    /// DeSC terminal load: load `[base + offset]` *without blocking* and
    /// deliver the value into queue `q` in program order (the Supply core's
    /// early-commit side structure).
    DescProduceLoad {
        /// Queue index.
        q: u8,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i64,
        /// Access width.
        size: u8,
    },
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}").map(|()| ()),
            Inst::Ld {
                rd,
                base,
                offset,
                size,
                class,
            } => {
                let suffix = match class {
                    LdClass::Normal => "",
                    LdClass::Volatile => ".v",
                };
                write!(f, "ld{size}{suffix} {rd}, {offset}({base})")
            }
            Inst::St {
                rs,
                base,
                offset,
                size,
            } => write!(f, "st{size} {rs}, {offset}({base})"),
            Inst::Amo {
                op,
                rd,
                base,
                offset,
                size,
                rs,
                ..
            } => write!(f, "amo.{op:?}{size} {rd}, {rs}, {offset}({base})"),
            Inst::Prefetch { base, offset } => write!(f, "prefetch {offset}({base})"),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "b{cond:?} {rs1}, {rs2} -> @{target}"),
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::DescProduce { q, rs } => write!(f, "desc.produce q{q}, {rs}"),
            Inst::DescConsume { rd, q } => write!(f, "desc.consume {rd}, q{q}"),
            Inst::DescTryConsume { rd, q } => write!(f, "desc.try_consume {rd}, q{q}"),
            Inst::DescProduceLoad {
                q,
                base,
                offset,
                size,
            } => write!(f, "desc.produce_ld{size} q{q}, {offset}({base})"),
        }
    }
}

impl Inst {
    /// Whether this instruction reads or writes memory.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Ld { .. }
                | Inst::St { .. }
                | Inst::Amo { .. }
                | Inst::Prefetch { .. }
                | Inst::DescProduceLoad { .. }
        )
    }

    /// Whether this instruction counts as a load in the performance
    /// counters (Figure 10 counts these).
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Ld { .. })
    }
}

/// A complete program: a linear instruction sequence with resolved branch
/// targets, starting at index 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Wraps a raw instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range (a builder bug).
    #[must_use]
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        for (i, inst) in insts.iter().enumerate() {
            if let Inst::Branch { target, .. } | Inst::Jump { target } = inst {
                assert!(
                    *target < insts.len(),
                    "instruction {i} targets out-of-range index {target}"
                );
            }
        }
        Program { insts }
    }

    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn fetch(&self, pc: usize) -> Option<&Inst> {
        self.insts.get(pc)
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Inst> {
        self.insts.iter()
    }

    /// A human-readable disassembly listing.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(s, "{i:5}: {inst}");
        }
        s
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Inst;
    type IntoIter = std::slice::Iter<'a, Inst>;
    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::Mul.apply(4, 5), 20);
        assert_eq!(AluOp::Sll.apply(1, 3), 8);
        assert_eq!(AluOp::Srl.apply(8, 3), 1);
        assert_eq!(AluOp::SltU.apply(1, 2), 1);
        assert_eq!(AluOp::SltU.apply(2, 1), 0);
        assert_eq!(AluOp::MinU.apply(7, 3), 3);
        assert_eq!(AluOp::MaxU.apply(7, 3), 7);
        assert_eq!(AluOp::And.apply(0b110, 0b011), 0b010);
        assert_eq!(AluOp::Or.apply(0b110, 0b011), 0b111);
        assert_eq!(AluOp::Xor.apply(0b110, 0b011), 0b101);
    }

    #[test]
    fn mul_has_longer_latency() {
        assert_eq!(AluOp::Mul.latency(), 3);
        assert_eq!(AluOp::Add.latency(), 1);
    }

    #[test]
    fn cond_semantics() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::LtU.eval(5, 6));
        assert!(Cond::GeU.eval(6, 6));
        assert!(!Cond::LtU.eval(6, 5));
    }

    #[test]
    fn shift_masks_amount() {
        assert_eq!(AluOp::Sll.apply(1, 64), 1, "shift amount wraps at 64");
    }

    #[test]
    fn program_validates_targets() {
        let p = Program::from_insts(vec![Inst::Jump { target: 1 }, Inst::Halt]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(1), Some(&Inst::Halt));
        assert_eq!(p.fetch(2), None);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn program_rejects_bad_target() {
        let _ = Program::from_insts(vec![Inst::Jump { target: 5 }]);
    }

    #[test]
    fn classification() {
        let ld = Inst::Ld {
            rd: Reg(1),
            base: Reg(2),
            offset: 0,
            size: 8,
            class: LdClass::Normal,
        };
        assert!(ld.is_memory());
        assert!(ld.is_load());
        assert!(!Inst::Nop.is_memory());
        let pf = Inst::Prefetch {
            base: Reg(1),
            offset: 0,
        };
        assert!(pf.is_memory());
        assert!(!pf.is_load());
    }

    #[test]
    fn disassembly_is_nonempty_and_indexed() {
        let p = Program::from_insts(vec![
            Inst::Li { rd: Reg(1), imm: 9 },
            Inst::Halt,
        ]);
        let d = p.disassemble();
        assert!(d.contains("0: li r1, 9"));
        assert!(d.contains("1: halt"));
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Reg(3).into();
        assert_eq!(o, Operand::Reg(Reg(3)));
        let o: Operand = 7i64.into();
        assert_eq!(o, Operand::Imm(7));
        assert_eq!(Operand::Imm(-2).to_string(), "-2");
        assert_eq!(Operand::Reg(Reg(4)).to_string(), "r4");
    }
}
