//! Straight-line micro-op runs: the decode layer of the compiled core
//! fast-path (DESIGN.md §12).
//!
//! Between two events that can touch shared state — a memory access, an
//! MMIO transaction, a DeSC queue operation, a branch, or a halt — an
//! in-order core's behaviour is fully determined by its private register
//! file. This module pre-decodes those compute-bounded stretches into
//! [`Run`]s of [`MicroOp`]s so the core can execute an entire stretch in
//! one `tick` call with cycle accounting applied in bulk, the compute-side
//! dual of the event-horizon stall skipping in `System::run`.
//!
//! **Run-eligible** instructions are exactly [`Inst::Li`], [`Inst::Alu`]
//! and [`Inst::Nop`]: they read and write only core-private architectural
//! registers and carry a static latency. Every other instruction class
//! **terminates** a run and is left to the interpreter: memory ops
//! ([`Inst::Ld`]/[`Inst::St`]/[`Inst::Amo`]/[`Inst::Prefetch`]), DeSC
//! queue ops ([`Inst::DescProduce`]/[`Inst::DescConsume`]/
//! [`Inst::DescTryConsume`]/[`Inst::DescProduceLoad`]), control flow
//! ([`Inst::Branch`]/[`Inst::Jump`]) and [`Inst::Halt`].
//!
//! The [`BlockCache`] memoizes runs per start-pc and is keyed on a
//! structural fingerprint of the whole program: rebinding the same cache
//! to a different program (or a program edited in place) invalidates every
//! memoized run. Lookups on ineligible pcs are memoized too, so the
//! decode cost of a taken branch target is paid once, not per visit.

use crate::{AluOp, Inst, Operand, Program, Reg};

/// Upper bound on the number of micro-ops in one run.
///
/// A cap keeps worst-case memoization memory linear-ish for pathological
/// straight-line programs (every pc can start a run, and uncapped runs
/// overlap quadratically). Splitting a run at the cap is timing-neutral:
/// the follow-on run begins exactly at the cycle the capped run retires.
pub const MAX_RUN_LEN: usize = 1024;

/// One pre-decoded compute micro-op. Fields are public so the executing
/// core can apply them directly to its register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Load immediate (`rd <- imm`), 1 cycle.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Register-register ALU op (`rd <- op(rs1, rs2)`).
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU op (`rd <- op(rs1, imm)`).
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Immediate operand (the sign-extended `i64` reinterpreted as the
        /// `u64` the ALU consumes, matching the interpreter).
        imm: u64,
    },
    /// No operation, 1 cycle.
    Nop,
}

impl MicroOp {
    /// Issue-to-issue latency of this micro-op on the in-order core —
    /// identical to what the interpreter charges for the source
    /// instruction.
    #[must_use]
    pub fn latency(self) -> u64 {
        match self {
            MicroOp::Li { .. } | MicroOp::Nop => 1,
            MicroOp::AluRR { op, .. } | MicroOp::AluRI { op, .. } => op.latency(),
        }
    }

    /// Decodes a run-eligible instruction, or `None` for a run terminator.
    #[must_use]
    pub fn decode(inst: &Inst) -> Option<MicroOp> {
        match *inst {
            Inst::Li { rd, imm } => Some(MicroOp::Li { rd, imm }),
            Inst::Alu { op, rd, rs1, rs2 } => Some(match rs2 {
                Operand::Reg(rs2) => MicroOp::AluRR { op, rd, rs1, rs2 },
                #[allow(clippy::cast_sign_loss)]
                Operand::Imm(v) => MicroOp::AluRI {
                    op,
                    rd,
                    rs1,
                    imm: v as u64,
                },
            }),
            Inst::Nop => Some(MicroOp::Nop),
            _ => None,
        }
    }
}

/// A maximal (cap-bounded) straight-line stretch of run-eligible
/// micro-ops starting at some pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    ops: Vec<MicroOp>,
    cycles: u64,
}

impl Run {
    /// The micro-ops, in program order.
    #[must_use]
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of micro-ops in the run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the run is empty (never memoized; see [`BlockCache`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total cycle cost of the run: the sum of every micro-op's latency.
    /// Executing the run at cycle `c` leaves the core next ready at
    /// `c + cycles()` — the bulk cycle-accounting identity of DESIGN.md
    /// §12c.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// Per-pc memoization slot.
#[derive(Debug, Clone)]
enum Slot {
    /// Not decoded yet.
    Unknown,
    /// The instruction at this pc terminates a run (or the pc is past the
    /// end): there is nothing to batch here.
    Terminal,
    /// A memoized run of at least one micro-op.
    Cached(Run),
}

/// Per-core lazy cache of decoded [`Run`]s, keyed by a structural
/// fingerprint of the bound [`Program`].
///
/// The cache starts unbound; the first [`BlockCache::run_for`] call binds
/// it to the program's `(len, fingerprint)` key. A later call with a
/// program whose key differs — a different program object, or the same
/// slot reloaded with new code — clears every memoized slot and rebinds,
/// so stale runs can never execute (the "self-modifying config" edge in
/// DESIGN.md §12a).
///
/// Re-validation is O(1) on the hot path: alongside the structural key
/// the cache remembers the bound program's instruction-buffer address and
/// length, and a lookup whose program matches both skips the fingerprint
/// entirely. [`Program`] is immutable and a core owns its program for its
/// whole lifetime, so address + length equality implies structural
/// identity while the bound program is alive; callers that drop the bound
/// program and want to reuse the cache across allocations should start
/// from a fresh cache. The address is stored as a `usize`, never a
/// pointer — the cache must stay `Send` (the partitioned stepper moves
/// cores across worker threads) and is never dereferenced through it.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    key: Option<(usize, u64)>,
    /// `(buffer address, len)` of the program the key was computed from.
    bound: (usize, usize),
    slots: Vec<Slot>,
}

impl BlockCache {
    /// An empty, unbound cache.
    #[must_use]
    pub fn new() -> Self {
        BlockCache::default()
    }

    /// The run starting at `pc`, decoding and memoizing on first use.
    ///
    /// Returns `None` when the instruction at `pc` terminates a run
    /// (memory/MMIO/queue op, branch, jump, halt) or `pc` is past the end
    /// of the program — the interpreter path handles those.
    pub fn run_for(&mut self, program: &Program, pc: usize) -> Option<&Run> {
        let bound = (program.insts.as_ptr() as usize, program.len());
        if self.key.is_none() || self.bound != bound {
            let key = (program.len(), fingerprint(program));
            if self.key != Some(key) {
                self.key = Some(key);
                self.slots.clear();
                self.slots.resize(program.len(), Slot::Unknown);
            }
            self.bound = bound;
        }
        if pc >= self.slots.len() {
            return None;
        }
        if matches!(self.slots[pc], Slot::Unknown) {
            self.slots[pc] = decode_run(program, pc);
        }
        match &self.slots[pc] {
            Slot::Cached(run) => Some(run),
            _ => None,
        }
    }

    /// Number of memoized (non-empty) runs — exposed for tests.
    #[must_use]
    pub fn cached_runs(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Cached(_)))
            .count()
    }
}

/// Decodes the maximal run starting at `pc` (bounded by [`MAX_RUN_LEN`]).
fn decode_run(program: &Program, pc: usize) -> Slot {
    let mut ops = Vec::new();
    let mut cycles = 0u64;
    while ops.len() < MAX_RUN_LEN {
        let Some(inst) = program.fetch(pc + ops.len()) else {
            break;
        };
        let Some(op) = MicroOp::decode(inst) else {
            break;
        };
        cycles += op.latency();
        ops.push(op);
    }
    if ops.is_empty() {
        Slot::Terminal
    } else {
        ops.shrink_to_fit();
        Slot::Cached(Run { ops, cycles })
    }
}

/// Structural FNV-1a fingerprint of a program: every instruction's
/// discriminant and every field participates, so any in-place edit —
/// changed immediate, retargeted branch, swapped register — changes the
/// key. This doubles as the §12a block-cache keying spec: two programs
/// share cached runs iff they are structurally identical.
#[must_use]
pub fn fingerprint(program: &Program) -> u64 {
    let mut h = Fnv::new();
    h.u64(program.len() as u64);
    for inst in program {
        hash_inst(&mut h, inst);
    }
    h.finish()
}

#[allow(clippy::cast_sign_loss)]
fn hash_inst(h: &mut Fnv, inst: &Inst) {
    match *inst {
        Inst::Li { rd, imm } => {
            h.u64(0);
            h.u64(u64::from(rd.0));
            h.u64(imm);
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            h.u64(1);
            h.u64(op as u64);
            h.u64(u64::from(rd.0));
            h.u64(u64::from(rs1.0));
            match rs2 {
                Operand::Reg(r) => {
                    h.u64(0);
                    h.u64(u64::from(r.0));
                }
                Operand::Imm(v) => {
                    h.u64(1);
                    h.u64(v as u64);
                }
            }
        }
        Inst::Ld {
            rd,
            base,
            offset,
            size,
            class,
        } => {
            h.u64(2);
            h.u64(u64::from(rd.0));
            h.u64(u64::from(base.0));
            h.u64(offset as u64);
            h.u64(u64::from(size));
            h.u64(class as u64);
        }
        Inst::St {
            rs,
            base,
            offset,
            size,
        } => {
            h.u64(3);
            h.u64(u64::from(rs.0));
            h.u64(u64::from(base.0));
            h.u64(offset as u64);
            h.u64(u64::from(size));
        }
        Inst::Amo {
            op,
            rd,
            base,
            offset,
            size,
            rs,
            rs2,
        } => {
            h.u64(4);
            h.u64(op as u64);
            h.u64(u64::from(rd.0));
            h.u64(u64::from(base.0));
            h.u64(offset as u64);
            h.u64(u64::from(size));
            h.u64(u64::from(rs.0));
            h.u64(u64::from(rs2.0));
        }
        Inst::Prefetch { base, offset } => {
            h.u64(5);
            h.u64(u64::from(base.0));
            h.u64(offset as u64);
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            h.u64(6);
            h.u64(cond as u64);
            h.u64(u64::from(rs1.0));
            match rs2 {
                Operand::Reg(r) => {
                    h.u64(0);
                    h.u64(u64::from(r.0));
                }
                Operand::Imm(v) => {
                    h.u64(1);
                    h.u64(v as u64);
                }
            }
            h.u64(target as u64);
        }
        Inst::Jump { target } => {
            h.u64(7);
            h.u64(target as u64);
        }
        Inst::Nop => h.u64(8),
        Inst::Halt => h.u64(9),
        Inst::DescProduce { q, rs } => {
            h.u64(10);
            h.u64(u64::from(q));
            h.u64(u64::from(rs.0));
        }
        Inst::DescConsume { rd, q } => {
            h.u64(11);
            h.u64(u64::from(rd.0));
            h.u64(u64::from(q));
        }
        Inst::DescTryConsume { rd, q } => {
            h.u64(12);
            h.u64(u64::from(rd.0));
            h.u64(u64::from(q));
        }
        Inst::DescProduceLoad {
            q,
            base,
            offset,
            size,
        } => {
            h.u64(13);
            h.u64(u64::from(q));
            h.u64(u64::from(base.0));
            h.u64(offset as u64);
            h.u64(u64::from(size));
        }
    }
}

/// Minimal FNV-1a 64-bit hasher (the workspace is hermetic: no external
/// hash crates).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn compute_then_halt() -> Program {
        let mut b = ProgramBuilder::new();
        let x = b.reg("x");
        let y = b.reg("y");
        b.li(x, 5);
        b.addi(x, x, 1);
        b.add(y, x, x);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn decodes_maximal_run() {
        let p = compute_then_halt();
        let mut cache = BlockCache::new();
        let run = cache.run_for(&p, 0).expect("run at pc 0");
        assert_eq!(run.len(), 3, "li + addi + add, halt terminates");
        assert_eq!(run.cycles(), 3, "three 1-cycle ops");
        assert!(!run.is_empty());
    }

    #[test]
    fn terminators_yield_no_run() {
        let p = compute_then_halt();
        let mut cache = BlockCache::new();
        assert!(cache.run_for(&p, 3).is_none(), "halt is a terminator");
        assert!(cache.run_for(&p, 99).is_none(), "past the end");
        // Memoized terminal slots do not count as cached runs.
        assert_eq!(cache.cached_runs(), 0);
    }

    #[test]
    fn mul_latency_is_charged() {
        let p = Program::from_insts(vec![
            Inst::Alu {
                op: AluOp::Mul,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Operand::Imm(3),
            },
            Inst::Nop,
            Inst::Halt,
        ]);
        let mut cache = BlockCache::new();
        let run = cache.run_for(&p, 0).unwrap();
        assert_eq!(run.len(), 2);
        assert_eq!(run.cycles(), AluOp::Mul.latency() + 1);
    }

    #[test]
    fn memoizes_per_pc() {
        let p = compute_then_halt();
        let mut cache = BlockCache::new();
        let a = cache.run_for(&p, 0).unwrap().clone();
        let b = cache.run_for(&p, 0).unwrap().clone();
        assert_eq!(a, b);
        assert_eq!(cache.cached_runs(), 1);
        // A mid-run entry point (e.g. a branch target) gets its own run.
        let mid = cache.run_for(&p, 1).unwrap();
        assert_eq!(mid.len(), 2);
        assert_eq!(cache.cached_runs(), 2);
    }

    #[test]
    fn rebind_invalidates_stale_runs() {
        let p1 = compute_then_halt();
        let p2 = Program::from_insts(vec![Inst::Nop, Inst::Halt]);
        let mut cache = BlockCache::new();
        assert_eq!(cache.run_for(&p1, 0).unwrap().len(), 3);
        // Same cache, different program: the old run must not leak.
        assert_eq!(cache.run_for(&p2, 0).unwrap().len(), 1);
        assert_eq!(cache.cached_runs(), 1, "p1's runs were dropped");
        // And back again — re-decoded from scratch, same result.
        assert_eq!(cache.run_for(&p1, 0).unwrap().len(), 3);
    }

    #[test]
    fn alternating_programs_rebind_every_switch() {
        // Two structurally different programs of different lengths bounce
        // through one cache: every switch must re-validate (the addresses
        // differ, so the O(1) bound check falls through to the
        // fingerprint) and the right runs must come back each time.
        let p1 = compute_then_halt();
        let p2 = Program::from_insts(vec![Inst::Nop, Inst::Nop, Inst::Halt]);
        let mut cache = BlockCache::new();
        for _ in 0..4 {
            assert_eq!(cache.run_for(&p1, 0).unwrap().len(), 3);
            assert_eq!(cache.run_for(&p2, 0).unwrap().len(), 2);
        }
        assert_eq!(cache.cached_runs(), 1, "only p2's run survives");
    }

    #[test]
    fn fingerprint_sees_every_field() {
        let base = compute_then_halt();
        let fp = fingerprint(&base);
        // Change one immediate deep in an instruction.
        let mut edited: Vec<Inst> = base.iter().copied().collect();
        edited[0] = Inst::Li { rd: Reg(1), imm: 6 };
        assert_ne!(fp, fingerprint(&Program::from_insts(edited)));
        // Same instruction count, different discriminant.
        let mut swapped: Vec<Inst> = base.iter().copied().collect();
        swapped[3] = Inst::Nop;
        assert_ne!(fp, fingerprint(&Program::from_insts(swapped)));
        // Identity: structurally equal programs share the key.
        assert_eq!(fp, fingerprint(&compute_then_halt()));
    }

    #[test]
    fn run_cap_splits_long_blocks() {
        let insts: Vec<Inst> = std::iter::repeat_n(Inst::Nop, MAX_RUN_LEN + 10)
            .chain(std::iter::once(Inst::Halt))
            .collect();
        let p = Program::from_insts(insts);
        let mut cache = BlockCache::new();
        let head = cache.run_for(&p, 0).unwrap();
        assert_eq!(head.len(), MAX_RUN_LEN);
        let head_cycles = head.cycles();
        let tail = cache.run_for(&p, MAX_RUN_LEN).unwrap();
        assert_eq!(tail.len(), 10);
        // Cap-splitting is timing-neutral: the two runs together cost
        // exactly what one uncapped run would.
        assert_eq!(head_cycles + tail.cycles(), (MAX_RUN_LEN + 10) as u64);
    }

    #[test]
    fn imm_operand_matches_interpreter_cast() {
        // The interpreter reads Operand::Imm(v) as `v as u64`; the decoder
        // must bake the identical bit pattern.
        let p = Program::from_insts(vec![
            Inst::Alu {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(1),
                rs2: Operand::Imm(-1),
            },
            Inst::Halt,
        ]);
        let mut cache = BlockCache::new();
        let run = cache.run_for(&p, 0).unwrap();
        assert_eq!(
            run.ops()[0],
            MicroOp::AluRI {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(1),
                imm: u64::MAX,
            }
        );
    }
}
