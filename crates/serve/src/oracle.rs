//! The multi-tenant differential oracle.
//!
//! Sharing one SoC between tenants must never change what any tenant
//! computes. The oracle proves it the strong way: run the full
//! multi-tenant session (chaos, kills and all), then re-run **each
//! tenant solo on a clean system** — same spec, same seeded request
//! stream, no other tenants, no faults — and demand that every
//! request's output bytes are identical in both runs *and* equal to the
//! host reference. Any cross-tenant corruption (a stale replay-cache
//! hit, a leaked queue entry, a stale MMIO translation after a remap)
//! shows up as a byte diff on some request.
//!
//! The check is stepper-agnostic on purpose: the caller picks dense /
//! skipping / partitioned and fast-path on or off through
//! [`ServeConfig`], and the `serve_check` CI gate byte-diffs the whole
//! grid across `MAPLE_JOBS` values.

use crate::sim::{serve, ServeConfig, ServingSummary};

/// Runs the multi-tenant session and the per-tenant solo sessions,
/// byte-comparing every request's output.
///
/// Returns the multi-tenant summary on success.
///
/// # Errors
///
/// Returns which tenant and request diverged (or failed verification)
/// on the first violation.
pub fn differential_check(cfg: &ServeConfig) -> Result<ServingSummary, String> {
    let (multi, summary) = serve(cfg.clone());
    if !summary.verified {
        let missing = summary.total_requests - summary.completed;
        return Err(format!(
            "multi-tenant session left {missing} requests unverified"
        ));
    }
    for (t, spec) in cfg.tenants.iter().enumerate() {
        let mut solo_cfg = cfg.clone();
        solo_cfg.tenants = vec![spec.clone()];
        solo_cfg.chaos = None;
        solo_cfg.kill_engine = None;
        let (solo, solo_summary) = serve(solo_cfg);
        if !solo_summary.verified {
            return Err(format!("solo run of tenant {} failed to verify", spec.name));
        }
        let shared = &multi.outputs()[t];
        let alone = &solo.outputs()[0];
        for (i, (a, b)) in shared.iter().zip(alone).enumerate() {
            if a != b {
                return Err(format!(
                    "tenant {} request {i}: multi-tenant output diverged from solo run",
                    spec.name
                ));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maple_workloads::oracle::chaos_schedules;

    #[test]
    fn quick_grid_is_isolation_clean() {
        let cfg = ServeConfig::quick(42);
        let summary = differential_check(&cfg).expect("skipping stepper");
        assert!(summary.verified);
        assert_eq!(summary.completed, summary.total_requests);

        let mut dense = ServeConfig::quick(42);
        dense.dense = true;
        differential_check(&dense).expect("dense stepper");
    }

    #[test]
    fn chaos_session_stays_isolated() {
        // A recoverable schedule: the recovery machinery must absorb the
        // faults without a single cross-tenant byte flip.
        let mut cfg = ServeConfig::quick(7);
        cfg.chaos = Some(chaos_schedules(7)[0].plane.clone());
        let summary = differential_check(&cfg).expect("recoverable chaos");
        assert!(summary.verified);
    }

    #[test]
    fn one_cluster_session_matches_flat() {
        // The serving stack must not notice the degenerate hierarchy:
        // identical outputs AND an identical summary (latencies, switch
        // counts, batch rounds) when the flat mesh is re-expressed as a
        // single crossbar cluster.
        let flat_cfg = ServeConfig::quick(42);
        let soc = flat_cfg.soc_config();
        let tiles = usize::from(soc.mesh_width) * usize::from(soc.mesh_height);
        let mut one_cfg = flat_cfg.clone();
        one_cfg.cluster = Some(maple_soc::ClusterConfig::new(tiles, 1, 1));
        let (flat, flat_summary) = serve(flat_cfg);
        let (one, one_summary) = serve(one_cfg);
        assert_eq!(flat.outputs(), one.outputs(), "1-cluster outputs diverged from flat");
        assert_eq!(
            format!("{flat_summary:?}"),
            format!("{one_summary:?}"),
            "1-cluster serving summary diverged from flat"
        );
    }

    #[test]
    fn clustered_session_stays_isolated() {
        // Per-cluster MAPLE pools and banked L2 must not weaken tenant
        // isolation: the full differential (multi vs solo per tenant)
        // on a live 2x2 hierarchy, then again under recoverable chaos
        // with an engine kill so context switches and degradations cross
        // cluster boundaries.
        let mut cfg = ServeConfig::quick(42);
        cfg.cluster = Some(maple_soc::ClusterConfig::new(9, 2, 2));
        let summary = differential_check(&cfg).expect("clustered session");
        assert!(summary.verified);
        assert_eq!(summary.completed, summary.total_requests);

        let mut chaotic = cfg.clone();
        chaotic.chaos = Some(chaos_schedules(7)[0].plane.clone());
        chaotic.kill_engine = Some((4_000, 1));
        let summary = differential_check(&chaotic).expect("clustered chaos + kill");
        assert!(summary.verified);
    }

    #[test]
    fn engine_kill_degrades_without_corruption() {
        let mut cfg = ServeConfig::quick(13);
        cfg.kill_engine = Some((4_000, 1));
        let summary = differential_check(&cfg).expect("engine kill");
        assert_eq!(summary.engines_killed, 1);
        assert!(summary.degraded_dispatches > 0, "dead engine lanes served sw-dec");
        assert!(summary.verified);
    }
}
