//! The multi-tenant differential oracle.
//!
//! Sharing one SoC between tenants must never change what any tenant
//! computes. The oracle proves it the strong way: run the full
//! multi-tenant session (chaos, kills and all), then re-run **each
//! tenant solo on a clean system** — same spec, same seeded request
//! stream, no other tenants, no faults — and demand that every
//! request's output bytes are identical in both runs *and* equal to the
//! host reference. Any cross-tenant corruption (a stale replay-cache
//! hit, a leaked queue entry, a stale MMIO translation after a remap)
//! shows up as a byte diff on some request.
//!
//! The check is stepper-agnostic on purpose: the caller picks dense /
//! skipping / partitioned and fast-path on or off through
//! [`ServeConfig`], and the `serve_check` CI gate byte-diffs the whole
//! grid across `MAPLE_JOBS` values.

use crate::sim::{serve, ServeConfig, ServingSummary};

/// Runs the multi-tenant session and the per-tenant solo sessions,
/// byte-comparing every request's output.
///
/// Returns the multi-tenant summary on success.
///
/// # Errors
///
/// Returns which tenant and request diverged (or failed verification)
/// on the first violation.
pub fn differential_check(cfg: &ServeConfig) -> Result<ServingSummary, String> {
    let (multi, summary) = serve(cfg.clone());
    if !summary.verified {
        let missing = summary.total_requests - summary.completed;
        return Err(format!(
            "multi-tenant session left {missing} requests unverified"
        ));
    }
    for (t, spec) in cfg.tenants.iter().enumerate() {
        let mut solo_cfg = cfg.clone();
        solo_cfg.tenants = vec![spec.clone()];
        solo_cfg.chaos = None;
        solo_cfg.kill_engine = None;
        let (solo, solo_summary) = serve(solo_cfg);
        if !solo_summary.verified {
            return Err(format!("solo run of tenant {} failed to verify", spec.name));
        }
        let shared = &multi.outputs()[t];
        let alone = &solo.outputs()[0];
        for (i, (a, b)) in shared.iter().zip(alone).enumerate() {
            if a != b {
                return Err(format!(
                    "tenant {} request {i}: multi-tenant output diverged from solo run",
                    spec.name
                ));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maple_workloads::oracle::chaos_schedules;

    #[test]
    fn quick_grid_is_isolation_clean() {
        let cfg = ServeConfig::quick(42);
        let summary = differential_check(&cfg).expect("skipping stepper");
        assert!(summary.verified);
        assert_eq!(summary.completed, summary.total_requests);

        let mut dense = ServeConfig::quick(42);
        dense.dense = true;
        differential_check(&dense).expect("dense stepper");
    }

    #[test]
    fn chaos_session_stays_isolated() {
        // A recoverable schedule: the recovery machinery must absorb the
        // faults without a single cross-tenant byte flip.
        let mut cfg = ServeConfig::quick(7);
        cfg.chaos = Some(chaos_schedules(7)[0].plane.clone());
        let summary = differential_check(&cfg).expect("recoverable chaos");
        assert!(summary.verified);
    }

    #[test]
    fn engine_kill_degrades_without_corruption() {
        let mut cfg = ServeConfig::quick(13);
        cfg.kill_engine = Some((4_000, 1));
        let summary = differential_check(&cfg).expect("engine kill");
        assert_eq!(summary.engines_killed, 1);
        assert!(summary.degraded_dispatches > 0, "dead engine lanes served sw-dec");
        assert!(summary.verified);
    }
}
