//! The serving driver: tenant scheduler plus MAPLE engine
//! virtualization over one cycle-accurate [`System`].
//!
//! # Execution model
//!
//! The driver runs **batch rounds** against a single resident system —
//! the cycle-accurate model is never forked. Each round it (1) applies
//! any due administrative engine kill, (2) assigns every live engine to
//! one tenant with arrived requests (round-robin across rounds, one
//! tenant per engine per round — engine-tenant exclusivity is what makes
//! the isolation argument local), (3) context-switches engines whose
//! occupant changes, (4) reloads the engine's serving lanes with that
//! tenant's next requests, and (5) steps the whole SoC until every lane
//! halts. Cores on lanes without work simply stay halted; halted cores
//! cost no cycles under the event-horizon steppers.
//!
//! # Engine virtualization
//!
//! A context switch on engine `e` from tenant `a` to tenant `b` is the
//! driver-level sequence the paper's driver would perform:
//!
//! 1. **save** — [`System::save_engine_context`] captures `a`'s
//!    architectural engine state ([`maple_core::EngineContext`]);
//! 2. **remap** — [`System::remap_maple`] moves the engine's MMIO page
//!    to a fresh user VA, broadcasting a TLB shootdown for the old
//!    translation to every core and engine, so no stale mapping can
//!    reach `b`'s instance (property-tested in `maple-vm`);
//! 3. **restore** — `b`'s saved context is restored, or the engine is
//!    [`System::reset_engine`]-reset for a first-time occupant.
//!
//! Switches happen only at batch boundaries, when the SoC is quiescent
//! (all cores halted, no outstanding MMIO), so no in-flight transaction
//! can straddle two tenants. The MMIO replay (dedup) cache is flushed at
//! the same boundaries ([`System::flush_engine_replay_caches`]): lane
//! cores are reloaded per request and restart their L1 transaction ids,
//! so a stale completed entry could otherwise replay one tenant's value
//! into the next request. The switch is charged
//! [`CONTEXT_SWITCH_CYCLES`] on the serving clock.
//!
//! # Serving clock
//!
//! Latencies are measured on a **virtual clock**: the simulated cycle
//! counter plus (a) charged context-switch overhead and (b) idle
//! fast-forwards to the next arrival, so an idle server does not burn
//! simulated cycles waiting. Arrival schedules and the clock share the
//! cycle unit.
//!
//! # Degradation
//!
//! Requests are dispatched at the top of the harness fallback ladder
//! (maple-dec). A request whose output fails the byte-exact host check
//! — or whose batch hangs — is re-dispatched solo one rung down
//! (sw-dec, then do-all), and every descent is recorded as a
//! [`FaultReport`] tagged with the triggering tenant. Requests routed to
//! a killed engine's lanes start directly at sw-dec: the lanes outlive
//! the engine, so an engine failure costs latency, never correctness —
//! and never leaks state across tenants.

use std::collections::HashMap;
use std::collections::VecDeque;

use maple_baselines::swdec::SwQueueLayout;
use maple_core::EngineContext;
use maple_isa::builder::ProgramBuilder;
use maple_isa::Program;
use maple_sim::fault::FaultPlaneConfig;
use maple_sim::stats::Histogram;
use maple_sim::Cycle;
use maple_soc::config::SocConfig;
use maple_soc::system::System;
use maple_trace::{MetricsSnapshot, TraceConfig, TraceEvent};
use maple_vm::VAddr;
use maple_workloads::data::Csr;
use maple_workloads::harness::{alloc_u32, FaultReport, MAX_CYCLES};
use maple_workloads::slice::{
    doall_query, maple_access_query, maple_execute_query, swdec_access_query,
    swdec_execute_query, upload_tenant, TenantArrays,
};

use crate::request::{Request, TenantSpec};

/// Cycles charged to the serving clock per engine context switch,
/// modeling the driver's save/restore MMIO traffic, the page-table
/// remap, and the shootdown IPI round. The charge is architectural
/// bookkeeping (the simulated save/restore itself is instantaneous), so
/// it is a named constant rather than a measured quantity.
pub const CONTEXT_SWITCH_CYCLES: u64 = 400;

/// Configuration of one serving session.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The tenants sharing the SoC.
    pub tenants: Vec<TenantSpec>,
    /// MAPLE instances on the mesh.
    pub maples: usize,
    /// Serving lanes (queue + Access/Execute core pair) per engine.
    pub lanes_per_engine: usize,
    /// Chaos plane installed for the whole session (recoverable
    /// schedules keep results byte-exact through the recovery
    /// machinery).
    pub chaos: Option<FaultPlaneConfig>,
    /// Administrative engine kill: at serving-clock time `.0`, engine
    /// `.1` is unmapped and stays dead — its lanes keep serving on the
    /// software rungs.
    pub kill_engine: Option<(u64, usize)>,
    /// Use the dense reference stepper instead of event-horizon
    /// skipping.
    pub dense: bool,
    /// Spatial partitions (`> 1` selects the parallel stepper).
    pub partitions: usize,
    /// Enable the compiled core fast path.
    pub fast_path: bool,
    /// Hierarchical fabric: group tiles into crossbar clusters with a
    /// banked L2 (`None` keeps the flat mesh).
    pub cluster: Option<maple_soc::ClusterConfig>,
    /// Observability tracing for the session.
    pub trace: Option<TraceConfig>,
}

impl ServeConfig {
    /// A small session for tests and CI gates: three tenants, two
    /// engines, two lanes each.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ServeConfig {
            tenants: vec![
                TenantSpec::quick("alpha", seed ^ 0x11),
                TenantSpec::quick("beta", seed ^ 0x22),
                TenantSpec::quick("gamma", seed ^ 0x33),
            ],
            maples: 2,
            lanes_per_engine: 2,
            chaos: None,
            kill_engine: None,
            dense: false,
            partitions: 1,
            fast_path: false,
            cluster: None,
            trace: None,
        }
    }

    /// The benchmark session: four tenants with asymmetric load, a
    /// thousand-cycle arrival scale, enough requests for stable tail
    /// percentiles.
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        let tenant = |name: &str, requests, mean_gap, s| TenantSpec {
            name: name.to_string(),
            rows: 96,
            cols: 16 * 1024,
            nnz_per_row: 6,
            requests,
            mean_gap,
            slice_rows: 16,
            seed: s,
        };
        ServeConfig {
            tenants: vec![
                tenant("alpha", 90, 1_200, seed ^ 0x11),
                tenant("beta", 90, 1_200, seed ^ 0x22),
                tenant("gamma", 60, 2_000, seed ^ 0x33),
                tenant("delta", 30, 4_000, seed ^ 0x44),
            ],
            maples: 2,
            lanes_per_engine: 2,
            chaos: None,
            kill_engine: None,
            dense: false,
            partitions: 1,
            fast_path: false,
            cluster: None,
            trace: None,
        }
    }

    /// Serving lanes in total.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.maples * self.lanes_per_engine
    }

    /// The SoC configuration the session runs on: two cores per lane
    /// (Access + Execute), one MAPLE instance per engine.
    #[must_use]
    pub fn soc_config(&self) -> SocConfig {
        let mut cfg = SocConfig::fpga_prototype()
            .with_cores(2 * self.lanes())
            .with_maples(self.maples)
            .with_fast_path(self.fast_path);
        if let Some(shape) = self.cluster {
            cfg = cfg.with_clusters(shape);
        }
        if self.dense {
            cfg = cfg.with_dense_stepper();
        }
        if self.partitions > 1 {
            cfg = cfg.with_partitions(self.partitions);
        }
        if let Some(plane) = &self.chaos {
            cfg = cfg.with_fault_plane(plane.clone());
        }
        if let Some(trace) = self.trace {
            cfg = cfg.with_tracing(trace);
        }
        cfg
    }
}

/// Per-tenant latency and throughput digest.
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Tenant name.
    pub name: String,
    /// Requests completed byte-exact.
    pub completed: u64,
    /// Requests that failed even the bottom ladder rung (should be
    /// zero; any value here also clears [`ServingSummary::verified`]).
    pub failed: u64,
    /// Median request latency in cycles.
    pub p50: u64,
    /// 99th-percentile request latency in cycles.
    pub p99: u64,
    /// Worst request latency in cycles.
    pub max: u64,
    /// Mean request latency in cycles.
    pub mean: f64,
    /// Requests per million serving-clock cycles over the tenant's
    /// active window (first arrival to last completion).
    pub throughput: f64,
}

/// Everything a serving session reports.
#[derive(Debug, Clone)]
pub struct ServingSummary {
    /// Per-tenant digests, in tenant order.
    pub tenants: Vec<TenantSummary>,
    /// Overall median latency in cycles.
    pub p50: u64,
    /// Overall tail latency in cycles.
    pub p99: u64,
    /// Overall worst latency in cycles.
    pub max: u64,
    /// Requests offered across all tenants.
    pub total_requests: u64,
    /// Requests completed byte-exact.
    pub completed: u64,
    /// Serving-clock span of the session in cycles.
    pub elapsed: u64,
    /// Raw simulated cycles consumed (elapsed minus charges and idle
    /// fast-forwards).
    pub sim_cycles: u64,
    /// Engine context switches performed.
    pub context_switches: u64,
    /// Serving-clock cycles charged for context switches.
    pub switch_cycles: u64,
    /// MMIO page remaps performed (one per switch, plus unmaps from
    /// kills).
    pub remaps: u64,
    /// Engines administratively killed mid-session.
    pub engines_killed: u64,
    /// Requests that ran below the top ladder rung (dead-engine
    /// dispatches and descents).
    pub degraded_dispatches: u64,
    /// One report per ladder descent, tagged with the triggering
    /// tenant.
    pub descents: Vec<FaultReport>,
    /// Batch rounds executed.
    pub batches: u64,
    /// Whether every request completed byte-exact against the host
    /// reference.
    pub verified: bool,
}

impl ServingSummary {
    /// Max/min ratio of per-tenant throughput (1.0 is perfectly fair;
    /// 0.0 when fewer than one tenant completed anything).
    #[must_use]
    pub fn fairness(&self) -> f64 {
        let rates: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| t.completed > 0)
            .map(|t| t.throughput)
            .collect();
        let lo = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().copied().fold(0.0f64, f64::max);
        if rates.is_empty() || lo <= 0.0 {
            0.0
        } else {
            hi / lo
        }
    }

    /// Ladder descents across the session.
    #[must_use]
    pub fn ladder_descents(&self) -> u64 {
        self.descents.len() as u64
    }
}

struct TenantState {
    csr: Csr,
    x: Vec<u32>,
    arrays: TenantArrays,
    pending: VecDeque<Request>,
    hist: Histogram,
    completed: u64,
    failed: u64,
    first_arrival: u64,
    last_completion: u64,
}

struct Lane {
    out: VAddr,
    ring: VAddr,
    layout: SwQueueLayout,
}

struct Dispatch {
    req: Request,
    lane: usize,
    engine: usize,
    rung: u64,
}

/// The serving session driver. Construct with [`ServeSim::new`], run
/// with [`ServeSim::run`], then read per-request outputs (for the
/// differential oracle) with [`ServeSim::outputs`] and merged metrics
/// with [`ServeSim::metrics`].
pub struct ServeSim {
    cfg: ServeConfig,
    sys: System,
    tenants: Vec<TenantState>,
    lanes: Vec<Lane>,
    contexts: HashMap<(usize, u64), EngineContext>,
    engine_tenant: Vec<Option<u64>>,
    engine_dead: Vec<bool>,
    kill_pending: Option<(u64, usize)>,
    rr: usize,
    vextra: u64,
    switches: u64,
    switch_cycles: u64,
    remaps: u64,
    engines_killed: u64,
    degraded_dispatches: u64,
    descents: Vec<FaultReport>,
    batches: u64,
    outputs: Vec<Vec<Option<Vec<u32>>>>,
    summary: Option<ServingSummary>,
}

fn halt_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.halt();
    b.build().expect("halt program builds")
}

impl ServeSim {
    /// Builds the resident system: uploads every tenant's dataset,
    /// allocates per-lane output and ring buffers, loads every core
    /// with a trivial halt program (so any lane can be reloaded per
    /// request), and maps every MAPLE instance.
    ///
    /// # Panics
    ///
    /// Panics when the config is degenerate (no tenants, no engines,
    /// no lanes) or asks for more lanes per engine than the engine has
    /// queues.
    #[must_use]
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(!cfg.tenants.is_empty(), "at least one tenant is required");
        assert!(cfg.maples > 0, "at least one engine is required");
        assert!(cfg.lanes_per_engine > 0, "at least one lane is required");
        let mut sys = System::new(cfg.soc_config());
        assert!(
            cfg.lanes_per_engine <= sys.engine(0).config().queues,
            "one queue per lane is required"
        );
        let tenants: Vec<TenantState> = cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(t, spec)| {
                let (csr, x) = spec.dataset();
                let arrays = upload_tenant(&mut sys, &csr, &x);
                let pending: VecDeque<Request> = spec.schedule(t as u64).into();
                let first_arrival = pending.front().map_or(0, |r| r.arrival);
                TenantState {
                    csr,
                    x,
                    arrays,
                    pending,
                    hist: Histogram::new(),
                    completed: 0,
                    failed: 0,
                    first_arrival,
                    last_completion: 0,
                }
            })
            .collect();
        let max_rows = cfg.tenants.iter().map(|t| t.slice_rows.max(1)).max().unwrap();
        let lanes: Vec<Lane> = (0..cfg.lanes())
            .map(|_| {
                let layout = SwQueueLayout::new(64);
                Lane {
                    out: alloc_u32(&mut sys, max_rows),
                    ring: sys.alloc(layout.bytes()),
                    layout,
                }
            })
            .collect();
        for _ in 0..2 * cfg.lanes() {
            sys.load_program(halt_program(), &[]);
        }
        for e in 0..cfg.maples {
            sys.map_maple(e);
        }
        let outputs = cfg
            .tenants
            .iter()
            .map(|t| vec![None; t.requests])
            .collect();
        ServeSim {
            engine_tenant: vec![None; cfg.maples],
            engine_dead: vec![false; cfg.maples],
            kill_pending: cfg.kill_engine,
            cfg,
            sys,
            tenants,
            lanes,
            contexts: HashMap::new(),
            rr: 0,
            vextra: 0,
            switches: 0,
            switch_cycles: 0,
            remaps: 0,
            engines_killed: 0,
            degraded_dispatches: 0,
            descents: Vec::new(),
            batches: 0,
            outputs,
            summary: None,
        }
    }

    fn vnow(&self) -> u64 {
        self.sys.now().0 + self.vextra
    }

    /// Save the occupant, remap the MMIO page (with shootdown), restore
    /// or reset for the incoming tenant, and charge the switch.
    fn context_switch(&mut self, e: usize, t: u64) {
        let ts = self.vnow();
        if let Some(old) = self.engine_tenant[e] {
            let ctx = self.sys.save_engine_context(e);
            self.contexts.insert((e, old), ctx);
        }
        self.sys.remap_maple(e);
        self.remaps += 1;
        match self.contexts.remove(&(e, t)) {
            Some(ctx) => self.sys.restore_engine_context(e, ctx),
            None => self.sys.reset_engine(e),
        }
        self.engine_tenant[e] = Some(t);
        self.switches += 1;
        self.switch_cycles += CONTEXT_SWITCH_CYCLES;
        self.vextra += CONTEXT_SWITCH_CYCLES;
        self.sys.tracer().emit(Cycle(ts), || TraceEvent::ServeSwitch {
            engine: e,
            tenant: t,
            cost: CONTEXT_SWITCH_CYCLES,
        });
    }

    /// Load one request onto a lane's core pair at the given ladder
    /// rung. The output buffer is zeroed first so a lane reused across
    /// requests can never satisfy the byte-exact check with a previous
    /// request's stale result.
    fn load_lane(&mut self, req: &Request, lane: usize, engine: usize, rung: u64) {
        let rows = req.query.rows();
        let lane_state = &self.lanes[lane];
        let out = lane_state.out;
        let ring = lane_state.ring;
        let layout = lane_state.layout;
        self.sys.write_slice_u32(out, &vec![0u32; rows.max(1)]);
        let arrays = self.tenants[req.tenant as usize].arrays;
        let (a_core, e_core) = (2 * lane, 2 * lane + 1);
        match rung {
            0 => {
                let q = (lane % self.cfg.lanes_per_engine) as u8;
                let va = self
                    .sys
                    .maple_va(engine)
                    .expect("dispatching on an unmapped engine");
                let (ap, ab) = maple_access_query(&req.query, &arrays, va, q);
                let (ep, eb) = maple_execute_query(&req.query, &arrays, out, va, q);
                self.sys.reload_core(a_core, ap, &ab);
                self.sys.reload_core(e_core, ep, &eb);
            }
            1 => {
                let (ap, ab) = swdec_access_query(&req.query, &arrays, ring, &layout);
                let (ep, eb) = swdec_execute_query(&req.query, &arrays, out, ring, &layout);
                // Reset the ring's head/tail words from the previous
                // request on this lane.
                self.sys
                    .write_slice_u32(ring, &vec![0u32; (layout.bytes() / 4) as usize]);
                self.sys.reload_core(a_core, ap, &ab);
                self.sys.reload_core(e_core, ep, &eb);
            }
            _ => {
                let (p, b) = doall_query(&req.query, &arrays, out);
                self.sys.reload_core(a_core, p, &b);
            }
        }
        let ts = self.vnow();
        self.sys.tracer().emit(Cycle(ts), || TraceEvent::ServeDispatch {
            engine,
            tenant: req.tenant,
            rung: rung as u8,
        });
        if rung > 0 {
            self.degraded_dispatches += 1;
        }
    }

    /// Step the SoC until every lane halts, then flush the engines'
    /// MMIO replay caches (lane reloads restart L1 transaction ids; see
    /// the module docs). Returns whether the batch finished.
    fn step_batch(&mut self) -> bool {
        let finished = self.sys.run(MAX_CYCLES).is_finished();
        self.sys.flush_engine_replay_caches();
        self.batches += 1;
        finished
    }

    /// Read a completed dispatch's output and settle the request:
    /// byte-exact against the host reference records a completion;
    /// anything else descends the ladder solo until a rung verifies.
    fn settle(&mut self, d: &Dispatch, batch_ok: bool) {
        let rows = d.req.query.rows();
        let tid = d.req.tenant as usize;
        let expected = {
            let ts = &self.tenants[tid];
            d.req.query.reference(&ts.csr, &ts.x)
        };
        let mut got = self.sys.read_slice_u32(self.lanes[d.lane].out, rows);
        let mut ok = batch_ok && got == expected;
        let mut rung = d.rung;
        while !ok && rung < 2 {
            rung += 1;
            self.descents.push(FaultReport {
                ladder_rung: rung,
                tenant: Some(d.req.tenant),
                ..FaultReport::default()
            });
            self.load_lane(&d.req, d.lane, d.engine, rung);
            let solo_ok = self.step_batch();
            got = self.sys.read_slice_u32(self.lanes[d.lane].out, rows);
            ok = solo_ok && got == expected;
        }
        let completion = self.vnow();
        let ts = &mut self.tenants[tid];
        if ok {
            ts.hist.record(completion - d.req.arrival);
            ts.completed += 1;
            ts.last_completion = ts.last_completion.max(completion);
            // The oracle compares the bytes the simulation produced;
            // `ok` just proved they equal the host reference.
            self.outputs[tid][d.req.index] = Some(got);
        } else {
            ts.failed += 1;
        }
    }

    /// Runs the session to completion and returns its summary.
    pub fn run(&mut self) -> ServingSummary {
        let ntenants = self.tenants.len();
        loop {
            let vnow = self.vnow();
            if let Some((at, e)) = self.kill_pending {
                if vnow >= at {
                    self.kill_pending = None;
                    if e < self.cfg.maples && !self.engine_dead[e] {
                        // An occupant's future requests are forced down
                        // the ladder; record the degradation against it.
                        if let Some(t) = self.engine_tenant[e] {
                            self.descents.push(FaultReport {
                                ladder_rung: 1,
                                tenant: Some(t),
                                ..FaultReport::default()
                            });
                        }
                        self.sys.unmap_maple(e);
                        self.engine_dead[e] = true;
                        self.engine_tenant[e] = None;
                        self.engines_killed += 1;
                    }
                }
            }
            if self.tenants.iter().all(|t| t.pending.is_empty()) {
                break;
            }
            let arrived: Vec<usize> = (0..ntenants)
                .filter(|&t| {
                    self.tenants[t]
                        .pending
                        .front()
                        .is_some_and(|r| r.arrival <= vnow)
                })
                .collect();
            if arrived.is_empty() {
                // Open-loop idle: fast-forward the serving clock to the
                // next arrival instead of burning simulated cycles.
                let next = self
                    .tenants
                    .iter()
                    .filter_map(|t| t.pending.front().map(|r| r.arrival))
                    .min()
                    .expect("pending requests exist");
                self.vextra += next - vnow;
                continue;
            }
            // Assign each engine one tenant, rotating priority across
            // rounds so no tenant can be starved by an earlier index.
            let mut taken = vec![false; ntenants];
            let mut batch: Vec<Dispatch> = Vec::new();
            for e in 0..self.cfg.maples {
                let pick = (0..ntenants)
                    .map(|i| (self.rr + i) % ntenants)
                    .find(|&t| arrived.contains(&t) && !taken[t]);
                let Some(t) = pick else { break };
                taken[t] = true;
                self.rr = (t + 1) % ntenants;
                let rung = if self.engine_dead[e] {
                    1
                } else {
                    if self.engine_tenant[e] != Some(t as u64) {
                        self.context_switch(e, t as u64);
                    }
                    0
                };
                for q in 0..self.cfg.lanes_per_engine {
                    let due = self.tenants[t]
                        .pending
                        .front()
                        .is_some_and(|r| r.arrival <= vnow);
                    if !due {
                        break;
                    }
                    let req = self.tenants[t].pending.pop_front().expect("due request");
                    let lane = e * self.cfg.lanes_per_engine + q;
                    self.load_lane(&req, lane, e, rung);
                    batch.push(Dispatch {
                        req,
                        lane,
                        engine: e,
                        rung,
                    });
                }
            }
            let batch_ok = self.step_batch();
            for d in std::mem::take(&mut batch) {
                self.settle(&d, batch_ok);
            }
        }
        let summary = self.summarize();
        self.summary = Some(summary.clone());
        summary
    }

    fn summarize(&self) -> ServingSummary {
        // Bucketed percentiles report the bucket's upper bound, which
        // can overshoot the exact recorded maximum; clamp so the digest
        // always satisfies p50 <= p99 <= max.
        fn pct(h: &Histogram, p: f64) -> u64 {
            h.percentile(p)
                .unwrap_or(0)
                .min(h.max().unwrap_or(0))
        }
        let mut all = Histogram::new();
        let tenants: Vec<TenantSummary> = self
            .cfg
            .tenants
            .iter()
            .zip(&self.tenants)
            .map(|(spec, st)| {
                all.merge(&st.hist);
                let window = st.last_completion.saturating_sub(st.first_arrival);
                TenantSummary {
                    name: spec.name.clone(),
                    completed: st.completed,
                    failed: st.failed,
                    p50: pct(&st.hist, 50.0),
                    p99: pct(&st.hist, 99.0),
                    max: st.hist.max().unwrap_or(0),
                    mean: st.hist.mean(),
                    throughput: if window == 0 {
                        0.0
                    } else {
                        st.completed as f64 * 1.0e6 / window as f64
                    },
                }
            })
            .collect();
        let total_requests = self.cfg.tenants.iter().map(|t| t.requests as u64).sum();
        let completed = tenants.iter().map(|t| t.completed).sum();
        ServingSummary {
            p50: pct(&all, 50.0),
            p99: pct(&all, 99.0),
            max: all.max().unwrap_or(0),
            tenants,
            total_requests,
            completed,
            elapsed: self.vnow(),
            sim_cycles: self.sys.now().0,
            context_switches: self.switches,
            switch_cycles: self.switch_cycles,
            remaps: self.remaps,
            engines_killed: self.engines_killed,
            degraded_dispatches: self.degraded_dispatches,
            descents: self.descents.clone(),
            batches: self.batches,
            verified: completed == total_requests,
        }
    }

    /// Per-request outputs, indexed `[tenant][request index]` (`None`
    /// for requests that never completed). This is what the
    /// multi-tenant differential oracle byte-compares against solo
    /// runs.
    #[must_use]
    pub fn outputs(&self) -> &[Vec<Option<Vec<u32>>>] {
        &self.outputs
    }

    /// The underlying system, for trace export and inspection.
    #[must_use]
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// The system's unified metrics snapshot extended with the serving
    /// plane's own counters and latency histograms under `serve/…`.
    ///
    /// # Panics
    ///
    /// Panics when called before [`ServeSim::run`].
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = self
            .summary
            .as_ref()
            .expect("metrics() is available after run()");
        let mut m = self.sys.metrics_snapshot();
        m.counter("serve/requests", s.total_requests);
        m.counter("serve/completed", s.completed);
        m.counter("serve/batches", s.batches);
        m.counter("serve/context_switches", s.context_switches);
        m.counter("serve/switch_cycles", s.switch_cycles);
        m.counter("serve/remaps", s.remaps);
        m.counter("serve/engines_killed", s.engines_killed);
        m.counter("serve/degraded_dispatches", s.degraded_dispatches);
        m.counter("serve/ladder_descents", s.ladder_descents());
        m.counter("serve/elapsed_vcycles", s.elapsed);
        m.gauge("serve/fairness", s.fairness());
        for (spec, st) in self.cfg.tenants.iter().zip(&self.tenants) {
            m.counter(format!("serve/{}/completed", spec.name), st.completed);
            m.histogram(format!("serve/{}/latency", spec.name), &st.hist);
        }
        m
    }
}

/// Convenience one-shot: build, run, and return the driver with its
/// summary.
#[must_use]
pub fn serve(cfg: ServeConfig) -> (ServeSim, ServingSummary) {
    let mut sim = ServeSim::new(cfg);
    let summary = sim.run();
    (sim, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_session_completes_every_request() {
        let (_, s) = serve(ServeConfig::quick(1));
        assert!(s.verified, "all requests byte-exact");
        assert_eq!(s.completed, s.total_requests);
        assert_eq!(s.total_requests, 30);
        // Three tenants share two engines, so occupancy must rotate.
        assert!(s.context_switches > 2, "engines rotated between tenants");
        assert_eq!(s.remaps, s.context_switches, "one remap per switch");
        assert_eq!(s.switch_cycles, s.context_switches * CONTEXT_SWITCH_CYCLES);
        assert!(s.p50 > 0 && s.p99 >= s.p50 && s.max >= s.p99);
        assert!(s.fairness() >= 1.0);
        assert!(s.elapsed >= s.sim_cycles, "vclock includes charges and idles");
    }

    #[test]
    fn single_tenant_single_engine_switches_once() {
        let mut cfg = ServeConfig::quick(5);
        cfg.tenants.truncate(1);
        cfg.maples = 1;
        let (_, s) = serve(cfg);
        assert!(s.verified);
        assert_eq!(s.context_switches, 1, "only the cold switch");
        assert!(s.descents.is_empty());
    }

    #[test]
    fn engine_kill_forces_ladder_descent_for_occupant() {
        let mut cfg = ServeConfig::quick(3);
        cfg.kill_engine = Some((1, 0)); // kill before the first batch
        let (_, s) = serve(cfg);
        assert!(s.verified, "kill costs latency, not correctness");
        assert_eq!(s.engines_killed, 1);
        assert!(s.degraded_dispatches > 0);
        // The surviving engine still context-switches.
        assert!(s.context_switches > 0);
    }

    #[test]
    fn descent_reports_carry_the_tenant_tag() {
        let mut cfg = ServeConfig::quick(9);
        cfg.kill_engine = Some((8_000, 1)); // mid-session, while occupied
        let (_, s) = serve(cfg);
        assert!(s.verified);
        assert_eq!(s.engines_killed, 1);
        for report in &s.descents {
            assert!(report.tenant.is_some(), "descent names its tenant");
            assert!(report.ladder_rung >= 1);
        }
    }

    #[test]
    fn partitioned_and_fast_path_sessions_match_skipping() {
        let base = serve(ServeConfig::quick(21)).1;
        let mut part = ServeConfig::quick(21);
        part.partitions = 4;
        let mut fast = ServeConfig::quick(21);
        fast.fast_path = true;
        for other in [serve(part).1, serve(fast).1] {
            assert!(other.verified);
            // Same arrivals and same simulated machine semantics: the
            // latency digests must agree bit-for-bit.
            assert_eq!(other.sim_cycles, base.sim_cycles);
            assert_eq!(other.p50, base.p50);
            assert_eq!(other.p99, base.p99);
            assert_eq!(other.max, base.max);
            assert_eq!(other.context_switches, base.context_switches);
        }
    }

    #[test]
    fn serve_trace_shows_tenant_interleaving() {
        let mut cfg = ServeConfig::quick(2);
        cfg.trace = Some(TraceConfig::default());
        let (sim, s) = serve(cfg);
        let records = sim.system().trace_records();
        let switches = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ServeSwitch { .. }))
            .count() as u64;
        let dispatches = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ServeDispatch { .. }))
            .count() as u64;
        assert_eq!(switches, s.context_switches);
        assert_eq!(dispatches, s.total_requests + s.ladder_descents());
    }

    #[test]
    fn metrics_surface_the_serving_section() {
        let (sim, s) = serve(ServeConfig::quick(4));
        let m = sim.metrics();
        let get = |k: &str| m.get(k).expect(k);
        let _ = get("serve/requests");
        let _ = get("serve/context_switches");
        let _ = get("serve/alpha/latency");
        assert!(s.verified);
    }
}
