//! Tenants and their seeded open-loop request streams.
//!
//! A tenant is a resident dataset (a CSR matrix plus a dense vector)
//! and a schedule of short queries against it: SPMV row slices and
//! BFS-style neighbor-gather aggregates (see
//! [`maple_workloads::slice`]). Schedules are **open-loop**: arrival
//! times are drawn up front from the tenant's seed and never react to
//! service times, so a slow server builds a backlog instead of quietly
//! throttling the offered load — the standard methodology for tail
//! latency measurement.
//!
//! Everything here is deterministic in the tenant seed: the same spec
//! always produces the same dataset and the same request stream,
//! which is what lets the multi-tenant differential oracle re-run one
//! tenant solo and demand byte-identical outputs.

use maple_sim::rng::SimRng;
use maple_workloads::data::{dense_vector, uniform_sparse, Csr};
use maple_workloads::slice::{QueryKind, SliceQuery};

/// One tenant: dataset shape, request count, and arrival behaviour.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable tenant name (report rows, trace args).
    pub name: String,
    /// CSR rows of the resident matrix.
    pub rows: usize,
    /// CSR columns — also the length of the gathered vector, so it
    /// sets how cache-averse the indirect stream is.
    pub cols: usize,
    /// Nonzeros per row.
    pub nnz_per_row: usize,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean inter-arrival gap in cycles (uniform on
    /// `1..=2*mean_gap`, so the mean is `mean_gap + 1/2`).
    pub mean_gap: u64,
    /// Maximum rows per query slice (widths are uniform on
    /// `1..=slice_rows`).
    pub slice_rows: usize,
    /// Seed for the dataset and the request stream.
    pub seed: u64,
}

impl TenantSpec {
    /// A small tenant for tests and CI gates.
    #[must_use]
    pub fn quick(name: &str, seed: u64) -> Self {
        TenantSpec {
            name: name.to_string(),
            rows: 48,
            cols: 4 * 1024,
            nnz_per_row: 4,
            requests: 10,
            mean_gap: 2_000,
            slice_rows: 12,
            seed,
        }
    }

    /// The resident dataset, derived from the seed.
    #[must_use]
    pub fn dataset(&self) -> (Csr, Vec<u32>) {
        let a = uniform_sparse(self.rows, self.cols, self.nnz_per_row, self.seed);
        let x = dense_vector(self.cols, self.seed ^ 0x9e37_79b9_7f4a_7c15);
        (a, x)
    }

    /// The tenant's full request stream, arrival-ordered.
    #[must_use]
    pub fn schedule(&self, tenant: u64) -> Vec<Request> {
        let mut rng = SimRng::seed(self.seed ^ 0x005e_17ab_1e05_ca1e);
        let mut t = 0u64;
        (0..self.requests)
            .map(|index| {
                t += 1 + rng.below(2 * self.mean_gap.max(1));
                let kind = if rng.below(2) == 0 {
                    QueryKind::SpmvSlice
                } else {
                    QueryKind::NeighborSum
                };
                let width = 1 + rng.below(self.slice_rows.max(1) as u64) as usize;
                let width = width.min(self.rows);
                let lo = rng.below((self.rows - width + 1) as u64) as usize;
                Request {
                    tenant,
                    index,
                    arrival: t,
                    query: SliceQuery {
                        kind,
                        lo,
                        hi: lo + width,
                    },
                }
            })
            .collect()
    }
}

/// One queued request: who asked, when, and what to compute.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Owning tenant id (index into the serve config's tenant list).
    pub tenant: u64,
    /// Position in the tenant's stream (0-based).
    pub index: usize,
    /// Arrival time on the serving clock, in cycles.
    pub arrival: u64,
    /// The query to run.
    pub query: SliceQuery,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let spec = TenantSpec::quick("t", 7);
        let a = spec.schedule(0);
        let b = spec.schedule(0);
        assert_eq!(a.len(), spec.requests);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.query, y.query);
        }
        // Arrivals strictly increase (gaps are at least one cycle).
        for w in a.windows(2) {
            assert!(w[0].arrival < w[1].arrival);
        }
    }

    #[test]
    fn queries_stay_in_bounds() {
        for seed in 0..20 {
            let spec = TenantSpec::quick("t", seed);
            for r in spec.schedule(3) {
                assert!(r.query.lo < r.query.hi);
                assert!(r.query.hi <= spec.rows);
                assert_eq!(r.tenant, 3);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TenantSpec::quick("a", 1).schedule(0);
        let b = TenantSpec::quick("b", 2).schedule(0);
        assert!(a.iter().zip(&b).any(|(x, y)| x.arrival != y.arrival));
    }
}
