//! Multi-tenant request serving with MAPLE engine virtualization.
//!
//! The paper argues MAPLE's decoupling engines are cheap enough to be a
//! shared SoC resource. This crate takes that seriously: thousands of
//! short requests (SPMV row slices, BFS-style neighbor-gather queries)
//! from several tenants are multiplexed onto one cycle-accurate
//! [`maple_soc::system::System`], with a driver-level virtualization
//! layer that context-switches the engines between tenants — save and
//! restore of the architectural queue + fetch-unit state, an MMIO page
//! remap, and a TLB shootdown on every remap.
//!
//! * [`request`] — tenants and their seeded open-loop request streams.
//! * [`sim`] — the serving driver: batch scheduler, engine context
//!   switching, the graceful-degradation ladder, and the
//!   latency/fairness summary.
//! * [`oracle`] — the multi-tenant differential oracle: every tenant's
//!   outputs must be byte-identical to a solo run of the same stream.
//!
//! The whole layer sits **above** the existing model: it drives the
//! same `System` the figures use, through public driver APIs only, so
//! nothing about the cycle-accurate core/engine/NoC model is forked or
//! specialized for serving.

#![deny(missing_docs)]

pub mod oracle;
pub mod request;
pub mod sim;

pub use request::{Request, TenantSpec};
pub use sim::{
    serve, ServeConfig, ServeSim, ServingSummary, TenantSummary, CONTEXT_SWITCH_CYCLES,
};
