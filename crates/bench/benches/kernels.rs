//! Micro-benchmarks: simulator throughput on small kernel instances and
//! hot component paths.
//!
//! These benchmark the *simulator itself* (host wall-clock per simulated
//! workload), complementing the `fig*` binaries that report simulated
//! cycles. Useful for catching performance regressions in the timing
//! models.
//!
//! By default the in-tree timing harness below runs (plain `main`, no
//! external crates, works offline). Building with
//! `--features bench-external` switches to criterion for statistically
//! rigorous sampling; that path needs the network and a manually added
//! dev-dependency (`criterion = "0.5"`) — see crates/bench/Cargo.toml.

#![allow(clippy::explicit_counter_loop)]

use maple_core::engine::{Engine, MapleConfig};
use maple_core::mmio::{store_offset, StoreOp};
use maple_mem::msg::{MemReq, MemReqKind};
use maple_mem::phys::{PAddr, PhysMem};
use maple_noc::{Coord, Mesh, MeshConfig};
use maple_sim::Cycle;
use maple_workloads::data::uniform_sparse;
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

// --- the workloads under measurement (shared by both harnesses) ---------

fn spmv_instance() -> Spmv {
    let a = uniform_sparse(24, 8192, 4, 3);
    let x = maple_workloads::data::dense_vector(8192, 4);
    Spmv { a, x }
}

fn run_spmv_doall_1t(inst: &Spmv) -> u64 {
    let s = inst.run(Variant::Doall, 1);
    assert!(s.verified);
    s.cycles
}

fn run_spmv_maple_dec_2t(inst: &Spmv) -> u64 {
    let s = inst.run(Variant::MapleDecoupled, 2);
    assert!(s.verified);
    s.cycles
}

fn sdhp_instance() -> Sdhp {
    Sdhp::from_sparse(&uniform_sparse(16, 512, 8, 7), 8)
}

fn run_sdhp_lima_1t(inst: &Sdhp) -> u64 {
    let s = inst.run(Variant::MapleLima, 1);
    assert!(s.verified);
    s.cycles
}

fn run_noc_4x4_saturated_1k_ticks() -> u64 {
    let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::new(4, 4));
    let mut now = Cycle::ZERO;
    let mut delivered = 0u64;
    for step in 0..1000u64 {
        let src = Coord::new((step % 4) as u16, ((step / 4) % 4) as u16);
        let dst = Coord::new(((step + 2) % 4) as u16, ((step / 2) % 4) as u16);
        let _ = mesh.inject(now, src, dst, 2, step as u32);
        mesh.tick(now);
        for y in 0..4 {
            for x in 0..4 {
                delivered += mesh.take_delivered(Coord::new(x, y)).len() as u64;
            }
        }
        now += 1;
    }
    delivered
}

fn run_engine_1k_data_produces() -> u64 {
    let mut engine = Engine::new(MapleConfig::default());
    let mem = PhysMem::new();
    let mut now = Cycle::ZERO;
    let mut acks = 0u64;
    for i in 0..1000u64 {
        // Round-robin the 8 queues; reset before any fills
        // (8 × 32 = 256 entries per engine lifetime).
        if i % 256 == 0 && i > 0 {
            engine = Engine::new(MapleConfig::default());
        }
        let q = (i % 8) as u8;
        engine.accept(
            now,
            MemReq {
                id: i,
                addr: PAddr(0xF000_0000 + store_offset(StoreOp::Produce, q)),
                kind: MemReqKind::Write {
                    size: 8,
                    data: i,
                    ack: true,
                },
                reply_to: Coord::default(),
            },
        );
        engine.tick(now, &mem);
        while engine.pop_response(now).is_some() {
            acks += 1;
        }
        now += 1;
    }
    acks
}

// --- default harness: in-tree timing, zero dependencies -----------------

#[cfg(not(feature = "bench-external"))]
mod harness {
    use std::hint::black_box;
    use std::time::Instant;

    /// Times `f` over `iters` iterations after one warmup run; prints
    /// mean and minimum wall-clock per iteration.
    pub fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
        black_box(f()); // warmup: page in code and data
        let mut total = std::time::Duration::ZERO;
        let mut best = std::time::Duration::MAX;
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
        }
        let mean = total / iters;
        println!("{name:<32} mean {mean:>12.3?}   min {best:>12.3?}   ({iters} iters)");
    }
}

#[cfg(not(feature = "bench-external"))]
fn main() {
    println!("in-tree micro-bench (use --features bench-external for criterion)");
    let spmv = spmv_instance();
    harness::bench("spmv/doall_1t", 10, || run_spmv_doall_1t(&spmv));
    harness::bench("spmv/maple_dec_2t", 10, || run_spmv_maple_dec_2t(&spmv));
    let sdhp = sdhp_instance();
    harness::bench("sdhp/lima_1t", 10, || run_sdhp_lima_1t(&sdhp));
    harness::bench("noc_4x4_saturated_1k_ticks", 20, run_noc_4x4_saturated_1k_ticks);
    harness::bench("engine_1k_data_produces", 20, run_engine_1k_data_produces);
}

// --- optional harness: criterion (network + manual dep required) --------

#[cfg(feature = "bench-external")]
mod external {
    use super::*;
    use criterion::{criterion_group, criterion_main, Criterion};

    fn bench_spmv(c: &mut Criterion) {
        let inst = spmv_instance();
        let mut g = c.benchmark_group("spmv");
        g.sample_size(10);
        g.bench_function("doall_1t", |b| b.iter(|| run_spmv_doall_1t(&inst)));
        g.bench_function("maple_dec_2t", |b| b.iter(|| run_spmv_maple_dec_2t(&inst)));
        g.finish();
    }

    fn bench_sdhp_lima(c: &mut Criterion) {
        let inst = sdhp_instance();
        let mut g = c.benchmark_group("sdhp");
        g.sample_size(10);
        g.bench_function("lima_1t", |b| b.iter(|| run_sdhp_lima_1t(&inst)));
        g.finish();
    }

    fn bench_noc(c: &mut Criterion) {
        c.bench_function("noc_4x4_saturated_1k_ticks", |b| {
            b.iter(run_noc_4x4_saturated_1k_ticks);
        });
    }

    fn bench_engine_produce(c: &mut Criterion) {
        c.bench_function("engine_1k_data_produces", |b| {
            b.iter(run_engine_1k_data_produces);
        });
    }

    criterion_group!(
        benches,
        bench_spmv,
        bench_sdhp_lima,
        bench_noc,
        bench_engine_produce
    );
    criterion_main!(benches);
}

#[cfg(feature = "bench-external")]
fn main() {
    external::benches();
}
