//! Distributed dispatch of the oracle grid: specs, payload codec, and
//! the shared runner.
//!
//! The coordinator (`oracle_grid --coordinator …`) and the remote worker
//! (`--bin fleet_worker`) never ship simulator state over the wire —
//! a job is a short **spec string** naming a grid cell, and both sides
//! rebuild the identical instance from the fixed seed baked into this
//! module. The reply is a lossless text encoding of the cell's
//! `RunStats`; floats travel as IEEE-754 bit patterns so a decoded
//! result is byte-for-byte the same as a locally computed one. That is
//! the determinism argument behind the ci.sh distributed gate: local
//! pool, loopback coordinator and chaos-wrapped coordinator all print
//! identical grid rows because every path ends in
//! [`run_spec`] → [`encode_stats`]/[`decode_stats`] over the same pure
//! function.

use maple_fleet::Digest;
use maple_sim::rng::SimRng;
use maple_workloads::bfs::Bfs;
use maple_workloads::data::{dense_vector, Csr};
use maple_workloads::harness::{config_for, CoreDetail, FaultReport, RunStats, Variant};
use maple_workloads::oracle::ORACLE_VARIANTS;
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;

/// Fixed seed of the oracle grid; the whole grid replays bit-for-bit
/// from this (shared by every dispatch mode and the worker binary).
pub const GRID_SEED: u64 = 0x0A_C1E5;

/// Spec-string format version; the leading token of every job spec.
pub const SPEC_VERSION: &str = "gridv1";

/// Schema tag for [`job_key`] digests (distinct from the bench cache
/// schema so grid entries can never collide with suite entries).
const GRID_KEY_SCHEMA: u64 = 0x6D1D;

/// Small fixed CSR, expanded deterministically from `seed`.
#[must_use]
pub fn fixed_csr(rows: usize, ncols: usize, seed: u64) -> Csr {
    let mut rng = SimRng::seed(seed);
    let rows_vec: Vec<Vec<(u32, u32)>> = (0..rows)
        .map(|_| {
            let nnz = rng.below(7) as usize;
            let mut cols: Vec<u32> = (0..nnz).map(|_| rng.below(ncols as u64) as u32).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, 1 + rng.below(100) as u32))
                .collect()
        })
        .collect();
    Csr::from_rows(rows, ncols, &rows_vec)
}

/// The grid's kernel axis, in print order.
pub const GRID_KERNELS: [&str; 3] = ["spmv", "sdhp", "bfs"];

/// Every cell of the differential grid in stdout order: one spec per
/// (kernel, oracle variant) pair.
#[must_use]
pub fn grid_cells() -> Vec<(String, Variant, usize)> {
    let mut cells = Vec::new();
    for kernel in GRID_KERNELS {
        for (v, t) in ORACLE_VARIANTS {
            cells.push((kernel.to_owned(), v, t));
        }
    }
    cells
}

/// Renders one cell as a wire spec.
#[must_use]
pub fn spec_of(kernel: &str, variant: Variant, threads: usize) -> String {
    let dist = match variant {
        Variant::SwPrefetch { dist } => dist,
        _ => 0,
    };
    format!(
        "{SPEC_VERSION}\t{kernel}\t{}\t{dist}\t{threads}",
        variant.label()
    )
}

/// Content key of one cell: spec string plus the digest of the exact
/// `SocConfig` it runs under, so a timing-table edit invalidates grid
/// cache entries just like suite entries.
#[must_use]
pub fn job_key(kernel: &str, variant: Variant, threads: usize) -> u64 {
    let mut d = Digest::new(GRID_KEY_SCHEMA);
    d.str(&spec_of(kernel, variant, threads));
    config_for(variant, threads).digest_into(&mut d);
    d.finish()
}

fn variant_from(label: &str, dist: u32) -> Result<Variant, String> {
    Ok(match label {
        "doall" => Variant::Doall,
        "sw-dec" => Variant::SwDecoupled,
        "maple-dec" => Variant::MapleDecoupled,
        "desc" => Variant::Desc,
        "sw-pref" => Variant::SwPrefetch { dist },
        "maple-lima" => Variant::MapleLima,
        "droplet" => Variant::Droplet,
        other => return Err(format!("unknown variant label {other:?}")),
    })
}

/// Runs one grid cell from scratch: rebuilds the fixed instance for the
/// kernel and executes the variant. This is the one function every
/// dispatch path funnels through — local pool, loopback worker, TCP
/// worker, and the coordinator's local-fallback rung.
///
/// # Errors
///
/// A message for an unparseable spec (version skew, unknown kernel or
/// variant) — surfaced to the coordinator as a typed `Failed` reply,
/// never a worker crash.
pub fn run_grid_cell(kernel: &str, variant: Variant, threads: usize) -> Result<RunStats, String> {
    match kernel {
        "spmv" => {
            let inst = Spmv {
                a: fixed_csr(10, 128, GRID_SEED ^ 0x01),
                x: dense_vector(128, GRID_SEED ^ 0x02),
            };
            Ok(inst.run(variant, threads))
        }
        "sdhp" => {
            let a = fixed_csr(8, 128, GRID_SEED ^ 0x03);
            let inst = Sdhp::from_sparse(&a, GRID_SEED ^ 0x04);
            Ok(inst.run(variant, threads))
        }
        "bfs" => {
            let graph = fixed_csr(16, 16, GRID_SEED ^ 0x05);
            let root = (0..graph.nrows)
                .find(|&r| !graph.row_range(r).is_empty())
                .unwrap_or(0) as u32;
            let inst = Bfs { graph, root };
            Ok(inst.run(variant, threads))
        }
        other => Err(format!("unknown grid kernel {other:?}")),
    }
}

/// The worker-side runner: parses a wire spec, runs the cell, encodes
/// the stats.
///
/// # Errors
///
/// A message for a malformed spec or unknown cell.
pub fn run_spec(spec: &str) -> Result<String, String> {
    let fields: Vec<&str> = spec.split('\t').collect();
    let [version, kernel, label, dist, threads] = fields.as_slice() else {
        return Err(format!("malformed spec ({} fields): {spec:?}", fields.len()));
    };
    if *version != SPEC_VERSION {
        return Err(format!(
            "spec version skew: worker speaks {SPEC_VERSION}, got {version:?}"
        ));
    }
    let dist: u32 = dist.parse().map_err(|_| format!("bad dist in {spec:?}"))?;
    let threads: usize = threads
        .parse()
        .map_err(|_| format!("bad threads in {spec:?}"))?;
    let variant = variant_from(label, dist)?;
    let stats = run_grid_cell(kernel, variant, threads)?;
    Ok(encode_stats(&stats))
}

/// Encoding version tag of the stats payload.
const STATS_VERSION: &str = "statsv1";

/// Losslessly encodes a `RunStats` as one line of `key=value` fields.
/// Floats are encoded by IEEE-754 bit pattern, so
/// `decode_stats(encode_stats(s)) == s` exactly — including NaN
/// payloads and negative zero. Field order is fixed, so equal stats
/// encode to equal bytes (the property the byte-diff gate leans on).
#[must_use]
pub fn encode_stats(s: &RunStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    out.push_str(STATS_VERSION);
    let f = &s.faults;
    let st = &s.stall;
    let _ = write!(
        out,
        " cycles={} loads={} mll={:016x} verified={} e0={} e1={} e2={} e3={} \
         q0occ={:016x} qprod={} qcons={} qdrained={} noci={} nocd={} hung={} core_cycles={}",
        s.cycles,
        s.loads,
        s.mean_load_latency.to_bits(),
        s.verified,
        s.engine.0,
        s.engine.1,
        s.engine.2,
        s.engine.3,
        s.queue0_occupancy_mean.to_bits(),
        s.queues_produced,
        s.queues_consumed,
        s.queues_drained,
        s.noc_injected,
        s.noc_delivered,
        s.hung,
        s.core_cycles,
    );
    let _ = write!(
        out,
        " f.noc_dropped={} f.noc_delayed={} f.dram_spikes={} f.acks_dropped={} \
         f.fetch_timeouts={} f.fetch_retries={} f.poisoned_fetches={} f.replayed_responses={} \
         f.mmio_timeouts={} f.mmio_retries={} f.resets_injected={} f.shootdowns_injected={} \
         f.engines_poisoned={} f.ladder_rung={}",
        f.noc_dropped,
        f.noc_delayed,
        f.dram_spikes,
        f.acks_dropped,
        f.fetch_timeouts,
        f.fetch_retries,
        f.poisoned_fetches,
        f.replayed_responses,
        f.mmio_timeouts,
        f.mmio_retries,
        f.resets_injected,
        f.shootdowns_injected,
        f.engines_poisoned,
        f.ladder_rung,
    );
    let _ = write!(
        out,
        " s.l1_miss={} s.l2_miss={} s.dram={} s.consume_wait={} s.mmio={} s.fault_recovery={}",
        st.l1_miss, st.l2_miss, st.dram, st.consume_wait, st.mmio, st.fault_recovery,
    );
    let cores: Vec<String> = s
        .cores
        .iter()
        .map(|c| format!("{}:{}:{}", c.instructions, c.mem_stall_cycles, c.loads))
        .collect();
    let _ = write!(out, " cores={}", cores.join(","));
    out
}

/// Decodes a payload produced by [`encode_stats`].
///
/// # Errors
///
/// A message naming the missing or malformed field — a coordinator
/// receiving a corrupt payload fails that job, not the process.
pub fn decode_stats(payload: &str) -> Result<RunStats, String> {
    let mut fields = payload.split(' ');
    let version = fields.next().unwrap_or_default();
    if version != STATS_VERSION {
        return Err(format!(
            "stats version skew: expected {STATS_VERSION}, got {version:?}"
        ));
    }
    let mut map = std::collections::HashMap::new();
    for field in fields {
        let (k, v) = field
            .split_once('=')
            .ok_or_else(|| format!("malformed stats field {field:?}"))?;
        map.insert(k, v);
    }
    let take = |k: &str| -> Result<&str, String> {
        map.get(k)
            .copied()
            .ok_or_else(|| format!("stats payload missing field {k:?}"))
    };
    let u = |k: &str| -> Result<u64, String> {
        take(k)?.parse().map_err(|_| format!("bad u64 field {k:?}"))
    };
    let b = |k: &str| -> Result<bool, String> {
        take(k)?.parse().map_err(|_| format!("bad bool field {k:?}"))
    };
    let fl = |k: &str| -> Result<f64, String> {
        let bits = u64::from_str_radix(take(k)?, 16).map_err(|_| format!("bad f64 field {k:?}"))?;
        Ok(f64::from_bits(bits))
    };
    let cores_raw = take("cores")?;
    let mut cores = Vec::new();
    if !cores_raw.is_empty() {
        for item in cores_raw.split(',') {
            let parts: Vec<&str> = item.split(':').collect();
            let [i, m, l] = parts.as_slice() else {
                return Err(format!("bad core detail {item:?}"));
            };
            cores.push(CoreDetail {
                instructions: i.parse().map_err(|_| format!("bad core field {item:?}"))?,
                mem_stall_cycles: m.parse().map_err(|_| format!("bad core field {item:?}"))?,
                loads: l.parse().map_err(|_| format!("bad core field {item:?}"))?,
            });
        }
    }
    let faults = FaultReport {
        noc_dropped: u("f.noc_dropped")?,
        noc_delayed: u("f.noc_delayed")?,
        dram_spikes: u("f.dram_spikes")?,
        acks_dropped: u("f.acks_dropped")?,
        fetch_timeouts: u("f.fetch_timeouts")?,
        fetch_retries: u("f.fetch_retries")?,
        poisoned_fetches: u("f.poisoned_fetches")?,
        replayed_responses: u("f.replayed_responses")?,
        mmio_timeouts: u("f.mmio_timeouts")?,
        mmio_retries: u("f.mmio_retries")?,
        resets_injected: u("f.resets_injected")?,
        shootdowns_injected: u("f.shootdowns_injected")?,
        engines_poisoned: u("f.engines_poisoned")?,
        ladder_rung: u("f.ladder_rung")?,
        // Tenant attribution is a local-scheduler concern; the fleet wire
        // format carries batch runs only.
        tenant: None,
    };
    let stall = maple_trace::StallBreakdown {
        l1_miss: u("s.l1_miss")?,
        l2_miss: u("s.l2_miss")?,
        dram: u("s.dram")?,
        consume_wait: u("s.consume_wait")?,
        mmio: u("s.mmio")?,
        fault_recovery: u("s.fault_recovery")?,
    };
    Ok(RunStats {
        cycles: u("cycles")?,
        loads: u("loads")?,
        mean_load_latency: fl("mll")?,
        verified: b("verified")?,
        cores,
        engine: (u("e0")?, u("e1")?, u("e2")?, u("e3")?),
        queue0_occupancy_mean: fl("q0occ")?,
        queues_produced: u("qprod")?,
        queues_consumed: u("qcons")?,
        queues_drained: b("qdrained")?,
        noc_injected: u("noci")?,
        noc_delivered: u("nocd")?,
        hung: b("hung")?,
        faults,
        core_cycles: u("core_cycles")?,
        stall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_codec_is_lossless() {
        // A real run's stats must survive the wire exactly — the
        // equality the distributed determinism gate rests on.
        let stats = run_grid_cell("spmv", Variant::MapleDecoupled, 2).unwrap();
        let decoded = decode_stats(&encode_stats(&stats)).unwrap();
        assert_eq!(decoded, stats);
        // And the encoding itself is stable.
        assert_eq!(encode_stats(&decoded), encode_stats(&stats));
    }

    #[test]
    fn float_fields_travel_by_bit_pattern() {
        let mut stats = run_grid_cell("bfs", Variant::Doall, 2).unwrap();
        stats.mean_load_latency = f64::NAN;
        stats.queue0_occupancy_mean = -0.0;
        let decoded = decode_stats(&encode_stats(&stats)).unwrap();
        assert_eq!(
            decoded.mean_load_latency.to_bits(),
            stats.mean_load_latency.to_bits()
        );
        assert_eq!(decoded.queue0_occupancy_mean.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn run_spec_round_trips_every_grid_cell() {
        for (kernel, v, t) in grid_cells() {
            let spec = spec_of(&kernel, v, t);
            let payload = run_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let remote = decode_stats(&payload).unwrap();
            let local = run_grid_cell(&kernel, v, t).unwrap();
            assert_eq!(remote, local, "{spec}: wire result must equal local");
        }
    }

    #[test]
    fn malformed_specs_fail_typed_not_crashing() {
        for bad in [
            "",
            "gridv0\tspmv\tdoall\t0\t2",
            "gridv1\tnope\tdoall\t0\t2",
            "gridv1\tspmv\tnope\t0\t2",
            "gridv1\tspmv\tdoall\tx\t2",
            "gridv1\tspmv\tdoall\t0",
        ] {
            assert!(run_spec(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn job_keys_separate_cells_and_track_config() {
        let a = job_key("spmv", Variant::Doall, 2);
        let b = job_key("spmv", Variant::MapleDecoupled, 2);
        let c = job_key("bfs", Variant::Doall, 2);
        assert!(a != b && a != c && b != c);
        assert_eq!(a, job_key("spmv", Variant::Doall, 2), "stable across calls");
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let good = encode_stats(&run_grid_cell("spmv", Variant::Doall, 2).unwrap());
        assert!(decode_stats("").is_err());
        assert!(decode_stats("statsv0 cycles=1").is_err());
        assert!(decode_stats(&good[..good.len() / 2]).is_err(), "truncated");
        assert!(decode_stats("statsv1 cycles=abc").is_err());
    }
}
