//! The multi-tenant serving sweep and its CI gate.
//!
//! The sweep runs the [`maple_serve`] differential oracle over the full
//! acceptance grid — {skipping, dense, 4-partition} steppers × compiled
//! fast path on/off × {no chaos, one recoverable seeded chaos schedule}
//! — dispatching cells through the [`maple_fleet`] batch executor,
//! four hierarchical cells on a 2×2 crossbar-cluster fabric, plus
//! one engine-kill cell proving the maple-dec → sw-dec → do-all ladder
//! degrades a failing engine mid-tenant without a single corrupted
//! byte. The gate output contains only host-independent lines (request
//! counts, latency percentiles, fairness, switch counters and a content
//! digest), so `scripts/ci.sh` byte-diffs it across `MAPLE_JOBS`
//! values.

use maple_fleet::{Digest, FleetConfig};
use maple_serve::oracle::differential_check;
use maple_serve::{serve, ServeConfig, ServingSummary};
use maple_workloads::oracle::chaos_schedules;

/// The acceptance grid: every stepper × fast-path × chaos combination,
/// each as a labelled serving config over the same seeded tenants.
#[must_use]
pub fn serve_grid(seed: u64) -> Vec<(String, ServeConfig)> {
    // One recoverable schedule; the serving driver composes with the
    // chaos plane's recovery machinery, never with forced retirement.
    let schedule = chaos_schedules(seed)
        .into_iter()
        .find(|s| !s.must_degrade)
        .expect("a recoverable schedule exists");
    let mut cells = Vec::new();
    for (stepper, dense, partitions) in
        [("skipping", false, 1), ("dense", true, 1), ("part4", false, 4)]
    {
        for fast in [false, true] {
            for chaos in [false, true] {
                let mut cfg = ServeConfig::quick(seed);
                cfg.dense = dense;
                cfg.partitions = partitions;
                cfg.fast_path = fast;
                if chaos {
                    cfg.chaos = Some(schedule.plane.clone());
                }
                let label = format!(
                    "{stepper}/fast={}/chaos={}",
                    u8::from(fast),
                    if chaos { schedule.name } else { "none" }
                );
                cells.push((label, cfg));
            }
        }
    }
    // Hierarchical cells: the same tenants on a 2×2 crossbar hierarchy
    // (banked L2, per-cluster engine pools), skipping and partitioned,
    // clean and under the recoverable schedule.
    for (stepper, partitions) in [("skipping", 1), ("part4", 4)] {
        for chaos in [false, true] {
            let mut cfg = ServeConfig::quick(seed);
            cfg.cluster = Some(maple_soc::ClusterConfig::new(9, 2, 2));
            cfg.partitions = partitions;
            if chaos {
                cfg.chaos = Some(schedule.plane.clone());
            }
            let label = format!(
                "clustered2x2/{stepper}/chaos={}",
                if chaos { schedule.name } else { "none" }
            );
            cells.push((label, cfg));
        }
    }
    cells
}

fn cell_line(label: &str, s: &ServingSummary) -> String {
    format!(
        "serve {label}: requests={} p50={} p99={} max={} fairness={:.3} \
         switches={} remaps={} descents={}",
        s.total_requests,
        s.p50,
        s.p99,
        s.max,
        s.fairness(),
        s.context_switches,
        s.remaps,
        s.ladder_descents()
    )
}

/// The serving determinism gate behind the `serve_check` binary: the
/// full grid through the fleet executor, the engine-kill ladder cell,
/// and a metrics digest — all host-independent lines.
///
/// # Errors
///
/// Returns the offending cell and violated invariant on the first
/// isolation failure, unverified request, or missing degradation.
pub fn serve_gate(seed: u64) -> Result<String, String> {
    let cells = serve_grid(seed);
    let jobs: Vec<_> = cells
        .iter()
        .map(|(label, cfg)| {
            let (label, cfg) = (label.clone(), cfg.clone());
            move || differential_check(&cfg).map_err(|e| format!("{label}: {e}"))
        })
        .collect();
    let grid = maple_fleet::run_batch(&FleetConfig::from_env(), jobs)
        .into_results()
        .map_err(|(i, e)| format!("{}: executor failed: {e}", cells[i].0))?;
    let mut out = String::from("serve gate\n");
    let mut d = Digest::new(0x5E12);
    for ((label, _), res) in cells.iter().zip(grid) {
        let summary = res?;
        if !summary.verified {
            return Err(format!("{label}: session left requests unverified"));
        }
        let line = cell_line(label, &summary);
        d.str(&line);
        out.push_str(&line);
        out.push('\n');
    }

    // Engine failure mid-tenant: the ladder must degrade the dead
    // engine's dispatches with zero cross-tenant corruption.
    let mut kill = ServeConfig::quick(seed);
    kill.kill_engine = Some((6_000, 1));
    let ks = differential_check(&kill).map_err(|e| format!("kill cell: {e}"))?;
    if ks.engines_killed != 1 {
        return Err("kill cell: the engine kill never fired".into());
    }
    if ks.degraded_dispatches == 0 {
        return Err("kill cell: no dispatch degraded after the kill".into());
    }
    let kline = format!(
        "serve kill: engines_killed={} degraded={} descents={} p99={}",
        ks.engines_killed,
        ks.degraded_dispatches,
        ks.ladder_descents(),
        ks.p99
    );
    d.str(&kline);
    out.push_str(&kline);
    out.push('\n');

    // Content digest over one representative session's full metrics
    // snapshot (simulated counters only — nothing host-dependent).
    let (sim, _) = serve(ServeConfig::quick(seed));
    d.str(&sim.metrics().to_json().render());
    out.push_str(&format!(
        "metrics digest: {:#018x}\nserve ok: bit-exact",
        d.finish()
    ));
    Ok(out)
}
