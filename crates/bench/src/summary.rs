//! Builder for the aggregate `BENCH_maple.json` document.
//!
//! Factored out of the `bench_summary` binary so the determinism test
//! can build the document from fixed inputs: the measurement-derived
//! content is a pure function of the suite rows, while run-to-run
//! numbers (wall-clock, worker count) enter only through the explicit
//! [`HarnessLine`] argument — pass a fixed one and the rendered JSON is
//! byte-identical at every `MAPLE_JOBS`.

use maple_sim::stats::geomean;
use maple_trace::Json;

use crate::experiments::{find, Measurement};
use crate::scaling::ScaleRow;

/// Run-to-run harness accounting included in the document: the total
/// sweep wall-clock, the worker count, and the cache traffic.
#[derive(Debug, Clone, Default)]
pub struct HarnessLine {
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Total sweep wall-clock in seconds.
    pub wall_seconds: f64,
    /// Cases served from the fleet cache.
    pub cache_hits: usize,
    /// Cases that were simulated.
    pub cache_misses: usize,
}

/// Host-throughput line for the two simulation steppers (dense reference
/// vs event-horizon skipping), measured on the stall-heavy config of
/// `crate::stepper`. Run-to-run varying, like [`HarnessLine`].
#[derive(Debug, Clone, Default)]
pub struct StepperLine {
    /// Simulated cycles of the benchmark config (stepper-independent).
    pub cycles: u64,
    /// Host CPUs available to the run (`available_parallelism`). Always
    /// recorded so throughput numbers can be read in context even
    /// though both steppers here are single-threaded.
    pub host_cores: usize,
    /// Dense-loop simulated Mcycles per host second.
    pub dense_mcycles_per_sec: f64,
    /// Skipping-loop simulated Mcycles per host second.
    pub skipping_mcycles_per_sec: f64,
    /// `skipping / dense` host-throughput ratio.
    pub speedup: f64,
}

/// Host-throughput line for the compiled core fast path (batched
/// micro-op-run dispatch vs per-instruction interpretation), measured on
/// the compute-heavy kernel of `crate::stepper`. Run-to-run varying,
/// like [`HarnessLine`]. Both sides are single-threaded, so unlike the
/// partitioned sweep the speedup floor is enforceable on any host.
#[derive(Debug, Clone, Default)]
pub struct FastPathLine {
    /// Simulated cycles of the kernel (dispatch-mode-independent).
    pub cycles: u64,
    /// Host CPUs available to the run (`available_parallelism`).
    pub host_cores: usize,
    /// Interpreter-dispatch simulated Mcycles per host second.
    pub interpreted_mcycles_per_sec: f64,
    /// Fast-path-dispatch simulated Mcycles per host second.
    pub fast_path_mcycles_per_sec: f64,
    /// `fast_path / interpreted` host-throughput ratio.
    pub speedup: f64,
    /// Micro-op runs dispatched by the fast path (simulated, proves the
    /// path engaged).
    pub fast_path_runs: u64,
    /// Remaining single-instruction interpreter dispatches (simulated).
    pub interpreted_ticks: u64,
}

/// The acceptance floor for the fast-path speedup recorded in
/// `BENCH_maple.json` and checked by its `speedup_gate` tag.
pub const FAST_PATH_SPEEDUP_FLOOR: f64 = 5.0;

/// Tail-latency and virtualization-overhead line for the multi-tenant
/// serving driver, measured on `maple_serve::ServeConfig::standard`.
/// Unlike the host-throughput lines every number here is simulated, so
/// the section is deterministic run to run (the determinism test feeds
/// a fixed line and expects byte-identical JSON, same as the others).
#[derive(Debug, Clone, Default)]
pub struct ServingLine {
    /// Tenants sharing the engines.
    pub tenants: usize,
    /// MAPLE engines being virtualized.
    pub engines: usize,
    /// Requests across every tenant's schedule.
    pub total_requests: u64,
    /// Requests completed and byte-verified against the host.
    pub completed: u64,
    /// Median request latency in serving-clock cycles.
    pub p50: u64,
    /// 99th-percentile request latency in serving-clock cycles.
    pub p99: u64,
    /// Worst request latency in serving-clock cycles.
    pub max: u64,
    /// Per-tenant fairness: max/min completed-throughput ratio.
    pub fairness: f64,
    /// Driver context switches (save + remap + restore sequences).
    pub context_switches: u64,
    /// Total cycles charged to context switching.
    pub switch_cycles: u64,
    /// MMIO page remaps (each broadcasts a TLB shootdown).
    pub remaps: u64,
    /// Serving-clock span of the whole session.
    pub elapsed_vcycles: u64,
}

/// Host-throughput sweep of the partitioned parallel stepper against the
/// single-threaded skipping baseline, measured on the scaled stall-heavy
/// config of `crate::stepper`. Run-to-run varying, like [`HarnessLine`];
/// `host_cores` is recorded because the achievable speedup is bounded by
/// the host's parallelism (a 1-core container pins it at ~1.0x no matter
/// the partition count).
#[derive(Debug, Clone, Default)]
pub struct PartitionedLine {
    /// Simulated cycles of the benchmark config (stepper-independent).
    pub cycles: u64,
    /// Host CPUs available to the sweep (`available_parallelism`).
    pub host_cores: usize,
    /// Single-threaded skipping-loop simulated Mcycles per host second.
    pub skipping_mcycles_per_sec: f64,
    /// Per-partition-count measurements:
    /// `(partitions, mcycles_per_sec, speedup_over_skipping)`.
    pub runs: Vec<(usize, f64, f64)>,
}

/// The (app, dataset) pairs present in `rows`, in first-appearance
/// order. Derived from the rows (rather than the full evaluation matrix)
/// so reduced suites — tests, partial reruns — summarize cleanly.
#[must_use]
pub fn pairs_of(rows: &[Measurement]) -> Vec<(String, String)> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for m in rows {
        let p = (m.app.clone(), m.dataset.clone());
        if !pairs.contains(&p) {
            pairs.push(p);
        }
    }
    pairs
}

/// Geomean of `num.cycles / den.cycles` across every (app, dataset) in
/// `rows`.
#[must_use]
pub fn geomean_speedup(rows: &[Measurement], num_variant: &str, den_variant: &str) -> f64 {
    let ratios: Vec<f64> = pairs_of(rows)
        .into_iter()
        .map(|(app, ds)| {
            let num = find(rows, &app, &ds, num_variant);
            let den = find(rows, &app, &ds, den_variant);
            num.cycles as f64 / den.cycles as f64
        })
        .collect();
    geomean(&ratios)
}

/// Builds the `BENCH_maple.json` document from the three suite row sets,
/// the measured consume round trip, and the harness accounting.
///
/// Everything except `harness` is a pure function of the measurements.
#[must_use]
#[allow(clippy::too_many_arguments)] // one positional slot per document section
pub fn build_json(
    fig08: &[Measurement],
    fig09: &[Measurement],
    fig12: &[Measurement],
    consume_rtt: f64,
    harness: &HarnessLine,
    stepper: Option<&StepperLine>,
    partitioned: Option<&PartitionedLine>,
    fast_path: Option<&FastPathLine>,
    serving: Option<&ServingLine>,
    scaling: Option<&[ScaleRow]>,
) -> Json {
    let latencies: Vec<(String, Json)> = pairs_of(fig09)
        .into_iter()
        .map(|(app, ds)| {
            let base = find(fig09, &app, &ds, "doall");
            let lima = find(fig09, &app, &ds, "maple-lima");
            (
                format!("{app}/{ds}"),
                Json::obj(vec![
                    ("no_prefetch", Json::from(base.load_latency)),
                    ("maple_lima", Json::from(lima.load_latency)),
                ]),
            )
        })
        .collect();
    let reduction: Vec<f64> = pairs_of(fig09)
        .into_iter()
        .map(|(app, ds)| {
            find(fig09, &app, &ds, "doall").load_latency
                / find(fig09, &app, &ds, "maple-lima").load_latency
        })
        .collect();

    let mut members = vec![
        ("bench", Json::from("maple")),
        (
            "figures",
            Json::obj(vec![
                (
                    "fig08",
                    Json::obj(vec![
                        (
                            "maple_over_doall",
                            Json::from(geomean_speedup(fig08, "doall", "maple-dec")),
                        ),
                        (
                            "maple_over_sw_decoupling",
                            Json::from(geomean_speedup(fig08, "sw-dec", "maple-dec")),
                        ),
                        ("paper_maple_over_doall", Json::from(1.51)),
                        ("paper_maple_over_sw_decoupling", Json::from(2.27)),
                    ]),
                ),
                (
                    "fig09",
                    Json::obj(vec![
                        (
                            "lima_over_no_prefetch",
                            Json::from(geomean_speedup(fig09, "doall", "maple-lima")),
                        ),
                        (
                            "lima_over_sw_prefetch",
                            Json::from(geomean_speedup(fig09, "sw-pref", "maple-lima")),
                        ),
                        ("paper_lima_over_no_prefetch", Json::from(1.73)),
                        ("paper_lima_over_sw_prefetch", Json::from(2.35)),
                    ]),
                ),
                (
                    "fig11",
                    Json::obj(vec![
                        ("lima_latency_reduction", Json::from(geomean(&reduction))),
                        ("paper_lima_latency_reduction", Json::from(1.85)),
                    ]),
                ),
                (
                    "fig12",
                    Json::obj(vec![
                        (
                            "maple_over_desc",
                            Json::from(geomean_speedup(fig12, "desc", "maple-dec")),
                        ),
                        (
                            "maple_over_droplet",
                            Json::from(geomean_speedup(fig12, "droplet", "maple-dec")),
                        ),
                        ("paper_maple_over_desc", Json::from(1.72)),
                        ("paper_maple_over_droplet", Json::from(1.82)),
                    ]),
                ),
            ]),
        ),
        ("mean_load_latency_cycles", Json::Object(latencies)),
        ("consume_rtt_cycles", Json::from(consume_rtt)),
        (
            "harness",
            Json::obj(vec![
                ("jobs", Json::from(harness.jobs as u64)),
                ("sweep_wall_seconds", Json::from(harness.wall_seconds)),
                ("cache_hits", Json::from(harness.cache_hits as u64)),
                ("cache_misses", Json::from(harness.cache_misses as u64)),
            ]),
        ),
    ];
    if let Some(s) = stepper {
        members.push((
            "stepper",
            Json::obj(vec![
                ("benchmark", Json::from("spmv doall, DRAM 300cy")),
                ("simulated_cycles", Json::from(s.cycles)),
                ("host_cores", Json::from(s.host_cores as u64)),
                (
                    "dense_mcycles_per_sec",
                    Json::from(s.dense_mcycles_per_sec),
                ),
                (
                    "skipping_mcycles_per_sec",
                    Json::from(s.skipping_mcycles_per_sec),
                ),
                ("speedup", Json::from(s.speedup)),
            ]),
        ));
    }
    if let Some(p) = partitioned {
        let runs: Vec<Json> = p
            .runs
            .iter()
            .map(|&(partitions, mcy, speedup)| {
                Json::obj(vec![
                    ("partitions", Json::from(partitions as u64)),
                    ("mcycles_per_sec", Json::from(mcy)),
                    ("speedup_over_skipping", Json::from(speedup)),
                ])
            })
            .collect();
        members.push((
            "stepper_partitioned",
            Json::obj(vec![
                (
                    "benchmark",
                    Json::from("spmv maple-dec 16t/8e, DRAM 300cy"),
                ),
                ("simulated_cycles", Json::from(p.cycles)),
                ("host_cores", Json::from(p.host_cores as u64)),
                // Honesty tag: on a 1-core host the parallel stepper
                // cannot beat the single-threaded baseline, so readers
                // (and ci.sh) must not treat speedup ~1.0x as a
                // regression there. Bit-exactness is still enforced.
                (
                    "speedup_gate",
                    Json::from(if p.host_cores <= 1 {
                        "skipped (host_cores=1 pins speedup at ~1.0x)"
                    } else {
                        "enforced"
                    }),
                ),
                (
                    "skipping_mcycles_per_sec",
                    Json::from(p.skipping_mcycles_per_sec),
                ),
                ("runs", Json::Array(runs)),
            ]),
        ));
    }
    if let Some(f) = fast_path {
        members.push((
            "stepper_fast_path",
            Json::obj(vec![
                (
                    "benchmark",
                    Json::from("compute-heavy ALU kernel, 4 cores, no engines"),
                ),
                ("simulated_cycles", Json::from(f.cycles)),
                ("host_cores", Json::from(f.host_cores as u64)),
                // Unlike the partitioned sweep, both sides of this
                // ratio are single-threaded, so the floor applies on
                // any host — the tag records whether this run met it.
                ("speedup_floor", Json::from(FAST_PATH_SPEEDUP_FLOOR)),
                (
                    "speedup_gate",
                    Json::from(if f.speedup >= FAST_PATH_SPEEDUP_FLOOR {
                        "met"
                    } else {
                        "MISSED"
                    }),
                ),
                (
                    "interpreted_mcycles_per_sec",
                    Json::from(f.interpreted_mcycles_per_sec),
                ),
                (
                    "fast_path_mcycles_per_sec",
                    Json::from(f.fast_path_mcycles_per_sec),
                ),
                ("speedup", Json::from(f.speedup)),
                ("fast_path_runs", Json::from(f.fast_path_runs)),
                ("interpreted_ticks", Json::from(f.interpreted_ticks)),
            ]),
        ));
    }
    if let Some(v) = serving {
        let overhead = if v.elapsed_vcycles == 0 {
            0.0
        } else {
            v.switch_cycles as f64 / v.elapsed_vcycles as f64
        };
        members.push((
            "serving",
            Json::obj(vec![
                (
                    "benchmark",
                    Json::from("seeded open-loop SpMV/gather queries"),
                ),
                ("tenants", Json::from(v.tenants as u64)),
                ("engines", Json::from(v.engines as u64)),
                ("requests", Json::from(v.total_requests)),
                ("completed", Json::from(v.completed)),
                ("latency_p50_cycles", Json::from(v.p50)),
                ("latency_p99_cycles", Json::from(v.p99)),
                ("latency_max_cycles", Json::from(v.max)),
                ("fairness_max_over_min", Json::from(v.fairness)),
                ("context_switches", Json::from(v.context_switches)),
                ("context_switch_cycles", Json::from(v.switch_cycles)),
                ("context_switch_overhead", Json::from(overhead)),
                ("mmio_remaps", Json::from(v.remaps)),
                ("elapsed_vcycles", Json::from(v.elapsed_vcycles)),
            ]),
        ));
    }
    if let Some(rows) = scaling {
        let rows: Vec<Json> = rows
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("tiles", Json::from(r.tiles as u64)),
                    ("clusters", Json::from(r.clusters as u64)),
                    ("cores", Json::from(r.cores as u64)),
                    ("engines", Json::from(r.engines as u64)),
                    ("l2_banks", Json::from(r.l2_banks as u64)),
                    ("simulated_cycles", Json::from(r.simulated_cycles)),
                    ("maple_speedup", Json::from(r.maple_speedup)),
                    (
                        "lima_latency_reduction",
                        Json::from(r.lima_latency_reduction),
                    ),
                    // Host-dependent, like the other throughput lines.
                    (
                        "host_mcycles_per_sec",
                        Json::from(r.host_mcycles_per_sec),
                    ),
                ])
            })
            .collect();
        members.push((
            "scaling",
            Json::obj(vec![
                (
                    "benchmark",
                    Json::from(
                        "spmv on 4x4-crossbar-cluster fabrics, one L2 bank \
                         and one engine per cluster",
                    ),
                ),
                ("rows", Json::Array(rows)),
            ]),
        ));
    }
    Json::obj(members)
}

/// Marker opening the generated throughput block in `README.md`.
pub const README_TABLE_BEGIN: &str =
    "<!-- BEGIN GENERATED: throughput-table (bench_summary rewrites this block) -->";
/// Marker closing the generated throughput block in `README.md`.
pub const README_TABLE_END: &str = "<!-- END GENERATED: throughput-table -->";

/// Marker opening the generated scaling block in `README.md`.
pub const README_SCALING_BEGIN: &str =
    "<!-- BEGIN GENERATED: scaling-table (bench_summary rewrites this block) -->";
/// Marker closing the generated scaling block in `README.md`.
pub const README_SCALING_END: &str = "<!-- END GENERATED: scaling-table -->";

/// Renders the README scaling table from a built (or parsed)
/// `BENCH_maple.json` document — same contract as
/// [`readme_throughput_table`]: `bench_summary` rewrites the block
/// between [`README_SCALING_BEGIN`] and [`README_SCALING_END`], and the
/// drift test regenerates it from the checked-in JSON.
///
/// Returns an empty string when the document has no `scaling` section.
#[must_use]
pub fn readme_scaling_table(doc: &Json) -> String {
    let Some(rows) = doc
        .get("scaling")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    else {
        return String::new();
    };
    let mut out = String::from(
        "| tiles | clusters | cores | engines | L2 banks | MAPLE speedup \
         | LIMA latency reduction | host throughput |\n\
         |-------|----------|-------|---------|----------|---------------\
         |------------------------|-----------------|\n",
    );
    for r in rows {
        let int = |k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "| {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | ≈ {:.2}× | ≈ {:.2}× | {} |\n",
            int("tiles"),
            int("clusters"),
            int("cores"),
            int("engines"),
            int("l2_banks"),
            int("maple_speedup"),
            int("lima_latency_reduction"),
            mcy(int("host_mcycles_per_sec")),
        ));
    }
    out
}

fn mcy(v: f64) -> String {
    format!("≈ {v:.1} Mcycles/s")
}

/// Renders the README throughput table from a built (or parsed)
/// `BENCH_maple.json` document, so the committed prose can never drift
/// from the committed measurements: `bench_summary` rewrites the block
/// between [`README_TABLE_BEGIN`] and [`README_TABLE_END`], and a test
/// regenerates it from the checked-in JSON and diffs the README.
///
/// Returns the table alone (no markers, trailing newline included);
/// sections absent from `doc` are omitted row-wise.
#[must_use]
pub fn readme_throughput_table(doc: &Json) -> String {
    let mut rows: Vec<[String; 4]> = Vec::new();
    if let Some(s) = doc.get("stepper") {
        let dense = s.get("dense_mcycles_per_sec").and_then(Json::as_f64);
        let skip = s.get("skipping_mcycles_per_sec").and_then(Json::as_f64);
        if let (Some(dense), Some(skip)) = (dense, skip) {
            rows.push([
                "dense reference loop".into(),
                "stall-heavy SPMV".into(),
                mcy(dense),
                "1.0×".into(),
            ]);
            rows.push([
                "event-horizon skipping".into(),
                "stall-heavy SPMV".into(),
                mcy(skip),
                format!("≈ {:.1}×", skip / dense),
            ]);
        }
    }
    if let Some(f) = doc.get("stepper_fast_path") {
        let interp = f.get("interpreted_mcycles_per_sec").and_then(Json::as_f64);
        let fast = f.get("fast_path_mcycles_per_sec").and_then(Json::as_f64);
        if let (Some(interp), Some(fast)) = (interp, fast) {
            rows.push([
                "skipping, per-instruction interpreter".into(),
                "compute-heavy ALU".into(),
                mcy(interp),
                "1.0×".into(),
            ]);
            rows.push([
                "skipping + compiled fast path".into(),
                "compute-heavy ALU".into(),
                mcy(fast),
                format!("≈ {:.1}×", fast / interp),
            ]);
        }
    }
    if let Some(v) = doc.get("serving") {
        let p50 = v.get("latency_p50_cycles").and_then(Json::as_f64);
        let p99 = v.get("latency_p99_cycles").and_then(Json::as_f64);
        let fair = v.get("fairness_max_over_min").and_then(Json::as_f64);
        if let (Some(p50), Some(p99), Some(fair)) = (p50, p99, fair) {
            // Serving is a simulated-latency row, not a host-throughput
            // one: the third column carries the tail-latency digest and
            // the fourth the tenant-fairness ratio.
            let tenants = v.get("tenants").and_then(Json::as_f64).unwrap_or(0.0);
            let engines = v.get("engines").and_then(Json::as_f64).unwrap_or(0.0);
            rows.push([
                "multi-tenant serving".into(),
                format!("{tenants:.0} tenants / {engines:.0} engines"),
                format!("p50 {p50:.0} / p99 {p99:.0} cycles"),
                format!("fairness ≈ {fair:.2}×"),
            ]);
        }
    }
    let header = [
        [
            "stepper / dispatch".to_string(),
            "benchmark".into(),
            "host throughput".into(),
            "speedup".into(),
        ],
        [
            String::new(), // widths filled with dashes below
            String::new(),
            String::new(),
            String::new(),
        ],
    ];
    let mut width = [0usize; 4];
    for row in header.iter().take(1).chain(rows.iter()) {
        for (w, cell) in width.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render = |out: &mut String, row: &[String; 4], pad: char| {
        out.push('|');
        for (w, cell) in width.iter().zip(row.iter()) {
            out.push(pad);
            out.push_str(cell);
            for _ in cell.chars().count()..*w {
                out.push(pad);
            }
            out.push(pad);
            out.push('|');
        }
        out.push('\n');
    };
    render(&mut out, &header[0], ' ');
    render(&mut out, &header[1], '-');
    for row in &rows {
        render(&mut out, row, ' ');
    }
    out
}
