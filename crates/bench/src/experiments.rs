//! Shared experiment execution for the figure binaries.
//!
//! Suites run the workload/variant matrices of Section 5 through the
//! `maple-fleet` runtime: independent cases are dispatched as one
//! work-stealing batch (worker count from `MAPLE_JOBS`), and every
//! measurement is stored in a content-addressed cache under
//! `target/fleet-cache`. The cache key digests the *full* case
//! descriptor — workload, dataset, variant, thread count, every
//! `SocConfig` timing parameter, the fault schedule and a schema
//! version — so editing a configuration invalidates exactly the affected
//! rows; there is nothing to delete manually.

use maple_fleet::{Digest, FleetConfig, ResultCache};
use maple_soc::config::SocConfig;
use maple_trace::{MetricsSnapshot, StallBreakdown, StallRow};
use maple_workloads::harness::config_for;
use maple_workloads::{RunStats, Variant};

use crate::instances;

/// Version of the cache-entry descriptor/payload. Bump on any change to
/// [`Measurement`]'s TSV layout or to what the key digests — every old
/// entry then misses and is recomputed.
pub const CACHE_SCHEMA: u64 = 1;

/// One measured (app, dataset, variant) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Application name.
    pub app: String,
    /// Dataset label.
    pub dataset: String,
    /// Variant label.
    pub variant: String,
    /// Cycles to completion.
    pub cycles: u64,
    /// Load instructions retired.
    pub loads: u64,
    /// Mean load-to-use latency.
    pub load_latency: f64,
    /// Result matched the host reference.
    pub verified: bool,
    /// Total core cycles backing the stall attribution; `None` for rows
    /// parsed from a truncated legacy line.
    pub core_cycles: Option<u64>,
    /// Aggregate stall attribution across cores; `None` for rows parsed
    /// from a truncated legacy line.
    pub stall: Option<StallBreakdown>,
}

impl Measurement {
    fn from_stats(app: &str, dataset: &str, variant: &str, s: &RunStats) -> Self {
        Measurement {
            app: app.into(),
            dataset: dataset.into(),
            variant: variant.into(),
            cycles: s.cycles,
            loads: s.loads,
            load_latency: s.mean_load_latency,
            verified: s.verified,
            core_cycles: Some(s.core_cycles),
            stall: Some(s.stall),
        }
    }

    /// Serializes to one cache-entry line.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut line = format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.app,
            self.dataset,
            self.variant,
            self.cycles,
            self.loads,
            self.load_latency,
            self.verified
        );
        if let (Some(cc), Some(st)) = (self.core_cycles, self.stall) {
            line.push_str(&format!("\t{cc}"));
            for (_, v) in st.buckets() {
                line.push_str(&format!("\t{v}"));
            }
        }
        line
    }

    /// Parses a cache-entry line. Lenient on width: the original 7-field
    /// format (before stall attribution existed) still parses, with the
    /// stall columns reported as `None`.
    #[must_use]
    pub fn from_tsv(line: &str) -> Option<Self> {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 7 && f.len() != 14 {
            return None;
        }
        let (core_cycles, stall) = if f.len() == 14 {
            let vals: Vec<u64> = f[7..14]
                .iter()
                .map(|s| s.parse().ok())
                .collect::<Option<_>>()?;
            let st = StallBreakdown {
                l1_miss: vals[1],
                l2_miss: vals[2],
                dram: vals[3],
                consume_wait: vals[4],
                mmio: vals[5],
                fault_recovery: vals[6],
            };
            (Some(vals[0]), Some(st))
        } else {
            (None, None)
        };
        Some(Measurement {
            app: f[0].into(),
            dataset: f[1].into(),
            variant: f[2].into(),
            cycles: f[3].parse().ok()?,
            loads: f[4].parse().ok()?,
            load_latency: f[5].parse().ok()?,
            verified: f[6].parse().ok()?,
            core_cycles,
            stall,
        })
    }

    /// Lookup key.
    #[must_use]
    pub fn key(&self) -> (String, String, String) {
        (self.app.clone(), self.dataset.clone(), self.variant.clone())
    }
}

/// One case of a suite matrix.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Application name.
    pub app: String,
    /// Dataset label.
    pub dataset: String,
    /// Variant under test.
    pub variant: Variant,
    /// Thread count.
    pub threads: usize,
}

/// Content key of one case under `config`: the full descriptor, digested.
#[must_use]
pub fn case_key(spec: &CaseSpec, config: &SocConfig) -> u64 {
    let mut d = Digest::new(CACHE_SCHEMA);
    d.str(&spec.app)
        .str(&spec.dataset)
        .str(spec.variant.label());
    // The label does not distinguish prefetch distances; the descriptor
    // must.
    let dist = match spec.variant {
        Variant::SwPrefetch { dist } => u64::from(dist),
        _ => 0,
    };
    d.u64(dist).usize(spec.threads);
    config.digest_into(&mut d);
    d.finish()
}

/// Execution accounting of one suite: the `jobs=N, wall=…s, cache
/// hits/misses` line every figure binary prints, and the JSON/metrics
/// form of the same numbers.
#[derive(Debug, Clone, Default)]
pub struct FleetLine {
    /// Worker threads the batch ran with (local pool), or remote workers
    /// the coordinator started with (distributed dispatch).
    pub jobs: usize,
    /// Suite wall-clock (cache probing + batch execution), seconds.
    pub wall_seconds: f64,
    /// Cases served from the content-addressed cache.
    pub cache_hits: usize,
    /// Cases that had to be simulated.
    pub cache_misses: usize,
    /// Cases computed by remote workers (distributed dispatch only).
    pub remote_jobs: usize,
    /// Cases that fell back to the local pool after remote dispatch
    /// failed (the bottom of the degradation ladder).
    pub local_fallback_jobs: usize,
    /// Dispatched cases taken away from a worker and requeued (lease
    /// expiry, worker crash, typed remote failure).
    pub reassignments: u64,
    /// Remote workers declared dead during the batch.
    pub worker_failures: u64,
    /// Degradation-ladder rung the distributed batch finished on;
    /// `None` for purely local suites.
    pub rung: Option<maple_fleet::remote::Rung>,
}

impl FleetLine {
    /// Folds a distributed batch's accounting into the standard line.
    #[must_use]
    pub fn from_remote(stats: &maple_fleet::remote::RemoteStats, wall_seconds: f64) -> FleetLine {
        FleetLine {
            jobs: stats.workers,
            wall_seconds,
            cache_hits: stats.cache_hits,
            cache_misses: stats.remote_done + stats.local_done,
            remote_jobs: stats.remote_done,
            local_fallback_jobs: stats.local_done,
            reassignments: stats.reassignments,
            worker_failures: stats.worker_failures,
            rung: Some(stats.rung),
        }
    }

    /// The one-line text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut line = format!(
            "jobs={}, wall={:.2}s, cache {} hits / {} misses",
            self.jobs, self.wall_seconds, self.cache_hits, self.cache_misses
        );
        if let Some(rung) = self.rung {
            line.push_str(&format!(
                ", remote {} / local-fallback {}, reassignments {}, worker-failures {}, rung {}",
                self.remote_jobs,
                self.local_fallback_jobs,
                self.reassignments,
                self.worker_failures,
                rung.label()
            ));
        }
        line
    }

    /// Surfaces the accounting through the standard metrics machinery.
    pub fn to_metrics(&self, prefix: &str, m: &mut MetricsSnapshot) {
        m.counter(format!("{prefix}/jobs"), self.jobs as u64);
        m.gauge(format!("{prefix}/wall_seconds"), self.wall_seconds);
        m.counter(format!("{prefix}/cache_hits"), self.cache_hits as u64);
        m.counter(format!("{prefix}/cache_misses"), self.cache_misses as u64);
        if let Some(rung) = self.rung {
            m.counter(format!("{prefix}/remote_jobs"), self.remote_jobs as u64);
            m.counter(
                format!("{prefix}/local_fallback_jobs"),
                self.local_fallback_jobs as u64,
            );
            m.counter(format!("{prefix}/reassignments"), self.reassignments);
            m.counter(format!("{prefix}/worker_failures"), self.worker_failures);
            m.counter(format!("{prefix}/ladder_rung"), rung as u64);
        }
    }

    /// Merges another suite's accounting into this one (for the
    /// whole-sweep totals in `BENCH_maple.json`). Rungs merge by
    /// severity: one degraded suite marks the whole sweep degraded.
    pub fn absorb(&mut self, other: &FleetLine) {
        self.jobs = self.jobs.max(other.jobs);
        self.wall_seconds += other.wall_seconds;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.remote_jobs += other.remote_jobs;
        self.local_fallback_jobs += other.local_fallback_jobs;
        self.reassignments += other.reassignments;
        self.worker_failures += other.worker_failures;
        self.rung = match (self.rung, other.rung) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// A completed suite: one [`Measurement`] per case, in case order, plus
/// the execution accounting.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Measurements, in the order the cases were specified.
    pub rows: Vec<Measurement>,
    /// Fleet/cache accounting for the suite.
    pub fleet: FleetLine,
}

/// Runs a suite of cases through the fleet pool and the
/// content-addressed cache.
///
/// `config_of` builds the `SocConfig` a case runs under (its digest is
/// part of the case's cache key); `run` executes one case. Cached cases
/// are served without simulating; the misses are dispatched as one
/// fleet batch and their results stored. Rows come back in case order —
/// bit-identical at every worker count.
///
/// # Panics
///
/// Panics when a case fails verification, when a job panics, or when a
/// cache entry cannot be written.
pub fn suite_with(
    cache: &ResultCache,
    pool: &FleetConfig,
    name: &str,
    cases: &[CaseSpec],
    config_of: impl Fn(&CaseSpec) -> SocConfig,
    run: impl Fn(&CaseSpec) -> RunStats + Sync,
) -> SuiteRun {
    let t0 = std::time::Instant::now();
    let keys: Vec<u64> = cases.iter().map(|c| case_key(c, &config_of(c))).collect();
    let mut rows: Vec<Option<Measurement>> = keys
        .iter()
        .map(|&k| {
            cache
                .get(k)
                .and_then(|text| Measurement::from_tsv(text.trim_end()))
        })
        .collect();
    let miss_idx: Vec<usize> = (0..cases.len()).filter(|&i| rows[i].is_none()).collect();
    let hits = cases.len() - miss_idx.len();
    if !miss_idx.is_empty() {
        eprintln!(
            "[{name}] {} cached, simulating {} cases on {} workers...",
            hits,
            miss_idx.len(),
            pool.workers
        );
        let run = &run;
        let jobs: Vec<_> = miss_idx
            .iter()
            .map(|&i| {
                let spec = &cases[i];
                move || run(spec)
            })
            .collect();
        let fresh = maple_fleet::run_batch(pool, jobs)
            .into_results()
            .unwrap_or_else(|(j, e)| {
                let spec = &cases[miss_idx[j]];
                panic!(
                    "[{name}] {}/{}/{} t={}: {e}",
                    spec.app,
                    spec.dataset,
                    spec.variant.label(),
                    spec.threads
                )
            });
        for (&i, stats) in miss_idx.iter().zip(&fresh) {
            let spec = &cases[i];
            assert!(
                stats.verified,
                "{}/{}/{} failed verification",
                spec.app,
                spec.dataset,
                spec.variant.label()
            );
            let m =
                Measurement::from_stats(&spec.app, &spec.dataset, spec.variant.label(), stats);
            cache
                .put(keys[i], &m.to_tsv())
                .unwrap_or_else(|e| panic!("[{name}] cache write failed: {e}"));
            rows[i] = Some(m);
        }
    }
    let fleet = FleetLine {
        jobs: pool.workers,
        wall_seconds: t0.elapsed().as_secs_f64(),
        cache_hits: hits,
        cache_misses: miss_idx.len(),
        ..FleetLine::default()
    };
    eprintln!("[{name}] {}", fleet.render());
    SuiteRun {
        rows: rows.into_iter().map(|r| r.expect("every case resolved")).collect(),
        fleet,
    }
}

/// [`suite_with`] under the workspace-default cache and `MAPLE_JOBS`
/// worker count, running real workload cases.
fn suite(name: &str, cases: Vec<CaseSpec>) -> SuiteRun {
    let cache = ResultCache::open_default().expect("open fleet cache");
    suite_with(
        &cache,
        &FleetConfig::from_env(),
        name,
        &cases,
        |c| config_for(c.variant, c.threads),
        |c| run_case(&c.app, &c.dataset, c.variant, c.threads),
    )
}

/// Dispatches one case to the right workload.
fn run_case(app: &str, ds: &str, variant: Variant, threads: usize) -> RunStats {
    match app {
        "sdhp" => {
            let inst = instances::sdhp()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        "spmm" => {
            let inst = instances::spmm()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        "spmv" => {
            let inst = instances::spmv()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        "bfs" => {
            let inst = instances::bfs()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        other => panic!("unknown app {other}"),
    }
}

/// Every (app, dataset) pair of the evaluation.
#[must_use]
pub fn app_datasets() -> Vec<(String, String)> {
    let mut v = Vec::new();
    for (l, _) in instances::sdhp() {
        v.push(("sdhp".into(), l.into()));
    }
    for (l, _) in instances::spmm() {
        v.push(("spmm".into(), l.into()));
    }
    for (l, _) in instances::spmv() {
        v.push(("spmv".into(), l.into()));
    }
    for (l, _) in instances::bfs() {
        v.push(("bfs".into(), l.into()));
    }
    v
}

fn matrix(variants: &[(Variant, usize)]) -> Vec<CaseSpec> {
    let mut cases = Vec::new();
    for (app, ds) in app_datasets() {
        for &(variant, threads) in variants {
            cases.push(CaseSpec {
                app: app.clone(),
                dataset: ds.clone(),
                variant,
                threads,
            });
        }
    }
    cases
}

/// Figure 8 suite: 2-thread do-all, software decoupling, MAPLE
/// decoupling.
#[must_use]
pub fn decoupling_suite() -> SuiteRun {
    suite(
        "fig08",
        matrix(&[
            (Variant::Doall, 2),
            (Variant::SwDecoupled, 2),
            (Variant::MapleDecoupled, 2),
        ]),
    )
}

/// Figures 9–11 suite: single-thread no-prefetch, software prefetching,
/// MAPLE LIMA.
#[must_use]
pub fn prefetch_suite() -> SuiteRun {
    suite(
        "fig09",
        matrix(&[
            (Variant::Doall, 1),
            (Variant::SwPrefetch { dist: 16 }, 1),
            (Variant::MapleLima, 1),
        ]),
    )
}

/// Figure 12 suite: 2-thread do-all, MAPLE decoupling, DeSC, DROPLET.
#[must_use]
pub fn prior_work_suite() -> SuiteRun {
    suite(
        "fig12",
        matrix(&[
            (Variant::Doall, 2),
            (Variant::MapleDecoupled, 2),
            (Variant::Desc, 2),
            (Variant::Droplet, 2),
        ]),
    )
}

/// Aggregates measurements into one stall-attribution row per variant
/// (summed across every workload/dataset). Rows parsed from truncated
/// legacy lines carry no breakdown and are skipped; if no row has one,
/// the result is empty and callers print nothing.
#[must_use]
pub fn stall_rows_by_variant(rows: &[Measurement], variants: &[&str]) -> Vec<StallRow> {
    let mut out = Vec::new();
    for v in variants {
        let mut cycles = 0u64;
        let mut total = StallBreakdown::default();
        let mut any = false;
        for m in rows.iter().filter(|m| m.variant == *v) {
            if let (Some(cc), Some(st)) = (m.core_cycles, m.stall) {
                cycles += cc;
                total.merge(&st);
                any = true;
            }
        }
        if any {
            out.push(StallRow {
                label: (*v).to_owned(),
                core_cycles: cycles,
                breakdown: total,
            });
        }
    }
    out
}

/// Finds a measurement.
#[must_use]
pub fn find<'a>(
    rows: &'a [Measurement],
    app: &str,
    ds: &str,
    variant: &str,
) -> &'a Measurement {
    rows.iter()
        .find(|m| m.app == app && m.dataset == ds && m.variant == variant)
        .unwrap_or_else(|| panic!("no measurement for {app}/{ds}/{variant}"))
}
