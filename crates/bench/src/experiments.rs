//! Shared experiment execution for the figure binaries.
//!
//! Suites run the workload/variant matrices of Section 5 and cache their
//! measurements in `target/bench-cache/*.tsv` (delete the file to force a
//! re-run), so Figures 9, 10 and 11 — three views of the same runs — pay
//! for the simulation once.

use std::fs;
use std::path::PathBuf;

use maple_trace::{StallBreakdown, StallRow};
use maple_workloads::{RunStats, Variant};

use crate::instances;

/// One measured (app, dataset, variant) cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Application name.
    pub app: String,
    /// Dataset label.
    pub dataset: String,
    /// Variant label.
    pub variant: String,
    /// Cycles to completion.
    pub cycles: u64,
    /// Load instructions retired.
    pub loads: u64,
    /// Mean load-to-use latency.
    pub load_latency: f64,
    /// Result matched the host reference.
    pub verified: bool,
    /// Total core cycles backing the stall attribution; `None` for rows
    /// loaded from a pre-stall-attribution cache file.
    pub core_cycles: Option<u64>,
    /// Aggregate stall attribution across cores; `None` for rows loaded
    /// from a pre-stall-attribution cache file.
    pub stall: Option<StallBreakdown>,
}

impl Measurement {
    fn from_stats(app: &str, dataset: &str, variant: &str, s: &RunStats) -> Self {
        Measurement {
            app: app.into(),
            dataset: dataset.into(),
            variant: variant.into(),
            cycles: s.cycles,
            loads: s.loads,
            load_latency: s.mean_load_latency,
            verified: s.verified,
            core_cycles: Some(s.core_cycles),
            stall: Some(s.stall),
        }
    }

    fn to_tsv(&self) -> String {
        let mut line = format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.app,
            self.dataset,
            self.variant,
            self.cycles,
            self.loads,
            self.load_latency,
            self.verified
        );
        if let (Some(cc), Some(st)) = (self.core_cycles, self.stall) {
            line.push_str(&format!("\t{cc}"));
            for (_, v) in st.buckets() {
                line.push_str(&format!("\t{v}"));
            }
        }
        line
    }

    /// Parses a cache row. Lenient on width: the original 7-field format
    /// (before stall attribution existed) still parses, with the stall
    /// columns reported as `None`.
    fn from_tsv(line: &str) -> Option<Self> {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 7 && f.len() != 14 {
            return None;
        }
        let (core_cycles, stall) = if f.len() == 14 {
            let vals: Vec<u64> = f[7..14]
                .iter()
                .map(|s| s.parse().ok())
                .collect::<Option<_>>()?;
            let st = StallBreakdown {
                l1_miss: vals[1],
                l2_miss: vals[2],
                dram: vals[3],
                consume_wait: vals[4],
                mmio: vals[5],
                fault_recovery: vals[6],
            };
            (Some(vals[0]), Some(st))
        } else {
            (None, None)
        };
        Some(Measurement {
            app: f[0].into(),
            dataset: f[1].into(),
            variant: f[2].into(),
            cycles: f[3].parse().ok()?,
            loads: f[4].parse().ok()?,
            load_latency: f[5].parse().ok()?,
            verified: f[6].parse().ok()?,
            core_cycles,
            stall,
        })
    }

    /// Lookup key.
    #[must_use]
    pub fn key(&self) -> (String, String, String) {
        (self.app.clone(), self.dataset.clone(), self.variant.clone())
    }
}

fn cache_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../target/bench-cache");
    let _ = fs::create_dir_all(&p);
    p.push(format!("{name}.tsv"));
    p
}

fn load_cache(name: &str) -> Option<Vec<Measurement>> {
    let text = fs::read_to_string(cache_path(name)).ok()?;
    let rows: Vec<Measurement> = text.lines().filter_map(Measurement::from_tsv).collect();
    if rows.is_empty() {
        None
    } else {
        Some(rows)
    }
}

fn store_cache(name: &str, rows: &[Measurement]) {
    let text: String = rows.iter().map(|m| m.to_tsv() + "\n").collect();
    let _ = fs::write(cache_path(name), text);
}

/// Runs (or loads from cache) a suite of cases. `run` executes one case.
fn suite(
    name: &str,
    cases: Vec<(String, String, Variant, usize)>,
    run: impl Fn(&str, &str, Variant, usize) -> RunStats,
) -> Vec<Measurement> {
    if let Some(cached) = load_cache(name) {
        eprintln!("[{name}] using cached measurements ({} rows); delete target/bench-cache/{name}.tsv to re-run", cached.len());
        return cached;
    }
    let total = cases.len();
    let mut out = Vec::with_capacity(total);
    for (i, (app, ds, variant, threads)) in cases.into_iter().enumerate() {
        eprintln!(
            "[{name}] ({}/{total}) {app}/{ds}/{} t={threads}...",
            i + 1,
            variant.label()
        );
        let stats = run(&app, &ds, variant, threads);
        assert!(
            stats.verified,
            "{app}/{ds}/{} failed verification",
            variant.label()
        );
        out.push(Measurement::from_stats(&app, &ds, variant.label(), &stats));
    }
    store_cache(name, &out);
    out
}

/// Dispatches one case to the right workload.
fn run_case(app: &str, ds: &str, variant: Variant, threads: usize) -> RunStats {
    match app {
        "sdhp" => {
            let inst = instances::sdhp()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        "spmm" => {
            let inst = instances::spmm()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        "spmv" => {
            let inst = instances::spmv()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        "bfs" => {
            let inst = instances::bfs()
                .into_iter()
                .find(|(l, _)| *l == ds)
                .expect("dataset")
                .1;
            inst.run(variant, threads)
        }
        other => panic!("unknown app {other}"),
    }
}

/// Every (app, dataset) pair of the evaluation.
#[must_use]
pub fn app_datasets() -> Vec<(String, String)> {
    let mut v = Vec::new();
    for (l, _) in instances::sdhp() {
        v.push(("sdhp".into(), l.into()));
    }
    for (l, _) in instances::spmm() {
        v.push(("spmm".into(), l.into()));
    }
    for (l, _) in instances::spmv() {
        v.push(("spmv".into(), l.into()));
    }
    for (l, _) in instances::bfs() {
        v.push(("bfs".into(), l.into()));
    }
    v
}

fn matrix(variants: &[(Variant, usize)]) -> Vec<(String, String, Variant, usize)> {
    let mut cases = Vec::new();
    for (app, ds) in app_datasets() {
        for &(v, t) in variants {
            cases.push((app.clone(), ds.clone(), v, t));
        }
    }
    cases
}

/// Figure 8 suite: 2-thread do-all, software decoupling, MAPLE
/// decoupling.
#[must_use]
pub fn decoupling_suite() -> Vec<Measurement> {
    suite(
        "fig08",
        matrix(&[
            (Variant::Doall, 2),
            (Variant::SwDecoupled, 2),
            (Variant::MapleDecoupled, 2),
        ]),
        run_case,
    )
}

/// Figures 9–11 suite: single-thread no-prefetch, software prefetching,
/// MAPLE LIMA.
#[must_use]
pub fn prefetch_suite() -> Vec<Measurement> {
    suite(
        "fig09",
        matrix(&[
            (Variant::Doall, 1),
            (Variant::SwPrefetch { dist: 16 }, 1),
            (Variant::MapleLima, 1),
        ]),
        run_case,
    )
}

/// Figure 12 suite: 2-thread do-all, MAPLE decoupling, DeSC, DROPLET.
#[must_use]
pub fn prior_work_suite() -> Vec<Measurement> {
    suite(
        "fig12",
        matrix(&[
            (Variant::Doall, 2),
            (Variant::MapleDecoupled, 2),
            (Variant::Desc, 2),
            (Variant::Droplet, 2),
        ]),
        run_case,
    )
}

/// Aggregates measurements into one stall-attribution row per variant
/// (summed across every workload/dataset). Rows loaded from cache files
/// predating stall attribution carry no breakdown and are skipped; if no
/// row has one, the result is empty and callers print nothing.
#[must_use]
pub fn stall_rows_by_variant(rows: &[Measurement], variants: &[&str]) -> Vec<StallRow> {
    let mut out = Vec::new();
    for v in variants {
        let mut cycles = 0u64;
        let mut total = StallBreakdown::default();
        let mut any = false;
        for m in rows.iter().filter(|m| m.variant == *v) {
            if let (Some(cc), Some(st)) = (m.core_cycles, m.stall) {
                cycles += cc;
                total.merge(&st);
                any = true;
            }
        }
        if any {
            out.push(StallRow {
                label: (*v).to_owned(),
                core_cycles: cycles,
                breakdown: total,
            });
        }
    }
    out
}

/// Finds a measurement.
#[must_use]
pub fn find<'a>(
    rows: &'a [Measurement],
    app: &str,
    ds: &str,
    variant: &str,
) -> &'a Measurement {
    rows.iter()
        .find(|m| m.app == app && m.dataset == ds && m.variant == variant)
        .unwrap_or_else(|| panic!("no measurement for {app}/{ds}/{variant}"))
}
