//! The Figure 14 consume round-trip microbenchmark, shared with the
//! `bench_summary` aggregate so both report the same number.

use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_trace::StallRow;

/// Outcome of the round-trip microbenchmark.
#[derive(Debug)]
pub struct RttMeasurement {
    /// Mean consume round trip in cycles (the L1 load-latency histogram
    /// holds exactly the consume loads).
    pub mean_rtt: f64,
    /// Per-core stall attribution of the microbenchmark run.
    pub stalls: Vec<StallRow>,
}

/// Measures the mean consume latency for back-to-back consumes of
/// pre-produced data.
///
/// # Panics
///
/// Panics if the program fails to assemble or the run does not finish.
#[must_use]
pub fn measure_roundtrip(cfg: SocConfig) -> RttMeasurement {
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);
    // Must fit in one 32-entry queue: produces precede all consumes.
    let reps = 24u64;
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let i = b.reg("i");
    let api = MapleApi::new(base);
    b.li(v, 1);
    for _ in 0..reps {
        api.produce(&mut b, 0, v);
    }
    // Drain the produce acks before timing.
    for _ in 0..200 {
        b.nop();
    }
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, reps as i64, done);
    api.consume(&mut b, 0, v, 4);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
    assert!(sys.run(10_000_000).is_finished());
    RttMeasurement {
        mean_rtt: sys.mean_load_latency(),
        stalls: sys.stall_rows(),
    }
}
