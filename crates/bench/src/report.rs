//! Result rendering shared by the figure binaries.
//!
//! Every `fig*` binary funnels its results through one [`FigureReport`]:
//! the text table on stdout, the JSON sidecar in `results/<figure>.json`,
//! and the aggregate `BENCH_maple.json` (see the `bench_summary` binary)
//! are all views of the same structure, so they can never drift apart.

use std::fs;
use std::path::PathBuf;

use maple_sim::stats::geomean;
use maple_trace::{stall_json, stall_table, Json, StallRow};

use crate::experiments::FleetLine;

/// Prints the figure banner.
pub fn print_banner(figure: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{figure}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// A speedup table: rows are `(app, dataset)` pairs, columns are
/// variants, cells are speedups over the row's baseline.
#[derive(Debug, Default)]
pub struct SpeedupTable {
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    unit: Option<String>,
}

impl SpeedupTable {
    /// Creates a table with the given variant columns.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        SpeedupTable {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            unit: None,
        }
    }

    /// Switches the cell unit from the default speedup ratio (`x`) to
    /// another suffix (`cy` for the Figure 11 latency view). Non-ratio
    /// tables omit the geomean footer.
    #[must_use]
    pub fn with_unit(mut self, unit: &str) -> Self {
        self.unit = Some(unit.to_owned());
        self
    }

    /// Adds a row of speedups (same order as the columns).
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn add_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Geometric mean per column.
    #[must_use]
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.columns.len())
            .map(|c| geomean(&self.rows.iter().map(|(_, v)| v[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// The column labels.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Renders the table; ratio tables get a geomean footer.
    pub fn print(&self) {
        print!("{:<22}", "workload");
        for c in &self.columns {
            print!("{c:>12}");
        }
        println!();
        for (label, values) in &self.rows {
            print!("{label:<22}");
            for v in values {
                match &self.unit {
                    None => print!("{v:>11.2}x"),
                    Some(u) => print!("{v:>10.1}{u}"),
                }
            }
            println!();
        }
        if self.unit.is_none() {
            print!("{:<22}", "geomean");
            for g in self.geomeans() {
                print!("{g:>11.2}x");
            }
            println!();
        }
    }

    /// JSON form: columns, per-row cells, and (for ratio tables) the
    /// geomean footer.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            (
                "unit",
                Json::from(self.unit.clone().unwrap_or_else(|| "x".to_owned())),
            ),
            (
                "columns",
                Json::Array(self.columns.iter().map(|c| Json::from(c.clone())).collect()),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|(label, values)| {
                            Json::obj(vec![
                                ("workload", Json::from(label.clone())),
                                (
                                    "values",
                                    Json::Array(values.iter().map(|&v| Json::from(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if self.unit.is_none() {
            members.push((
                "geomeans",
                Json::Array(self.geomeans().into_iter().map(Json::from).collect()),
            ));
        }
        Json::obj(members)
    }
}

/// One headline number printed under a figure's table (a geomean, a
/// latency) next to the paper's claimed value.
#[derive(Debug, Clone)]
pub struct SummaryLine {
    /// What the number is.
    pub label: String,
    /// The measured value.
    pub value: f64,
    /// Unit suffix in the text rendering (`"x"`, `"cy"`).
    pub unit: String,
    /// The paper's claim, quoted alongside.
    pub paper: String,
}

/// The single renderer behind every figure binary: one structure, three
/// views (stdout text, `results/<figure>.json` sidecar, and the
/// aggregate `BENCH_maple.json`).
#[derive(Debug, Default)]
pub struct FigureReport {
    /// Short slug (`fig08`) naming the sidecar file.
    pub figure: String,
    /// Human title printed in the banner.
    pub title: String,
    /// The paper's claimed result.
    pub paper: String,
    /// The main speedup/ratio table, when the figure has one.
    pub table: Option<SpeedupTable>,
    /// Headline numbers printed under the table.
    pub lines: Vec<SummaryLine>,
    /// Stall-attribution rows (ours; not in the paper), when available.
    pub stalls: Vec<StallRow>,
    /// Fleet execution accounting (`jobs=N, wall=…s, cache hits/misses`),
    /// when the figure ran a suite.
    pub fleet: Option<FleetLine>,
}

impl FigureReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(figure: &str, title: &str, paper: &str) -> Self {
        FigureReport {
            figure: figure.into(),
            title: title.into(),
            paper: paper.into(),
            ..FigureReport::default()
        }
    }

    /// Adds a headline number.
    pub fn line(&mut self, label: &str, value: f64, unit: &str, paper: &str) {
        self.lines.push(SummaryLine {
            label: label.into(),
            value,
            unit: unit.into(),
            paper: paper.into(),
        });
    }

    /// Renders the text view to stdout.
    pub fn print(&self) {
        print_banner(&self.title, &self.paper);
        if let Some(t) = &self.table {
            t.print();
        }
        if !self.lines.is_empty() {
            println!();
            let width = self.lines.iter().map(|l| l.label.len()).max().unwrap_or(0);
            for l in &self.lines {
                println!(
                    "{:<width$}  {:>7.2}{}   [paper: {}]",
                    l.label, l.value, l.unit, l.paper
                );
            }
        }
        if !self.stalls.is_empty() {
            println!("\nStall attribution (ours):");
            print!("{}", stall_table(&self.stalls));
        }
        if let Some(fleet) = &self.fleet {
            println!("\n{}", fleet.render());
        }
    }

    /// The JSON view backing the sidecar and the aggregate summary.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("figure", Json::from(self.figure.clone())),
            ("title", Json::from(self.title.clone())),
            ("paper", Json::from(self.paper.clone())),
        ];
        if let Some(t) = &self.table {
            members.push(("table", t.to_json()));
        }
        if !self.lines.is_empty() {
            members.push((
                "summary",
                Json::Array(
                    self.lines
                        .iter()
                        .map(|l| {
                            Json::obj(vec![
                                ("label", Json::from(l.label.clone())),
                                ("value", Json::from(l.value)),
                                ("unit", Json::from(l.unit.clone())),
                                ("paper", Json::from(l.paper.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if !self.stalls.is_empty() {
            members.push(("stall_attribution", stall_json(&self.stalls)));
        }
        if let Some(fleet) = &self.fleet {
            members.push((
                "fleet",
                Json::obj(vec![
                    ("jobs", Json::from(fleet.jobs as u64)),
                    ("wall_seconds", Json::from(fleet.wall_seconds)),
                    ("cache_hits", Json::from(fleet.cache_hits as u64)),
                    ("cache_misses", Json::from(fleet.cache_misses as u64)),
                ]),
            ));
        }
        Json::obj(members)
    }

    /// Writes the JSON sidecar to `results/<figure>.json` (next to the
    /// checked-in `results/<figure>.txt` transcripts) and reports the
    /// path on stderr. Errors are reported, not fatal: figures still
    /// print on a read-only checkout.
    pub fn write_sidecar(&self) {
        let path = results_path(&format!("{}.json", self.figure));
        match fs::write(&path, self.to_json().render_pretty() + "\n") {
            Ok(()) => eprintln!("[{}] sidecar written to {}", self.figure, path.display()),
            Err(e) => eprintln!("[{}] sidecar write failed: {e}", self.figure),
        }
    }

    /// Prints the text view and writes the JSON sidecar — the standard
    /// tail of every figure binary.
    pub fn emit(&self) {
        self.print();
        self.write_sidecar();
    }
}

/// Path of a file inside the repository's `results/` directory.
#[must_use]
pub fn results_path(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("../../results");
    let _ = fs::create_dir_all(&p);
    p.push(name);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomeans_per_column() {
        let mut t = SpeedupTable::new(&["a", "b"]);
        t.add_row("w1", vec![2.0, 1.0]);
        t.add_row("w2", vec![8.0, 1.0]);
        let g = t.geomeans();
        assert!((g[0] - 4.0).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        t.print();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = SpeedupTable::new(&["a"]);
        t.add_row("w", vec![1.0, 2.0]);
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = FigureReport::new("figXX", "Test figure", "claim");
        let mut t = SpeedupTable::new(&["base", "ours"]);
        t.add_row("w1", vec![1.0, 2.0]);
        r.table = Some(t);
        r.line("ours over base (geomean)", 2.0, "x", "2.1x");
        let j = r.to_json();
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
        let table = parsed.get("table").unwrap();
        let g = table.get("geomeans").unwrap().as_array().unwrap();
        assert!((g[1].as_f64().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(
            parsed.get("figure").and_then(|f| f.as_str()),
            Some("figXX")
        );
    }
}
