//! Result-table rendering shared by the figure binaries.

use maple_sim::stats::geomean;

/// Prints the figure banner.
pub fn print_banner(figure: &str, paper_claim: &str) {
    println!("================================================================");
    println!("{figure}");
    println!("paper: {paper_claim}");
    println!("================================================================");
}

/// A speedup table: rows are `(app, dataset)` pairs, columns are
/// variants, cells are speedups over the row's baseline.
#[derive(Debug, Default)]
pub struct SpeedupTable {
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl SpeedupTable {
    /// Creates a table with the given variant columns.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        SpeedupTable {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row of speedups (same order as the columns).
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn add_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push((label.into(), values));
    }

    /// Geometric mean per column.
    #[must_use]
    pub fn geomeans(&self) -> Vec<f64> {
        (0..self.columns.len())
            .map(|c| geomean(&self.rows.iter().map(|(_, v)| v[c]).collect::<Vec<_>>()))
            .collect()
    }

    /// Renders the table with a geomean footer.
    pub fn print(&self) {
        print!("{:<22}", "workload");
        for c in &self.columns {
            print!("{c:>12}");
        }
        println!();
        for (label, values) in &self.rows {
            print!("{label:<22}");
            for v in values {
                print!("{v:>11.2}x");
            }
            println!();
        }
        print!("{:<22}", "geomean");
        for g in self.geomeans() {
            print!("{g:>11.2}x");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomeans_per_column() {
        let mut t = SpeedupTable::new(&["a", "b"]);
        t.add_row("w1", vec![2.0, 1.0]);
        t.add_row("w2", vec![8.0, 1.0]);
        let g = t.geomeans();
        assert!((g[0] - 4.0).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        t.print();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = SpeedupTable::new(&["a"]);
        t.add_row("w", vec![1.0, 2.0]);
    }
}
