//! Host-throughput comparison of the two `System` steppers.
//!
//! Runs one stall-heavy configuration — SPMV do-all against the default
//! 300-cycle DRAM, a gather working set far larger than the caches — once
//! under the dense cycle-by-cycle reference loop and once under the
//! event-horizon skipping scheduler, and reports simulated Mcycles per
//! host second for both. The two runs must be bit-exact (same final
//! cycle count, same `RunStats`, same metrics snapshot); [`divergence`]
//! renders any mismatch for the CI gate.
//!
//! [`divergence`]: StepperComparison::divergence

use std::time::Instant;

use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::spmv::Spmv;

/// One timed run of the benchmark config under one stepper.
#[derive(Debug)]
pub struct StepperRun {
    /// Workload statistics (simulated; stepper-independent by contract).
    pub stats: RunStats,
    /// Rendered metrics-snapshot JSON (simulated; stepper-independent).
    pub metrics_json: String,
    /// Host wall-clock of the `System::run` call alone.
    pub wall_seconds: f64,
}

impl StepperRun {
    /// Simulated megacycles per host second.
    #[must_use]
    pub fn mcycles_per_sec(&self) -> f64 {
        self.stats.cycles as f64 / self.wall_seconds / 1.0e6
    }
}

/// The paired measurement: same workload, both steppers.
#[derive(Debug)]
pub struct StepperComparison {
    /// The dense cycle-by-cycle reference loop.
    pub dense: StepperRun,
    /// The event-horizon skipping scheduler (the default stepper).
    pub skipping: StepperRun,
}

impl StepperComparison {
    /// Host-throughput ratio: skipping over dense.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.skipping.mcycles_per_sec() / self.dense.mcycles_per_sec()
    }

    /// `None` when the two runs are bit-exact; otherwise a rendered
    /// description of the first mismatch (final cycle count, run stats,
    /// or metrics snapshot) for the CI gate to print before failing.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        if self.skipping.stats.cycles != self.dense.stats.cycles {
            return Some(format!(
                "final cycle count diverged: skipping={} dense={}",
                self.skipping.stats.cycles, self.dense.stats.cycles
            ));
        }
        if self.skipping.stats != self.dense.stats {
            return Some(format!(
                "run stats diverged:\nskipping: {:?}\ndense:    {:?}",
                self.skipping.stats, self.dense.stats
            ));
        }
        if self.skipping.metrics_json != self.dense.metrics_json {
            return Some("metrics snapshot JSON diverged".into());
        }
        None
    }
}

/// Runs the stall-heavy benchmark config under both steppers.
///
/// `rows`/`cols` size the sparse gather (the checked-in default is
/// `stall_heavy_comparison`); `seed` fixes the instance.
#[must_use]
pub fn compare_steppers(rows: usize, cols: usize, seed: u64) -> StepperComparison {
    let a = uniform_sparse(rows, cols, 8, seed);
    let x = dense_vector(cols, seed ^ 0x9);
    let inst = Spmv { a, x };
    let measure = |dense: bool| {
        let t0 = Instant::now();
        let (stats, sys) = inst.run_observed(Variant::Doall, 2, move |c| {
            if dense {
                c.with_dense_stepper()
            } else {
                c
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        assert!(!stats.hung, "benchmark config must complete");
        StepperRun {
            metrics_json: sys.metrics_snapshot().to_json().render(),
            stats,
            wall_seconds,
        }
    };
    // Dense first: the expensive run up front, the default stepper's
    // time measured on a warmed allocator.
    let dense = measure(true);
    let skipping = measure(false);
    StepperComparison { dense, skipping }
}

/// The default stall-heavy instance: SPMV do-all, 300-cycle DRAM, a
/// working set that misses both cache levels on most gathers.
#[must_use]
pub fn stall_heavy_comparison(seed: u64) -> StepperComparison {
    compare_steppers(512, 64 * 1024, seed)
}
