//! Host-throughput comparison of the two `System` steppers.
//!
//! Runs one stall-heavy configuration — SPMV do-all against the default
//! 300-cycle DRAM, a gather working set far larger than the caches — once
//! under the dense cycle-by-cycle reference loop and once under the
//! event-horizon skipping scheduler, and reports simulated Mcycles per
//! host second for both. The two runs must be bit-exact (same final
//! cycle count, same `RunStats`, same metrics snapshot); [`divergence`]
//! renders any mismatch for the CI gate.
//!
//! [`divergence`]: StepperComparison::divergence

use std::time::Instant;

use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::spmv::Spmv;

/// One timed run of the benchmark config under one stepper.
#[derive(Debug)]
pub struct StepperRun {
    /// Workload statistics (simulated; stepper-independent by contract).
    pub stats: RunStats,
    /// Rendered metrics-snapshot JSON (simulated; stepper-independent).
    pub metrics_json: String,
    /// Host wall-clock of the `System::run` call alone.
    pub wall_seconds: f64,
}

impl StepperRun {
    /// Simulated megacycles per host second.
    #[must_use]
    pub fn mcycles_per_sec(&self) -> f64 {
        self.stats.cycles as f64 / self.wall_seconds / 1.0e6
    }
}

/// The paired measurement: same workload, both steppers.
#[derive(Debug)]
pub struct StepperComparison {
    /// The dense cycle-by-cycle reference loop.
    pub dense: StepperRun,
    /// The event-horizon skipping scheduler (the default stepper).
    pub skipping: StepperRun,
}

impl StepperComparison {
    /// Host-throughput ratio: skipping over dense.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.skipping.mcycles_per_sec() / self.dense.mcycles_per_sec()
    }

    /// `None` when the two runs are bit-exact; otherwise a rendered
    /// description of the first mismatch (final cycle count, run stats,
    /// or metrics snapshot) for the CI gate to print before failing.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        if self.skipping.stats.cycles != self.dense.stats.cycles {
            return Some(format!(
                "final cycle count diverged: skipping={} dense={}",
                self.skipping.stats.cycles, self.dense.stats.cycles
            ));
        }
        if self.skipping.stats != self.dense.stats {
            return Some(format!(
                "run stats diverged:\nskipping: {:?}\ndense:    {:?}",
                self.skipping.stats, self.dense.stats
            ));
        }
        if self.skipping.metrics_json != self.dense.metrics_json {
            return Some("metrics snapshot JSON diverged".into());
        }
        None
    }
}

/// Runs the stall-heavy benchmark config under both steppers.
///
/// `rows`/`cols` size the sparse gather (the checked-in default is
/// `stall_heavy_comparison`); `seed` fixes the instance.
#[must_use]
pub fn compare_steppers(rows: usize, cols: usize, seed: u64) -> StepperComparison {
    let a = uniform_sparse(rows, cols, 8, seed);
    let x = dense_vector(cols, seed ^ 0x9);
    let inst = Spmv { a, x };
    let measure = |dense: bool| {
        let t0 = Instant::now();
        let (stats, sys) = inst.run_observed(Variant::Doall, 2, move |c| {
            if dense {
                c.with_dense_stepper()
            } else {
                c
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        assert!(!stats.hung, "benchmark config must complete");
        StepperRun {
            metrics_json: sys.metrics_snapshot().to_json().render(),
            stats,
            wall_seconds,
        }
    };
    // Dense first: the expensive run up front, the default stepper's
    // time measured on a warmed allocator.
    let dense = measure(true);
    let skipping = measure(false);
    StepperComparison { dense, skipping }
}

/// The default stall-heavy instance: SPMV do-all, 300-cycle DRAM, a
/// working set that misses both cache levels on most gathers.
#[must_use]
pub fn stall_heavy_comparison(seed: u64) -> StepperComparison {
    compare_steppers(512, 64 * 1024, seed)
}

/// One timed run of the partitioned stepper at a given partition count.
#[derive(Debug)]
pub struct PartitionedRun {
    /// Spatial partitions the mesh was sharded into.
    pub partitions: usize,
    /// The timed run (simulated content is stepper-independent).
    pub run: StepperRun,
}

/// Partitioned-stepper throughput sweep: the single-threaded skipping
/// baseline plus one partitioned run per requested partition count, all
/// on the same scaled stall-heavy mesh.
#[derive(Debug)]
pub struct PartitionedSweep {
    /// The single-threaded event-horizon baseline.
    pub skipping: StepperRun,
    /// One partitioned measurement per partition count.
    pub runs: Vec<PartitionedRun>,
}

impl PartitionedSweep {
    /// Host-throughput ratio of the run at `partitions` over the
    /// single-threaded skipping baseline.
    #[must_use]
    pub fn speedup_at(&self, partitions: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|r| r.partitions == partitions)
            .map(|r| r.run.mcycles_per_sec() / self.skipping.mcycles_per_sec())
    }

    /// `None` when every partitioned run is bit-exact with the skipping
    /// baseline; otherwise a rendered description of the first mismatch.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        for r in &self.runs {
            if r.run.stats != self.skipping.stats {
                return Some(format!(
                    "run stats diverged at {} partitions:\npartitioned: {:?}\nskipping:    {:?}",
                    r.partitions, r.run.stats, self.skipping.stats
                ));
            }
            if r.run.metrics_json != self.skipping.metrics_json {
                return Some(format!(
                    "metrics snapshot JSON diverged at {} partitions",
                    r.partitions
                ));
            }
        }
        None
    }
}

/// Runs the scaled stall-heavy config — SPMV under MAPLE decoupling,
/// 16 threads over 8 engines, a gather far beyond both cache levels —
/// once single-threaded and once per entry of `partition_counts`.
/// Workers per partitioned run come from `MAPLE_JOBS`/host parallelism
/// unless `workers` pins them.
#[must_use]
pub fn partitioned_sweep(
    seed: u64,
    partition_counts: &[usize],
    workers: Option<usize>,
) -> PartitionedSweep {
    let a = uniform_sparse(1024, 128 * 1024, 8, seed);
    let x = dense_vector(128 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let measure = |partitions: usize| {
        let t0 = Instant::now();
        let (stats, sys) = inst.run_observed(Variant::MapleDecoupled, 16, move |c| {
            let c = c.with_maples(8);
            let c = if partitions > 1 {
                c.with_partitions(partitions)
            } else {
                c
            };
            match workers {
                Some(w) if partitions > 1 => c.with_partition_workers(w),
                _ => c,
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        assert!(!stats.hung, "benchmark config must complete");
        StepperRun {
            metrics_json: sys.metrics_snapshot().to_json().render(),
            stats,
            wall_seconds,
        }
    };
    let skipping = measure(1);
    let runs = partition_counts
        .iter()
        .map(|&n| PartitionedRun {
            partitions: n,
            run: measure(n),
        })
        .collect();
    PartitionedSweep { skipping, runs }
}

/// The partitioned determinism gate behind `stepper_check --partitions`:
/// the moderate stall-heavy config, run single-threaded and partitioned,
/// rendered as **host-independent** lines (simulated facts and a content
/// digest only — no wall-clock), so `ci.sh` can diff the bytes across
/// `MAPLE_JOBS` values.
///
/// # Errors
///
/// Returns the rendered divergence when the partitioned run is not
/// bit-exact with the single-threaded stepper.
pub fn partitioned_gate(seed: u64, partitions: usize) -> Result<String, String> {
    let a = uniform_sparse(512, 64 * 1024, 8, seed);
    let x = dense_vector(64 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let run = |partitions: usize| {
        inst.run_observed(Variant::MapleDecoupled, 4, move |c| {
            let c = c.with_maples(2);
            if partitions > 1 {
                c.with_partitions(partitions)
            } else {
                c
            }
        })
    };
    let (seq_stats, seq_sys) = run(1);
    let (part_stats, part_sys) = run(partitions);
    if part_stats != seq_stats {
        return Err(format!(
            "run stats diverged at {partitions} partitions:\npartitioned: {part_stats:?}\n\
             single:      {seq_stats:?}"
        ));
    }
    let seq_json = seq_sys.metrics_snapshot().to_json().render();
    let part_json = part_sys.metrics_snapshot().to_json().render();
    if part_json != seq_json {
        return Err(format!(
            "metrics snapshot JSON diverged at {partitions} partitions"
        ));
    }
    let mut d = maple_fleet::Digest::new(0x5057);
    d.str(&part_json);
    Ok(format!(
        "partitioned gate: {partitions} partitions\n\
         simulated cycles: {}\n\
         verified: {}\n\
         metrics digest: {:#018x}\n\
         partitioned ok: bit-exact across {partitions} partitions",
        part_stats.cycles,
        part_stats.verified,
        d.finish()
    ))
}
