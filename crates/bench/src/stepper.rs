//! Host-throughput comparison of the two `System` steppers.
//!
//! Runs one stall-heavy configuration — SPMV do-all against the default
//! 300-cycle DRAM, a gather working set far larger than the caches — once
//! under the dense cycle-by-cycle reference loop and once under the
//! event-horizon skipping scheduler, and reports simulated Mcycles per
//! host second for both. The two runs must be bit-exact (same final
//! cycle count, same `RunStats`, same metrics snapshot); [`divergence`]
//! renders any mismatch for the CI gate.
//!
//! [`divergence`]: StepperComparison::divergence

use std::time::Instant;

use maple_isa::builder::ProgramBuilder;
use maple_isa::{AluOp, Cond, Program, Reg};
use maple_soc::config::SocConfig;
use maple_soc::system::System;
use maple_trace::metrics::MetricValue;
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::oracle::chaos_schedules;
use maple_workloads::spmv::Spmv;

/// One timed run of the benchmark config under one stepper.
#[derive(Debug)]
pub struct StepperRun {
    /// Workload statistics (simulated; stepper-independent by contract).
    pub stats: RunStats,
    /// Rendered metrics-snapshot JSON (simulated; stepper-independent).
    pub metrics_json: String,
    /// Host wall-clock of the `System::run` call alone.
    pub wall_seconds: f64,
}

impl StepperRun {
    /// Simulated megacycles per host second.
    #[must_use]
    pub fn mcycles_per_sec(&self) -> f64 {
        self.stats.cycles as f64 / self.wall_seconds / 1.0e6
    }
}

/// The paired measurement: same workload, both steppers.
#[derive(Debug)]
pub struct StepperComparison {
    /// The dense cycle-by-cycle reference loop.
    pub dense: StepperRun,
    /// The event-horizon skipping scheduler (the default stepper).
    pub skipping: StepperRun,
}

impl StepperComparison {
    /// Host-throughput ratio: skipping over dense.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.skipping.mcycles_per_sec() / self.dense.mcycles_per_sec()
    }

    /// `None` when the two runs are bit-exact; otherwise a rendered
    /// description of the first mismatch (final cycle count, run stats,
    /// or metrics snapshot) for the CI gate to print before failing.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        if self.skipping.stats.cycles != self.dense.stats.cycles {
            return Some(format!(
                "final cycle count diverged: skipping={} dense={}",
                self.skipping.stats.cycles, self.dense.stats.cycles
            ));
        }
        if self.skipping.stats != self.dense.stats {
            return Some(format!(
                "run stats diverged:\nskipping: {:?}\ndense:    {:?}",
                self.skipping.stats, self.dense.stats
            ));
        }
        if self.skipping.metrics_json != self.dense.metrics_json {
            return Some("metrics snapshot JSON diverged".into());
        }
        None
    }
}

/// Runs the stall-heavy benchmark config under both steppers.
///
/// `rows`/`cols` size the sparse gather (the checked-in default is
/// `stall_heavy_comparison`); `seed` fixes the instance.
#[must_use]
pub fn compare_steppers(rows: usize, cols: usize, seed: u64) -> StepperComparison {
    let a = uniform_sparse(rows, cols, 8, seed);
    let x = dense_vector(cols, seed ^ 0x9);
    let inst = Spmv { a, x };
    let measure = |dense: bool| {
        let t0 = Instant::now();
        let (stats, sys) = inst.run_observed(Variant::Doall, 2, move |c| {
            if dense {
                c.with_dense_stepper()
            } else {
                c
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        assert!(!stats.hung, "benchmark config must complete");
        StepperRun {
            metrics_json: sys.metrics_snapshot().to_json().render(),
            stats,
            wall_seconds,
        }
    };
    // Dense first: the expensive run up front, the default stepper's
    // time measured on a warmed allocator.
    let dense = measure(true);
    let skipping = measure(false);
    StepperComparison { dense, skipping }
}

/// The default stall-heavy instance: SPMV do-all, 300-cycle DRAM, a
/// working set that misses both cache levels on most gathers.
#[must_use]
pub fn stall_heavy_comparison(seed: u64) -> StepperComparison {
    compare_steppers(512, 64 * 1024, seed)
}

/// One timed run of the partitioned stepper at a given partition count.
#[derive(Debug)]
pub struct PartitionedRun {
    /// Spatial partitions the mesh was sharded into.
    pub partitions: usize,
    /// The timed run (simulated content is stepper-independent).
    pub run: StepperRun,
}

/// Partitioned-stepper throughput sweep: the single-threaded skipping
/// baseline plus one partitioned run per requested partition count, all
/// on the same scaled stall-heavy mesh.
#[derive(Debug)]
pub struct PartitionedSweep {
    /// The single-threaded event-horizon baseline.
    pub skipping: StepperRun,
    /// One partitioned measurement per partition count.
    pub runs: Vec<PartitionedRun>,
}

impl PartitionedSweep {
    /// Host-throughput ratio of the run at `partitions` over the
    /// single-threaded skipping baseline.
    #[must_use]
    pub fn speedup_at(&self, partitions: usize) -> Option<f64> {
        self.runs
            .iter()
            .find(|r| r.partitions == partitions)
            .map(|r| r.run.mcycles_per_sec() / self.skipping.mcycles_per_sec())
    }

    /// `None` when every partitioned run is bit-exact with the skipping
    /// baseline; otherwise a rendered description of the first mismatch.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        for r in &self.runs {
            if r.run.stats != self.skipping.stats {
                return Some(format!(
                    "run stats diverged at {} partitions:\npartitioned: {:?}\nskipping:    {:?}",
                    r.partitions, r.run.stats, self.skipping.stats
                ));
            }
            if r.run.metrics_json != self.skipping.metrics_json {
                return Some(format!(
                    "metrics snapshot JSON diverged at {} partitions",
                    r.partitions
                ));
            }
        }
        None
    }
}

/// Runs the scaled stall-heavy config — SPMV under MAPLE decoupling,
/// 16 threads over 8 engines, a gather far beyond both cache levels —
/// once single-threaded and once per entry of `partition_counts`.
/// Workers per partitioned run come from `MAPLE_JOBS`/host parallelism
/// unless `workers` pins them.
#[must_use]
pub fn partitioned_sweep(
    seed: u64,
    partition_counts: &[usize],
    workers: Option<usize>,
) -> PartitionedSweep {
    // 8192 rows: ~660k simulated cycles, so each timed run spans whole
    // seconds of host time and the partitions×workers throughput rows
    // measure the stepper, not allocator noise (the previous 1024-row
    // instance finished in 83k cycles, under a quarter-second).
    let a = uniform_sparse(8192, 128 * 1024, 8, seed);
    let x = dense_vector(128 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let measure = |partitions: usize| {
        let t0 = Instant::now();
        let (stats, sys) = inst.run_observed(Variant::MapleDecoupled, 16, move |c| {
            let c = c.with_maples(8);
            let c = if partitions > 1 {
                c.with_partitions(partitions)
            } else {
                c
            };
            match workers {
                Some(w) if partitions > 1 => c.with_partition_workers(w),
                _ => c,
            }
        });
        let wall_seconds = t0.elapsed().as_secs_f64();
        assert!(!stats.hung, "benchmark config must complete");
        StepperRun {
            metrics_json: sys.metrics_snapshot().to_json().render(),
            stats,
            wall_seconds,
        }
    };
    let skipping = measure(1);
    let runs = partition_counts
        .iter()
        .map(|&n| PartitionedRun {
            partitions: n,
            run: measure(n),
        })
        .collect();
    PartitionedSweep { skipping, runs }
}

/// Iterations of the compute-heavy kernel in the checked-in benchmark
/// row ([`fast_path_comparison`]); the CI gate uses a shorter run.
pub const COMPUTE_ITERS: u64 = 10_000;
/// Unrolled ALU slots per loop iteration of the compute-heavy kernel.
const COMPUTE_UNROLL: usize = 64;
/// Cores running the compute-heavy kernel (fits a 4-partition split).
const COMPUTE_CORES: usize = 4;

/// Per-core accumulator seed: distinct per core so a cross-core register
/// mixup cannot cancel out in the final comparison.
fn compute_seed(seed: u64, core: usize) -> u64 {
    seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Builds the compute-heavy kernel: a counted loop whose unrolled body
/// is pure register ALU work (every fourth slot a 3-cycle multiply), so
/// the whole body decodes into one fast-path run terminated only by the
/// back-edge branch. Returns the program and the accumulator register
/// (seeded via `load_program` args, read back for verification).
fn compute_program(iters: u64) -> (Program, Reg) {
    let mut b = ProgramBuilder::new();
    let acc = b.reg("acc");
    let i = b.reg("i");
    let n = b.reg("n");
    let t = b.reg("t");
    b.li(i, 0);
    b.li(n, iters);
    let top = b.here("loop");
    for k in 0..COMPUTE_UNROLL {
        match k % 4 {
            0 => b.mul(acc, acc, 3i64),
            1 => b.add(acc, acc, i),
            2 => b.alu(AluOp::Xor, acc, acc, k as i64),
            _ => {
                b.alu(AluOp::Srl, t, acc, 7i64);
                b.add(acc, acc, t);
            }
        }
    }
    b.addi(i, i, 1);
    b.br(Cond::Ne, i, n, top);
    b.halt();
    (b.build().expect("compute kernel assembles"), acc)
}

/// Host-side mirror of [`compute_program`]: the expected accumulator
/// after `iters` iterations starting from `acc0`. Kept in lockstep with
/// the builder above — both use the same `k % 4` slot schedule.
fn compute_reference(acc0: u64, iters: u64) -> u64 {
    let mut acc = acc0;
    for i in 0..iters {
        for k in 0..COMPUTE_UNROLL {
            match k % 4 {
                0 => acc = acc.wrapping_mul(3),
                1 => acc = acc.wrapping_add(i),
                2 => acc ^= k as u64,
                _ => acc = acc.wrapping_add(acc >> 7),
            }
        }
    }
    acc
}

/// One timed, self-verifying run of the compute-heavy kernel.
///
/// `metrics_json` excludes the per-core `/dispatch/` counters (which
/// legitimately differ between dispatch modes); those are surfaced
/// separately as [`fast_path_runs`] / [`interpreted_ticks`] so callers
/// can both compare snapshots across modes and prove which path ran.
///
/// [`fast_path_runs`]: ComputeRun::fast_path_runs
/// [`interpreted_ticks`]: ComputeRun::interpreted_ticks
#[derive(Debug)]
pub struct ComputeRun {
    /// Final simulated cycle (dispatch-mode- and stepper-invariant).
    pub cycles: u64,
    /// Rendered metrics JSON with `/dispatch/` counters stripped.
    pub metrics_json: String,
    /// Total micro-op runs dispatched via the fast path, all cores.
    pub fast_path_runs: u64,
    /// Total single-instruction interpreter dispatches, all cores.
    pub interpreted_ticks: u64,
    /// Host wall-clock of the `System::run` call alone.
    pub wall_seconds: f64,
}

impl ComputeRun {
    /// Simulated megacycles per host second.
    #[must_use]
    pub fn mcycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_seconds / 1.0e6
    }
}

/// Runs the compute-heavy kernel on four cores (no
/// engines: pure core compute, so the event horizon is governed by the
/// cores alone) under `tune`'s configuration.
///
/// # Panics
///
/// Panics when the run does not finish or any core's final accumulator
/// disagrees with the host-side mirror — architectural correctness is
/// checked on every measurement, not just in the gate.
#[must_use]
pub fn compute_heavy_run(
    seed: u64,
    iters: u64,
    tune: impl FnOnce(SocConfig) -> SocConfig,
) -> ComputeRun {
    let cfg = tune(SocConfig::fpga_prototype()
        .with_cores(COMPUTE_CORES)
        .with_maples(0));
    let mut sys = System::new(cfg);
    let (program, acc) = compute_program(iters);
    for c in 0..COMPUTE_CORES {
        sys.load_program(program.clone(), &[(acc, compute_seed(seed, c))]);
    }
    let t0 = Instant::now();
    let outcome = sys.run(iters.saturating_mul(400).max(1_000_000));
    let wall_seconds = t0.elapsed().as_secs_f64();
    assert!(outcome.is_finished(), "compute kernel must finish");
    for c in 0..COMPUTE_CORES {
        assert_eq!(
            sys.core(c).reg(acc),
            compute_reference(compute_seed(seed, c), iters),
            "core {c} accumulator must match the host mirror"
        );
    }
    let mut snap = sys.metrics_snapshot();
    let (mut runs, mut ticks) = (0u64, 0u64);
    for (name, value) in snap.entries() {
        if let MetricValue::Counter(v) = value {
            if name.ends_with("/dispatch/fast_path_runs") {
                runs += v;
            } else if name.ends_with("/dispatch/interpreted_ticks") {
                ticks += v;
            }
        }
    }
    snap.retain(|name| !name.contains("/dispatch/"));
    ComputeRun {
        cycles: outcome.cycle().0,
        metrics_json: snap.to_json().render(),
        fast_path_runs: runs,
        interpreted_ticks: ticks,
        wall_seconds,
    }
}

/// The paired measurement: same compute-heavy kernel, interpreter-only
/// vs compiled fast-path dispatch, both under the skipping stepper.
#[derive(Debug)]
pub struct FastPathComparison {
    /// Per-instruction interpreter dispatch (`fast_path` off).
    pub interpreted: ComputeRun,
    /// Batched micro-op-run dispatch (`fast_path` on).
    pub fast: ComputeRun,
}

impl FastPathComparison {
    /// Host-throughput ratio: fast path over interpreter.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.fast.mcycles_per_sec() / self.interpreted.mcycles_per_sec()
    }

    /// `None` when the two modes are bit-exact **and** the fast path
    /// demonstrably engaged; otherwise a rendered mismatch description.
    #[must_use]
    pub fn divergence(&self) -> Option<String> {
        if self.fast.cycles != self.interpreted.cycles {
            return Some(format!(
                "final cycle count diverged: fast={} interpreted={}",
                self.fast.cycles, self.interpreted.cycles
            ));
        }
        if self.fast.metrics_json != self.interpreted.metrics_json {
            return Some("metrics snapshot JSON diverged (dispatch counters excluded)".into());
        }
        if self.fast.fast_path_runs == 0 {
            return Some("fast path never dispatched a run on the compute kernel".into());
        }
        None
    }
}

/// Runs the checked-in compute-heavy benchmark row: [`COMPUTE_ITERS`]
/// iterations under the skipping stepper, fast path off then on.
#[must_use]
pub fn fast_path_comparison(seed: u64) -> FastPathComparison {
    // Interpreter first: the expensive run up front, the fast path's
    // time measured on a warmed allocator (mirrors `compare_steppers`).
    let interpreted = compute_heavy_run(seed, COMPUTE_ITERS, |c| c);
    let fast = compute_heavy_run(seed, COMPUTE_ITERS, |c| c.with_fast_path(true));
    FastPathComparison { interpreted, fast }
}

/// One SPMV observation for the fast-path gate: run stats, the
/// dispatch-stripped metrics JSON, and the total fast-path run count.
fn spmv_observed(
    inst: &Spmv,
    tune: impl FnOnce(SocConfig) -> SocConfig,
) -> (RunStats, String, u64) {
    let (stats, sys) = inst.run_observed(Variant::MapleDecoupled, 4, tune);
    let mut snap = sys.metrics_snapshot();
    let mut runs = 0u64;
    for (name, value) in snap.entries() {
        if let MetricValue::Counter(v) = value {
            if name.ends_with("/dispatch/fast_path_runs") {
                runs += v;
            }
        }
    }
    snap.retain(|name| !name.contains("/dispatch/"));
    (stats, snap.to_json().render(), runs)
}

/// The fast-path determinism gate behind `stepper_check --fast-path`,
/// rendered as **host-independent** lines so `ci.sh` can byte-diff the
/// output across `MAPLE_JOBS` values. Three claims are checked:
///
/// 1. On the mixed SPMV MAPLE-decoupled workload (memory queues, MMIO,
///    engines) the fast path is bit-exact with the interpreter — under
///    the skipping stepper, the dense stepper, a 4-way partitioned run,
///    and every recoverable chaos schedule of the fault oracle.
/// 2. On the compute-heavy kernel the fast path is bit-exact and
///    *demonstrably engaged* (a zero run count fails the gate).
/// 3. Dispatch counters themselves are stepper-invariant: the dense and
///    partitioned fast-path runs report the same run count as skipping.
///
/// # Errors
///
/// Returns the rendered divergence when any pairing is not bit-exact or
/// the fast path never engages.
pub fn fast_path_gate(seed: u64) -> Result<String, String> {
    let a = uniform_sparse(512, 64 * 1024, 8, seed);
    let x = dense_vector(64 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let base = |c: SocConfig| c.with_maples(2);

    // Claim 1: mixed workload, interpreter reference vs fast-path runs.
    let (ref_stats, ref_json, _) = spmv_observed(&inst, base);
    let (fast_stats, fast_json, fast_runs) =
        spmv_observed(&inst, |c| base(c).with_fast_path(true));
    let (dense_stats, dense_json, dense_runs) =
        spmv_observed(&inst, |c| base(c).with_fast_path(true).with_dense_stepper());
    let (part_stats, part_json, part_runs) =
        spmv_observed(&inst, |c| base(c).with_fast_path(true).with_partitions(4));
    for (mode, stats, json) in [
        ("skipping", &fast_stats, &fast_json),
        ("dense", &dense_stats, &dense_json),
        ("partitioned(4)", &part_stats, &part_json),
    ] {
        if *stats != ref_stats {
            return Err(format!(
                "spmv run stats diverged under fast-path {mode}:\nfast:        {stats:?}\n\
                 interpreter: {ref_stats:?}"
            ));
        }
        if *json != ref_json {
            return Err(format!(
                "spmv metrics JSON diverged under fast-path {mode} \
                 (dispatch counters excluded)"
            ));
        }
    }
    if fast_runs == 0 {
        return Err("fast path never dispatched a run on the SPMV workload".into());
    }
    for (mode, runs) in [("dense", dense_runs), ("partitioned(4)", part_runs)] {
        if runs != fast_runs {
            return Err(format!(
                "fast-path run count is not stepper-invariant: {mode}={runs} skipping={fast_runs}"
            ));
        }
    }

    // Chaos: the fence must split runs identically whether or not the
    // hub actually injects anything — every recoverable schedule.
    let mut chaos_lines = String::new();
    for sched in chaos_schedules(seed).into_iter().filter(|s| !s.must_degrade) {
        let plane = sched.plane;
        let (c_ref, c_ref_json, _) = {
            let plane = plane.clone();
            spmv_observed(&inst, move |c| base(c).with_fault_plane(plane))
        };
        let (c_fast, c_fast_json, _) = spmv_observed(&inst, move |c| {
            base(c).with_fault_plane(plane).with_fast_path(true)
        });
        if c_fast != c_ref {
            return Err(format!(
                "chaos '{}' run stats diverged:\nfast:        {c_fast:?}\ninterpreter: {c_ref:?}",
                sched.name
            ));
        }
        if c_fast_json != c_ref_json {
            return Err(format!(
                "chaos '{}' metrics JSON diverged (dispatch counters excluded)",
                sched.name
            ));
        }
        chaos_lines.push_str(&format!(
            "chaos {}: bit-exact at {} cycles\n",
            sched.name, c_fast.cycles
        ));
    }

    // Claim 2: compute-heavy kernel, shortened for CI latency.
    let iters = 2_000;
    let interp = compute_heavy_run(seed, iters, |c| c);
    let fast = compute_heavy_run(seed, iters, |c| c.with_fast_path(true));
    let cmp = FastPathComparison {
        interpreted: interp,
        fast,
    };
    if let Some(msg) = cmp.divergence() {
        return Err(format!("compute kernel diverged: {msg}"));
    }

    let mut d = maple_fleet::Digest::new(0x5AF7);
    d.str(&fast_json);
    d.str(&cmp.fast.metrics_json);
    Ok(format!(
        "fast-path gate\n\
         spmv cycles: {}\n\
         spmv fast-path runs: {fast_runs}\n\
         {chaos_lines}\
         compute cycles: {}\n\
         compute fast-path runs: {}\n\
         compute interpreted ticks: {}\n\
         metrics digest: {:#018x}\n\
         fast-path ok: bit-exact",
        fast_stats.cycles,
        cmp.fast.cycles,
        cmp.fast.fast_path_runs,
        cmp.fast.interpreted_ticks,
        d.finish()
    ))
}

/// The partitioned determinism gate behind `stepper_check --partitions`:
/// the moderate stall-heavy config, run single-threaded and partitioned,
/// rendered as **host-independent** lines (simulated facts and a content
/// digest only — no wall-clock), so `ci.sh` can diff the bytes across
/// `MAPLE_JOBS` values.
///
/// # Errors
///
/// Returns the rendered divergence when the partitioned run is not
/// bit-exact with the single-threaded stepper.
pub fn partitioned_gate(seed: u64, partitions: usize) -> Result<String, String> {
    let a = uniform_sparse(512, 64 * 1024, 8, seed);
    let x = dense_vector(64 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let run = |partitions: usize| {
        inst.run_observed(Variant::MapleDecoupled, 4, move |c| {
            let c = c.with_maples(2);
            if partitions > 1 {
                c.with_partitions(partitions)
            } else {
                c
            }
        })
    };
    let (seq_stats, seq_sys) = run(1);
    let (part_stats, part_sys) = run(partitions);
    if part_stats != seq_stats {
        return Err(format!(
            "run stats diverged at {partitions} partitions:\npartitioned: {part_stats:?}\n\
             single:      {seq_stats:?}"
        ));
    }
    let seq_json = seq_sys.metrics_snapshot().to_json().render();
    let part_json = part_sys.metrics_snapshot().to_json().render();
    if part_json != seq_json {
        return Err(format!(
            "metrics snapshot JSON diverged at {partitions} partitions"
        ));
    }
    let mut d = maple_fleet::Digest::new(0x5057);
    d.str(&part_json);
    Ok(format!(
        "partitioned gate: {partitions} partitions\n\
         simulated cycles: {}\n\
         verified: {}\n\
         metrics digest: {:#018x}\n\
         partitioned ok: bit-exact across {partitions} partitions",
        part_stats.cycles,
        part_stats.verified,
        d.finish()
    ))
}
