//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (Section 5) on the simulated SoC.
//!
//! Each figure has a binary (`fig08` … `fig15`, `queue_sweep`, `area`,
//! `tables`) that runs the workload/variant matrix and prints the paper's
//! rows alongside the measured values. The [`instances`] module pins the
//! evaluation-grade problem sizes (gather targets far larger than the
//! caches), and [`report`] renders the result tables.

#![deny(missing_docs)]

pub mod distributed;
pub mod experiments;
pub mod instances;
pub mod report;
pub mod rtt;
pub mod scaling;
pub mod serving;
pub mod stepper;
pub mod summary;

pub use report::{print_banner, FigureReport, SpeedupTable};
