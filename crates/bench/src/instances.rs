//! Evaluation-grade problem instances.
//!
//! Sizes are chosen so the indirectly-accessed array decisively exceeds
//! the cache hierarchy (8 KB L1 + 64 KB L2) — the regime the paper's
//! datasets put the FPGA in — while keeping single-thread runs around a
//! few million simulated cycles.

use maple_workloads::bfs::Bfs;
use maple_workloads::data::{dense_vector, rmat, uniform_sparse, Dataset};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmm::Spmm;
use maple_workloads::spmv::Spmv;

/// SPMV instances (riscv-tests-style synthetic matrices, as in the
/// paper).
#[must_use]
pub fn spmv() -> Vec<(&'static str, Spmv)> {
    let mk = |rows: usize, xlen: usize, nnz: usize, seed: u64| {
        let a = uniform_sparse(rows, xlen, nnz, seed);
        let x = dense_vector(xlen, seed ^ 0x1234);
        Spmv { a, x }
    };
    vec![
        ("riscv-s", mk(256, 64 * 1024, 8, 41)),
        ("riscv-l", mk(384, 128 * 1024, 8, 42)),
    ]
}

/// SDHP instances (SuiteSparse-like and Kronecker, as in the paper).
#[must_use]
pub fn sdhp() -> Vec<(&'static str, Sdhp)> {
    vec![
        (
            "suitesparse",
            Sdhp::from_sparse(&uniform_sparse(256, 2048, 16, 51), 52),
        ),
        (
            "kron",
            Sdhp::from_sparse(&rmat(9, 10, (0.57, 0.19, 0.19, 0.05), 53), 54),
        ),
    ]
}

/// SPMM instances (riscv-tests-style).
#[must_use]
pub fn spmm() -> Vec<(&'static str, Spmm)> {
    vec![("riscv", Spmm::synthetic(4096, 4, 12, 61))]
}

/// BFS instances (wiki/youtube/livejournal-like R-MAT graphs).
#[must_use]
pub fn bfs() -> Vec<(&'static str, Bfs)> {
    vec![
        ("wiki", Bfs::new(Dataset::WikiLike, 71)),
        ("youtube", Bfs::new(Dataset::YoutubeLike, 72)),
        ("livejournal", Bfs::new(Dataset::LiveJournalLike, 73)),
    ]
}
