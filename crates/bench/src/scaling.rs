//! MemPool-scale scaling sweep over the hierarchical fabric.
//!
//! Each row instantiates one SoC built from 4×4 single-cycle crossbar
//! clusters on the global mesh — one L2 bank and one MAPLE engine per
//! cluster, two cores per cluster driving them — and measures, at that
//! tile count:
//!
//! - **MAPLE speedup**: simulated cycles of the do-all baseline over
//!   MAPLE decoupling, both on the same clustered fabric and the same
//!   per-scale SPMV instance (work grows with the core count, so the
//!   per-core load is constant across rows);
//! - **LIMA latency reduction**: mean load latency of the
//!   single-threaded do-all baseline over LIMA command mode on a fixed
//!   small instance — fixed so the *fabric* is the only thing changing,
//!   and the growing bank-interleave distance is what LIMA has to hide;
//! - **host Mcycles/s**: wall-clock throughput of the MAPLE-decoupled
//!   run, the honest cost of simulating that tile count.
//!
//! [`scale_gate`] is the CI face: at one tile count it byte-compares the
//! skipping stepper against a partitioned run (whose worker count comes
//! from `MAPLE_JOBS`, so `ci.sh` diffs the printed lines across worker
//! counts) and prints only host-independent lines.

use std::time::Instant;

use maple_soc::{ClusterConfig, SocConfig};
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::Variant;
use maple_workloads::spmv::Spmv;

/// Tiles per crossbar cluster in every scaled configuration (a 4×4
/// local crossbar, the paper's MemPool-style building block).
pub const CLUSTER_TILES: usize = 16;

/// The checked-in sweep points: 64, 256 and 1024 tiles.
pub const SCALE_TILES: [usize; 3] = [64, 256, 1024];

/// One scaling measurement row. Everything except
/// `host_mcycles_per_sec` is simulated and deterministic.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Total tiles on the fabric.
    pub tiles: usize,
    /// Crossbar clusters (square grid of 4×4-tile clusters).
    pub clusters: usize,
    /// Cores loaded in the speedup pair (two per cluster).
    pub cores: usize,
    /// MAPLE engines (one pool slot per cluster).
    pub engines: usize,
    /// Interleaved L2 banks (one per cluster).
    pub l2_banks: usize,
    /// Simulated cycles of the MAPLE-decoupled run.
    pub simulated_cycles: u64,
    /// Do-all cycles over MAPLE-decoupled cycles, same fabric.
    pub maple_speedup: f64,
    /// Do-all mean load latency over LIMA mean load latency,
    /// single-threaded fixed instance on this fabric.
    pub lima_latency_reduction: f64,
    /// Host throughput of the MAPLE-decoupled run.
    pub host_mcycles_per_sec: f64,
}

/// The square cluster grid at `tiles` total tiles.
///
/// # Panics
///
/// Panics unless `tiles` is a square multiple of [`CLUSTER_TILES`]
/// (the sweep points are 64/256/1024 = 2²/4²/8² clusters).
#[must_use]
pub fn cluster_grid(tiles: usize) -> (u16, u16) {
    assert_eq!(tiles % CLUSTER_TILES, 0, "tiles must be whole clusters");
    let clusters = tiles / CLUSTER_TILES;
    let mut side = 1usize;
    while side * side < clusters {
        side += 1;
    }
    assert_eq!(side * side, clusters, "square cluster grids only");
    (side as u16, side as u16)
}

/// Applies the scaled hierarchy to a harness-built configuration:
/// `engines` MAPLE instances and a grid of 4×4 crossbar clusters with
/// one L2 bank per cluster (the [`ClusterConfig`] default).
#[must_use]
pub fn scaled_config(cfg: SocConfig, tiles: usize, engines: usize) -> SocConfig {
    let (cx, cy) = cluster_grid(tiles);
    cfg.with_maples(engines)
        .with_clusters(ClusterConfig::new(CLUSTER_TILES, cx, cy))
}

/// Measures one sweep row at `tiles` total tiles.
///
/// # Panics
///
/// Panics when any run hangs or fails result verification — the sweep
/// is a measurement, never a correctness waiver.
#[must_use]
pub fn measure_scale(tiles: usize, seed: u64) -> ScaleRow {
    let clusters = tiles / CLUSTER_TILES;
    let threads = 2 * clusters;
    let engines = clusters;

    // Speedup pair: per-core work held constant across scales.
    let a = uniform_sparse(64 * threads, 32 * 1024, 6, seed);
    let x = dense_vector(32 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let doall = inst.run_tuned(Variant::Doall, threads, |c| {
        scaled_config(c, tiles, engines)
    });
    assert!(doall.verified, "{tiles}-tile doall failed verification");
    let t0 = Instant::now();
    let dec = inst.run_tuned(Variant::MapleDecoupled, threads, |c| {
        scaled_config(c, tiles, engines)
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    assert!(dec.verified, "{tiles}-tile maple-dec failed verification");

    // Latency pair: fixed instance, single-threaded, so the growing
    // fabric (bank-interleave distance) is the only moving part.
    let la = uniform_sparse(64, 8 * 1024, 5, seed ^ 0x11);
    let lx = dense_vector(8 * 1024, seed ^ 0x12);
    let linst = Spmv { a: la, x: lx };
    let lbase = linst.run_tuned(Variant::Doall, 1, |c| scaled_config(c, tiles, 1));
    let lima = linst.run_tuned(Variant::MapleLima, 1, |c| scaled_config(c, tiles, 1));
    assert!(
        lbase.verified && lima.verified,
        "{tiles}-tile latency pair failed verification"
    );

    ScaleRow {
        tiles,
        clusters,
        cores: threads,
        engines,
        l2_banks: clusters,
        simulated_cycles: dec.cycles,
        maple_speedup: doall.cycles as f64 / dec.cycles as f64,
        lima_latency_reduction: lbase.mean_load_latency / lima.mean_load_latency,
        host_mcycles_per_sec: dec.cycles as f64 / wall_seconds / 1.0e6,
    }
}

/// Runs [`measure_scale`] at each requested tile count.
#[must_use]
pub fn scaling_sweep(tile_counts: &[usize], seed: u64) -> Vec<ScaleRow> {
    tile_counts
        .iter()
        .map(|&tiles| {
            eprintln!("[scaling] measuring {tiles}-tile fabric...");
            measure_scale(tiles, seed)
        })
        .collect()
}

/// The hierarchical determinism gate behind `stepper_check --scale N`:
/// the `N`-tile clustered fabric under the skipping stepper vs a
/// 4-partition run whose worker count comes from `MAPLE_JOBS`, rendered
/// as **host-independent** lines (simulated facts and a content digest
/// only), so `ci.sh` can byte-diff the output across worker counts.
///
/// # Errors
///
/// Returns the rendered divergence when the partitioned run is not
/// bit-exact with the single-threaded stepper on the clustered fabric.
pub fn scale_gate(seed: u64, tiles: usize) -> Result<String, String> {
    let clusters = tiles / CLUSTER_TILES;
    let threads = 2 * clusters;
    let engines = clusters;
    let a = uniform_sparse(64 * threads, 32 * 1024, 6, seed);
    let x = dense_vector(32 * 1024, seed ^ 0x9);
    let inst = Spmv { a, x };
    let run = |partitions: usize| {
        inst.run_observed(Variant::MapleDecoupled, threads, move |c| {
            let c = scaled_config(c, tiles, engines);
            if partitions > 1 {
                c.with_partitions(partitions)
            } else {
                c
            }
        })
    };
    let (seq_stats, seq_sys) = run(1);
    let (part_stats, part_sys) = run(4);
    if part_stats != seq_stats {
        return Err(format!(
            "{tiles}-tile run stats diverged under partitioning:\npartitioned: {part_stats:?}\n\
             single:      {seq_stats:?}"
        ));
    }
    let seq_json = seq_sys.metrics_snapshot().to_json().render();
    let part_json = part_sys.metrics_snapshot().to_json().render();
    if part_json != seq_json {
        return Err(format!(
            "{tiles}-tile metrics snapshot JSON diverged under partitioning"
        ));
    }
    let mut d = maple_fleet::Digest::new(0x5CA1);
    d.str(&part_json);
    Ok(format!(
        "scale gate: {tiles} tiles ({clusters} clusters of {CLUSTER_TILES}, \
         {threads} cores, {engines} engines, {clusters} banks)\n\
         simulated cycles: {}\n\
         verified: {}\n\
         metrics digest: {:#018x}\n\
         scale ok: bit-exact at {tiles} tiles",
        part_stats.cycles,
        part_stats.verified,
        d.finish()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_grids_are_square() {
        assert_eq!(cluster_grid(64), (2, 2));
        assert_eq!(cluster_grid(256), (4, 4));
        assert_eq!(cluster_grid(1024), (8, 8));
    }

    #[test]
    fn smallest_scale_row_is_sane() {
        let row = measure_scale(64, 0x5CA1E);
        assert_eq!(row.clusters, 4);
        assert_eq!(row.cores, 8);
        assert_eq!(row.l2_banks, 4);
        assert!(row.simulated_cycles > 0);
        assert!(row.maple_speedup.is_finite() && row.maple_speedup > 0.0);
        assert!(row.lima_latency_reduction > 1.0, "LIMA must hide latency");
    }
}
