//! Section 5.4 area analysis.
//!
//! Paper result: one MAPLE instance (8 queues, 1 KB scratchpad) occupies
//! ≈1.1 % of an Ariane core at 12 nm, and that area is amortized over up
//! to 8 cores.

use maple_bench::print_banner;
use maple_core::area::{engine_area, ARIANE_CORE_MM2};
use maple_core::MapleConfig;

fn main() {
    print_banner(
        "Section 5.4 — area analysis (12 nm model)",
        "MAPLE (8 queues, 1 KB scratchpad) ≈ 1.1% of one Ariane core",
    );
    let cfg = MapleConfig::default();
    let a = engine_area(&cfg);
    println!("component                 area (mm^2)");
    println!("scratchpad SRAM           {:>12.6}", a.scratchpad);
    println!("queue controller          {:>12.6}", a.queue_controller);
    println!("MMU (TLB + PTW)           {:>12.6}", a.mmu);
    println!("pipelines + NoC codecs    {:>12.6}", a.pipelines);
    println!("LIMA unit                 {:>12.6}", a.lima);
    println!("--------------------------------------");
    println!("total                     {:>12.6}", a.total());
    println!("Ariane core               {ARIANE_CORE_MM2:>12.6}");
    println!(
        "\nMAPLE / Ariane: {:.2}%   [paper: 1.1%]",
        a.fraction_of_ariane() * 100.0
    );
    println!(
        "amortized over 8 cores: {:.3}% per core",
        a.fraction_of_ariane() * 100.0 / 8.0
    );

    // Scaling study: how the area grows with the scratchpad.
    println!("\nscratchpad scaling:");
    for kb in [1u64, 2, 4, 8] {
        let c = MapleConfig {
            scratchpad_bytes: kb * 1024,
            ..MapleConfig::default()
        };
        let area = engine_area(&c);
        println!(
            "  {kb} KB scratchpad -> {:.6} mm^2 ({:.2}% of Ariane)",
            area.total(),
            area.fraction_of_ariane() * 100.0
        );
    }
}
