//! Machine-readable aggregate of the paper-reproduction headline numbers.
//!
//! Writes `BENCH_maple.json` at the repository root: per-figure geomean
//! speedups (Figures 8, 9, 12), the mean load latency view (Figure 11),
//! the consume round trip (Figure 14), and the harness accounting (jobs,
//! total sweep wall-clock, fleet-cache traffic). All measurement content
//! comes from the same content-addressed cache the `fig*` binaries use;
//! only the `harness` section varies run to run. Diff the JSON against a
//! previous checkout to spot regressions.

use std::fs;
use std::path::PathBuf;

use maple_bench::experiments::{decoupling_suite, prefetch_suite, prior_work_suite, FleetLine};
use maple_bench::rtt::measure_roundtrip;
use maple_bench::scaling::{scaling_sweep, SCALE_TILES};
use maple_bench::stepper::{fast_path_comparison, partitioned_sweep, stall_heavy_comparison};
use maple_bench::summary::{
    build_json, readme_scaling_table, readme_throughput_table, FastPathLine, HarnessLine,
    PartitionedLine, ServingLine, StepperLine, README_SCALING_BEGIN, README_SCALING_END,
    README_TABLE_BEGIN, README_TABLE_END,
};
use maple_serve::{serve, ServeConfig};
use maple_soc::config::SocConfig;

/// Rewrites the generated throughput block of `README.md` in place from
/// the freshly built document; leaves the file untouched (and warns)
/// when the markers are missing.
fn rewrite_block(text: &str, begin_marker: &str, end_marker: &str, body: &str) -> Option<String> {
    let (begin, end) = (text.find(begin_marker)?, text.find(end_marker)?);
    let mut out = text[..begin + begin_marker.len()].to_string();
    out.push('\n');
    out.push_str(body);
    out.push_str(&text[end..]);
    Some(out)
}

fn rewrite_readme_table(readme: &PathBuf, doc: &maple_trace::Json) {
    let Ok(text) = fs::read_to_string(readme) else {
        eprintln!("[bench_summary] README.md not found; skipping table rewrite");
        return;
    };
    let mut out = text.clone();
    match rewrite_block(
        &out,
        README_TABLE_BEGIN,
        README_TABLE_END,
        &readme_throughput_table(doc),
    ) {
        Some(next) => out = next,
        None => eprintln!("[bench_summary] README.md throughput markers missing; skipping rewrite"),
    }
    match rewrite_block(
        &out,
        README_SCALING_BEGIN,
        README_SCALING_END,
        &readme_scaling_table(doc),
    ) {
        Some(next) => out = next,
        None => eprintln!("[bench_summary] README.md scaling markers missing; skipping rewrite"),
    }
    if out != text {
        fs::write(readme, out).expect("rewrite README.md");
        eprintln!("[bench_summary] README.md generated tables rewritten");
    }
}

fn main() {
    let t0 = std::time::Instant::now();
    let fig08 = decoupling_suite();
    let fig09 = prefetch_suite();
    let fig12 = prior_work_suite();
    let mut totals = FleetLine::default();
    totals.absorb(&fig08.fleet);
    totals.absorb(&fig09.fleet);
    totals.absorb(&fig12.fleet);

    eprintln!("[bench_summary] measuring consume round trip...");
    let rtt = measure_roundtrip(SocConfig::fpga_prototype());

    eprintln!("[bench_summary] measuring stepper host throughput...");
    let cmp = stall_heavy_comparison(0x57E9);
    assert!(
        cmp.divergence().is_none(),
        "steppers diverged: {:?}",
        cmp.divergence()
    );
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let stepper = StepperLine {
        cycles: cmp.dense.stats.cycles,
        host_cores,
        dense_mcycles_per_sec: cmp.dense.mcycles_per_sec(),
        skipping_mcycles_per_sec: cmp.skipping.mcycles_per_sec(),
        speedup: cmp.speedup(),
    };

    eprintln!("[bench_summary] measuring compiled fast-path throughput...");
    let fp = fast_path_comparison(0x57E9);
    assert!(
        fp.divergence().is_none(),
        "fast path diverged: {:?}",
        fp.divergence()
    );
    let fast_path = FastPathLine {
        cycles: fp.fast.cycles,
        host_cores,
        interpreted_mcycles_per_sec: fp.interpreted.mcycles_per_sec(),
        fast_path_mcycles_per_sec: fp.fast.mcycles_per_sec(),
        speedup: fp.speedup(),
        fast_path_runs: fp.fast.fast_path_runs,
        interpreted_ticks: fp.fast.interpreted_ticks,
    };

    eprintln!("[bench_summary] measuring partitioned stepper throughput...");
    let sweep = partitioned_sweep(0x57E9, &[2, 4], None);
    assert!(
        sweep.divergence().is_none(),
        "partitioned stepper diverged: {:?}",
        sweep.divergence()
    );
    let partitioned = PartitionedLine {
        cycles: sweep.skipping.stats.cycles,
        host_cores,
        skipping_mcycles_per_sec: sweep.skipping.mcycles_per_sec(),
        runs: sweep
            .runs
            .iter()
            .map(|r| {
                let n = r.partitions;
                (
                    n,
                    r.run.mcycles_per_sec(),
                    sweep.speedup_at(n).unwrap_or(f64::NAN),
                )
            })
            .collect(),
    };

    eprintln!("[bench_summary] measuring hierarchical-fabric scaling sweep...");
    let scaling = scaling_sweep(&SCALE_TILES, 0x5CA1E);

    eprintln!("[bench_summary] measuring multi-tenant serving tail latency...");
    let serve_cfg = ServeConfig::standard(0x57E9);
    let (tenants, engines) = (serve_cfg.tenants.len(), serve_cfg.maples);
    let (sim, ss) = serve(serve_cfg);
    assert!(ss.verified, "serving session left requests unverified");
    let serving = ServingLine {
        tenants,
        engines,
        total_requests: ss.total_requests,
        completed: ss.completed,
        p50: ss.p50,
        p99: ss.p99,
        max: ss.max,
        fairness: ss.fairness(),
        context_switches: ss.context_switches,
        switch_cycles: ss.switch_cycles,
        remaps: ss.remaps,
        elapsed_vcycles: ss.elapsed,
    };
    // The full snapshot mixes core/engine counters into the serving
    // view; retain only the `serve/` namespace for the printed table.
    let mut serve_metrics = sim.metrics();
    serve_metrics.retain(|name| name.starts_with("serve/"));
    eprintln!("{}", serve_metrics.render_table());

    let harness = HarnessLine {
        jobs: totals.jobs,
        wall_seconds: t0.elapsed().as_secs_f64(),
        cache_hits: totals.cache_hits,
        cache_misses: totals.cache_misses,
    };
    let doc = build_json(
        &fig08.rows,
        &fig09.rows,
        &fig12.rows,
        rtt.mean_rtt,
        &harness,
        Some(&stepper),
        Some(&partitioned),
        Some(&fast_path),
        Some(&serving),
        Some(&scaling),
    );

    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("../../BENCH_maple.json");
    fs::write(&path, doc.render_pretty() + "\n").expect("write BENCH_maple.json");
    let mut readme = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    readme.push("../../README.md");
    rewrite_readme_table(&readme, &doc);
    eprintln!(
        "[bench_summary] sweep {} (total wall {:.2}s)",
        totals.render(),
        harness.wall_seconds
    );
    let mut metrics = maple_trace::MetricsSnapshot::new();
    totals.to_metrics("fleet", &mut metrics);
    eprintln!("{}", metrics.render_table());
    println!("wrote {}", path.display());
    println!("{}", doc.render_pretty());
}
