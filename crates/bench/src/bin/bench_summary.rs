//! Machine-readable aggregate of the paper-reproduction headline numbers.
//!
//! Writes `BENCH_maple.json` at the repository root: per-figure geomean
//! speedups (Figures 8, 9, 12), the mean load latency view (Figure 11)
//! and the consume round trip (Figure 14), all computed from the same
//! cached suite measurements the `fig*` binaries print. Run the figure
//! binaries (or just this one — it fills the cache itself) and diff the
//! JSON against a previous checkout to spot regressions.

use std::fs;
use std::path::PathBuf;

use maple_bench::experiments::{
    app_datasets, decoupling_suite, find, prefetch_suite, prior_work_suite, Measurement,
};
use maple_bench::rtt::measure_roundtrip;
use maple_sim::stats::geomean;
use maple_soc::config::SocConfig;
use maple_trace::Json;

/// Geomean of `num.cycles / den.cycles` across every (app, dataset).
fn geomean_speedup(
    rows: &[Measurement],
    num_variant: &str,
    den_variant: &str,
) -> f64 {
    let ratios: Vec<f64> = app_datasets()
        .into_iter()
        .map(|(app, ds)| {
            let num = find(rows, &app, &ds, num_variant);
            let den = find(rows, &app, &ds, den_variant);
            num.cycles as f64 / den.cycles as f64
        })
        .collect();
    geomean(&ratios)
}

fn main() {
    let fig08 = decoupling_suite();
    let fig09 = prefetch_suite();
    let fig12 = prior_work_suite();

    let latencies: Vec<(String, Json)> = app_datasets()
        .into_iter()
        .map(|(app, ds)| {
            let base = find(&fig09, &app, &ds, "doall");
            let lima = find(&fig09, &app, &ds, "maple-lima");
            (
                format!("{app}/{ds}"),
                Json::obj(vec![
                    ("no_prefetch", Json::from(base.load_latency)),
                    ("maple_lima", Json::from(lima.load_latency)),
                ]),
            )
        })
        .collect();
    let reduction: Vec<f64> = app_datasets()
        .into_iter()
        .map(|(app, ds)| {
            find(&fig09, &app, &ds, "doall").load_latency
                / find(&fig09, &app, &ds, "maple-lima").load_latency
        })
        .collect();

    eprintln!("[bench_summary] measuring consume round trip...");
    let rtt = measure_roundtrip(SocConfig::fpga_prototype());

    let doc = Json::obj(vec![
        ("bench", Json::from("maple")),
        (
            "figures",
            Json::obj(vec![
                (
                    "fig08",
                    Json::obj(vec![
                        (
                            "maple_over_doall",
                            Json::from(geomean_speedup(&fig08, "doall", "maple-dec")),
                        ),
                        (
                            "maple_over_sw_decoupling",
                            Json::from(geomean_speedup(&fig08, "sw-dec", "maple-dec")),
                        ),
                        ("paper_maple_over_doall", Json::from(1.51)),
                        ("paper_maple_over_sw_decoupling", Json::from(2.27)),
                    ]),
                ),
                (
                    "fig09",
                    Json::obj(vec![
                        (
                            "lima_over_no_prefetch",
                            Json::from(geomean_speedup(&fig09, "doall", "maple-lima")),
                        ),
                        (
                            "lima_over_sw_prefetch",
                            Json::from(geomean_speedup(&fig09, "sw-pref", "maple-lima")),
                        ),
                        ("paper_lima_over_no_prefetch", Json::from(1.73)),
                        ("paper_lima_over_sw_prefetch", Json::from(2.35)),
                    ]),
                ),
                (
                    "fig11",
                    Json::obj(vec![
                        (
                            "lima_latency_reduction",
                            Json::from(geomean(&reduction)),
                        ),
                        ("paper_lima_latency_reduction", Json::from(1.85)),
                    ]),
                ),
                (
                    "fig12",
                    Json::obj(vec![
                        (
                            "maple_over_desc",
                            Json::from(geomean_speedup(&fig12, "desc", "maple-dec")),
                        ),
                        (
                            "maple_over_droplet",
                            Json::from(geomean_speedup(&fig12, "droplet", "maple-dec")),
                        ),
                        ("paper_maple_over_desc", Json::from(1.72)),
                        ("paper_maple_over_droplet", Json::from(1.82)),
                    ]),
                ),
            ]),
        ),
        (
            "mean_load_latency_cycles",
            Json::Object(latencies),
        ),
        (
            "consume_rtt_cycles",
            Json::from(rtt.mean_rtt),
        ),
    ]);

    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.push("../../BENCH_maple.json");
    fs::write(&path, doc.render_pretty() + "\n").expect("write BENCH_maple.json");
    println!("wrote {}", path.display());
    println!("{}", doc.render_pretty());
}
