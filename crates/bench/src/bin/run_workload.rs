//! CLI runner: execute any workload/variant/thread combination and print
//! its statistics.
//!
//! ```text
//! cargo run --release -p maple-bench --bin run_workload -- <app> <dataset> <variant> [threads]
//!
//!   app      sdhp | spmm | spmv | bfs
//!   dataset  a label from `--list` (e.g. riscv-s, wiki, suitesparse)
//!   variant  doall | sw-dec | maple-dec | desc | sw-pref | maple-lima | droplet
//!   threads  default 2 (1 for the prefetch variants)
//! ```
//!
//! `run_workload --list` prints the available (app, dataset) pairs.

use maple_bench::experiments::app_datasets;
use maple_bench::instances;
use maple_workloads::{RunStats, Variant};

fn parse_variant(s: &str) -> Option<Variant> {
    Some(match s {
        "doall" => Variant::Doall,
        "sw-dec" => Variant::SwDecoupled,
        "maple-dec" => Variant::MapleDecoupled,
        "desc" => Variant::Desc,
        "sw-pref" => Variant::SwPrefetch { dist: 16 },
        "maple-lima" => Variant::MapleLima,
        "droplet" => Variant::Droplet,
        _ => return None,
    })
}

fn run(app: &str, ds: &str, variant: Variant, threads: usize) -> Option<RunStats> {
    match app {
        "sdhp" => instances::sdhp()
            .into_iter()
            .find(|(l, _)| *l == ds)
            .map(|(_, i)| i.run(variant, threads)),
        "spmm" => instances::spmm()
            .into_iter()
            .find(|(l, _)| *l == ds)
            .map(|(_, i)| i.run(variant, threads)),
        "spmv" => instances::spmv()
            .into_iter()
            .find(|(l, _)| *l == ds)
            .map(|(_, i)| i.run(variant, threads)),
        "bfs" => instances::bfs()
            .into_iter()
            .find(|(l, _)| *l == ds)
            .map(|(_, i)| i.run(variant, threads)),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!("usage: run_workload <app> <dataset> <variant> [threads]");
    eprintln!("       run_workload --list");
    eprintln!("variants: doall sw-dec maple-dec desc sw-pref maple-lima droplet");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--list") {
        for (app, ds) in app_datasets() {
            println!("{app:<6} {ds}");
        }
        return;
    }
    if args.len() < 3 {
        usage();
    }
    let Some(variant) = parse_variant(&args[2]) else {
        eprintln!("unknown variant `{}`", args[2]);
        usage();
    };
    let default_threads = match variant {
        Variant::SwPrefetch { .. } | Variant::MapleLima => 1,
        _ => 2,
    };
    let threads: usize = args
        .get(3)
        .map(|t| t.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(default_threads);

    let Some(stats) = run(&args[0], &args[1], variant, threads) else {
        eprintln!("unknown app/dataset `{} {}` (try --list)", args[0], args[1]);
        std::process::exit(2);
    };
    println!("app       {}", args[0]);
    println!("dataset   {}", args[1]);
    println!("variant   {}", variant.label());
    println!("threads   {threads}");
    println!("verified  {}", stats.verified);
    println!("cycles    {}", stats.cycles);
    println!("loads     {}", stats.loads);
    println!("load lat  {:.1} cycles (mean)", stats.mean_load_latency);
    let (fetches, pstall, cstall, tlb) = stats.engine;
    println!("engine    fetches={fetches} produce_stalls={pstall} consume_stalls={cstall} tlb_misses={tlb}");
    if !stats.verified {
        std::process::exit(1);
    }
}
