//! Placement study: consume round-trip latency vs core↔MAPLE hop
//! distance.
//!
//! Figure 14 characterizes the round trip as "≈25 cycles plus a cycle per
//! hop", and Section 5.3 notes MAPLE instances are scattered across the
//! mesh so the OS can map a nearby instance. Here one MAPLE is placed at
//! increasing Manhattan distances from core 0 on a 6×6 mesh and the mean
//! consume latency is measured: the slope should be ~2 cycles per hop
//! (one each way).

use maple_bench::print_banner;
use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

fn measure(placement: (u16, u16)) -> f64 {
    let mut cfg = SocConfig::fpga_prototype();
    cfg.mesh_width = 6;
    cfg.mesh_height = 6;
    cfg.maple_tile_override = Some(vec![placement]);
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);
    let reps = 24u64;
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let i = b.reg("i");
    let api = MapleApi::new(base);
    b.li(v, 1);
    for _ in 0..reps {
        api.produce(&mut b, 0, v);
    }
    for _ in 0..200 {
        b.nop();
    }
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, reps as i64, done);
    api.consume(&mut b, 0, v, 4);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
    assert!(sys.run(10_000_000).is_finished());
    sys.mean_load_latency()
}

fn main() {
    print_banner(
        "Placement study — consume round trip vs hop distance",
        "≈25 cycles + 1 per hop (Figure 14); OS maps a nearby instance",
    );
    // Core 0 sits at (0,0); sweep the engine along the diagonal-ish path.
    let placements: [((u16, u16), u64); 5] = [
        ((1, 1), 2),
        ((3, 1), 4),
        ((3, 3), 6),
        ((5, 3), 8),
        ((5, 5), 10),
    ];
    println!("{:<12}{:>8}{:>16}", "MAPLE tile", "hops", "mean RTT (cy)");
    let mut prev: Option<(u64, f64)> = None;
    for (tile, hops) in placements {
        let rtt = measure(tile);
        println!("({},{}){:>13}{:>15.1}", tile.0, tile.1, hops, rtt);
        if let Some((ph, pr)) = prev {
            let slope = (rtt - pr) / (hops - ph) as f64;
            assert!(
                (0.5..4.0).contains(&slope),
                "per-hop cost should be ~1-2 cycles each way, got {slope:.2}"
            );
        }
        prev = Some((hops, rtt));
    }
    println!("\nslope ≈ 2 cycles per hop of distance (1 per hop, each way) ✓");
}
