//! Figure 12: MAPLE vs DeSC vs DROPLET vs do-all (2 threads, simulated
//! system).
//!
//! Paper result: MAPLE achieves 1.72× geomean over DeSC and 1.82× over
//! DROPLET, up to 3× over do-all on BFS; DeSC loses runahead on BFS; the
//! SPMM slicer falls back to do-all; MAPLE reaches ≥76 % of DeSC on the
//! decoupling-friendly kernels.

use maple_bench::experiments::{find, prior_work_suite, stall_rows_by_variant};
use maple_bench::{FigureReport, SpeedupTable};
use maple_sim::stats::geomean;

fn main() {
    let run = prior_work_suite();
    let rows = run.rows;
    let mut report = FigureReport::new(
        "fig12",
        "Figure 12 — prior-work comparison (2 threads)",
        "MAPLE 1.72x over DeSC, 1.82x over DROPLET; up to 3x over doall on BFS",
    );
    let mut table = SpeedupTable::new(&["doall", "droplet", "desc", "maple-dec"]);
    let (mut vs_desc, mut vs_droplet) = (Vec::new(), Vec::new());
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let droplet = find(&rows, &app, &ds, "droplet");
        let desc = find(&rows, &app, &ds, "desc");
        let maple = find(&rows, &app, &ds, "maple-dec");
        table.add_row(
            format!("{app}/{ds}"),
            vec![
                1.0,
                base.cycles as f64 / droplet.cycles as f64,
                base.cycles as f64 / desc.cycles as f64,
                base.cycles as f64 / maple.cycles as f64,
            ],
        );
        vs_desc.push(desc.cycles as f64 / maple.cycles as f64);
        vs_droplet.push(droplet.cycles as f64 / maple.cycles as f64);
    }
    report.line("MAPLE over DeSC (geomean)", geomean(&vs_desc), "x", "1.72x");
    report.line(
        "MAPLE over DROPLET (geomean)",
        geomean(&vs_droplet),
        "x",
        "1.82x",
    );
    report.table = Some(table);
    report.stalls =
        stall_rows_by_variant(&rows, &["doall", "droplet", "desc", "maple-dec"]);
    report.fleet = Some(run.fleet);
    report.emit();
}
