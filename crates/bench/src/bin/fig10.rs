//! Figure 10: load-instruction overhead of prefetching, normalized to no
//! prefetching.
//!
//! Paper result: software prefetching roughly doubles the number of load
//! instructions (the re-computed indices), while MAPLE *reduces* them
//! slightly — wide consumes pop two 32-bit words per load.

use maple_bench::experiments::{find, prefetch_suite};
use maple_bench::{print_banner, SpeedupTable};

fn main() {
    print_banner(
        "Figure 10 — normalized load-instruction count (single thread)",
        "sw-prefetch ≈ 2x loads; MAPLE slightly below 1x",
    );
    let rows = prefetch_suite();
    let mut table = SpeedupTable::new(&["no-pref", "sw-pref", "maple-lima"]);
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let sw = find(&rows, &app, &ds, "sw-pref");
        let lima = find(&rows, &app, &ds, "maple-lima");
        table.add_row(
            format!("{app}/{ds}"),
            vec![
                1.0,
                sw.loads as f64 / base.loads as f64,
                lima.loads as f64 / base.loads as f64,
            ],
        );
    }
    table.print();
    let g = table.geomeans();
    println!(
        "\nsw-prefetch load overhead (geomean): {:.2}x   [paper: ~2x]",
        g[1]
    );
    println!(
        "MAPLE load count (geomean):          {:.2}x   [paper: slightly < 1x]",
        g[2]
    );
}
