//! Figure 10: load-instruction overhead of prefetching, normalized to no
//! prefetching.
//!
//! Paper result: software prefetching roughly doubles the number of load
//! instructions (the re-computed indices), while MAPLE *reduces* them
//! slightly — wide consumes pop two 32-bit words per load.

use maple_bench::experiments::{find, prefetch_suite, stall_rows_by_variant};
use maple_bench::{FigureReport, SpeedupTable};

fn main() {
    let run = prefetch_suite();
    let rows = run.rows;
    let mut report = FigureReport::new(
        "fig10",
        "Figure 10 — normalized load-instruction count (single thread)",
        "sw-prefetch ≈ 2x loads; MAPLE slightly below 1x",
    );
    let mut table = SpeedupTable::new(&["no-pref", "sw-pref", "maple-lima"]);
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let sw = find(&rows, &app, &ds, "sw-pref");
        let lima = find(&rows, &app, &ds, "maple-lima");
        table.add_row(
            format!("{app}/{ds}"),
            vec![
                1.0,
                sw.loads as f64 / base.loads as f64,
                lima.loads as f64 / base.loads as f64,
            ],
        );
    }
    let g = table.geomeans();
    report.line("sw-prefetch load overhead (geomean)", g[1], "x", "~2x");
    report.line("MAPLE load count (geomean)", g[2], "x", "slightly < 1x");
    report.table = Some(table);
    report.stalls = stall_rows_by_variant(&rows, &["doall", "sw-pref", "maple-lima"]);
    report.fleet = Some(run.fleet);
    report.emit();
}
