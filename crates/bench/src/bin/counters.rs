//! Section 4.4's methodology: MAPLE's performance counters, read out
//! after a decoupled run (the FPGA evaluation used the API's debug
//! operations for the queue-size study).
//!
//! Also demonstrates the in-program path: the Execute thread reads the
//! `STAT_CONSUMED` counter through an ordinary load before halting.

use maple_bench::print_banner;
use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::spmv::Spmv;
use maple_workloads::Variant;

fn main() {
    print_banner(
        "Section 4.4 — MAPLE performance counters (debug operations)",
        "queue runahead and engine activity observed through the API",
    );

    // A representative decoupled run; the harness surfaces the counters.
    let inst = Spmv {
        a: uniform_sparse(192, 64 * 1024, 8, 77),
        x: dense_vector(64 * 1024, 78),
    };
    let s = inst.run(Variant::MapleDecoupled, 2);
    assert!(s.verified);
    let (fetches, produce_stalls, consume_stalls, tlb_misses) = s.engine;
    println!("run: spmv maple-decoupled, {} cycles", s.cycles);
    println!("  engine memory fetches      {fetches}");
    println!("  produce stalls (queue full){produce_stalls:>12} cycles");
    println!("  consume stalls (data wait) {consume_stalls:>12} cycles");
    println!("  engine TLB misses          {tlb_misses}");
    println!(
        "  mean load-to-use latency   {:>12.1} cycles",
        s.mean_load_latency
    );

    // In-program counter read: produce 5 values, consume 3, read
    // STAT_PRODUCED / STAT_CONSUMED / STAT_OCCUPANCY from user mode.
    let mut sys = System::new(SocConfig::fpga_prototype());
    let maple_va = sys.map_maple(0);
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let produced = b.reg("produced");
    let consumed = b.reg("consumed");
    let occupancy = b.reg("occupancy");
    let api = MapleApi::new(base);
    b.li(v, 9);
    for _ in 0..5 {
        api.produce(&mut b, 2, v);
    }
    for _ in 0..3 {
        api.consume(&mut b, 2, v, 4);
    }
    api.stat(&mut b, 2, maple_core::mmio::LoadOp::StatProduced, produced);
    api.stat(&mut b, 2, maple_core::mmio::LoadOp::StatConsumed, consumed);
    api.stat(&mut b, 2, maple_core::mmio::LoadOp::StatOccupancy, occupancy);
    b.halt();
    let core = sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
    assert!(sys.run(1_000_000).is_finished());
    println!("\nuser-mode counter reads on queue 2 after 5 produces / 3 consumes:");
    println!("  STAT_PRODUCED  = {}", sys.core(core).reg(produced));
    println!("  STAT_CONSUMED  = {}", sys.core(core).reg(consumed));
    println!("  STAT_OCCUPANCY = {}", sys.core(core).reg(occupancy));
    assert_eq!(sys.core(core).reg(produced), 5);
    assert_eq!(sys.core(core).reg(consumed), 3);
    assert_eq!(sys.core(core).reg(occupancy), 2);

    // Runahead observed through sampled occupancy (the §4.4 study): the
    // decoupled run above also sampled queue 0 every 64 cycles.
    println!(
        "\nqueue-0 occupancy during the decoupled run (runahead): mean {:.1} / {} entries",
        s.queue0_occupancy_mean,
        32
    );
}
