//! CI gate for the event-horizon scheduler: one stall-heavy SPMV config
//! runs under both steppers; any divergence in the final cycle count,
//! the run statistics, or the metrics-snapshot JSON fails the build.
//! Doubles as the perf smoke: prints simulated Mcycles per host second
//! for the dense and skipping loops and the resulting speedup.
//!
//! With `--partitions N` it instead runs the partitioned determinism
//! gate: the same stall-heavy shape under MAPLE decoupling, once
//! single-threaded and once sharded into `N` spatial partitions (worker
//! count from `MAPLE_JOBS`/host parallelism), printing only
//! host-independent lines so `ci.sh` can byte-diff the output across
//! worker counts.
//!
//! With `--fast-path` it runs the compiled fast-path determinism gate:
//! the mixed SPMV MAPLE-decoupled workload and the compute-heavy kernel
//! under interpreter vs batched micro-op-run dispatch, across steppers
//! and the recoverable chaos schedules, again printing only
//! host-independent lines for the cross-worker byte-diff.
//!
//! With `--scale N` it runs the hierarchical-fabric determinism gate:
//! an `N`-tile clustered SoC (4×4 crossbar clusters, one L2 bank and
//! one MAPLE engine per cluster) under the skipping stepper vs a
//! 4-partition run, printing only host-independent lines for the
//! cross-worker byte-diff — the scale smoke of `ci.sh`.
//!
//! With `--speedup-floor X` it runs the partitioned *throughput*
//! expectation: the 4-partition sweep must reach `X`× the
//! single-threaded skipping baseline. This gate is honest about the
//! host: on a 1-core container the parallel stepper cannot win, so the
//! expectation is **skipped** (exit 0, with an explicit skip line) —
//! only the bit-exactness gates above apply there.

use maple_bench::report::FigureReport;
use maple_bench::scaling::scale_gate;
use maple_bench::stepper::{
    fast_path_gate, partitioned_gate, partitioned_sweep, stall_heavy_comparison,
};

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The `--speedup-floor` gate; returns the process exit code.
fn speedup_floor_gate(floor: f64) -> i32 {
    let cores = host_cores();
    if cores <= 1 {
        println!(
            "stepper speedup gate SKIPPED: host_cores=1 pins the partitioned \
             stepper at ~1.0x (bit-exactness gates still enforced)"
        );
        return 0;
    }
    let sweep = partitioned_sweep(0x57E9, &[4], None);
    if let Some(msg) = sweep.divergence() {
        eprintln!("[stepper_check] PARTITIONED STEPPER DIVERGENCE\n{msg}");
        return 1;
    }
    let speedup = sweep.speedup_at(4).expect("4-partition run present");
    println!(
        "stepper speedup gate: host_cores={cores}, 4 partitions at {speedup:.2}x \
         over skipping baseline (floor {floor:.2}x)"
    );
    if speedup < floor {
        eprintln!(
            "[stepper_check] partitioned speedup {speedup:.2}x below the \
             {floor:.2}x floor on a {cores}-core host"
        );
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--speedup-floor") {
        let floor: f64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&f| f > 0.0)
            .expect("--speedup-floor takes a positive number");
        std::process::exit(speedup_floor_gate(floor));
    }
    if args.iter().any(|a| a == "--fast-path") {
        match fast_path_gate(0x57E9) {
            Ok(report) => println!("{report}"),
            Err(msg) => {
                eprintln!("[stepper_check] FAST-PATH DIVERGENCE\n{msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        let tiles: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .expect("--scale takes a positive tile count (a square multiple of 16)");
        match scale_gate(0x5CA1E, tiles) {
            Ok(report) => println!("{report}"),
            Err(msg) => {
                eprintln!("[stepper_check] HIERARCHICAL FABRIC DIVERGENCE\n{msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--partitions") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .expect("--partitions takes a positive integer");
        match partitioned_gate(0x57E9, n) {
            Ok(report) => println!("{report}"),
            Err(msg) => {
                eprintln!("[stepper_check] PARTITIONED STEPPER DIVERGENCE\n{msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let cmp = stall_heavy_comparison(0x57E9);
    if let Some(msg) = cmp.divergence() {
        eprintln!("[stepper_check] STEPPER DIVERGENCE\n{msg}");
        std::process::exit(1);
    }
    let mut rep = FigureReport::new(
        "stepper",
        "Event-horizon stepper vs dense reference (SPMV do-all, DRAM 300cy)",
        "n/a — host throughput, bit-exact by construction",
    );
    rep.line(
        "simulated cycles",
        cmp.dense.stats.cycles as f64,
        " cy",
        "—",
    );
    rep.line(
        "dense host throughput",
        cmp.dense.mcycles_per_sec(),
        " Mcy/s",
        "—",
    );
    rep.line(
        "skipping host throughput",
        cmp.skipping.mcycles_per_sec(),
        " Mcy/s",
        "—",
    );
    rep.line("stepper speedup", cmp.speedup(), "x", ">=2x acceptance");
    rep.emit();
    println!(
        "stepper ok: bit-exact at {} cycles; dense {:.2} Mcy/s, skipping {:.2} Mcy/s ({:.1}x)",
        cmp.dense.stats.cycles,
        cmp.dense.mcycles_per_sec(),
        cmp.skipping.mcycles_per_sec(),
        cmp.speedup()
    );
}
