//! CI gate for the event-horizon scheduler: one stall-heavy SPMV config
//! runs under both steppers; any divergence in the final cycle count,
//! the run statistics, or the metrics-snapshot JSON fails the build.
//! Doubles as the perf smoke: prints simulated Mcycles per host second
//! for the dense and skipping loops and the resulting speedup.

use maple_bench::report::FigureReport;
use maple_bench::stepper::stall_heavy_comparison;

fn main() {
    let cmp = stall_heavy_comparison(0x57E9);
    if let Some(msg) = cmp.divergence() {
        eprintln!("[stepper_check] STEPPER DIVERGENCE\n{msg}");
        std::process::exit(1);
    }
    let mut rep = FigureReport::new(
        "stepper",
        "Event-horizon stepper vs dense reference (SPMV do-all, DRAM 300cy)",
        "n/a — host throughput, bit-exact by construction",
    );
    rep.line(
        "simulated cycles",
        cmp.dense.stats.cycles as f64,
        " cy",
        "—",
    );
    rep.line(
        "dense host throughput",
        cmp.dense.mcycles_per_sec(),
        " Mcy/s",
        "—",
    );
    rep.line(
        "skipping host throughput",
        cmp.skipping.mcycles_per_sec(),
        " Mcy/s",
        "—",
    );
    rep.line("stepper speedup", cmp.speedup(), "x", ">=2x acceptance");
    rep.emit();
    println!(
        "stepper ok: bit-exact at {} cycles; dense {:.2} Mcy/s, skipping {:.2} Mcy/s ({:.1}x)",
        cmp.dense.stats.cycles,
        cmp.dense.mcycles_per_sec(),
        cmp.skipping.mcycles_per_sec(),
        cmp.speedup()
    );
}
