//! Figure 15: sensitivity to the core-to-MAPLE communication latency.
//!
//! Paper result: decoupling speedups grow as the NoC round trip shrinks;
//! the figure sweeps the average round-trip latency.

use maple_bench::instances;
use maple_bench::{FigureReport, SpeedupTable};
use maple_trace::StallRow;
use maple_workloads::Variant;

fn main() {
    let mut report = FigureReport::new(
        "fig15",
        "Figure 15 — speedup vs core-to-MAPLE round-trip latency",
        "lower NoC delay → greater decoupling benefit",
    );
    // Extra pipeline cycles added on top of the ~25-cycle baseline round
    // trip: the sweep points approximate RTTs of ~25, ~50, ~100 cycles.
    let sweep: [(u64, &str); 3] = [(0, "~25"), (25, "~50"), (75, "~100")];

    let spmv = instances::spmv().remove(0).1;
    let sdhp = instances::sdhp().remove(0).1;
    let labels: Vec<String> = sweep.iter().map(|(_, l)| format!("rtt {l}")).collect();
    let cols: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut table = SpeedupTable::new(&cols);
    let mut stalls: Vec<StallRow> = Vec::new();

    {
        let mut cells = Vec::new();
        for (extra, rtt) in sweep {
            eprintln!("[fig15] spmv extra={extra}...");
            let doall = spmv.run(Variant::Doall, 2).cycles;
            let maple = spmv.run_tuned(Variant::MapleDecoupled, 2, |c| {
                c.with_maple_extra_latency(extra)
            });
            cells.push(doall as f64 / maple.cycles as f64);
            stalls.push(StallRow {
                label: format!("spmv maple rtt {rtt}"),
                core_cycles: maple.core_cycles,
                breakdown: maple.stall,
            });
        }
        table.add_row("spmv/riscv-s", cells);
    }
    {
        let mut cells = Vec::new();
        for (extra, rtt) in sweep {
            eprintln!("[fig15] sdhp extra={extra}...");
            let doall = sdhp.run(Variant::Doall, 2).cycles;
            let maple = sdhp.run_tuned(Variant::MapleDecoupled, 2, |c| {
                c.with_maple_extra_latency(extra)
            });
            cells.push(doall as f64 / maple.cycles as f64);
            stalls.push(StallRow {
                label: format!("sdhp maple rtt {rtt}"),
                core_cycles: maple.core_cycles,
                breakdown: maple.stall,
            });
        }
        table.add_row("sdhp/suitesparse", cells);
    }

    report.table = Some(table);
    report.stalls = stalls;
    report.emit();
    println!("\n(cells: MAPLE-decoupled speedup over 2-thread do-all at each RTT)");
}
