//! Temporary diagnostic.
use maple_workloads::bfs::Bfs;
use maple_workloads::data::Dataset;
use maple_workloads::Variant;
fn main() {
    let inst = Bfs::new(Dataset::WikiLike, 99);
    for (name, v) in [("doall", Variant::Doall), ("maple", Variant::MapleDecoupled)] {
        let s = inst.run(v, 2);
        println!("{name}: cycles={} loads={} lat={:.1}", s.cycles, s.loads, s.mean_load_latency);
        println!("  engine: fetches={} prod_stalls={} cons_stalls={} tlb_miss={}", s.engine.0, s.engine.1, s.engine.2, s.engine.3);
        for (i, c) in s.cores.iter().enumerate() {
            println!("  core{i}: insts={} mem_stall={} ({:.0}%) loads={}",
                c.instructions, c.mem_stall_cycles,
                100.0 * c.mem_stall_cycles as f64 / s.cycles as f64, c.loads);
        }
    }
}
