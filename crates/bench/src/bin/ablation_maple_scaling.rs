//! Ablation: scaling MAPLE *instances* with thread count.
//!
//! Figure 13 shares a single engine among all pairs; its SPMV result
//! degrades at 8 threads because four pairs saturate one engine's MMU
//! walker. The paper's remedy — "more units can be employed for larger
//! thread counts in a tiled manner" — is quantified here: 8 threads
//! (4 Access/Execute pairs) over 1, 2 and 4 MAPLE instances.

use maple_bench::instances;
use maple_bench::{print_banner, SpeedupTable};
use maple_workloads::Variant;

fn main() {
    print_banner(
        "Ablation — 8 threads, scaling MAPLE instances",
        "tiled MAPLE units recover the decoupling speedup at high thread counts",
    );
    let spmv = instances::spmv().remove(0).1;
    let threads = 8;
    let doall = spmv.run(Variant::Doall, threads).cycles;

    let engines = [1usize, 2, 4];
    let labels: Vec<String> = engines.iter().map(|e| format!("{e} MAPLE")).collect();
    let cols: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut table = SpeedupTable::new(&cols);

    let cells = engines
        .iter()
        .map(|&e| {
            eprintln!("[ablation] spmv 8t {e} engines...");
            let s = spmv.run_tuned(Variant::MapleDecoupled, threads, |c| c.with_maples(e));
            assert!(s.verified);
            doall as f64 / s.cycles as f64
        })
        .collect();
    table.add_row("spmv/riscv-s (8t)", cells);
    table.print();
    println!("\n(cells: MAPLE-decoupled speedup over 8-thread do-all)");
}
