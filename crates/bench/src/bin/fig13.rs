//! Figure 13: thread scaling — decoupled pairs sharing a single MAPLE
//! unit vs equal-thread do-all.
//!
//! Paper result: the decoupling speedup over do-all is maintained when
//! scaling from 2 to 4 and 8 threads sharing one MAPLE instance.

use maple_bench::instances;
use maple_bench::{print_banner, SpeedupTable};
use maple_workloads::Variant;

fn main() {
    print_banner(
        "Figure 13 — scaling threads over one shared MAPLE",
        "speedup over do-all holds at 2, 4 and 8 threads",
    );
    let mut table = SpeedupTable::new(&["2 threads", "4 threads", "8 threads"]);

    // The decoupling-friendly kernels (the figure's subjects).
    let spmv = instances::spmv().remove(0).1;
    let sdhp = instances::sdhp().remove(0).1;
    let bfs = instances::bfs().remove(0).1;

    let mut row = |label: &str, f: &dyn Fn(Variant, usize) -> u64| {
        let mut cells = Vec::new();
        for t in [2usize, 4, 8] {
            eprintln!("[fig13] {label} t={t}...");
            let doall = f(Variant::Doall, t);
            let maple = f(Variant::MapleDecoupled, t);
            cells.push(doall as f64 / maple as f64);
        }
        table.add_row(label.to_owned(), cells);
    };

    row("spmv/riscv-s", &|v, t| spmv.run(v, t).cycles);
    row("sdhp/suitesparse", &|v, t| sdhp.run(v, t).cycles);
    row("bfs/wiki", &|v, t| bfs.run(v, t).cycles);

    table.print();
    println!("\n(each cell: MAPLE-decoupled speedup over do-all at the same thread count)");
}
