//! Figure 13: thread scaling — decoupled pairs sharing a single MAPLE
//! unit vs equal-thread do-all.
//!
//! Paper result: the decoupling speedup over do-all is maintained when
//! scaling from 2 to 4 and 8 threads sharing one MAPLE instance.

use maple_bench::instances;
use maple_bench::{FigureReport, SpeedupTable};
use maple_trace::StallRow;
use maple_workloads::{RunStats, Variant};

fn main() {
    let mut report = FigureReport::new(
        "fig13",
        "Figure 13 — scaling threads over one shared MAPLE",
        "speedup over do-all holds at 2, 4 and 8 threads",
    );
    let mut table = SpeedupTable::new(&["2 threads", "4 threads", "8 threads"]);
    let mut stalls: Vec<StallRow> = Vec::new();

    // The decoupling-friendly kernels (the figure's subjects).
    let spmv = instances::spmv().remove(0).1;
    let sdhp = instances::sdhp().remove(0).1;
    let bfs = instances::bfs().remove(0).1;

    let mut row = |label: &str, f: &dyn Fn(Variant, usize) -> RunStats| {
        let mut cells = Vec::new();
        for t in [2usize, 4, 8] {
            eprintln!("[fig13] {label} t={t}...");
            let doall = f(Variant::Doall, t);
            let maple = f(Variant::MapleDecoupled, t);
            cells.push(doall.cycles as f64 / maple.cycles as f64);
            stalls.push(StallRow {
                label: format!("{label} maple t={t}"),
                core_cycles: maple.core_cycles,
                breakdown: maple.stall,
            });
        }
        table.add_row(label.to_owned(), cells);
    };

    row("spmv/riscv-s", &|v, t| spmv.run(v, t));
    row("sdhp/suitesparse", &|v, t| sdhp.run(v, t));
    row("bfs/wiki", &|v, t| bfs.run(v, t));

    report.table = Some(table);
    report.stalls = stalls;
    report.emit();
    println!("\n(each cell: MAPLE-decoupled speedup over do-all at the same thread count)");
}
