//! CI gate for multi-tenant serving: the differential-oracle grid
//! ({skipping, dense, 4-partition} × fast-path on/off × {clean, one
//! recoverable chaos schedule}) through the fleet executor, plus the
//! engine-kill ladder cell. Prints only host-independent lines, so
//! `scripts/ci.sh` byte-diffs the output across `MAPLE_JOBS` values;
//! any isolation violation or unverified request exits nonzero.

use maple_bench::serving::serve_gate;

fn main() {
    match serve_gate(0x5E12E) {
        Ok(report) => println!("{report}"),
        Err(msg) => {
            eprintln!("[serve_check] SERVING ORACLE FAILURE\n{msg}");
            std::process::exit(1);
        }
    }
}
