//! Figure 8: decoupling speedups over 2-thread do-all parallelism.
//!
//! Paper result: MAPLE decoupling achieves 1.51× geomean over do-all and
//! 2.27× over software-only decoupling — software decoupling alone is
//! *slower* than do-all on in-order cores.

use maple_bench::experiments::{decoupling_suite, find, stall_rows_by_variant};
use maple_bench::{FigureReport, SpeedupTable};

fn main() {
    let run = decoupling_suite();
    let rows = run.rows;
    let mut report = FigureReport::new(
        "fig08",
        "Figure 8 — decoupling (1 Access + 1 Execute) vs 2-thread do-all",
        "MAPLE 1.51x geomean over doall; 2.27x over software decoupling",
    );
    let mut table = SpeedupTable::new(&["doall", "sw-dec", "maple-dec"]);
    let mut sw_ratio = Vec::new();
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let sw = find(&rows, &app, &ds, "sw-dec");
        let maple = find(&rows, &app, &ds, "maple-dec");
        table.add_row(
            format!("{app}/{ds}"),
            vec![
                1.0,
                base.cycles as f64 / sw.cycles as f64,
                base.cycles as f64 / maple.cycles as f64,
            ],
        );
        sw_ratio.push(sw.cycles as f64 / maple.cycles as f64);
    }
    let g = table.geomeans();
    report.line(
        "MAPLE over software decoupling (geomean)",
        maple_sim::stats::geomean(&sw_ratio),
        "x",
        "2.27x",
    );
    report.line("MAPLE over doall (geomean)", g[2], "x", "1.51x");
    report.table = Some(table);
    report.stalls = stall_rows_by_variant(&rows, &["doall", "sw-dec", "maple-dec"]);
    report.fleet = Some(run.fleet);
    report.emit();
}
