//! Figure 11: mean load-to-use latency with and without prefetching.
//!
//! Paper result: LIMA nearly halves the average load latency (1.85×
//! geomean reduction) — prefetched data waits in MAPLE queues an L2-round
//! trip away instead of in DRAM.

use maple_bench::experiments::{find, prefetch_suite};
use maple_bench::print_banner;
use maple_sim::stats::geomean;

fn main() {
    print_banner(
        "Figure 11 — average load latency in cycles (single thread)",
        "LIMA cuts mean load latency ~1.85x vs no prefetching",
    );
    let rows = prefetch_suite();
    println!(
        "{:<22}{:>12}{:>12}{:>12}",
        "workload", "no-pref", "sw-pref", "maple-lima"
    );
    let mut reduction = Vec::new();
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let sw = find(&rows, &app, &ds, "sw-pref");
        let lima = find(&rows, &app, &ds, "maple-lima");
        println!(
            "{:<22}{:>10.1}cy{:>10.1}cy{:>10.1}cy",
            format!("{app}/{ds}"),
            base.load_latency,
            sw.load_latency,
            lima.load_latency
        );
        reduction.push(base.load_latency / lima.load_latency);
    }
    println!(
        "\nLIMA latency reduction (geomean): {:.2}x   [paper: 1.85x]",
        geomean(&reduction)
    );
}
