//! Figure 11: mean load-to-use latency with and without prefetching.
//!
//! Paper result: LIMA nearly halves the average load latency (1.85×
//! geomean reduction) — prefetched data waits in MAPLE queues an L2-round
//! trip away instead of in DRAM.

use maple_bench::experiments::{find, prefetch_suite, stall_rows_by_variant};
use maple_bench::{FigureReport, SpeedupTable};
use maple_sim::stats::geomean;

fn main() {
    let run = prefetch_suite();
    let rows = run.rows;
    let mut report = FigureReport::new(
        "fig11",
        "Figure 11 — average load latency in cycles (single thread)",
        "LIMA cuts mean load latency ~1.85x vs no prefetching",
    );
    let mut table =
        SpeedupTable::new(&["no-pref", "sw-pref", "maple-lima"]).with_unit("cy");
    let mut reduction = Vec::new();
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let sw = find(&rows, &app, &ds, "sw-pref");
        let lima = find(&rows, &app, &ds, "maple-lima");
        table.add_row(
            format!("{app}/{ds}"),
            vec![base.load_latency, sw.load_latency, lima.load_latency],
        );
        reduction.push(base.load_latency / lima.load_latency);
    }
    report.line(
        "LIMA latency reduction (geomean)",
        geomean(&reduction),
        "x",
        "1.85x",
    );
    report.table = Some(table);
    report.stalls = stall_rows_by_variant(&rows, &["doall", "sw-pref", "maple-lima"]);
    report.fleet = Some(run.fleet);
    report.emit();
}
