//! Section 5.3 queue-size sensitivity.
//!
//! Paper result: 32 four-byte entries per queue suffice to hide latency;
//! 16 entries cost 5–10 %; performance is stable beyond that.

use maple_bench::instances;
use maple_bench::{print_banner, SpeedupTable};
use maple_workloads::Variant;

fn main() {
    print_banner(
        "Section 5.3 — queue-size sweep (entries per queue, 4 B each)",
        "32 entries suffice; 16 entries cost 5-10%",
    );
    let spmv = instances::spmv().remove(0).1;
    let sdhp = instances::sdhp().remove(0).1;
    let doall_spmv = spmv.run(Variant::Doall, 2).cycles;
    let doall_sdhp = sdhp.run(Variant::Doall, 2).cycles;

    let sizes = [8usize, 16, 32, 64];
    let labels: Vec<String> = sizes.iter().map(|s| format!("{s} entries")).collect();
    let cols: Vec<&str> = labels.iter().map(String::as_str).collect();
    let mut table = SpeedupTable::new(&cols);

    let mut row = |label: &str, doall: u64, run: &dyn Fn(usize) -> u64| {
        let cells = sizes
            .iter()
            .map(|&s| {
                eprintln!("[queue_sweep] {label} entries={s}...");
                doall as f64 / run(s) as f64
            })
            .collect();
        table.add_row(label.to_owned(), cells);
    };

    row("spmv/riscv-s", doall_spmv, &|s| {
        spmv.run_tuned(Variant::MapleDecoupled, 2, |c| c.with_queue_entries(s))
            .cycles
    });
    row("sdhp/suitesparse", doall_sdhp, &|s| {
        sdhp.run_tuned(Variant::MapleDecoupled, 2, |c| c.with_queue_entries(s))
            .cycles
    });

    table.print();
    println!("\n(cells: MAPLE-decoupled speedup over 2-thread do-all per queue size)");
}
