//! Standalone TCP fleet worker for distributed oracle-grid runs.
//!
//! Listens on a local address, announces the bound port on stdout (so
//! scripts binding port 0 can discover it), then serves coordinator
//! connections one at a time: each `Job` frame carries a `gridv1` spec,
//! which is decoded and simulated by `maple_bench::distributed::run_spec`,
//! with heartbeats streamed back while the simulation runs.
//!
//! `--crash-after N` makes the process exit(1) while computing its
//! N+1-th job — the ci.sh TCP smoke test uses this to kill a worker
//! mid-batch and prove the coordinator reassigns the orphaned lease.
//!
//! ```text
//! fleet_worker --listen 127.0.0.1:0 [--crash-after N]
//! ```

use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use maple_bench::distributed::run_spec;
use maple_fleet::net::TcpTransport;
use maple_fleet::remote::serve_connection;

fn usage() -> ! {
    eprintln!("usage: fleet_worker --listen HOST:PORT [--crash-after N]");
    std::process::exit(2);
}

fn main() {
    let mut listen = String::from("127.0.0.1:0");
    let mut crash_after: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| usage()),
            "--crash-after" => {
                let n = args.next().unwrap_or_else(|| usage());
                crash_after = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }

    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("fleet_worker: bind {listen}: {e}");
        std::process::exit(1);
    });
    let addr = listener.local_addr().expect("bound socket has an address");
    // Machine-readable announcement: scripts parse this line.
    println!("listening on {addr}");

    let started = AtomicU64::new(0);
    let runner = move |spec: &str| {
        let n = started.fetch_add(1, Ordering::SeqCst);
        if let Some(limit) = crash_after {
            if n >= limit {
                eprintln!("fleet_worker: --crash-after {limit} reached, dying mid-job");
                std::process::exit(1);
            }
        }
        run_spec(spec)
    };

    for conn in listener.incoming() {
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fleet_worker: accept: {e}");
                continue;
            }
        };
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        let mut transport = match TcpTransport::from_stream(stream) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fleet_worker: {peer}: setup failed: {e}");
                continue;
            }
        };
        match serve_connection(&mut transport, Duration::from_millis(200), &runner) {
            Ok(served) => eprintln!("fleet_worker: {peer}: served {served} jobs, connection closed"),
            Err(e) => eprintln!("fleet_worker: {peer}: {e}"),
        }
    }
}
