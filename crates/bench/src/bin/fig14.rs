//! Figure 14: round-trip latency breakdown of core-to-MAPLE
//! communication.
//!
//! Paper result: the consume round trip costs ≈25 cycles plus one cycle
//! per NoC hop — similar to an L2 access and an order of magnitude below
//! DRAM.

use maple_bench::print_banner;
use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

/// Measures the mean consume latency for back-to-back consumes of
/// pre-produced data.
fn measure_roundtrip(cfg: SocConfig) -> f64 {
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);
    // Must fit in one 32-entry queue: produces precede all consumes.
    let reps = 24u64;
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let i = b.reg("i");
    let api = MapleApi::new(base);
    b.li(v, 1);
    for _ in 0..reps {
        api.produce(&mut b, 0, v);
    }
    // Drain the produce acks before timing.
    for _ in 0..200 {
        b.nop();
    }
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, reps as i64, done);
    api.consume(&mut b, 0, v, 4);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    let core = sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
    assert!(sys.run(10_000_000).is_finished());
    // The L1 latency histogram holds exactly the consume loads.
    let _ = core;
    sys.mean_load_latency()
}

fn main() {
    print_banner(
        "Figure 14 — core-to-MAPLE round-trip latency breakdown",
        "≈25 cycles + 1 per hop; similar to L2, ~10x below DRAM",
    );
    let cfg = SocConfig::fpga_prototype();
    println!("modelled step breakdown (one way and back):");
    println!("  L1 miss handling + core retire     {:>3} cy", 2 * cfg.cpu.l1.hit_latency);
    println!("  tile uncore (L1.5 + NoC codec) x2  {:>3} cy", 2 * cfg.uncore_latency);
    println!("  NoC hops (adjacent tiles) x2       {:>3} cy", 2);
    println!("  MAPLE decode pipeline              {:>3} cy", cfg.maple.decode_latency);
    println!("  MAPLE consume + respond            {:>3} cy", cfg.maple.respond_latency);
    let modelled = 2 * cfg.cpu.l1.hit_latency
        + 2 * cfg.uncore_latency
        + 2
        + cfg.maple.decode_latency
        + cfg.maple.respond_latency;
    println!("  ------------------------------------------");
    println!("  modelled total                     {modelled:>3} cy");

    let measured = measure_roundtrip(cfg.clone());
    println!("\nmeasured mean consume round trip:    {measured:>5.1} cy   [paper: ~25 + hops]");
    println!(
        "DRAM access for comparison:          {:>5} cy   ({:.0}x slower)",
        cfg.l2.latency + cfg.dram.latency,
        (cfg.l2.latency + cfg.dram.latency) as f64 / measured
    );
    assert!(
        (15.0..45.0).contains(&measured),
        "round trip should be L2-scale"
    );
}
