//! Figure 14: round-trip latency breakdown of core-to-MAPLE
//! communication.
//!
//! Paper result: the consume round trip costs ≈25 cycles plus one cycle
//! per NoC hop — similar to an L2 access and an order of magnitude below
//! DRAM.

use maple_bench::rtt::measure_roundtrip;
use maple_bench::FigureReport;
use maple_soc::config::SocConfig;

fn main() {
    let mut report = FigureReport::new(
        "fig14",
        "Figure 14 — core-to-MAPLE round-trip latency breakdown",
        "≈25 cycles + 1 per hop; similar to L2, ~10x below DRAM",
    );
    let cfg = SocConfig::fpga_prototype();
    let modelled = 2 * cfg.cpu.l1.hit_latency
        + 2 * cfg.uncore_latency
        + 2
        + cfg.maple.decode_latency
        + cfg.maple.respond_latency;
    let rtt = measure_roundtrip(cfg.clone());
    let dram = cfg.l2.latency + cfg.dram.latency;

    report.line("modelled round trip", modelled as f64, "cy", "~25 + hops");
    report.line(
        "measured mean consume round trip",
        rtt.mean_rtt,
        "cy",
        "~25 + hops",
    );
    report.line(
        "DRAM access for comparison",
        dram as f64,
        "cy",
        "~10x slower than the round trip",
    );
    report.stalls = rtt.stalls;
    report.emit();

    println!("\nmodelled step breakdown (one way and back):");
    println!(
        "  L1 miss handling + core retire     {:>3} cy",
        2 * cfg.cpu.l1.hit_latency
    );
    println!(
        "  tile uncore (L1.5 + NoC codec) x2  {:>3} cy",
        2 * cfg.uncore_latency
    );
    println!("  NoC hops (adjacent tiles) x2       {:>3} cy", 2);
    println!(
        "  MAPLE decode pipeline              {:>3} cy",
        cfg.maple.decode_latency
    );
    println!(
        "  MAPLE consume + respond            {:>3} cy",
        cfg.maple.respond_latency
    );
    println!("  ------------------------------------------");
    println!("  modelled total                     {modelled:>3} cy");
    assert!(
        (15.0..45.0).contains(&rtt.mean_rtt),
        "round trip should be L2-scale"
    );
}
