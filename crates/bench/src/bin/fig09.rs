//! Figure 9: prefetching speedups over no prefetching (single thread).
//!
//! Paper result: MAPLE's LIMA achieves 1.73× geomean over no prefetching
//! (up to 2.4× on SPMV) and 2.35× over software prefetching.

use maple_bench::experiments::{find, prefetch_suite, stall_rows_by_variant};
use maple_bench::{FigureReport, SpeedupTable};

fn main() {
    let run = prefetch_suite();
    let rows = run.rows;
    let mut report = FigureReport::new(
        "fig09",
        "Figure 9 — prefetching IMAs, single thread",
        "LIMA 1.73x geomean over no-prefetch (2.4x SPMV); 2.35x over sw-prefetch",
    );
    let mut table = SpeedupTable::new(&["no-pref", "sw-pref", "maple-lima"]);
    let mut vs_sw = Vec::new();
    for (app, ds) in maple_bench::experiments::app_datasets() {
        let base = find(&rows, &app, &ds, "doall");
        let sw = find(&rows, &app, &ds, "sw-pref");
        let lima = find(&rows, &app, &ds, "maple-lima");
        table.add_row(
            format!("{app}/{ds}"),
            vec![
                1.0,
                base.cycles as f64 / sw.cycles as f64,
                base.cycles as f64 / lima.cycles as f64,
            ],
        );
        vs_sw.push(sw.cycles as f64 / lima.cycles as f64);
    }
    let g = table.geomeans();
    report.line("LIMA over no prefetching (geomean)", g[2], "x", "1.73x");
    report.line(
        "LIMA over software prefetching (geomean)",
        maple_sim::stats::geomean(&vs_sw),
        "x",
        "2.35x",
    );
    report.table = Some(table);
    report.stalls = stall_rows_by_variant(&rows, &["doall", "sw-pref", "maple-lima"]);
    report.fleet = Some(run.fleet);
    report.emit();
}
