//! Deterministic oracle-grid driver for the CI determinism gate.
//!
//! Runs the differential oracle grid (every oracle variant × three fixed
//! tiny kernel instances) and the fixed-seed chaos grid, dispatching all
//! independent runs through the `maple-fleet` pool, and prints one line
//! per measurement to stdout. Every printed value is a pure function of
//! the fixed seeds and the simulator — **independent of `MAPLE_JOBS`**.
//! `scripts/ci.sh` runs this binary at `MAPLE_JOBS=1` and `=4` and
//! diffs the outputs; any divergence fails the build.
//!
//! Progress/accounting (which *does* vary with worker count and
//! wall-clock) goes to stderr only.

use maple_fleet::FleetConfig;
use maple_sim::rng::SimRng;
use maple_workloads::bfs::Bfs;
use maple_workloads::data::{dense_vector, uniform_sparse, Csr};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::oracle::{
    chaos_check, chaos_schedules, check_cross, check_run, ORACLE_VARIANTS,
};
use maple_workloads::sdhp::Sdhp;
use maple_workloads::spmv::Spmv;

/// Fixed seed: the whole grid replays bit-for-bit from this.
const SEED: u64 = 0x0A_C1E5;

/// Small fixed CSR, expanded deterministically from `seed`.
fn fixed_csr(rows: usize, ncols: usize, seed: u64) -> Csr {
    let mut rng = SimRng::seed(seed);
    let rows_vec: Vec<Vec<(u32, u32)>> = (0..rows)
        .map(|_| {
            let nnz = rng.below(7) as usize;
            let mut cols: Vec<u32> = (0..nnz).map(|_| rng.below(ncols as u64) as u32).collect();
            cols.sort_unstable();
            cols.dedup();
            cols.into_iter()
                .map(|c| (c, 1 + rng.below(100) as u32))
                .collect()
        })
        .collect();
    Csr::from_rows(rows, ncols, &rows_vec)
}

/// Prints one deterministic measurement row.
fn emit(kernel: &str, label: &str, threads: usize, s: &RunStats) {
    println!(
        "{kernel}\t{label}\tt={threads}\tcycles={}\tloads={}\tverified={}\trung={}",
        s.cycles, s.loads, s.verified, s.faults.ladder_rung
    );
}

/// Runs the differential grid for one kernel through the fleet pool and
/// prints each cell, then applies the oracle invariants.
fn grid(kernel: &str, run: impl Fn(Variant, usize) -> RunStats + Sync) {
    let run_ref = &run;
    let jobs: Vec<_> = ORACLE_VARIANTS
        .iter()
        .map(|&(v, t)| move || run_ref(v, t))
        .collect();
    let rows = maple_fleet::run_batch(&FleetConfig::from_env(), jobs)
        .into_results()
        .unwrap_or_else(|(i, e)| {
            panic!("{kernel}/{}: {e}", ORACLE_VARIANTS[i].0.label())
        });
    for (&(v, t), s) in ORACLE_VARIANTS.iter().zip(&rows) {
        emit(kernel, v.label(), t, s);
    }
    let doall = &rows[0];
    check_run(&format!("{kernel}/doall"), doall).expect("oracle invariant");
    for (&(v, _), s) in ORACLE_VARIANTS[1..].iter().zip(&rows[1..]) {
        let label = format!("{kernel}/{}", v.label());
        check_run(&label, s).expect("oracle invariant");
        check_cross(doall, &label, s).expect("oracle invariant");
    }
}

fn main() {
    let jobs = maple_fleet::pool::jobs_from_env();
    eprintln!("[oracle_grid] running with {jobs} workers");
    let t0 = std::time::Instant::now();

    let spmv = Spmv {
        a: fixed_csr(10, 128, SEED ^ 0x01),
        x: dense_vector(128, SEED ^ 0x02),
    };
    grid("spmv", |v, t| spmv.run(v, t));

    let sdhp_a = fixed_csr(8, 128, SEED ^ 0x03);
    let sdhp = Sdhp::from_sparse(&sdhp_a, SEED ^ 0x04);
    grid("sdhp", |v, t| sdhp.run(v, t));

    let graph = fixed_csr(16, 16, SEED ^ 0x05);
    let root = (0..graph.nrows)
        .find(|&r| !graph.row_range(r).is_empty())
        .unwrap_or(0) as u32;
    let bfs = Bfs { graph, root };
    grid("bfs", |v, t| bfs.run(v, t));

    // Chaos grid: each schedule through the degradation ladder (the
    // doall baseline and the faulted MAPLE attempt run as a fleet batch
    // inside chaos_check). The instance is big enough that every run
    // comfortably outlives the scheduled mid-run reset at cycle 5000.
    let chaos_inst = Spmv {
        a: uniform_sparse(32, 8 * 1024, 6, SEED ^ 0x06),
        x: dense_vector(8 * 1024, SEED ^ 0x07),
    };
    for schedule in chaos_schedules(SEED) {
        chaos_check("spmv", &schedule, |v, t, plane| match plane {
            Some(p) => {
                let p = p.clone();
                chaos_inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
            }
            None => chaos_inst.run(v, t),
        })
        .unwrap_or_else(|e| panic!("{e}"));
        println!("chaos\t{}\tok", schedule.name);
    }

    eprintln!(
        "[oracle_grid] jobs={jobs}, wall={:.2}s",
        t0.elapsed().as_secs_f64()
    );
}
