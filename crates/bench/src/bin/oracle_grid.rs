//! Deterministic oracle-grid driver for the CI determinism gates.
//!
//! Runs the differential oracle grid (every oracle variant × three fixed
//! tiny kernel instances), the fixed-seed chaos grid, and the
//! hierarchical-fabric rows (flat vs 1-cluster bit-identity, a live 2×2
//! crossbar hierarchy), and prints one line per measurement to stdout. Every printed value is a pure
//! function of the fixed seeds and the simulator — **independent of
//! `MAPLE_JOBS` and of how the grid was dispatched**:
//!
//! - default: the local `maple-fleet` pool (the original worker-count
//!   gate: ci.sh diffs `MAPLE_JOBS=1` vs `=4`);
//! - `--coordinator loopback:N`: the distributed coordinator over `N`
//!   deterministic in-process workers;
//! - `--coordinator tcp` with `MAPLE_WORKERS=host:port,...`: real TCP
//!   workers started via `--bin fleet_worker`;
//! - `--chaos SEED` (loopback only): wraps every worker in a seeded
//!   `FaultyTransport` — worker 0 crashes mid-job, the rest drop and
//!   delay traffic — exercising lease expiry, reassignment and (if all
//!   workers die) local fallback.
//!
//! The distributed determinism gate in ci.sh byte-diffs stdout across
//! all of these. `--expect-reassignments` additionally fails the run if
//! the reassignment counter stayed at zero — proof the kill/reassign
//! path actually executed rather than the schedule being quietly
//! harmless.
//!
//! Progress/accounting (which *does* vary with dispatch mode and
//! wall-clock) goes to stderr only.

use maple_bench::distributed::{
    grid_cells, job_key, run_grid_cell, run_spec, spec_of, GRID_KERNELS, GRID_SEED,
};
use maple_bench::experiments::FleetLine;
use maple_fleet::net::{FaultyTransport, LoopbackWorker, NetFaultConfig, TcpTransport, Transport};
use maple_fleet::remote::{run_remote, RemoteConfig, RemoteJob};
use maple_fleet::{FleetConfig, ResultCache};
use maple_workloads::data::{dense_vector, uniform_sparse};
use maple_workloads::harness::{RunStats, Variant};
use maple_workloads::oracle::{chaos_check, chaos_schedules, check_cross, check_run};
use maple_workloads::spmv::Spmv;

/// How the grid cells get executed.
enum Dispatch {
    /// Local fleet pool (the default; original behavior).
    Local,
    /// Coordinator over `n` in-process loopback workers; `chaos` wraps
    /// them in seeded fault schedules.
    Loopback { n: usize, chaos: Option<u64> },
    /// Coordinator over real TCP workers at these addresses.
    Tcp { addrs: Vec<String> },
}

struct Options {
    dispatch: Dispatch,
    expect_reassignments: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: oracle_grid [--coordinator loopback:N|tcp] [--chaos SEED] [--expect-reassignments]\n\
         tcp mode reads MAPLE_WORKERS=host:port,host:port,..."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut dispatch = Dispatch::Local;
    let mut chaos: Option<u64> = None;
    let mut expect_reassignments = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--coordinator" => {
                let mode = args.next().unwrap_or_else(|| usage());
                dispatch = if let Some(n) = mode.strip_prefix("loopback:") {
                    let n = n.parse().unwrap_or_else(|_| usage());
                    Dispatch::Loopback { n, chaos: None }
                } else if mode == "tcp" {
                    let raw = std::env::var("MAPLE_WORKERS").unwrap_or_else(|_| {
                        eprintln!("--coordinator tcp needs MAPLE_WORKERS=host:port,...");
                        std::process::exit(2);
                    });
                    Dispatch::Tcp {
                        addrs: raw.split(',').map(|s| s.trim().to_owned()).collect(),
                    }
                } else {
                    usage()
                };
            }
            "--chaos" => {
                let seed = args.next().unwrap_or_else(|| usage());
                chaos = Some(seed.parse().unwrap_or_else(|_| usage()));
            }
            "--expect-reassignments" => expect_reassignments = true,
            _ => usage(),
        }
    }
    if let Some(seed) = chaos {
        match &mut dispatch {
            Dispatch::Loopback { chaos, .. } => *chaos = Some(seed),
            _ => {
                eprintln!("--chaos requires --coordinator loopback:N");
                std::process::exit(2);
            }
        }
    }
    Options {
        dispatch,
        expect_reassignments,
    }
}

/// Prints one deterministic measurement row.
fn emit(kernel: &str, label: &str, threads: usize, s: &RunStats) {
    println!(
        "{kernel}\t{label}\tt={threads}\tcycles={}\tloads={}\tverified={}\trung={}",
        s.cycles, s.loads, s.verified, s.faults.ladder_rung
    );
}

/// Applies the oracle invariants to one kernel's row of the grid.
fn check_kernel(kernel: &str, cells: &[(Variant, usize)], rows: &[RunStats]) {
    let doall = &rows[0];
    check_run(&format!("{kernel}/doall"), doall).expect("oracle invariant");
    for (&(v, _), s) in cells[1..].iter().zip(&rows[1..]) {
        let label = format!("{kernel}/{}", v.label());
        check_run(&label, s).expect("oracle invariant");
        check_cross(doall, &label, s).expect("oracle invariant");
    }
}

/// Local dispatch: one fleet batch per kernel (the original layout, so
/// the worker-count gate's reference bytes are unchanged).
fn run_local() {
    for kernel in GRID_KERNELS {
        let cells: Vec<(Variant, usize)> = grid_cells()
            .into_iter()
            .filter(|(k, _, _)| k == kernel)
            .map(|(_, v, t)| (v, t))
            .collect();
        let jobs: Vec<_> = cells
            .iter()
            .map(|&(v, t)| move || run_grid_cell(kernel, v, t).expect("known cell"))
            .collect();
        let rows = maple_fleet::run_batch(&FleetConfig::from_env(), jobs)
            .into_results()
            .unwrap_or_else(|(i, e)| panic!("{kernel}/{}: {e}", cells[i].0.label()));
        for (&(v, t), s) in cells.iter().zip(&rows) {
            emit(kernel, v.label(), t, s);
        }
        check_kernel(kernel, &cells, &rows);
    }
}

/// The chaos fault schedule for loopback worker `wi` under `seed`:
/// worker 0 dies while computing its second job (guaranteeing at least
/// one reassignment); every worker drops a bit of traffic and delays
/// some replies past the lease, so expiry/stale-dedup paths run too.
fn chaos_schedule(seed: u64, wi: usize, lease_polls: u64) -> NetFaultConfig {
    let cfg = NetFaultConfig::new(seed ^ ((wi as u64 + 1) << 24))
        .with_send_drop(0.05)
        .with_recv_drop(0.05)
        .with_recv_delay(0.15, lease_polls + 16);
    if wi == 0 {
        cfg.with_crash_after_jobs(1)
    } else {
        cfg
    }
}

/// Coordinator dispatch: ships every grid cell as one remote batch, then
/// prints the decoded rows in the same order and format as `run_local`.
fn run_coordinator(opts: &Options) {
    let cells = grid_cells();
    let jobs: Vec<RemoteJob> = cells
        .iter()
        .map(|(k, v, t)| RemoteJob {
            key: job_key(k, *v, *t),
            spec: spec_of(k, *v, *t),
        })
        .collect();

    let mut cfg = RemoteConfig::default();
    let transports: Vec<Box<dyn Transport>> = match &opts.dispatch {
        Dispatch::Local => unreachable!("handled by run_local"),
        Dispatch::Loopback { n, chaos } => (0..*n)
            .map(|wi| {
                let worker = LoopbackWorker::new(run_spec);
                match chaos {
                    None => Box::new(worker) as Box<dyn Transport>,
                    Some(seed) => Box::new(FaultyTransport::new(
                        worker,
                        chaos_schedule(*seed, wi, cfg.lease_polls),
                    )),
                }
            })
            .collect(),
        Dispatch::Tcp { addrs } => {
            // Real sockets: poll gently and measure leases generously —
            // wall-clock scheduling noise must never look like a dead
            // worker on a loaded CI host.
            cfg = cfg
                .with_poll_sleep(std::time::Duration::from_millis(2))
                .with_lease_polls(2_000);
            addrs
                .iter()
                .map(|addr| {
                    let t =
                        TcpTransport::dial(addr, 6, std::time::Duration::from_millis(50))
                            .unwrap_or_else(|e| panic!("dial {addr}: {e}"));
                    Box::new(t) as Box<dyn Transport>
                })
                .collect()
        }
    };

    // A scratch cache per invocation: the grid is tiny, and the gate
    // wants real dispatch traffic, not a warm-cache no-op. The shared
    // production cache is exercised by the fleet tests instead.
    let scratch = maple_fleet::cache::default_cache_dir()
        .parent()
        .expect("cache dir has a parent")
        .join(format!("fleet-cache-grid-{}", std::process::id()));
    let cache = ResultCache::open(&scratch).expect("open scratch grid cache");

    let t0 = std::time::Instant::now();
    let batch = run_remote(transports, &cfg, &jobs, Some(&cache), |job| {
        run_spec(&job.spec)
    })
    .expect("no poll budget configured, cannot abort");
    let _ = std::fs::remove_dir_all(&scratch);

    let fleet = FleetLine::from_remote(&batch.stats, t0.elapsed().as_secs_f64());
    eprintln!("[oracle_grid] {}", fleet.render());

    let rows: Vec<RunStats> = cells
        .iter()
        .zip(&batch.outcomes)
        .map(|((k, v, t), outcome)| {
            let payload = outcome
                .as_ref()
                .unwrap_or_else(|e| panic!("{k}/{} t={t}: {e}", v.label()));
            maple_bench::distributed::decode_stats(payload)
                .unwrap_or_else(|e| panic!("{k}/{} t={t}: corrupt payload: {e}", v.label()))
        })
        .collect();
    for ((k, v, t), s) in cells.iter().zip(&rows) {
        emit(k, v.label(), *t, s);
    }
    for kernel in GRID_KERNELS {
        let idx: Vec<usize> = (0..cells.len()).filter(|&i| cells[i].0 == kernel).collect();
        let kernel_cells: Vec<(Variant, usize)> =
            idx.iter().map(|&i| (cells[i].1, cells[i].2)).collect();
        let kernel_rows: Vec<RunStats> = idx.iter().map(|&i| rows[i].clone()).collect();
        check_kernel(kernel, &kernel_cells, &kernel_rows);
    }

    if opts.expect_reassignments && batch.stats.reassignments == 0 {
        eprintln!(
            "ERROR: --expect-reassignments, but the reassignment counter is 0 \
             (the kill/reassign path did not execute): {:?}",
            batch.stats
        );
        std::process::exit(1);
    }
}

fn main() {
    let opts = parse_args();
    let jobs = maple_fleet::pool::jobs_from_env();
    eprintln!("[oracle_grid] running with {jobs} workers");
    let t0 = std::time::Instant::now();

    match opts.dispatch {
        Dispatch::Local => run_local(),
        _ => run_coordinator(&opts),
    }

    // Chaos grid: each schedule through the degradation ladder (the
    // doall baseline and the faulted MAPLE attempt run as a fleet batch
    // inside chaos_check). Always local — these lines are part of the
    // deterministic stdout surface in every dispatch mode. The instance
    // is big enough that every run comfortably outlives the scheduled
    // mid-run reset at cycle 5000.
    let chaos_inst = Spmv {
        a: uniform_sparse(32, 8 * 1024, 6, GRID_SEED ^ 0x06),
        x: dense_vector(8 * 1024, GRID_SEED ^ 0x07),
    };
    for schedule in chaos_schedules(GRID_SEED) {
        chaos_check("spmv", &schedule, |v, t, plane| match plane {
            Some(p) => {
                let p = p.clone();
                chaos_inst.run_tuned(v, t, move |c| c.with_fault_plane(p))
            }
            None => chaos_inst.run(v, t),
        })
        .unwrap_or_else(|e| panic!("{e}"));
        println!("chaos\t{}\tok", schedule.name);
    }

    // Hierarchical grid: always local, same deterministic stdout in
    // every dispatch mode (like the chaos grid). A degenerate 1-cluster
    // configuration must be bit-exact with the flat mesh, and a live
    // 2×2 crossbar hierarchy must satisfy the oracle invariants.
    let hier_inst = Spmv {
        a: uniform_sparse(32, 8 * 1024, 6, GRID_SEED ^ 0x08),
        x: dense_vector(8 * 1024, GRID_SEED ^ 0x09),
    };
    let flat = hier_inst.run(Variant::MapleDecoupled, 2);
    let one = hier_inst.run_tuned(Variant::MapleDecoupled, 2, |c| {
        let tiles = usize::from(c.mesh_width) * usize::from(c.mesh_height);
        c.with_clusters(maple_soc::ClusterConfig::new(tiles, 1, 1))
    });
    assert_eq!(one, flat, "1-cluster hierarchy diverged from the flat mesh");
    emit("spmv", "maple-dec/1-cluster", 2, &one);
    let clustered = hier_inst.run_tuned(Variant::MapleDecoupled, 4, |c| {
        c.with_maples(2)
            .with_clusters(maple_soc::ClusterConfig::new(9, 2, 2))
    });
    check_run("spmv/maple-dec/clustered2x2", &clustered).expect("oracle invariant");
    emit("spmv", "maple-dec/clustered2x2", 4, &clustered);

    eprintln!(
        "[oracle_grid] jobs={jobs}, wall={:.2}s",
        t0.elapsed().as_secs_f64()
    );
}
