//! Tables 2 and 3: the evaluation configurations.

use maple_bench::print_banner;
use maple_soc::config::SocConfig;

fn print_config(cfg: &SocConfig) {
    println!("MAPLE instances / scratchpad      {} / {} B", cfg.maples, cfg.maple.scratchpad_bytes);
    println!("queues x entries x entry bytes    {} x {} x {}", cfg.maple.queues, cfg.maple.default_entries, cfg.maple.default_entry_bytes);
    println!("core count / threads per core     {} / 1", cfg.cores);
    println!("core type                         single-issue in-order, blocking loads (window 1)");
    println!("L1D per core / latency            {} KB {}-way / {}-cycle", cfg.cpu.l1.size_bytes / 1024, cfg.cpu.l1.ways, cfg.cpu.l1.hit_latency);
    println!("L2 shared / latency               {} KB {}-way / {}-cycle", cfg.l2.size_bytes / 1024, cfg.l2.ways, cfg.l2.latency);
    println!("DRAM latency                      {}-cycle", cfg.dram.latency);
    println!("core/engine TLB entries           {} / {}", cfg.cpu.tlb_entries, cfg.maple.tlb_entries);
    println!("NoC                               {}x{} mesh, 1 cycle/hop, XY routing", cfg.mesh_width, cfg.mesh_height);
}

fn main() {
    print_banner(
        "Table 2 — SoC configuration (FPGA prototype equivalent)",
        "OpenPiton + Ariane, 2 cores, 1 MAPLE, Linux-style VM services",
    );
    print_config(&SocConfig::fpga_prototype());

    println!();
    print_banner(
        "Table 3 — simulated system (prior-work comparison)",
        "identical memory timing; instruction window of 1",
    );
    print_config(&SocConfig::simulated_system());
}
