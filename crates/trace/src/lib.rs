//! The MAPLE observability plane.
//!
//! The paper studies MAPLE through its MMIO debug counters (§4.4) and
//! per-figure latency and occupancy measurements; this crate is the
//! reproduction's unified window onto the same signals. It provides, with
//! zero crates.io dependencies (the workspace is hermetic — see DESIGN.md
//! §5 — so even the JSON layer is in-tree):
//!
//! * [`json`] — a minimal JSON document model: escaping-correct writer and
//!   a strict parser, used by every machine-readable artifact the
//!   workspace emits (`results/*.json` sidecars, `BENCH_maple.json`,
//!   Chrome traces).
//! * [`event`] — the cycle-level event taxonomy: core stalls with cause,
//!   engine fetch issue/fill, queue push/pop with occupancy, NoC hops,
//!   MMIO transactions, and fault-plane injections/recoveries.
//! * [`tracer`] — a ring-buffered event recorder. The [`Tracer`] handle is
//!   cheaply cloneable and **zero-cost when disabled**: components thread
//!   a disabled handle by default and the emit path reduces to one
//!   `Option` test, so tracing-off runs are cycle-for-cycle (and
//!   heap-allocation-for-heap-allocation) identical to a build without
//!   this crate. A soc-level test asserts the cycle identity.
//! * [`chrome`] — an exporter to the Chrome `trace_event` JSON format, so
//!   a simulated run opens directly in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) (one simulated cycle is rendered
//!   as one microsecond).
//! * [`metrics`] — the unified metrics registry: the scattered per-crate
//!   stats structs are flattened into one named, typed
//!   [`MetricsSnapshot`] with a single renderer
//!   (text table and JSON), plus the per-core stall-attribution report
//!   (compute / L1-miss / L2-miss / DRAM / consume-wait / MMIO /
//!   fault-recovery) printed by the figure binaries.

#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod tracer;

pub use event::{FaultSite, StallCause, TraceEvent, WaitKind};
pub use json::Json;
pub use metrics::{stall_json, stall_table, HistogramSummary, MetricsSnapshot, StallBreakdown, StallRow};
pub use tracer::{merge_rings, TraceConfig, TraceRecord, Tracer};
