//! A minimal, in-tree JSON document model.
//!
//! The workspace removed its crates.io dependencies (serde included) in
//! PR 1, so every machine-readable artifact — Chrome traces, metrics
//! snapshots, `results/*.json` sidecars, `BENCH_maple.json` — goes through
//! this writer. A strict parser rides along so tests (and the CI trace
//! smoke stage) can validate emitted documents without leaving the tree.
//!
//! Object member order is preserved: documents render deterministically in
//! insertion order, which keeps golden tests and diffs stable.

use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers keep their source flavour (`U64`/`I64`/`F64`) so cycle counts
/// survive a round trip without losing precision past 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (only produced for values below zero).
    I64(i64),
    /// A floating-point number (never NaN/∞ — those render as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Looks up a member of an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any number flavour.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the document compactly (no whitespace).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with two-space indentation, for human-inspected artifacts.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parses a JSON document. The whole input must be one value (plus
    /// surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first offending byte offset
    /// on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Non-finite floats have no JSON representation; render as `null` rather
/// than emitting an invalid document.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats readable ("2.0" not "2").
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `uXXXX` part of a `\u` escape (cursor on the 'u'),
    /// including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low surrogate escape next.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(cp).ok_or_else(|| self.err("invalid code point"));
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trip() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode\u{20AC}漢";
        let doc = Json::obj(vec![("s", Json::from(nasty))]);
        let text = doc.render();
        assert!(text.contains("\\\""), "quote escaped");
        assert!(text.contains("\\\\"), "backslash escaped");
        assert!(text.contains("\\n"), "newline escaped");
        assert!(text.contains("\\u0001"), "control char escaped");
        let back = Json::parse(&text).expect("own output parses");
        assert_eq!(back.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn nested_objects_preserve_order() {
        let doc = Json::obj(vec![
            ("z", Json::obj(vec![("inner", Json::from(1u64))])),
            ("a", Json::from(vec![Json::Null, Json::Bool(true)])),
        ]);
        // Member order is insertion order, not alphabetical.
        assert_eq!(doc.render(), r#"{"z":{"inner":1},"a":[null,true]}"#);
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn golden_output() {
        let doc = Json::obj(vec![
            ("name", Json::from("maple")),
            ("cycles", Json::from(123_456u64)),
            ("speedup", Json::from(1.51_f64)),
            ("verified", Json::from(true)),
            ("delta", Json::from(-3i64)),
            ("nan", Json::F64(f64::NAN)),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"maple","cycles":123456,"speedup":1.51,"verified":true,"delta":-3,"nan":null}"#
        );
        let pretty = doc.render_pretty();
        assert!(pretty.starts_with("{\n  \"name\": \"maple\""));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let big = u64::MAX - 1;
        let text = Json::from(big).render();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(Json::parse("2.5").unwrap(), Json::F64(2.5));
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(Json::from(2.0_f64).render(), "2.0");
        let back = Json::parse("2.0").unwrap();
        assert_eq!(back, Json::F64(2.0));
    }

    #[test]
    fn parser_rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "01x",
            "{\"a\" 1}", "[1 2]", "\"bad \u{01} ctrl\"", "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_unicode_escapes() {
        let v = Json::parse(r#""€ 😀 \/""#).unwrap();
        assert_eq!(v.as_str(), Some("€ 😀 /"));
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": [1, 2], "b": "x", "c": 1.5}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("b").unwrap().as_u64(), None);
    }
}
