//! The ring-buffered event recorder and its cheap [`Tracer`] handle.
//!
//! A [`Tracer`] is what simulation components hold. It is either
//! *disabled* — the default, a `None` under the hood, making every emit a
//! single branch with the event constructor never run — or *enabled*, a
//! shared handle onto one [`TraceBuffer`] ring.
//!
//! A [`System`](../../maple_soc/system/struct.System.html) gives each
//! independently-stepped component (every core, every engine, plus one
//! ring for the hub-owned uncore) its *own* ring and merges them into one
//! canonical stream with [`merge_rings`]. Per-component rings are what
//! make the partitioned parallel stepper possible — a worker thread only
//! ever touches the rings of the components it owns — and the canonical
//! merge order is what keeps the exported stream byte-identical across
//! the dense, skipping and partitioned steppers. The handle is therefore
//! `Send + Sync` (an `Arc<Mutex>` under the hood); uncontended lock cost
//! is a few nanoseconds per emitted record and zero when disabled.
//!
//! The ring bounds memory: once `capacity` records are held, the oldest
//! record is dropped per push and counted, so long runs keep the *tail* of
//! their history (the part that usually matters for a hang or a slowdown)
//! at a fixed cost.

use std::sync::{Arc, Mutex};

use maple_sim::Cycle;

use crate::event::TraceEvent;

/// Sizing for the trace ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum records held; beyond this the oldest are dropped (and
    /// counted in [`Tracer::dropped`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 1 Mi records ≈ 40 MB; enough for every example and experiment
        // bin while still bounding an unbounded run.
        TraceConfig {
            capacity: 1 << 20,
        }
    }
}

/// One captured event: the cycle it happened on plus the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Emission cycle.
    pub ts: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// The shared ring of captured records.
#[derive(Debug)]
pub struct TraceBuffer {
    capacity: usize,
    records: std::collections::VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuffer {
    fn new(cfg: TraceConfig) -> Self {
        TraceBuffer {
            capacity: cfg.capacity.max(1),
            records: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }
}

/// A cheaply cloneable handle to the (optional) trace buffer.
///
/// Components store one of these and call [`Tracer::emit`] at
/// interesting moments; when the handle is disabled the closure is never
/// invoked, so the instrumented hot paths cost one `Option` discriminant
/// test — verified cycle-identical by the soc `trace_identity` test.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Arc<Mutex<TraceBuffer>>>,
}

impl Tracer {
    /// The no-op handle (what every component starts with).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// Creates an enabled handle backed by a fresh ring buffer.
    #[must_use]
    pub fn enabled(cfg: TraceConfig) -> Self {
        Tracer {
            buf: Some(Arc::new(Mutex::new(TraceBuffer::new(cfg)))),
        }
    }

    /// Whether events are being captured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records the event built by `f` at cycle `ts`. When disabled, `f`
    /// is not called.
    #[inline]
    pub fn emit(&self, ts: Cycle, f: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &self.buf {
            buf.lock().expect("trace ring poisoned").push(TraceRecord { ts, event: f() });
        }
    }

    /// Snapshot of every record currently held, oldest first.
    ///
    /// Disabled handles return an empty vector.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.buf {
            Some(buf) => buf
                .lock()
                .expect("trace ring poisoned")
                .records
                .iter()
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Records evicted by the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.buf
            .as_ref()
            .map_or(0, |b| b.lock().expect("trace ring poisoned").dropped)
    }
}

/// Merges per-component rings into one canonical stream bounded by
/// `capacity`, returning the merged records and the total drop count.
///
/// `rings` must be passed in canonical rank order (the `System` uses
/// cores by index, then engines by index, then the hub ring); records
/// with equal timestamps keep that rank order, and records within one
/// ring keep their emission order (the sort is stable). The result is
/// then truncated to the *last* `capacity` records, reproducing the
/// single-ring tail semantics: each per-component ring keeps the tail of
/// its own stream, so the union of rings always covers the last
/// `capacity` records of the merged stream.
///
/// The returned drop count is `total emitted - records kept`, i.e. the
/// same number a single global ring of `capacity` records would report.
#[must_use]
pub fn merge_rings(rings: &[&Tracer], capacity: usize) -> (Vec<TraceRecord>, u64) {
    let mut merged: Vec<(Cycle, usize, TraceRecord)> = Vec::new();
    let mut emitted: u64 = 0;
    for (rank, ring) in rings.iter().enumerate() {
        let records = ring.records();
        emitted += records.len() as u64 + ring.dropped();
        merged.extend(records.into_iter().map(|r| (r.ts, rank, r)));
    }
    merged.sort_by_key(|&(ts, rank, _)| (ts, rank));
    let capacity = capacity.max(1);
    if merged.len() > capacity {
        merged.drain(..merged.len() - capacity);
    }
    let records: Vec<TraceRecord> = merged.into_iter().map(|(_, _, r)| r).collect();
    let dropped = emitted - records.len() as u64;
    (records, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultSite;

    fn ev(core: usize) -> TraceEvent {
        TraceEvent::CoreStallEnd {
            core,
            cause: crate::event::StallCause::L1Miss,
        }
    }

    #[test]
    fn disabled_never_runs_the_constructor() {
        let t = Tracer::disabled();
        t.emit(Cycle(0), || panic!("constructor must not run when disabled"));
        assert!(!t.is_enabled());
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled(TraceConfig::default());
        let t2 = t.clone();
        t.emit(Cycle(1), || ev(0));
        t2.emit(Cycle(2), || ev(1));
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Cycle(1));
        assert_eq!(recs[1].event, ev(1));
    }

    #[test]
    fn merge_preserves_rank_and_ring_order() {
        let a = Tracer::enabled(TraceConfig { capacity: 16 });
        let b = Tracer::enabled(TraceConfig { capacity: 16 });
        // Interleaved cycles; equal timestamps must come out in rank
        // order (a before b) with each ring's internal order intact.
        a.emit(Cycle(1), || ev(0));
        b.emit(Cycle(1), || ev(1));
        a.emit(Cycle(2), || ev(2));
        b.emit(Cycle(0), || ev(3));
        let (recs, dropped) = merge_rings(&[&a, &b], 16);
        assert_eq!(dropped, 0);
        let got: Vec<(u64, TraceEvent)> = recs.iter().map(|r| (r.ts.0, r.event)).collect();
        assert_eq!(
            got,
            vec![(0, ev(3)), (1, ev(0)), (1, ev(1)), (2, ev(2))],
            "sorted by cycle, rank breaks ties"
        );
    }

    #[test]
    fn merge_truncates_to_tail_and_counts_drops() {
        let a = Tracer::enabled(TraceConfig { capacity: 2 });
        let b = Tracer::enabled(TraceConfig { capacity: 2 });
        for i in 0..5u64 {
            a.emit(Cycle(i), || ev(0));
        }
        b.emit(Cycle(10), || ev(1));
        // 6 records emitted in total; a merged capacity of 2 keeps the
        // last 2 by cycle and reports the other 4 as dropped — exactly
        // what a single 2-deep global ring would have done.
        let (recs, dropped) = merge_rings(&[&a, &b], 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(dropped, 4);
        assert_eq!(recs[0].ts, Cycle(4));
        assert_eq!(recs[1].ts, Cycle(10));
    }

    #[test]
    fn tracer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer>();
    }

    #[test]
    fn ring_drops_oldest() {
        let t = Tracer::enabled(TraceConfig { capacity: 2 });
        for i in 0..5u64 {
            t.emit(Cycle(i), || TraceEvent::FaultInjected {
                site: FaultSite::NocDrop,
            });
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Cycle(3), "oldest evicted first");
        assert_eq!(t.dropped(), 3);
    }
}
