//! The ring-buffered event recorder and its cheap [`Tracer`] handle.
//!
//! A [`Tracer`] is what simulation components hold. It is either
//! *disabled* — the default, a `None` under the hood, making every emit a
//! single branch with the event constructor never run — or *enabled*, a
//! shared handle onto one [`TraceBuffer`] ring. All components of a
//! [`System`](../../maple_soc/system/struct.System.html) share one buffer,
//! so the exported trace is globally ordered by emission.
//!
//! The ring bounds memory: once `capacity` records are held, the oldest
//! record is dropped per push and counted, so long runs keep the *tail* of
//! their history (the part that usually matters for a hang or a slowdown)
//! at a fixed cost.

use std::cell::RefCell;
use std::rc::Rc;

use maple_sim::Cycle;

use crate::event::TraceEvent;

/// Sizing for the trace ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum records held; beyond this the oldest are dropped (and
    /// counted in [`Tracer::dropped`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        // 1 Mi records ≈ 40 MB; enough for every example and experiment
        // bin while still bounding an unbounded run.
        TraceConfig {
            capacity: 1 << 20,
        }
    }
}

/// One captured event: the cycle it happened on plus the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Emission cycle.
    pub ts: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// The shared ring of captured records.
#[derive(Debug)]
pub struct TraceBuffer {
    capacity: usize,
    records: std::collections::VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceBuffer {
    fn new(cfg: TraceConfig) -> Self {
        TraceBuffer {
            capacity: cfg.capacity.max(1),
            records: std::collections::VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }
}

/// A cheaply cloneable handle to the (optional) trace buffer.
///
/// Components store one of these and call [`Tracer::emit`] at
/// interesting moments; when the handle is disabled the closure is never
/// invoked, so the instrumented hot paths cost one `Option` discriminant
/// test — verified cycle-identical by the soc `trace_identity` test.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Rc<RefCell<TraceBuffer>>>,
}

impl Tracer {
    /// The no-op handle (what every component starts with).
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// Creates an enabled handle backed by a fresh ring buffer.
    #[must_use]
    pub fn enabled(cfg: TraceConfig) -> Self {
        Tracer {
            buf: Some(Rc::new(RefCell::new(TraceBuffer::new(cfg)))),
        }
    }

    /// Whether events are being captured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records the event built by `f` at cycle `ts`. When disabled, `f`
    /// is not called.
    #[inline]
    pub fn emit(&self, ts: Cycle, f: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &self.buf {
            buf.borrow_mut().push(TraceRecord { ts, event: f() });
        }
    }

    /// Snapshot of every record currently held, oldest first.
    ///
    /// Disabled handles return an empty vector.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.buf {
            Some(buf) => buf.borrow().records.iter().copied().collect(),
            None => Vec::new(),
        }
    }

    /// Records evicted by the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.buf.as_ref().map_or(0, |b| b.borrow().dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FaultSite;

    fn ev(core: usize) -> TraceEvent {
        TraceEvent::CoreStallEnd {
            core,
            cause: crate::event::StallCause::L1Miss,
        }
    }

    #[test]
    fn disabled_never_runs_the_constructor() {
        let t = Tracer::disabled();
        t.emit(Cycle(0), || panic!("constructor must not run when disabled"));
        assert!(!t.is_enabled());
        assert!(t.records().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled(TraceConfig::default());
        let t2 = t.clone();
        t.emit(Cycle(1), || ev(0));
        t2.emit(Cycle(2), || ev(1));
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Cycle(1));
        assert_eq!(recs[1].event, ev(1));
    }

    #[test]
    fn ring_drops_oldest() {
        let t = Tracer::enabled(TraceConfig { capacity: 2 });
        for i in 0..5u64 {
            t.emit(Cycle(i), || TraceEvent::FaultInjected {
                site: FaultSite::NocDrop,
            });
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Cycle(3), "oldest evicted first");
        assert_eq!(t.dropped(), 3);
    }
}
