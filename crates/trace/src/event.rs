//! The cycle-level event taxonomy.
//!
//! Every record the tracer captures is one [`TraceEvent`] plus the cycle
//! it happened on ([`crate::TraceRecord`]). The taxonomy deliberately
//! mirrors the signals the paper reasons about: core stalls (the latency
//! MAPLE exists to hide), engine fetch round trips, queue occupancy (the
//! backpressure mechanism of §3.4), NoC hops, MMIO transactions (the whole
//! API surface of §3.2), and fault-plane activity (DESIGN.md §6d).

/// What a stalled core turned out to be waiting for.
///
/// Causes are assigned when the stall *ends*: the serving level of a
/// memory access (L1 vs L2 vs DRAM) is only known once the response
/// arrives, so the attribution rides back on the response path (see
/// `ServedBy` in `maple-mem`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Blocking load was served by the local L1 (the fixed two-cycle hit
    /// latency). Reported in traces for fidelity; the
    /// [`StallBreakdown`](crate::metrics::StallBreakdown) folds these
    /// cycles into the compute remainder.
    L1Hit,
    /// Blocking load missed the L1 and was served by the shared L2.
    L1Miss,
    /// Blocking access missed the L2 and was filled from DRAM.
    L2Miss,
    /// Blocking access was served on the direct-to-DRAM path (no L2
    /// lookup).
    Dram,
    /// Blocking MMIO load from an engine page — overwhelmingly MAPLE
    /// `CONSUME` (an empty queue parks the core here).
    ConsumeWait,
    /// Other MMIO backpressure: the store buffer is full of
    /// unacknowledged MMIO stores (produce backpressure reaching the
    /// pipeline).
    Mmio,
    /// The stall was lengthened by fault-plane recovery: an uncore
    /// watchdog re-issued the transaction, or the core sat in the
    /// page-fault handler.
    FaultRecovery,
}

impl StallCause {
    /// Short, stable label used in trace args and table headers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::L1Hit => "l1-hit",
            StallCause::L1Miss => "l1-miss",
            StallCause::L2Miss => "l2-miss",
            StallCause::Dram => "dram",
            StallCause::ConsumeWait => "consume-wait",
            StallCause::Mmio => "mmio",
            StallCause::FaultRecovery => "fault-recovery",
        }
    }
}

/// What kind of access a core blocked on (known at stall *begin*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// A cacheable or volatile load, or an AMO.
    Mem,
    /// A blocking MMIO load (MAPLE `CONSUME` / counter read).
    MmioLoad,
}

impl WaitKind {
    /// Short label for trace args.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WaitKind::Mem => "mem",
            WaitKind::MmioLoad => "mmio-load",
        }
    }
}

/// Which fault-plane site produced an injection or a recovery action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// NoC packet silently dropped.
    NocDrop,
    /// NoC packet held back by the extra-delay schedule.
    NocDelay,
    /// DRAM access hit by a latency spike.
    DramSpike,
    /// Engine dropped an MMIO ack (injection) — the uncore watchdog will
    /// re-send.
    MmioAckDrop,
    /// Engine-side fetch watchdog re-issued a timed-out memory fetch.
    FetchRetry,
    /// Uncore MMIO watchdog re-sent an unacknowledged transaction.
    MmioRetry,
    /// An engine was reset mid-run.
    EngineReset,
    /// A TLB shootdown was broadcast.
    TlbShootdown,
    /// Packet dropped at its cluster crossbar (clustered fabrics only).
    XbarDrop,
    /// Packet held back at its cluster crossbar by the extra-delay
    /// schedule.
    XbarDelay,
}

impl FaultSite {
    /// Short, stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NocDrop => "noc-drop",
            FaultSite::NocDelay => "noc-delay",
            FaultSite::DramSpike => "dram-spike",
            FaultSite::MmioAckDrop => "mmio-ack-drop",
            FaultSite::FetchRetry => "fetch-retry",
            FaultSite::MmioRetry => "mmio-retry",
            FaultSite::EngineReset => "engine-reset",
            FaultSite::TlbShootdown => "tlb-shootdown",
            FaultSite::XbarDrop => "xbar-drop",
            FaultSite::XbarDelay => "xbar-delay",
        }
    }
}

/// One cycle-level event. See the module docs for the taxonomy rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A core entered a memory stall.
    CoreStallBegin {
        /// Core (tile) index.
        core: usize,
        /// What it is waiting for, as known at issue time.
        waiting: WaitKind,
    },
    /// A core left a memory stall; the cause is now known.
    CoreStallEnd {
        /// Core (tile) index.
        core: usize,
        /// Attributed cause.
        cause: StallCause,
    },
    /// An engine issued a memory fetch (queue fill or LIMA chunk).
    EngineFetchIssue {
        /// Engine index.
        engine: usize,
        /// Physical address fetched.
        addr: u64,
    },
    /// A memory response filled an engine fetch.
    EngineFetchFill {
        /// Engine index.
        engine: usize,
        /// Round-trip latency in cycles.
        latency: u64,
    },
    /// A value entered an engine queue.
    QueuePush {
        /// Engine index.
        engine: usize,
        /// Queue index within the engine.
        queue: usize,
        /// Entries held *after* the push.
        occupancy: usize,
    },
    /// A value left an engine queue (consumed).
    QueuePop {
        /// Engine index.
        engine: usize,
        /// Queue index within the engine.
        queue: usize,
        /// Entries held *after* the pop.
        occupancy: usize,
    },
    /// A packet traversed one router hop.
    NocHop {
        /// Router column (u16: kilotile fabrics exceed a u8 axis).
        x: u16,
        /// Router row.
        y: u16,
        /// Packet size in flits.
        flits: u8,
    },
    /// An MMIO transaction completed at the issuing core (`CONSUME`
    /// returned, or a `PRODUCE`/config store was acknowledged).
    MmioComplete {
        /// Core (tile) index.
        core: usize,
        /// Target physical address.
        addr: u64,
        /// Whether it was a store (`PRODUCE`/config) or a load
        /// (`CONSUME`/counter).
        write: bool,
        /// Issue-to-completion latency in cycles.
        latency: u64,
    },
    /// The fault plane injected a fault.
    FaultInjected {
        /// Which site.
        site: FaultSite,
    },
    /// A recovery mechanism acted (watchdog retry, reset, shootdown).
    FaultRecovered {
        /// Which site.
        site: FaultSite,
    },
    /// The serving driver context-switched an engine to a different
    /// tenant (architectural state save/restore plus MMIO page remap
    /// with TLB shootdown).
    ServeSwitch {
        /// Engine instance that was switched.
        engine: usize,
        /// Tenant now occupying the engine.
        tenant: u64,
        /// Cycles charged for the switch (save/restore + remap + IPI).
        cost: u64,
    },
    /// The serving scheduler dispatched one request batch lane.
    ServeDispatch {
        /// Engine instance the lane's queue lives on (the lane's cores
        /// are derived from it).
        engine: usize,
        /// Tenant whose request runs on the lane.
        tenant: u64,
        /// Fallback-ladder rung the request runs at (0 = maple-dec,
        /// 1 = sw-dec, 2 = do-all).
        rung: u8,
    },
}

impl TraceEvent {
    /// The event's stable name, used by the Chrome exporter and the
    /// schema test.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CoreStallBegin { .. } | TraceEvent::CoreStallEnd { .. } => "stall",
            TraceEvent::EngineFetchIssue { .. } => "fetch-issue",
            TraceEvent::EngineFetchFill { .. } => "fetch-fill",
            TraceEvent::QueuePush { .. } => "queue-push",
            TraceEvent::QueuePop { .. } => "queue-pop",
            TraceEvent::NocHop { .. } => "noc-hop",
            TraceEvent::MmioComplete { .. } => "mmio",
            TraceEvent::FaultInjected { .. } => "fault-injected",
            TraceEvent::FaultRecovered { .. } => "fault-recovered",
            TraceEvent::ServeSwitch { .. } => "serve-switch",
            TraceEvent::ServeDispatch { .. } => "serve-dispatch",
        }
    }
}
