//! Exporter to the Chrome `trace_event` JSON format.
//!
//! The emitted document loads directly in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev). One simulated cycle is rendered as
//! one microsecond (the format's native unit). Rows are grouped into four
//! synthetic processes: cores (stall spans and MMIO transactions), engines
//! (fetch spans and queue-occupancy counter tracks), the NoC (hop
//! instants per router), and the fault plane (injection/recovery
//! instants).

use std::io;
use std::path::Path;

use crate::event::TraceEvent;
use crate::json::Json;
use crate::tracer::TraceRecord;

/// Synthetic process IDs used to group tracks in the viewer.
const PID_CORES: u64 = 0;
const PID_ENGINES: u64 = 1;
const PID_NOC: u64 = 2;
const PID_FAULTS: u64 = 3;
const PID_SERVE: u64 = 4;

fn event_json(
    name: &str,
    ph: &str,
    ts: u64,
    pid: u64,
    tid: u64,
    args: Vec<(&str, Json)>,
) -> Json {
    let mut members = vec![
        ("name", Json::from(name)),
        ("ph", Json::from(ph)),
        ("ts", Json::from(ts)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
    ];
    if ph == "i" {
        // Instant events need a scope; thread scope keeps them on their row.
        members.push(("s", Json::from("t")));
    }
    if !args.is_empty() {
        members.push(("args", Json::obj(args)));
    }
    Json::obj(members)
}

fn complete_event(
    name: &str,
    end_ts: u64,
    dur: u64,
    pid: u64,
    tid: u64,
    args: Vec<(&str, Json)>,
) -> Json {
    let start = end_ts.saturating_sub(dur);
    let mut members = vec![
        ("name", Json::from(name)),
        ("ph", Json::from("X")),
        ("ts", Json::from(start)),
        ("dur", Json::from(end_ts - start)),
        ("pid", Json::from(pid)),
        ("tid", Json::from(tid)),
    ];
    if !args.is_empty() {
        members.push(("args", Json::obj(args)));
    }
    Json::obj(members)
}

fn process_name(pid: u64, name: &str) -> Json {
    Json::obj(vec![
        ("name", Json::from("process_name")),
        ("ph", Json::from("M")),
        ("pid", Json::from(pid)),
        ("tid", Json::from(0u64)),
        ("args", Json::obj(vec![("name", Json::from(name))])),
    ])
}

/// Converts one record to its `trace_event` representation.
#[must_use]
pub fn record_json(rec: &TraceRecord) -> Json {
    let ts = rec.ts.0;
    match rec.event {
        TraceEvent::CoreStallBegin { core, waiting } => event_json(
            "stall",
            "B",
            ts,
            PID_CORES,
            core as u64,
            vec![("waiting", Json::from(waiting.label()))],
        ),
        TraceEvent::CoreStallEnd { core, cause } => event_json(
            "stall",
            "E",
            ts,
            PID_CORES,
            core as u64,
            vec![("cause", Json::from(cause.label()))],
        ),
        TraceEvent::EngineFetchIssue { engine, addr } => event_json(
            "fetch-issue",
            "i",
            ts,
            PID_ENGINES,
            engine as u64,
            vec![("addr", Json::from(format!("{addr:#x}")))],
        ),
        TraceEvent::EngineFetchFill { engine, latency } => complete_event(
            "fetch",
            ts,
            latency,
            PID_ENGINES,
            engine as u64,
            vec![("latency", Json::from(latency))],
        ),
        TraceEvent::QueuePush {
            engine,
            queue,
            occupancy,
        }
        | TraceEvent::QueuePop {
            engine,
            queue,
            occupancy,
        } => event_json(
            // One counter track per (engine, queue); pushes and pops both
            // just sample the new occupancy.
            &format!("e{engine} q{queue} occupancy"),
            "C",
            ts,
            PID_ENGINES,
            0,
            vec![("entries", Json::from(occupancy))],
        ),
        TraceEvent::NocHop { x, y, flits } => event_json(
            "hop",
            "i",
            ts,
            PID_NOC,
            u64::from(y) << 8 | u64::from(x),
            vec![
                ("router", Json::from(format!("({x},{y})"))),
                ("flits", Json::from(u64::from(flits))),
            ],
        ),
        TraceEvent::MmioComplete {
            core,
            addr,
            write,
            latency,
        } => complete_event(
            if write { "mmio-store" } else { "mmio-load" },
            ts,
            latency,
            PID_CORES,
            core as u64,
            vec![("addr", Json::from(format!("{addr:#x}")))],
        ),
        TraceEvent::FaultInjected { site } => event_json(
            site.label(),
            "i",
            ts,
            PID_FAULTS,
            0,
            vec![("kind", Json::from("injected"))],
        ),
        TraceEvent::FaultRecovered { site } => event_json(
            site.label(),
            "i",
            ts,
            PID_FAULTS,
            1,
            vec![("kind", Json::from("recovered"))],
        ),
        // One row per engine on the serving process: switches render as
        // spans covering the charged overhead, dispatches as instants, so
        // Perfetto shows tenant interleaving per engine at a glance.
        TraceEvent::ServeSwitch {
            engine,
            tenant,
            cost,
        } => complete_event(
            "ctx-switch",
            ts,
            cost,
            PID_SERVE,
            engine as u64,
            vec![("tenant", Json::from(tenant))],
        ),
        TraceEvent::ServeDispatch {
            engine,
            tenant,
            rung,
        } => event_json(
            &format!("t{tenant}"),
            "i",
            ts,
            PID_SERVE,
            engine as u64,
            vec![
                ("tenant", Json::from(tenant)),
                ("rung", Json::from(u64::from(rung))),
            ],
        ),
    }
}

/// Builds the full `trace_event` document for a set of records.
#[must_use]
pub fn chrome_trace(records: &[TraceRecord]) -> Json {
    let mut events = vec![
        process_name(PID_CORES, "cores"),
        process_name(PID_ENGINES, "maple engines"),
        process_name(PID_NOC, "noc"),
        process_name(PID_FAULTS, "fault plane"),
        process_name(PID_SERVE, "serving"),
    ];
    events.extend(records.iter().map(record_json));
    Json::obj(vec![
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::from("ms")),
        (
            "otherData",
            Json::obj(vec![("timeUnit", Json::from("1 cycle = 1 us"))]),
        ),
    ])
}

/// Renders [`chrome_trace`] to a file.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_chrome_trace(path: &Path, records: &[TraceRecord]) -> io::Result<()> {
    std::fs::write(path, chrome_trace(records).render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultSite, StallCause, WaitKind};
    use maple_sim::Cycle;

    #[test]
    fn document_shape() {
        let records = [
            TraceRecord {
                ts: Cycle(10),
                event: TraceEvent::CoreStallBegin {
                    core: 1,
                    waiting: WaitKind::MmioLoad,
                },
            },
            TraceRecord {
                ts: Cycle(42),
                event: TraceEvent::CoreStallEnd {
                    core: 1,
                    cause: StallCause::ConsumeWait,
                },
            },
            TraceRecord {
                ts: Cycle(50),
                event: TraceEvent::EngineFetchFill {
                    engine: 0,
                    latency: 30,
                },
            },
            TraceRecord {
                ts: Cycle(51),
                event: TraceEvent::FaultInjected {
                    site: FaultSite::DramSpike,
                },
            },
        ];
        let doc = chrome_trace(&records);
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 5 process-name metadata events + 4 records.
        assert_eq!(events.len(), 9);
        // The fill renders as a complete event starting latency earlier.
        let fill = &events[7];
        assert_eq!(fill.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(fill.get("ts").unwrap().as_u64(), Some(20));
        assert_eq!(fill.get("dur").unwrap().as_u64(), Some(30));
        // The whole document survives a parse round trip.
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn stall_pairs_share_name_and_track() {
        let b = record_json(&TraceRecord {
            ts: Cycle(1),
            event: TraceEvent::CoreStallBegin {
                core: 3,
                waiting: WaitKind::Mem,
            },
        });
        let e = record_json(&TraceRecord {
            ts: Cycle(9),
            event: TraceEvent::CoreStallEnd {
                core: 3,
                cause: StallCause::L2Miss,
            },
        });
        assert_eq!(b.get("name"), e.get("name"));
        assert_eq!(b.get("pid"), e.get("pid"));
        assert_eq!(b.get("tid"), e.get("tid"));
        assert_eq!(b.get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(e.get("ph").unwrap().as_str(), Some("E"));
    }
}
