//! The unified metrics registry and the stall-attribution report.
//!
//! Before this module, every layer printed its own stats struct by hand
//! (`CpuStats`, `L1Stats`, `EngineStats`, `MeshStats`, `ChaosStats`, …).
//! A [`MetricsSnapshot`] flattens all of them into one ordered list of
//! named, typed metrics with exactly two renderers: a text table and a
//! JSON document. `System::metrics_snapshot` in `maple-soc` is the single
//! place that does the flattening.
//!
//! [`StallBreakdown`] is the report the paper's latency-tolerance argument
//! needs: each core's cycles split into compute / L1-miss / L2-miss /
//! DRAM / consume-wait / MMIO / fault-recovery. Cores attribute each
//! blocking stall when its response arrives (the serving level rides back
//! on the response — see `ServedBy` in `maple-mem`), so the split is
//! measured, not modelled.

use std::fmt::Write as _;

use maple_sim::stats::Histogram;

use crate::event::StallCause;
use crate::json::Json;

/// Per-core (or aggregated) stall cycles by attributed cause.
///
/// `compute` is derived, not stored: it is whatever part of the total
/// core-cycles no stall claimed (this also absorbs the short fixed-cost
/// stalls of L1 hits and page-table walks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Stall cycles on loads served by the shared L2 (an L1 miss).
    pub l1_miss: u64,
    /// Stall cycles on accesses filled from DRAM through the L2 (an L2
    /// miss).
    pub l2_miss: u64,
    /// Stall cycles on the direct-to-DRAM path (no L2 lookup).
    pub dram: u64,
    /// Stall cycles on blocking MMIO loads (MAPLE `CONSUME`).
    pub consume_wait: u64,
    /// Stall cycles on other MMIO backpressure (unacked produce stores).
    pub mmio: u64,
    /// Stall cycles attributable to fault recovery (watchdog-retried
    /// transactions, page-fault service).
    pub fault_recovery: u64,
}

impl StallBreakdown {
    /// Adds `cycles` to the bucket for `cause`.
    ///
    /// [`StallCause::L1Hit`] has no bucket by design — the fixed L1 hit
    /// latency is pipeline cost, so those cycles stay in the compute
    /// remainder.
    pub fn add(&mut self, cause: StallCause, cycles: u64) {
        match cause {
            StallCause::L1Hit => {}
            StallCause::L1Miss => self.l1_miss += cycles,
            StallCause::L2Miss => self.l2_miss += cycles,
            StallCause::Dram => self.dram += cycles,
            StallCause::ConsumeWait => self.consume_wait += cycles,
            StallCause::Mmio => self.mmio += cycles,
            StallCause::FaultRecovery => self.fault_recovery += cycles,
        }
    }

    /// Total attributed stall cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.l1_miss + self.l2_miss + self.dram + self.consume_wait + self.mmio
            + self.fault_recovery
    }

    /// Merges another breakdown into this one (for aggregating cores).
    pub fn merge(&mut self, other: &StallBreakdown) {
        self.l1_miss += other.l1_miss;
        self.l2_miss += other.l2_miss;
        self.dram += other.dram;
        self.consume_wait += other.consume_wait;
        self.mmio += other.mmio;
        self.fault_recovery += other.fault_recovery;
    }

    /// Compute cycles given the total core-cycles the breakdown covers.
    #[must_use]
    pub fn compute(&self, core_cycles: u64) -> u64 {
        core_cycles.saturating_sub(self.total())
    }

    /// The buckets as `(label, cycles)` pairs, table order.
    #[must_use]
    pub fn buckets(&self) -> [(&'static str, u64); 6] {
        [
            ("l1-miss", self.l1_miss),
            ("l2-miss", self.l2_miss),
            ("dram", self.dram),
            ("consume-wait", self.consume_wait),
            ("mmio", self.mmio),
            ("fault-recovery", self.fault_recovery),
        ]
    }

    /// JSON object with one member per bucket plus the derived compute
    /// remainder.
    #[must_use]
    pub fn to_json(&self, core_cycles: u64) -> Json {
        let mut members = vec![
            ("core_cycles", Json::from(core_cycles)),
            ("compute", Json::from(self.compute(core_cycles))),
        ];
        for (label, cycles) in self.buckets() {
            members.push((label, Json::from(cycles)));
        }
        Json::obj(members)
    }
}

/// One row of the stall-attribution table: a label (variant, core, …),
/// the core-cycles it covers, and the attributed breakdown.
#[derive(Debug, Clone)]
pub struct StallRow {
    /// Row label.
    pub label: String,
    /// Total core-cycles covered (run cycles × participating cores).
    pub core_cycles: u64,
    /// The attributed stalls.
    pub breakdown: StallBreakdown,
}

/// Renders the stall-attribution table the fig08–fig15 binaries print:
/// one row per label, percentage of core-cycles per bucket.
#[must_use]
pub fn stall_table(rows: &[StallRow]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<22}{:>14}", "stall attribution", "core-cycles");
    let headers = [
        "compute", "l1-miss", "l2-miss", "dram", "consume", "mmio", "fault",
    ];
    for h in headers {
        let _ = write!(out, "{h:>9}");
    }
    out.push('\n');
    for row in rows {
        let pct = |cycles: u64| {
            if row.core_cycles == 0 {
                0.0
            } else {
                100.0 * cycles as f64 / row.core_cycles as f64
            }
        };
        let b = &row.breakdown;
        let _ = write!(out, "{:<22}{:>14}", row.label, row.core_cycles);
        for cycles in [
            b.compute(row.core_cycles),
            b.l1_miss,
            b.l2_miss,
            b.dram,
            b.consume_wait,
            b.mmio,
            b.fault_recovery,
        ] {
            let _ = write!(out, "{:>8.1}%", pct(cycles));
        }
        out.push('\n');
    }
    out
}

/// JSON form of the stall-attribution table (one object per row).
#[must_use]
pub fn stall_json(rows: &[StallRow]) -> Json {
    Json::Array(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("label", Json::from(r.label.as_str())),
                    ("attribution", r.breakdown.to_json(r.core_cycles)),
                ])
            })
            .collect(),
    )
}

/// A histogram flattened to its headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucketed upper bound).
    pub p50: u64,
    /// 95th percentile (bucketed upper bound).
    pub p95: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSummary {
    /// Summarizes a [`Histogram`].
    #[must_use]
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean: h.mean(),
            p50: h.percentile(50.0).unwrap_or(0),
            p95: h.percentile(95.0).unwrap_or(0),
            max: h.max().unwrap_or(0),
        }
    }
}

/// A metric's value: monotonically counted, sampled, or distributional.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// An event count.
    Counter(u64),
    /// A point-in-time or derived value.
    Gauge(f64),
    /// A distribution summary.
    Histogram(HistogramSummary),
}

/// An ordered, named collection of metrics with one text renderer and one
/// JSON renderer.
///
/// Names are slash-separated paths (`core0/instructions`,
/// `engine0/queue0/occupancy`), inserted in the order the producer walks
/// its components, so tables group naturally by component.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Records a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), MetricValue::Counter(value)));
    }

    /// Records a gauge.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), MetricValue::Gauge(value)));
    }

    /// Records a histogram summary.
    pub fn histogram(&mut self, name: impl Into<String>, h: &Histogram) {
        self.entries
            .push((name.into(), MetricValue::Histogram(HistogramSummary::of(h))));
    }

    /// The entries, insertion-ordered.
    #[must_use]
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Looks a metric up by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Keeps only the entries whose name satisfies `pred`, preserving
    /// registration order. Differential comparisons use this to strip
    /// metrics that are legitimately mode-dependent (e.g. the
    /// fast-path/interpreter dispatch split) before asserting byte
    /// equality on everything else.
    pub fn retain(&mut self, mut pred: impl FnMut(&str) -> bool) {
        self.entries.retain(|(name, _)| pred(name));
    }

    /// Renders the text table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(6);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let _ = write!(out, "{name:<width$}  ");
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{v:.2}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "count={} mean={:.1} p50={} p95={} max={}",
                        h.count, h.mean, h.p50, h.p95, h.max
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.entries
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(c) => Json::from(*c),
                        MetricValue::Gauge(g) => Json::from(*g),
                        MetricValue::Histogram(h) => Json::obj(vec![
                            ("count", Json::from(h.count)),
                            ("mean", Json::from(h.mean)),
                            ("p50", Json::from(h.p50)),
                            ("p95", Json::from(h.p95)),
                            ("max", Json::from(h.max)),
                        ]),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accounting() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::L1Miss, 10);
        b.add(StallCause::Dram, 5);
        b.add(StallCause::ConsumeWait, 25);
        assert_eq!(b.total(), 40);
        assert_eq!(b.compute(100), 60);
        assert_eq!(b.compute(30), 0, "saturates instead of underflowing");
        let mut agg = StallBreakdown::default();
        agg.merge(&b);
        agg.merge(&b);
        assert_eq!(agg.total(), 80);
        let j = b.to_json(100);
        assert_eq!(j.get("compute").unwrap().as_u64(), Some(60));
        assert_eq!(j.get("consume-wait").unwrap().as_u64(), Some(25));
    }

    #[test]
    fn stall_table_renders_percentages() {
        let mut b = StallBreakdown::default();
        b.add(StallCause::L2Miss, 50);
        let rows = vec![StallRow {
            label: "maple-dec".into(),
            core_cycles: 200,
            breakdown: b,
        }];
        let table = stall_table(&rows);
        assert!(table.contains("maple-dec"));
        assert!(table.contains("25.0%"), "l2-miss share:\n{table}");
        assert!(table.contains("75.0%"), "compute remainder:\n{table}");
        let json = stall_json(&rows);
        assert_eq!(
            json.as_array().unwrap()[0]
                .get("attribution")
                .unwrap()
                .get("l2-miss")
                .unwrap()
                .as_u64(),
            Some(50)
        );
    }

    #[test]
    fn snapshot_render_and_json() {
        let mut h = Histogram::new();
        for v in [1, 2, 300] {
            h.record(v);
        }
        let mut m = MetricsSnapshot::new();
        m.counter("core0/instructions", 1234);
        m.gauge("mesh/mean_latency", 7.5);
        m.histogram("dram/latency", &h);
        assert_eq!(m.entries().len(), 3);
        assert!(matches!(
            m.get("core0/instructions"),
            Some(MetricValue::Counter(1234))
        ));
        let table = m.render_table();
        assert!(table.contains("core0/instructions"));
        assert!(table.contains("count=3"));
        let j = m.to_json();
        assert_eq!(j.get("core0/instructions").unwrap().as_u64(), Some(1234));
        assert_eq!(
            j.get("dram/latency").unwrap().get("count").unwrap().as_u64(),
            Some(3)
        );
    }
}
