//! System-level fault-plane tests: zero-perturbation when the plane is
//! quiescent, bit-exact recovery under a lossy NoC, and a structured hang
//! diagnosis when the plane makes the engine unreachable.

use maple_sim::fault::FaultPlaneConfig;
use maple_sim::RunOutcome;
use maple_soc::compiler::{KernelSpec, ValueOp};
use maple_soc::config::SocConfig;
use maple_soc::system::System;

fn make_data(n: usize, a_len: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = maple_sim::rng::SimRng::seed(seed);
    let a: Vec<u32> = (0..a_len).map(|_| rng.below(1000) as u32).collect();
    let b: Vec<u32> = (0..n).map(|_| rng.below(a_len as u64) as u32).collect();
    let c: Vec<u32> = (0..n).map(|_| rng.below(100) as u32).collect();
    (a, b, c)
}

fn host_reference(a: &[u32], b: &[u32], c: &[u32]) -> Vec<u32> {
    b.iter()
        .zip(c)
        .map(|(&bi, &ci)| a[bi as usize].wrapping_mul(ci))
        .collect()
}

/// Runs the MAPLE-decoupled pair kernel on `cfg`; returns the outcome,
/// the result vector and the system for stats inspection.
fn run_pair(cfg: SocConfig, n: usize, seed: u64) -> (RunOutcome, Vec<u32>, Vec<u32>, System) {
    let spec = KernelSpec {
        with_stream: true,
        op: ValueOp::Mul,
        with_store: true,
    };
    let (a, b, c) = make_data(n, 1024, seed);
    let expected = host_reference(&a, &b, &c);
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);
    let va_a = sys.alloc((a.len() * 4) as u64);
    let va_b = sys.alloc((b.len() * 4) as u64);
    let va_c = sys.alloc((c.len() * 4) as u64);
    let va_r = sys.alloc((b.len() * 4) as u64);
    sys.write_slice_u32(va_a, &a);
    sys.write_slice_u32(va_b, &b);
    sys.write_slice_u32(va_c, &c);
    let pair = spec.gen_maple_pair(0);
    sys.load_program(
        pair.access,
        &[
            (pair.access_args.a, va_a.0),
            (pair.access_args.b, va_b.0),
            (pair.access_args.n, b.len() as u64),
            (pair.access_maple, maple_va.0),
        ],
    );
    sys.load_program(
        pair.execute,
        &[
            (pair.execute_args.c, va_c.0),
            (pair.execute_args.res, va_r.0),
            (pair.execute_args.n, b.len() as u64),
            (pair.execute_maple, maple_va.0),
        ],
    );
    let out = sys.run(5_000_000);
    let got = sys.read_slice_u32(va_r, b.len());
    (out, got, expected, sys)
}

#[test]
fn quiescent_plane_is_cycle_identical_to_no_plane() {
    // Acceptance criterion: with the plane disabled the fault machinery
    // is zero-cost. A plane with every rate at zero and no scheduled
    // events must not perturb timing either (no RNG draw ever happens),
    // so both runs finish at the SAME cycle with the same results.
    let (out_off, got_off, expected, _) = run_pair(SocConfig::fpga_prototype(), 128, 7);
    let quiescent = FaultPlaneConfig::new(0xDEAD_BEEF);
    let (out_on, got_on, _, sys) = run_pair(
        SocConfig::fpga_prototype().with_fault_plane(quiescent),
        128,
        7,
    );
    assert!(out_off.is_finished() && out_on.is_finished());
    assert_eq!(got_off, expected);
    assert_eq!(got_on, expected);
    assert_eq!(
        out_off.cycle(),
        out_on.cycle(),
        "quiescent fault plane must be cycle-exact with no plane at all"
    );
    let stats = sys.chaos_stats().expect("plane installed");
    assert_eq!(stats.mmio_timeouts.get(), 0);
    assert_eq!(sys.mesh_stats().dropped.get(), 0);
}

#[test]
fn lossy_noc_recovers_bit_exact() {
    // 2% drop + occasional delay on MAPLE traffic: the engine fetch
    // watchdog and the core MMIO watchdog must recover every lost
    // transaction, completing bit-exact with visible retry counters.
    let plane = FaultPlaneConfig::new(42)
        .with_noc_drop(0.02)
        .with_noc_delay(0.02, 200);
    let (out, got, expected, sys) =
        run_pair(SocConfig::fpga_prototype().with_fault_plane(plane), 128, 3);
    assert!(out.is_finished(), "run must recover: {out:?}");
    assert_eq!(got, expected, "bit-exact despite dropped packets");
    assert!(
        sys.mesh_stats().dropped.get() > 0,
        "schedule actually struck"
    );
    let engine = sys.engine(0).stats();
    let chaos = sys.chaos_stats().unwrap();
    assert!(
        engine.fetch_retries.get() + chaos.mmio_retries.get() > 0,
        "at least one lost transaction was retried"
    );
    assert!(!sys.engine_retired(0), "no poison under a recoverable rate");
}

#[test]
fn lossy_noc_replay_is_deterministic() {
    // Same seed → bit-identical chaos run, including final cycle count.
    let mk = || {
        FaultPlaneConfig::new(42)
            .with_noc_drop(0.02)
            .with_noc_delay(0.02, 200)
    };
    let (out1, got1, _, sys1) =
        run_pair(SocConfig::fpga_prototype().with_fault_plane(mk()), 96, 5);
    let (out2, got2, _, sys2) =
        run_pair(SocConfig::fpga_prototype().with_fault_plane(mk()), 96, 5);
    assert_eq!(out1, out2, "same seed, same outcome and cycle");
    assert_eq!(got1, got2);
    assert_eq!(
        sys1.mesh_stats().dropped.get(),
        sys2.mesh_stats().dropped.get()
    );
    assert_eq!(
        sys1.engine(0).stats().fetch_retries.get(),
        sys2.engine(0).stats().fetch_retries.get()
    );
}

#[test]
fn ack_blackout_yields_hang_diagnosis_not_timeout() {
    // Acceptance criterion: 100% MMIO ack loss is deliberately
    // unrecoverable. The run must end with a structured HangDiagnosis
    // (poisoned engine visible) well before the cycle budget — never a
    // bare timeout, never a panic.
    let plane = FaultPlaneConfig::new(9).with_mmio_ack_loss(1.0);
    let (out, _, _, sys) = run_pair(
        SocConfig::fpga_prototype().with_fault_plane(plane),
        64,
        11,
    );
    assert!(!out.is_finished());
    let d = out.diagnosis().expect("structured diagnosis, not TimedOut");
    assert!(d.any_poisoned(), "engine reported poisoned:\n{d}");
    assert!(
        d.at.0 < 5_000_000,
        "watchdog exhaustion must abort early, not burn the budget"
    );
    assert!(sys.engine_retired(0), "driver retired the instance");
    let chaos = sys.chaos_stats().unwrap();
    assert!(chaos.mmio_timeouts.get() > 0);
    assert_eq!(chaos.engines_poisoned.get(), 1);
    assert!(sys.engine(0).stats().acks_dropped.get() > 0);
}

#[test]
fn mid_run_reset_is_injected_and_counted() {
    // A scheduled engine RESET mid-run: the run either still completes
    // bit-exact (reset before any state was live) or fails safely into
    // a diagnosis; in both cases the injection is visible in counters
    // and nothing panics.
    let plane = FaultPlaneConfig::new(3).with_engine_reset_at(5_000, 0);
    let (out, got, expected, sys) = run_pair(
        SocConfig::fpga_prototype().with_fault_plane(plane),
        256,
        13,
    );
    let chaos = sys.chaos_stats().unwrap();
    assert_eq!(chaos.resets_injected.get(), 1, "reset delivered");
    if out.is_finished() {
        assert_eq!(got, expected, "a finished chaos run must be bit-exact");
    } else {
        assert!(out.diagnosis().is_some(), "failure carries a diagnosis");
    }
}
