//! Full-system integration tests: programs running on cores, through the
//! L1s, across the mesh, against MAPLE engines and the shared L2.

use maple_isa::builder::ProgramBuilder;
use maple_isa::Reg;
use maple_soc::compiler::{KernelSpec, ValueOp};
use maple_soc::config::SocConfig;
use maple_soc::runtime::{Barrier, MapleApi, BARRIER_BYTES};
use maple_soc::system::System;

fn host_reference(a: &[u32], b: &[u32], c: &[u32]) -> (Vec<u32>, u64) {
    let res: Vec<u32> = b
        .iter()
        .zip(c)
        .map(|(&bi, &ci)| a[bi as usize].wrapping_mul(ci))
        .collect();
    let acc = res.iter().map(|&v| u64::from(v)).fold(0u64, u64::wrapping_add);
    (res, acc)
}

fn make_data(n: usize, a_len: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = maple_sim::rng::SimRng::seed(seed);
    let a: Vec<u32> = (0..a_len).map(|_| rng.below(1000) as u32).collect();
    let b: Vec<u32> = (0..n).map(|_| rng.below(a_len as u64) as u32).collect();
    let c: Vec<u32> = (0..n).map(|_| rng.below(100) as u32).collect();
    (a, b, c)
}

#[test]
fn doall_kernel_computes_reference_result() {
    let mut sys = System::new(SocConfig::fpga_prototype());
    let (a, b, c) = make_data(64, 512, 1);
    let (res_ref, acc_ref) = host_reference(&a, &b, &c);

    let va_a = sys.alloc((a.len() * 4) as u64);
    let va_b = sys.alloc((b.len() * 4) as u64);
    let va_c = sys.alloc((c.len() * 4) as u64);
    let va_r = sys.alloc((b.len() * 4) as u64);
    sys.write_slice_u32(va_a, &a);
    sys.write_slice_u32(va_b, &b);
    sys.write_slice_u32(va_c, &c);

    let spec = KernelSpec {
        with_stream: true,
        op: ValueOp::Mul,
        with_store: true,
    };
    let (prog, args) = spec.gen_doall();
    let core = sys.load_program(
        prog,
        &[
            (args.a, va_a.0),
            (args.b, va_b.0),
            (args.c, va_c.0),
            (args.res, va_r.0),
            (args.n, b.len() as u64),
        ],
    );
    let out = sys.run(10_000_000);
    assert!(out.is_finished(), "doall timed out");
    assert_eq!(sys.read_slice_u32(va_r, b.len()), res_ref);
    assert_eq!(
        sys.core(core).reg(args.acc),
        acc_ref
    );
}

#[test]
fn maple_decoupled_pair_matches_reference_and_is_faster() {
    let spec = KernelSpec {
        with_stream: true,
        op: ValueOp::Mul,
        with_store: true,
    };
    let (a, b, c) = make_data(256, 4096, 2);
    let (res_ref, _) = host_reference(&a, &b, &c);

    // Baseline: single-thread doall.
    let doall_cycles = {
        let mut sys = System::new(SocConfig::fpga_prototype());
        let va_a = sys.alloc((a.len() * 4) as u64);
        let va_b = sys.alloc((b.len() * 4) as u64);
        let va_c = sys.alloc((c.len() * 4) as u64);
        let va_r = sys.alloc((b.len() * 4) as u64);
        sys.write_slice_u32(va_a, &a);
        sys.write_slice_u32(va_b, &b);
        sys.write_slice_u32(va_c, &c);
        let (prog, args) = spec.gen_doall();
        sys.load_program(
            prog,
            &[
                (args.a, va_a.0),
                (args.b, va_b.0),
                (args.c, va_c.0),
                (args.res, va_r.0),
                (args.n, b.len() as u64),
            ],
        );
        let out = sys.run(50_000_000);
        assert!(out.is_finished());
        assert_eq!(sys.read_slice_u32(va_r, b.len()), res_ref);
        out.cycle().0
    };

    // MAPLE-decoupled: Access + Execute on two cores, one engine.
    let maple_cycles = {
        let mut sys = System::new(SocConfig::fpga_prototype());
        let maple_va = sys.map_maple(0);
        let va_a = sys.alloc((a.len() * 4) as u64);
        let va_b = sys.alloc((b.len() * 4) as u64);
        let va_c = sys.alloc((c.len() * 4) as u64);
        let va_r = sys.alloc((b.len() * 4) as u64);
        sys.write_slice_u32(va_a, &a);
        sys.write_slice_u32(va_b, &b);
        sys.write_slice_u32(va_c, &c);
        let pair = spec.gen_maple_pair(0);
        sys.load_program(
            pair.access,
            &[
                (pair.access_args.a, va_a.0),
                (pair.access_args.b, va_b.0),
                (pair.access_args.n, b.len() as u64),
                (pair.access_maple, maple_va.0),
            ],
        );
        sys.load_program(
            pair.execute,
            &[
                (pair.execute_args.c, va_c.0),
                (pair.execute_args.res, va_r.0),
                (pair.execute_args.n, b.len() as u64),
                (pair.execute_maple, maple_va.0),
            ],
        );
        let out = sys.run(50_000_000);
        assert!(out.is_finished(), "maple pair timed out");
        assert_eq!(sys.read_slice_u32(va_r, b.len()), res_ref, "bit-exact");
        out.cycle().0
    };

    assert!(
        (maple_cycles as f64) < 0.8 * doall_cycles as f64,
        "MAPLE decoupling should clearly beat 1-thread doall: {maple_cycles} vs {doall_cycles}"
    );
}

#[test]
fn desc_pair_matches_reference() {
    let spec = KernelSpec {
        with_stream: true,
        op: ValueOp::Mul,
        with_store: true,
    };
    let (a, b, c) = make_data(128, 1024, 3);
    let (res_ref, _) = host_reference(&a, &b, &c);

    let mut sys = System::new(SocConfig::simulated_system());
    let va_a = sys.alloc((a.len() * 4) as u64);
    let va_b = sys.alloc((b.len() * 4) as u64);
    let va_c = sys.alloc((c.len() * 4) as u64);
    let va_r = sys.alloc((b.len() * 4) as u64);
    sys.write_slice_u32(va_a, &a);
    sys.write_slice_u32(va_b, &b);
    sys.write_slice_u32(va_c, &c);
    let pair = spec.gen_desc_pair();
    let access = sys.load_program(
        pair.access,
        &[
            (pair.access_args.a, va_a.0),
            (pair.access_args.b, va_b.0),
            (pair.access_args.c, va_c.0),
            (pair.access_args.res, va_r.0),
            (pair.access_args.n, b.len() as u64),
        ],
    );
    let execute = sys.load_program(
        pair.execute,
        &[(pair.execute_args.n, b.len() as u64)],
    );
    sys.pair_desc(access, execute, 3);
    let out = sys.run(50_000_000);
    assert!(out.is_finished(), "DeSC pair timed out");
    assert_eq!(sys.read_slice_u32(va_r, b.len()), res_ref);
}

#[test]
fn mmio_consume_roundtrip_is_l2_scale_not_dram_scale() {
    // Figure 14: the consume round trip is ≈25 cycles + hops — an order
    // of magnitude below DRAM. Measure back-to-back consumes of
    // pre-produced data.
    let mut sys = System::new(SocConfig::fpga_prototype());
    let maple_va = sys.map_maple(0);

    let reps = 20u64;
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let i = b.reg("i");
    let api = MapleApi::new(base);
    b.li(v, 5);
    // Pre-produce `reps` values.
    for _ in 0..reps {
        api.produce(&mut b, 0, v);
    }
    // Timed phase: consume them back-to-back.
    b.li(i, 0);
    let top = b.here("loop");
    let done = b.label("done");
    b.bge(i, reps as i64, done);
    api.consume(&mut b, 0, v, 4);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    let core = sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
    let out = sys.run(1_000_000);
    assert!(out.is_finished());

    let lat = sys.core(core).l1_stats().load_latency.mean();
    assert!(
        (15.0..60.0).contains(&lat),
        "consume round trip should be L2-scale (~25+hops), got {lat:.1}"
    );
    assert!(lat < 100.0, "an order of magnitude below the 300-cycle DRAM");
}

#[test]
fn lazy_allocation_faults_on_core_and_engine() {
    let mut sys = System::new(SocConfig::fpga_prototype());
    let maple_va = sys.map_maple(0);
    // Lazy array: the host writes one page's worth, then the core loads
    // from it and MAPLE gathers from it.
    let lazy = sys.alloc_lazy(3 * maple_mem::PAGE_SIZE);
    sys.write_u32(lazy, 111); // host touch maps page 0 only

    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let arr = b.reg("arr");
    let v1 = b.reg("v1");
    let v2 = b.reg("v2");
    let ptr = b.reg("ptr");
    let api = MapleApi::new(base);
    // Core load from the *unmapped* second page: core-side fault path.
    b.ld(v1, arr, maple_mem::PAGE_SIZE as i64, 4);
    // MAPLE gather from a different unmapped page: engine-side fault path.
    b.addi(ptr, arr, 2 * maple_mem::PAGE_SIZE as i64 + 4);
    api.produce_ptr(&mut b, 0, ptr);
    api.consume(&mut b, 0, v2, 4);
    b.halt();
    let core = sys.load_program(
        b.build().unwrap(),
        &[(base, maple_va.0), (arr, lazy.0)],
    );
    let out = sys.run(10_000_000);
    assert!(out.is_finished(), "faults must be serviced, not wedge");
    assert_eq!(sys.core(core).reg(v1), 0, "fresh page reads zero");
    assert_eq!(sys.core(core).reg(v2), 0);
    assert!(sys.engine(0).stats().faults.get() >= 1, "engine faulted");
}

#[test]
fn barrier_synchronizes_two_threads() {
    let mut sys = System::new(SocConfig::fpga_prototype());
    let bar_va = sys.alloc(BARRIER_BYTES);
    let flag_va = sys.alloc(64);

    // Thread 0: write flag = 42, barrier, halt.
    let mut b = ProgramBuilder::new();
    let bar_base = b.reg("bar");
    let flag = b.reg("flag");
    let v = b.reg("v");
    let barrier = Barrier::new(&mut b, bar_base, 2);
    b.li(v, 42);
    b.st(v, flag, 0, 8);
    barrier.emit(&mut b);
    b.halt();
    sys.load_program(
        b.build().unwrap(),
        &[(bar_base, bar_va.0), (flag, flag_va.0)],
    );

    // Thread 1: barrier, read flag (must observe 42).
    let mut b = ProgramBuilder::new();
    let bar_base = b.reg("bar");
    let flag = b.reg("flag");
    let got = b.reg("got");
    let barrier = Barrier::new(&mut b, bar_base, 2);
    // Burn some cycles so thread 1 reaches the barrier at a different
    // time.
    for _ in 0..50 {
        b.nop();
    }
    barrier.emit(&mut b);
    b.ld(got, flag, 0, 8);
    b.halt();
    let t1 = sys.load_program(
        b.build().unwrap(),
        &[(bar_base, bar_va.0), (flag, flag_va.0)],
    );

    let out = sys.run(1_000_000);
    assert!(out.is_finished(), "barrier deadlocked");
    assert_eq!(sys.core(t1).reg(maple_isa::Reg(3)), 42);
}

#[test]
fn open_grants_exclusive_queue_to_first_core() {
    let mut sys = System::new(SocConfig::fpga_prototype());
    let maple_va = sys.map_maple(0);

    let build_opener = |result: Reg| {
        let mut b = ProgramBuilder::new();
        let base = b.reg("maple");
        assert_eq!(result, Reg(2));
        let r = b.reg("r");
        let api = MapleApi::new(base);
        api.open(&mut b, 4, r);
        b.halt();
        (b.build().unwrap(), base)
    };
    let (p0, base0) = build_opener(Reg(2));
    let (p1, base1) = build_opener(Reg(2));
    let c0 = sys.load_program(p0, &[(base0, maple_va.0)]);
    let c1 = sys.load_program(p1, &[(base1, maple_va.0)]);
    assert!(sys.run(100_000).is_finished());
    let g0 = sys.core(c0).reg(Reg(2));
    let g1 = sys.core(c1).reg(Reg(2));
    assert_eq!(
        g0 + g1,
        1,
        "exactly one of the two cores wins the OPEN race (got {g0},{g1})"
    );
}
