//! Tests for the sensitivity-study knobs: the configuration parameters
//! the Figure 15 and Section 5.3 sweeps rely on must have the modelled
//! effect.

use maple_isa::builder::ProgramBuilder;
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

/// Builds a produce/consume ping-pong and returns its completion time.
fn roundtrip_cycles(cfg: SocConfig) -> u64 {
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let i = b.reg("i");
    let api = MapleApi::new(base);
    b.li(i, 0);
    let top = b.here("top");
    let done = b.label("done");
    b.bge(i, 20, done);
    b.li(v, 1);
    api.produce(&mut b, 0, v);
    api.consume(&mut b, 0, v, 4);
    b.addi(i, i, 1);
    b.jump(top);
    b.bind(done);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
    let out = sys.run(1_000_000);
    assert!(out.is_finished());
    out.cycle().0
}

#[test]
fn maple_extra_latency_increases_roundtrip_monotonically() {
    let base = roundtrip_cycles(SocConfig::fpga_prototype());
    let mut prev = base;
    for extra in [10u64, 30, 80] {
        let c = roundtrip_cycles(
            SocConfig::fpga_prototype().with_maple_extra_latency(extra),
        );
        assert!(
            c > prev,
            "extra latency {extra} should slow the ping-pong: {c} vs {prev}"
        );
        prev = c;
    }
    // The knob's full effect is visible: +80 pipeline cycles per
    // iteration over 20 iterations is at least 1600 cycles.
    assert!(prev >= base + 1500, "{prev} vs {base}");
}

#[test]
fn uncore_latency_knob_slows_every_message() {
    let mut slow = SocConfig::fpga_prototype();
    slow.uncore_latency = 20;
    let fast = roundtrip_cycles(SocConfig::fpga_prototype());
    let slowc = roundtrip_cycles(slow);
    assert!(slowc > fast, "uncore {slowc} vs {fast}");
}

#[test]
fn queue_entry_knob_reshapes_engine() {
    let cfg = SocConfig::fpga_prototype().with_queue_entries(16);
    let sys = System::new(cfg);
    assert_eq!(sys.engine(0).queue(0).capacity(), 16);
    // 8 queues × 16 × 4 B = 512 B still fits: count stays 8.
    assert_eq!(sys.engine(0).config().queues, 8);

    let cfg = SocConfig::fpga_prototype().with_queue_entries(128);
    let sys = System::new(cfg);
    assert_eq!(sys.engine(0).queue(0).capacity(), 128);
    assert_eq!(sys.engine(0).config().queues, 2, "scratchpad-bounded");
}

#[test]
fn multiple_engines_have_distinct_pages_and_work() {
    let cfg = SocConfig::fpga_prototype().with_maples(2);
    let mut sys = System::new(cfg);
    let va0 = sys.map_maple(0);
    let va1 = sys.map_maple(1);
    assert_ne!(va0, va1);

    // One core drives both engines through their separate pages.
    let mut b = ProgramBuilder::new();
    let m0 = b.reg("m0");
    let m1 = b.reg("m1");
    let v = b.reg("v");
    let w = b.reg("w");
    let api0 = MapleApi::new(m0);
    let api1 = MapleApi::new(m1);
    b.li(v, 111);
    api0.produce(&mut b, 0, v);
    b.li(v, 222);
    api1.produce(&mut b, 0, v);
    api0.consume(&mut b, 0, v, 4);
    api1.consume(&mut b, 0, w, 4);
    b.halt();
    let core = sys.load_program(b.build().unwrap(), &[(m0, va0.0), (m1, va1.0)]);
    assert!(sys.run(1_000_000).is_finished());
    assert_eq!(sys.core(core).reg(v), 111);
    assert_eq!(sys.core(core).reg(w), 222);
}
