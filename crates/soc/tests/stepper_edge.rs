//! Scheduler edge cases for the event-horizon stepper: the skipping and
//! dense run loops must stay bit-exact on the paths where skipping is
//! most aggressive — a permanently-stalled system whose horizon is empty
//! (the run jumps straight to the cycle budget), a chaos event landing
//! exactly on a skipped-to cycle, and occupancy sampling across skipped
//! gaps.

use maple_isa::builder::ProgramBuilder;
use maple_sim::fault::FaultPlaneConfig;
use maple_sim::RunOutcome;
use maple_soc::compiler::{KernelSpec, ValueOp};
use maple_soc::config::SocConfig;
use maple_soc::runtime::MapleApi;
use maple_soc::system::System;

/// A program that consumes from queue 0, which nothing ever produces
/// into: the core parks in `WaitingMem` forever. With no fault plane
/// there is no watchdog, so the system is permanently stalled and the
/// event horizon is empty.
fn load_starved_consumer(sys: &mut System) {
    let maple_va = sys.map_maple(0);
    let mut b = ProgramBuilder::new();
    let base = b.reg("maple");
    let v = b.reg("v");
    let api = MapleApi::new(base);
    api.consume(&mut b, 0, v, 4);
    b.halt();
    sys.load_program(b.build().unwrap(), &[(base, maple_va.0)]);
}

#[test]
fn empty_horizon_hang_is_bit_exact_with_dense() {
    // The skipping loop sees no component with a future event and jumps
    // straight to the cycle budget; the dense loop grinds there one cycle
    // at a time. Outcome, hang diagnosis, and every metric must agree.
    const BUDGET: u64 = 200_000;
    let run = |cfg: SocConfig| {
        let mut sys = System::new(cfg);
        load_starved_consumer(&mut sys);
        let out = sys.run(BUDGET);
        (out, sys)
    };
    let (skip_out, skip_sys) = run(SocConfig::fpga_prototype());
    let (dense_out, dense_sys) = run(SocConfig::fpga_prototype().with_dense_stepper());

    assert!(
        matches!(skip_out, RunOutcome::Hung(_)),
        "starved consumer must hang: {skip_out:?}"
    );
    assert_eq!(skip_out, dense_out, "hang diagnosis diverged");
    assert_eq!(skip_out.cycle().0, BUDGET, "hang at budget expiry");
    assert_eq!(
        skip_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "metrics diverged on the empty-horizon hang path"
    );
}

#[test]
fn chaos_reset_fires_exactly_at_skipped_to_cycle() {
    // Same starved consumer, but a fault plane schedules an engine RESET
    // at cycle 5000 — deep inside the quiescent gap. The skipping loop
    // must advance exactly TO the injection cycle (chaos events fire when
    // `at <= now`), deliver the reset, and then agree with dense on every
    // downstream effect (watchdog retries, poison, final diagnosis).
    const BUDGET: u64 = 2_000_000;
    let plane = || FaultPlaneConfig::new(7).with_engine_reset_at(5_000, 0);
    let run = |cfg: SocConfig| {
        let mut sys = System::new(cfg.with_fault_plane(plane()));
        load_starved_consumer(&mut sys);
        let out = sys.run(BUDGET);
        (out, sys)
    };
    let (skip_out, skip_sys) = run(SocConfig::fpga_prototype());
    let (dense_out, dense_sys) = run(SocConfig::fpga_prototype().with_dense_stepper());

    let chaos = skip_sys.chaos_stats().expect("plane installed");
    assert_eq!(
        chaos.resets_injected.get(),
        1,
        "the scheduled reset must fire even though cycle 5000 is inside a \
         quiescent gap"
    );
    assert_eq!(skip_out, dense_out, "post-reset behaviour diverged");
    assert_eq!(
        skip_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "metrics diverged after a reset landing on a skipped-to cycle"
    );
    let dense_chaos = dense_sys.chaos_stats().unwrap();
    assert_eq!(chaos.resets_injected.get(), dense_chaos.resets_injected.get());
    assert_eq!(chaos.mmio_timeouts.get(), dense_chaos.mmio_timeouts.get());
    assert_eq!(chaos.mmio_retries.get(), dense_chaos.mmio_retries.get());
}

/// Runs the MAPLE-decoupled pair kernel and returns the outcome plus the
/// finished system (for occupancy/metrics inspection).
fn run_pair(cfg: SocConfig, n: usize, seed: u64) -> (RunOutcome, System) {
    let spec = KernelSpec {
        with_stream: true,
        op: ValueOp::Mul,
        with_store: true,
    };
    let mut rng = maple_sim::rng::SimRng::seed(seed);
    let a: Vec<u32> = (0..1024).map(|_| rng.below(1000) as u32).collect();
    let b: Vec<u32> = (0..n).map(|_| rng.below(1024) as u32).collect();
    let c: Vec<u32> = (0..n).map(|_| rng.below(100) as u32).collect();
    let mut sys = System::new(cfg);
    let maple_va = sys.map_maple(0);
    let va_a = sys.alloc((a.len() * 4) as u64);
    let va_b = sys.alloc((b.len() * 4) as u64);
    let va_c = sys.alloc((c.len() * 4) as u64);
    let va_r = sys.alloc((b.len() * 4) as u64);
    sys.write_slice_u32(va_a, &a);
    sys.write_slice_u32(va_b, &b);
    sys.write_slice_u32(va_c, &c);
    let pair = spec.gen_maple_pair(0);
    sys.load_program(
        pair.access,
        &[
            (pair.access_args.a, va_a.0),
            (pair.access_args.b, va_b.0),
            (pair.access_args.n, b.len() as u64),
            (pair.access_maple, maple_va.0),
        ],
    );
    sys.load_program(
        pair.execute,
        &[
            (pair.execute_args.c, va_c.0),
            (pair.execute_args.res, va_r.0),
            (pair.execute_args.n, b.len() as u64),
            (pair.execute_maple, maple_va.0),
        ],
    );
    let out = sys.run(5_000_000);
    (out, sys)
}

#[test]
fn zero_engine_partitions_are_bit_exact() {
    // fpga_prototype has 2 cores + 1 MAPLE; 4 partitions leave at least
    // two partitions with no engine (and two with no core). Empty spans
    // must tick as no-ops and the cut between the producer core and the
    // engine must carry every flit at its stamped cycle.
    let (part_out, part_sys) = run_pair(
        SocConfig::fpga_prototype()
            .with_partitions(4)
            .with_partition_workers(4),
        256,
        11,
    );
    let (dense_out, dense_sys) =
        run_pair(SocConfig::fpga_prototype().with_dense_stepper(), 256, 11);
    assert!(part_out.is_finished(), "{part_out:?}");
    assert_eq!(part_out, dense_out, "completion cycle diverged");
    assert_eq!(
        part_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "metrics diverged with zero-engine partitions"
    );
}

#[test]
fn cross_partition_flit_on_barrier_cycle_is_bit_exact() {
    // With 2 partitions over 2 cores + 1 engine the planner puts core 0
    // and the engine on opposite sides of the cut, so every MMIO
    // produce/consume and every fill crosses a partition boundary. Each
    // crossing flit is exported with the cycle stamp of its mesh
    // delivery and imported in the very same cycle's phase 2 — the
    // barrier cycle itself — so any off-by-one in the exchange protocol
    // shifts the completion cycle.
    let (part_out, part_sys) = run_pair(
        SocConfig::fpga_prototype()
            .with_partitions(2)
            .with_partition_workers(2),
        256,
        23,
    );
    let (skip_out, skip_sys) = run_pair(SocConfig::fpga_prototype(), 256, 23);
    assert!(part_out.is_finished(), "{part_out:?}");
    assert_eq!(part_out, skip_out, "completion cycle diverged");
    assert_eq!(
        part_sys.metrics_snapshot().to_json().render(),
        skip_sys.metrics_snapshot().to_json().render(),
        "metrics diverged on the cross-partition path"
    );
}

#[test]
fn chaos_reset_straddling_a_partition_boundary_is_bit_exact() {
    // The scheduled RESET targets engine 0, which lives in a different
    // partition than the core issuing MMIO against it: the injection is
    // decided hub-side and must cross the cut as a command, then every
    // downstream effect (watchdog retries, poison, diagnosis) must
    // replay exactly as in the dense run.
    const BUDGET: u64 = 2_000_000;
    let plane = || FaultPlaneConfig::new(7).with_engine_reset_at(5_000, 0);
    let run = |cfg: SocConfig| {
        let mut sys = System::new(cfg.with_fault_plane(plane()));
        load_starved_consumer(&mut sys);
        let out = sys.run(BUDGET);
        (out, sys)
    };
    let (part_out, part_sys) = run(SocConfig::fpga_prototype()
        .with_partitions(2)
        .with_partition_workers(2));
    let (dense_out, dense_sys) = run(SocConfig::fpga_prototype().with_dense_stepper());

    let chaos = part_sys.chaos_stats().expect("plane installed");
    assert_eq!(chaos.resets_injected.get(), 1, "reset must cross the cut");
    assert_eq!(part_out, dense_out, "post-reset behaviour diverged");
    assert_eq!(
        part_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "metrics diverged after a boundary-straddling reset"
    );
}

#[test]
fn one_partition_run_degenerates_to_the_skipping_stepper() {
    // `partitioned_run` with a single partition (and however many
    // workers) is the skipping stepper with extra idle helpers: same
    // outcome, same metrics, byte for byte.
    let spec_run = |partitioned: bool| {
        let mut sys = System::new(SocConfig::fpga_prototype());
        load_starved_consumer(&mut sys);
        let out = if partitioned {
            sys.partitioned_run(200_000, 4)
        } else {
            sys.run(200_000)
        };
        (out, sys)
    };
    let (part_out, part_sys) = spec_run(true);
    let (skip_out, skip_sys) = spec_run(false);
    assert_eq!(part_out, skip_out, "degenerate partitioned run diverged");
    assert_eq!(
        part_sys.metrics_snapshot().to_json().render(),
        skip_sys.metrics_snapshot().to_json().render(),
        "metrics diverged on the one-partition degeneration"
    );
}

#[test]
fn occupancy_samples_identical_under_skipping() {
    // Occupancy sampling is a scheduled event in the skipping loop (the
    // next multiple of OCCUPANCY_SAMPLE_PERIOD is a horizon term), so the
    // sampled cycles — and therefore the histograms — must be identical
    // to the dense loop's modulo check. The metrics snapshot carries the
    // per-queue occupancy histograms, so byte-identical JSON proves it.
    let (skip_out, skip_sys) = run_pair(SocConfig::fpga_prototype(), 256, 11);
    let (dense_out, dense_sys) =
        run_pair(SocConfig::fpga_prototype().with_dense_stepper(), 256, 11);
    assert!(skip_out.is_finished(), "{skip_out:?}");
    assert_eq!(skip_out, dense_out, "completion cycle diverged");
    assert_eq!(
        skip_sys.metrics_snapshot().to_json().render(),
        dense_sys.metrics_snapshot().to_json().render(),
        "occupancy samples (or other metrics) diverged under skipping"
    );
}
