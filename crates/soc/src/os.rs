//! Minimal OS services: an SMP process address space with eager and lazy
//! (demand-paged) allocation, MMIO mapping of MAPLE instances, and the
//! page-fault handling the MAPLE driver performs.
//!
//! Stands in for the SMP Linux of the FPGA evaluation: same observable
//! behaviour at the points the paper depends on — user-mode MMIO mappings
//! per MAPLE instance, demand paging with fault service, and TLB
//! shootdowns forwarded to engine MMUs.

use maple_mem::phys::{PAddr, PhysMem, PAGE_SIZE};
use maple_vm::page_table::{FrameAllocator, PageFlags, PageTable};
use maple_vm::VAddr;

/// Base of the process heap.
const HEAP_BASE: u64 = 0x4000_0000;
/// Base of the MMIO mapping area.
const MMIO_BASE: u64 = 0x7000_0000;

/// A process address space.
#[derive(Debug)]
pub struct AddressSpace {
    pt: PageTable,
    next_heap: u64,
    next_mmio: u64,
    /// Ranges allocated lazily: touched pages fault and are mapped on
    /// demand by [`AddressSpace::handle_fault`].
    lazy: Vec<(u64, u64)>,
}

impl AddressSpace {
    /// Creates an empty address space with a fresh root table.
    #[must_use]
    pub fn new(mem: &mut PhysMem, frames: &mut FrameAllocator) -> Self {
        AddressSpace {
            pt: PageTable::new(mem, frames),
            next_heap: HEAP_BASE,
            next_mmio: MMIO_BASE,
            lazy: Vec::new(),
        }
    }

    /// The page-table handle (programmed into core and engine MMUs).
    #[must_use]
    pub fn page_table(&self) -> PageTable {
        self.pt
    }

    /// Allocates `bytes` of zeroed heap, eagerly mapping every page
    /// (what the evaluation programs do before timing starts).
    pub fn alloc(
        &mut self,
        mem: &mut PhysMem,
        frames: &mut FrameAllocator,
        bytes: u64,
    ) -> VAddr {
        let va = self.reserve(bytes);
        let pages = bytes.div_ceil(PAGE_SIZE);
        // Allocate all data frames first so they are physically
        // contiguous (page-table nodes allocated during mapping would
        // otherwise interleave) — large eager allocations behave like
        // hugepage-backed buffers, which DROPLET's range watches rely on.
        let data_frames: Vec<_> = (0..pages).map(|_| frames.alloc(mem)).collect();
        for (i, frame) in data_frames.into_iter().enumerate() {
            self.pt.map(
                mem,
                frames,
                VAddr(va.0 + i as u64 * PAGE_SIZE),
                frame,
                PageFlags::rw(),
            );
        }
        va
    }

    /// Allocates `bytes` of *demand-paged* heap: pages are mapped by
    /// [`AddressSpace::handle_fault`] on first touch (exercises the fault
    /// path, including MAPLE-side faults).
    pub fn alloc_lazy(&mut self, bytes: u64) -> VAddr {
        let va = self.reserve(bytes);
        self.lazy.push((va.0, va.0 + bytes));
        va
    }

    fn reserve(&mut self, bytes: u64) -> VAddr {
        let bytes = bytes.max(1).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let va = VAddr(self.next_heap);
        self.next_heap += bytes;
        va
    }

    /// Maps a device page (a MAPLE instance) into user space; returns the
    /// user virtual address.
    pub fn map_device(
        &mut self,
        mem: &mut PhysMem,
        frames: &mut FrameAllocator,
        device_page: PAddr,
    ) -> VAddr {
        let va = VAddr(self.next_mmio);
        self.next_mmio += PAGE_SIZE;
        self.pt.map(mem, frames, va, device_page, PageFlags::device());
        va
    }

    /// Services a page fault at `va`. Returns `true` when the address lay
    /// in a lazily-allocated range and is now mapped.
    pub fn handle_fault(
        &mut self,
        mem: &mut PhysMem,
        frames: &mut FrameAllocator,
        va: VAddr,
    ) -> bool {
        let inside = self.lazy.iter().any(|&(lo, hi)| va.0 >= lo && va.0 < hi);
        if !inside {
            return false;
        }
        let page_va = VAddr(va.0 & !(PAGE_SIZE - 1));
        if self.pt.translate(mem, page_va).is_ok() {
            return true; // already mapped (racing faulters)
        }
        let frame = frames.alloc(mem);
        self.pt.map(mem, frames, page_va, frame, PageFlags::rw());
        true
    }

    /// Functional translation (for host-side data initialization).
    #[must_use]
    pub fn translate(&self, mem: &PhysMem, va: VAddr) -> Option<PAddr> {
        self.pt.translate(mem, va).ok().map(|t| t.paddr)
    }

    /// Unmaps one page (e.g. a poisoned device mapping). Returns whether
    /// the page was mapped.
    pub fn unmap(&mut self, mem: &mut PhysMem, va: VAddr) -> bool {
        self.pt.unmap(mem, va)
    }

    /// The heap span allocated so far, `[HEAP_BASE, next)`. The fault
    /// plane draws TLB-shootdown targets from this range.
    #[must_use]
    pub fn heap_span(&self) -> (u64, u64) {
        (HEAP_BASE, self.next_heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAllocator, AddressSpace) {
        let mut mem = PhysMem::new();
        let mut frames = FrameAllocator::new(PAddr(0x100_0000), 64 << 20);
        let aspace = AddressSpace::new(&mut mem, &mut frames);
        (mem, frames, aspace)
    }

    #[test]
    fn eager_alloc_is_mapped_and_zeroed() {
        let (mut mem, mut frames, mut aspace) = setup();
        let va = aspace.alloc(&mut mem, &mut frames, 3 * PAGE_SIZE + 5);
        for page in 0..4 {
            let pa = aspace
                .translate(&mem, VAddr(va.0 + page * PAGE_SIZE))
                .expect("mapped");
            assert_eq!(mem.read_u64(pa), 0);
        }
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut mem, mut frames, mut aspace) = setup();
        let a = aspace.alloc(&mut mem, &mut frames, 100);
        let b = aspace.alloc(&mut mem, &mut frames, 100);
        assert!(b.0 >= a.0 + PAGE_SIZE, "page-granular separation");
        let pa_a = aspace.translate(&mem, a).unwrap();
        let pa_b = aspace.translate(&mem, b).unwrap();
        assert_ne!(pa_a.frame(), pa_b.frame());
    }

    #[test]
    fn lazy_alloc_faults_then_maps() {
        let (mut mem, mut frames, mut aspace) = setup();
        let va = aspace.alloc_lazy(2 * PAGE_SIZE);
        assert!(aspace.translate(&mem, va).is_none(), "unmapped before touch");
        assert!(aspace.handle_fault(&mut mem, &mut frames, VAddr(va.0 + 8)));
        assert!(aspace.translate(&mem, va).is_some());
        // Second page still unmapped until touched.
        assert!(aspace.translate(&mem, VAddr(va.0 + PAGE_SIZE)).is_none());
        // Faults outside any lazy region are not ours.
        assert!(!aspace.handle_fault(&mut mem, &mut frames, VAddr(0x100)));
    }

    #[test]
    fn device_mapping_has_mmio_flags() {
        let (mut mem, mut frames, mut aspace) = setup();
        let va = aspace.map_device(&mut mem, &mut frames, PAddr(0xF000_0000));
        let t = aspace.page_table().translate(&mem, va).unwrap();
        assert!(t.flags.mmio);
        assert_eq!(t.paddr, PAddr(0xF000_0000));
    }

    #[test]
    fn double_fault_is_idempotent() {
        let (mut mem, mut frames, mut aspace) = setup();
        let va = aspace.alloc_lazy(PAGE_SIZE);
        assert!(aspace.handle_fault(&mut mem, &mut frames, va));
        let pa1 = aspace.translate(&mem, va).unwrap();
        assert!(aspace.handle_fault(&mut mem, &mut frames, va));
        assert_eq!(aspace.translate(&mem, va).unwrap(), pa1);
    }
}
