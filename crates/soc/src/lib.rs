//! SoC assembly for the MAPLE reproduction: tiles on a mesh, OS services,
//! the user-level API, and the experiment control surface.
//!
//! The crate mirrors the evaluation platforms of the paper: a tiled
//! OpenPiton-style SoC ([`system::System`]) configured from Table 2/3
//! parameters ([`config::SocConfig`]), running programs under virtual
//! memory with demand paging ([`os`]), and driving MAPLE through the
//! MMIO API ([`runtime::MapleApi`]).
//!
//! # Observability
//!
//! [`config::SocConfig::with_tracing`] threads one [`maple_trace::Tracer`]
//! through cores, engines, NoC and memory; the finished
//! [`system::System`] then offers `write_trace` (Chrome `trace_event`
//! export), `stall_rows` (per-core stall attribution) and
//! `metrics_snapshot` (the unified counter registry). Traced runs are
//! cycle-identical to untraced ones.
//!
//! # Quickstart
//!
//! ```
//! use maple_isa::builder::ProgramBuilder;
//! use maple_soc::config::SocConfig;
//! use maple_soc::runtime::MapleApi;
//! use maple_soc::system::System;
//!
//! let mut sys = System::new(SocConfig::fpga_prototype());
//! let maple_va = sys.map_maple(0);
//!
//! // One core produces 7 into queue 0 and consumes it back.
//! let mut b = ProgramBuilder::new();
//! let base = b.reg("maple");
//! let v = b.reg("v");
//! let api = MapleApi::new(base);
//! b.li(v, 7);
//! api.produce(&mut b, 0, v);
//! api.consume(&mut b, 0, v, 4);
//! b.halt();
//! let prog = b.build().unwrap();
//!
//! let core = sys.load_program(prog, &[(base, maple_va.0)]);
//! assert!(sys.run(1_000_000).is_finished());
//! assert_eq!(sys.core(core).reg(v), 7);
//! ```

#![deny(missing_docs)]

pub mod compiler;
pub mod config;
pub mod os;
mod partition;
pub mod runtime;
pub mod system;

pub use config::{ClusterConfig, SocConfig};
pub use system::{ChaosStats, System};

/// Re-export of the MAPLE MMIO encoding, for programs that form engine
/// addresses at run time (e.g. dynamic queue selection).
pub use maple_core::mmio;
