//! Automatic program slicing for decoupled execution (Section 3.3).
//!
//! The paper adapts the DeSC/DEC++ LLVM flow: a kernel is sliced into an
//! Access program (address computation and loads) and an Execute program
//! (value computation and stores), with indirect loads rewritten into
//! `PRODUCE_PTR`/`CONSUME` pairs. This module implements that compiler for
//! a restricted but expressive kernel form, [`KernelSpec`]: a dense outer
//! loop carrying streaming loads, one indirect access `A[B[i]]`, a value
//! expression, and a streaming store — the shape of SDHP, SPMV inner
//! loops, and the paper's running example `res[i] = A[B[i]] * C[i]`.
//!
//! Three backends share the spec:
//!
//! - [`KernelSpec::gen_doall`]: the baseline single-thread loop.
//! - [`KernelSpec::gen_maple_pair`]: Access + Execute programs targeting a
//!   MAPLE queue (`PRODUCE_PTR` on the Access side, `CONSUME` on the
//!   Execute side).
//! - [`KernelSpec::gen_desc_pair`]: Access + Execute using DeSC coupled
//!   queues (terminal loads; every Execute input flows through queues
//!   because the DeSC Compute core has no memory visibility).

use maple_isa::builder::ProgramBuilder;
use maple_isa::{Program, Reg};

use crate::runtime::MapleApi;

/// Binary value operation applied to the gathered element and the
/// streamed element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueOp {
    /// `res = gathered * streamed`
    Mul,
    /// `res = gathered + streamed`
    Add,
}

/// A sliceable kernel: `for i in 0..n { res[i] = A[B[i]] op C[i] }`,
/// with `C`/`res` optional to express gather-only and reduction forms.
///
/// All arrays hold `u32` elements (the evaluation's data type); `B` holds
/// `u32` indices into `A`.
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    /// Whether to stream `C[i]` and combine it with the gathered value.
    pub with_stream: bool,
    /// The combining operation.
    pub op: ValueOp,
    /// Whether to store to `res[i]` (otherwise accumulate into a register
    /// reduction returned in `acc`).
    pub with_store: bool,
}

/// Register arguments every generated program expects (set via
/// [`crate::system::System::load_program`]).
#[derive(Debug, Clone, Copy)]
pub struct KernelArgs {
    /// Base of `A` (data array, u32).
    pub a: Reg,
    /// Base of `B` (index array, u32).
    pub b: Reg,
    /// Base of `C` (streamed array, u32; unused unless `with_stream`).
    pub c: Reg,
    /// Base of `res` (output array, u32; unused unless `with_store`).
    pub res: Reg,
    /// Element count.
    pub n: Reg,
    /// Reduction accumulator output (always written; zero-initialized).
    pub acc: Reg,
}

impl KernelArgs {
    /// Allocates the six argument registers in a builder.
    pub fn allocate(b: &mut ProgramBuilder) -> Self {
        KernelArgs {
            a: b.reg("arg_a"),
            b: b.reg("arg_b"),
            c: b.reg("arg_c"),
            res: b.reg("arg_res"),
            n: b.reg("arg_n"),
            acc: b.reg("arg_acc"),
        }
    }
}

fn apply_op(b: &mut ProgramBuilder, op: ValueOp, rd: Reg, x: Reg, y: Reg) {
    match op {
        ValueOp::Mul => b.mul(rd, x, y),
        ValueOp::Add => b.add(rd, x, y),
    }
}

impl KernelSpec {
    /// Generates the single-thread do-all loop; returns the program and
    /// its argument registers.
    #[must_use]
    pub fn gen_doall(&self) -> (Program, KernelArgs) {
        let mut b = ProgramBuilder::new();
        let args = KernelArgs::allocate(&mut b);
        let i = b.reg("i");
        let idx = b.reg("idx");
        let val = b.reg("val");
        let sv = b.reg("sv");
        let tmp = b.reg("tmp");
        b.li(i, 0);
        b.li(args.acc, 0);
        let top = b.here("loop");
        let done = b.label("done");
        b.bge(i, args.n, done);
        // idx = B[i]; val = A[idx]
        b.load_indexed(idx, args.b, i, 2, 4, tmp);
        b.load_indexed(val, args.a, idx, 2, 4, tmp);
        if self.with_stream {
            b.load_indexed(sv, args.c, i, 2, 4, tmp);
            apply_op(&mut b, self.op, val, val, sv);
        }
        if self.with_store {
            b.store_indexed(val, args.res, i, 2, 4, tmp);
        }
        b.add(args.acc, args.acc, val);
        b.addi(i, i, 1);
        b.jump(top);
        b.bind(done);
        b.halt();
        (b.build().expect("doall builds"), args)
    }

    /// Generates the MAPLE-decoupled pair for queue `q`: the Access
    /// program walks `B` and issues `PRODUCE_PTR`; the Execute program
    /// consumes gathered values, streams `C`, computes and stores.
    ///
    /// Both programs expect an extra register holding the MAPLE page
    /// address, returned alongside the argument sets.
    #[must_use]
    pub fn gen_maple_pair(&self, q: u8) -> MaplePair {
        // --- Access slice ---
        let mut b = ProgramBuilder::new();
        let a_args = KernelArgs::allocate(&mut b);
        let a_maple = b.reg("maple");
        let api = MapleApi::new(a_maple);
        let i = b.reg("i");
        let idx = b.reg("idx");
        let ptr = b.reg("ptr");
        let tmp = b.reg("tmp");
        b.li(i, 0);
        let top = b.here("loop");
        let done = b.label("done");
        b.bge(i, a_args.n, done);
        // idx = B[i] (streaming, cache-friendly)
        b.load_indexed(idx, a_args.b, i, 2, 4, tmp);
        // ptr = &A[idx]; PRODUCE_PTR — MAPLE fetches asynchronously.
        b.index_addr(ptr, a_args.a, idx, 2);
        api.produce_ptr(&mut b, q, ptr);
        b.addi(i, i, 1);
        b.jump(top);
        b.bind(done);
        b.halt();
        let access = b.build().expect("access slice builds");

        // --- Execute slice ---
        let mut b = ProgramBuilder::new();
        let e_args = KernelArgs::allocate(&mut b);
        let e_maple = b.reg("maple");
        let api = MapleApi::new(e_maple);
        let i = b.reg("i");
        let val = b.reg("val");
        let sv = b.reg("sv");
        let tmp = b.reg("tmp");
        b.li(i, 0);
        b.li(e_args.acc, 0);
        let top = b.here("loop");
        let done = b.label("done");
        b.bge(i, e_args.n, done);
        api.consume(&mut b, q, val, 4);
        if self.with_stream {
            b.load_indexed(sv, e_args.c, i, 2, 4, tmp);
            apply_op(&mut b, self.op, val, val, sv);
        }
        if self.with_store {
            b.store_indexed(val, e_args.res, i, 2, 4, tmp);
        }
        b.add(e_args.acc, e_args.acc, val);
        b.addi(i, i, 1);
        b.jump(top);
        b.bind(done);
        b.halt();
        let execute = b.build().expect("execute slice builds");

        MaplePair {
            access,
            access_args: a_args,
            access_maple: a_maple,
            execute,
            execute_args: e_args,
            execute_maple: e_maple,
        }
    }

    /// Generates the DeSC pair: terminal loads feed coupled queue 0; the
    /// streamed input flows through coupled queue 1 because the DeSC
    /// Compute core has no memory visibility (the restriction that costs
    /// DeSC runahead on BFS). Computed results return on queue 2 — DeSC's
    /// store-value queue — which the Supply core drains *asynchronously*
    /// (opportunistically in the loop, then fully at the end), so neither
    /// core ever blocks on the other in the steady state.
    #[must_use]
    pub fn gen_desc_pair(&self) -> DescPair {
        // --- Supply (Access) ---
        let mut b = ProgramBuilder::new();
        let a_args = KernelArgs::allocate(&mut b);
        let i = b.reg("i");
        let is = b.reg("store_idx");
        let idx = b.reg("idx");
        let ptr = b.reg("ptr");
        let tmp = b.reg("tmp");
        let outv = b.reg("outv");
        let empty = b.reg("empty");
        b.li(i, 0);
        b.li(is, 0);
        b.li(empty, u64::MAX);
        let top = b.here("loop");
        let done = b.label("done");
        b.bge(i, a_args.n, done);
        if self.with_store {
            // Drain one pending result from the store-value queue without
            // blocking; results arrive in order, so the store index is a
            // simple counter.
            let no_out = b.label("no_out");
            b.desc_try_consume(outv, 2);
            b.beq(outv, maple_isa::Operand::Reg(empty), no_out);
            b.store_indexed(outv, a_args.res, is, 2, 4, tmp);
            b.addi(is, is, 1);
            b.bind(no_out);
        }
        b.load_indexed(idx, a_args.b, i, 2, 4, tmp);
        b.index_addr(ptr, a_args.a, idx, 2);
        // Terminal load: non-blocking, value flows to Compute on q0.
        b.desc_produce_load(0, ptr, 0, 4);
        if self.with_stream {
            b.index_addr(ptr, a_args.c, i, 2);
            b.desc_produce_load(1, ptr, 0, 4);
        }
        b.addi(i, i, 1);
        b.jump(top);
        b.bind(done);
        if self.with_store {
            // Flush the remaining results.
            let flush = b.here("flush");
            let flushed = b.label("flushed");
            b.bge(is, a_args.n, flushed);
            b.desc_consume(outv, 2);
            b.store_indexed(outv, a_args.res, is, 2, 4, tmp);
            b.addi(is, is, 1);
            b.jump(flush);
            b.bind(flushed);
        }
        b.halt();
        let access = b.build().expect("supply slice builds");

        // --- Compute (Execute) ---
        let mut b = ProgramBuilder::new();
        let e_args = KernelArgs::allocate(&mut b);
        let i = b.reg("i");
        let val = b.reg("val");
        let sv = b.reg("sv");
        b.li(i, 0);
        b.li(e_args.acc, 0);
        let top = b.here("loop");
        let done = b.label("done");
        b.bge(i, e_args.n, done);
        b.desc_consume(val, 0);
        if self.with_stream {
            b.desc_consume(sv, 1);
            apply_op(&mut b, self.op, val, val, sv);
        }
        if self.with_store {
            b.desc_produce(2, val);
        }
        b.add(e_args.acc, e_args.acc, val);
        b.addi(i, i, 1);
        b.jump(top);
        b.bind(done);
        b.halt();
        let execute = b.build().expect("compute slice builds");

        DescPair {
            access,
            access_args: a_args,
            execute,
            execute_args: e_args,
        }
    }
}

/// Output of [`KernelSpec::gen_maple_pair`].
#[derive(Debug, Clone)]
pub struct MaplePair {
    /// The Access program.
    pub access: Program,
    /// Argument registers of the Access program.
    pub access_args: KernelArgs,
    /// Register that must hold the MAPLE page address (Access).
    pub access_maple: Reg,
    /// The Execute program.
    pub execute: Program,
    /// Argument registers of the Execute program.
    pub execute_args: KernelArgs,
    /// Register that must hold the MAPLE page address (Execute).
    pub execute_maple: Reg,
}

/// Output of [`KernelSpec::gen_desc_pair`]. Requires the two cores to be
/// joined with [`crate::system::System::pair_desc`] over ≥3 queues.
#[derive(Debug, Clone)]
pub struct DescPair {
    /// The Supply (Access) program.
    pub access: Program,
    /// Argument registers of the Supply program.
    pub access_args: KernelArgs,
    /// The Compute (Execute) program.
    pub execute: Program,
    /// Argument registers of the Compute program.
    pub execute_args: KernelArgs,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KernelSpec {
        KernelSpec {
            with_stream: true,
            op: ValueOp::Mul,
            with_store: true,
        }
    }

    #[test]
    fn all_backends_build() {
        let s = spec();
        let (p, _) = s.gen_doall();
        assert!(p.len() > 5);
        let mp = s.gen_maple_pair(0);
        assert!(mp.access.len() > 5);
        assert!(mp.execute.len() > 5);
        let dp = s.gen_desc_pair();
        assert!(dp.access.len() > 5);
        assert!(dp.execute.len() > 5);
    }

    #[test]
    fn access_slice_contains_no_indirect_blocking_load() {
        // In the MAPLE slice, the only loads are the streaming B[i] walk;
        // the indirect A load became a PRODUCE_PTR store.
        let mp = spec().gen_maple_pair(0);
        let loads = mp.access.iter().filter(|i| i.is_load()).count();
        let stores = mp
            .access
            .iter()
            .filter(|i| matches!(i, maple_isa::Inst::St { .. }))
            .count();
        assert!(loads >= 1, "B[i] stream remains");
        assert!(stores >= 1, "PRODUCE_PTR store present");
    }

    #[test]
    fn desc_slices_use_extension_instructions() {
        let dp = spec().gen_desc_pair();
        let uses_ext = |p: &Program| {
            p.iter().any(|i| {
                matches!(
                    i,
                    maple_isa::Inst::DescProduce { .. }
                        | maple_isa::Inst::DescConsume { .. }
                        | maple_isa::Inst::DescProduceLoad { .. }
                )
            })
        };
        assert!(uses_ext(&dp.access));
        assert!(uses_ext(&dp.execute));
        // MAPLE slices never use the DeSC extension.
        let mp = spec().gen_maple_pair(0);
        assert!(!uses_ext(&mp.access));
        assert!(!uses_ext(&mp.execute));
    }
}
