//! The user-level MAPLE API and SMP runtime helpers, as code generators.
//!
//! [`MapleApi`] is the paper's Section 3.1–3.2 API: every operation
//! compiles to an ordinary load or store against the instance's mapped
//! page — `INIT`, `OPEN`/`CLOSE`, `PRODUCE`, `PRODUCE_PTR`, `CONSUME`,
//! `PREFETCH`, the `LIMA` family, and the performance-counter reads used
//! by the sensitivity studies. [`Barrier`] provides the OpenMP-style
//! epoch barrier the multithreaded kernels synchronize with.

use maple_core::mmio::{
    config_queue_payload, lima_go_payload, load_offset, store_offset, LoadOp, StoreOp,
};
use maple_isa::builder::ProgramBuilder;
use maple_isa::{AtomicOp, Reg, ZERO};

/// Code generator for one mapped MAPLE instance.
///
/// `base` holds the user virtual address of the instance page (from
/// [`crate::system::System::map_maple`]).
#[derive(Debug, Clone, Copy)]
pub struct MapleApi {
    /// Register holding the instance page base address.
    pub base: Reg,
}

impl MapleApi {
    /// Wraps an instance whose page address lives in `base`.
    #[must_use]
    pub fn new(base: Reg) -> Self {
        MapleApi { base }
    }

    /// `PRODUCE(q, v)` — one store.
    pub fn produce(&self, b: &mut ProgramBuilder, q: u8, v: Reg) {
        b.st(v, self.base, store_offset(StoreOp::Produce, q) as i64, 8);
    }

    /// `PRODUCE_PTR(q, ptr)` — one store; MAPLE fetches non-coherently.
    pub fn produce_ptr(&self, b: &mut ProgramBuilder, q: u8, ptr: Reg) {
        b.st(ptr, self.base, store_offset(StoreOp::ProducePtr, q) as i64, 8);
    }

    /// `PRODUCE_PTR` via the coherent LLC path.
    pub fn produce_ptr_llc(&self, b: &mut ProgramBuilder, q: u8, ptr: Reg) {
        b.st(
            ptr,
            self.base,
            store_offset(StoreOp::ProducePtrLlc, q) as i64,
            8,
        );
    }

    /// `CONSUME(q)` — one load of `size` bytes (8-byte loads on 4-byte
    /// queues pop two entries).
    pub fn consume(&self, b: &mut ProgramBuilder, q: u8, rd: Reg, size: u8) {
        b.ld(rd, self.base, load_offset(LoadOp::Consume, q) as i64, size);
    }

    /// `PREFETCH(ptr)` — speculative prefetch into the LLC.
    pub fn prefetch(&self, b: &mut ProgramBuilder, ptr: Reg) {
        b.st(ptr, self.base, store_offset(StoreOp::Prefetch, 0) as i64, 8);
    }

    /// `OPEN(q)` — returns 1 in `rd` when the queue is granted.
    pub fn open(&self, b: &mut ProgramBuilder, q: u8, rd: Reg) {
        b.ld(rd, self.base, load_offset(LoadOp::Open, q) as i64, 8);
    }

    /// `CLOSE(q)`.
    pub fn close(&self, b: &mut ProgramBuilder, q: u8) {
        b.st(ZERO, self.base, store_offset(StoreOp::Close, q) as i64, 8);
    }

    /// `INIT` — reset the engine (queues drained, counters kept).
    pub fn init(&self, b: &mut ProgramBuilder) {
        b.st(ZERO, self.base, store_offset(StoreOp::Reset, 0) as i64, 8);
    }

    /// Configure queue `q` to `entries` × `entry_bytes`.
    pub fn config_queue(
        &self,
        b: &mut ProgramBuilder,
        q: u8,
        entries: u32,
        entry_bytes: u8,
        tmp: Reg,
    ) {
        b.li(tmp, config_queue_payload(entries, entry_bytes));
        b.st(tmp, self.base, store_offset(StoreOp::ConfigQueue, q) as i64, 8);
    }

    /// `LIMA(A, B, lo, hi)` (Figure 4): four stores programming the unit,
    /// with `lo`/`hi` packed from registers. Non-speculative commands
    /// gather into queue `q`; speculative ones prefetch into the LLC.
    #[allow(clippy::too_many_arguments)]
    pub fn lima(
        &self,
        b: &mut ProgramBuilder,
        q: u8,
        a_base: Reg,
        b_base: Reg,
        lo: Reg,
        hi: Reg,
        speculative: bool,
        b_elem: u8,
        a_elem: u8,
        tmp: Reg,
        tmp2: Reg,
    ) {
        b.st(a_base, self.base, store_offset(StoreOp::LimaABase, q) as i64, 8);
        b.st(b_base, self.base, store_offset(StoreOp::LimaBBase, q) as i64, 8);
        // range payload = lo | hi << 32
        b.slli(tmp2, hi, 32);
        b.alu(maple_isa::AluOp::Or, tmp, lo, tmp2);
        b.st(tmp, self.base, store_offset(StoreOp::LimaRange, q) as i64, 8);
        b.li(tmp, lima_go_payload(speculative, b_elem, a_elem));
        b.st(tmp, self.base, store_offset(StoreOp::LimaGo, q) as i64, 8);
    }

    /// Reads a performance counter into `rd`.
    pub fn stat(&self, b: &mut ProgramBuilder, q: u8, which: LoadOp, rd: Reg) {
        b.ld(rd, self.base, load_offset(which, q) as i64, 8);
    }

    // --- RMW-produce extension (paper §3 future work) ---------------------

    /// Sets queue `q`'s atomic operand register.
    pub fn set_amo_operand(&self, b: &mut ProgramBuilder, q: u8, operand: Reg) {
        b.st(
            operand,
            self.base,
            store_offset(StoreOp::SetAmoOperand, q) as i64,
            8,
        );
    }

    /// `PRODUCE_AMO_ADD(q, ptr)`: MAPLE atomically fetch-adds the queue's
    /// operand at `*ptr` and enqueues the old value in program order.
    pub fn produce_amo_add(&self, b: &mut ProgramBuilder, q: u8, ptr: Reg) {
        b.st(
            ptr,
            self.base,
            store_offset(StoreOp::ProduceAmoAdd, q) as i64,
            8,
        );
    }

    /// `PRODUCE_AMO_MIN(q, ptr)`: atomic unsigned fetch-min variant.
    pub fn produce_amo_min(&self, b: &mut ProgramBuilder, q: u8, ptr: Reg) {
        b.st(
            ptr,
            self.base,
            store_offset(StoreOp::ProduceAmoMin, q) as i64,
            8,
        );
    }
}

/// Byte offset of the arrival counter in a barrier block.
pub const BARRIER_COUNT_OFFSET: i64 = 0;
/// Byte offset of the generation counter (separate cache line).
pub const BARRIER_GEN_OFFSET: i64 = 64;
/// Bytes to allocate for one barrier block.
pub const BARRIER_BYTES: u64 = 128;

/// Code generator for an OpenMP-style epoch barrier over `nthreads`
/// threads. Each participating program creates its own `Barrier` (they
/// share the same memory block) and calls [`Barrier::emit`] at every
/// synchronization point.
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    /// Register holding the barrier block's address.
    pub base: Reg,
    /// Number of participating threads.
    pub nthreads: u64,
    my_gen: Reg,
    tmp: Reg,
    one: Reg,
}

impl Barrier {
    /// Allocates the barrier's registers. `base` must hold the block
    /// address at run time; `my_gen` starts at zero.
    pub fn new(b: &mut ProgramBuilder, base: Reg, nthreads: u64) -> Self {
        assert!(nthreads >= 1);
        let my_gen = b.reg("bar_gen");
        let tmp = b.reg("bar_tmp");
        let one = b.reg("bar_one");
        Barrier {
            base,
            nthreads,
            my_gen,
            tmp,
            one,
        }
    }

    /// Emits one barrier episode.
    pub fn emit(&self, b: &mut ProgramBuilder) {
        let wait = b.label("bar_wait");
        let done = b.label("bar_done");
        b.li(self.one, 1);
        // old = fetch_add(count, 1)
        b.amo(
            AtomicOp::Add,
            self.tmp,
            self.base,
            BARRIER_COUNT_OFFSET,
            8,
            self.one,
            ZERO,
        );
        b.addi(self.my_gen, self.my_gen, 1);
        b.bne(self.tmp, (self.nthreads - 1) as i64, wait);
        // Last arriver: reset the count, publish the new generation.
        b.st(ZERO, self.base, BARRIER_COUNT_OFFSET, 8);
        b.amo(
            AtomicOp::Add,
            self.tmp,
            self.base,
            BARRIER_GEN_OFFSET,
            8,
            self.one,
            ZERO,
        );
        b.jump(done);
        b.bind(wait);
        let spin = b.here("bar_spin");
        b.ld_volatile(self.tmp, self.base, BARRIER_GEN_OFFSET, 8);
        b.blt(self.tmp, self.my_gen, spin);
        b.bind(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_operations_are_single_memory_instructions() {
        let mut b = ProgramBuilder::new();
        let base = b.reg("maple");
        let v = b.reg("v");
        let api = MapleApi::new(base);
        let before = b.len();
        api.produce(&mut b, 0, v);
        assert_eq!(b.len(), before + 1, "PRODUCE is exactly one store");
        api.produce_ptr(&mut b, 1, v);
        api.consume(&mut b, 0, v, 4);
        assert_eq!(b.len(), before + 3);
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    fn lima_is_four_stores_plus_packing() {
        let mut b = ProgramBuilder::new();
        let base = b.reg("maple");
        let a = b.reg("a");
        let bb = b.reg("b");
        let lo = b.reg("lo");
        let hi = b.reg("hi");
        let t1 = b.reg("t1");
        let t2 = b.reg("t2");
        let api = MapleApi::new(base);
        let before = b.len();
        api.lima(&mut b, 2, a, bb, lo, hi, false, 4, 4, t1, t2);
        // 4 stores + 2 packing ALU ops + 1 li.
        assert_eq!(b.len(), before + 7);
        b.halt();
        assert!(b.build().is_ok());
    }

    #[test]
    fn barrier_emits_and_builds() {
        let mut b = ProgramBuilder::new();
        let base = b.reg("bar");
        let bar = Barrier::new(&mut b, base, 4);
        bar.emit(&mut b);
        bar.emit(&mut b); // reusable across episodes
        b.halt();
        assert!(b.build().is_ok());
    }
}
